/**
 * @file
 * Campaign throughput: trials/sec with checkpointed trial
 * fast-forwarding (CampaignConfig::checkpoints = K) versus full-replay
 * trials (K = 0), on the workloads with the longest golden runs —
 * where redundant prefix re-execution dominates an SFI campaign.
 * Since snapshots share Memory pages copy-on-write, each row also
 * reports the snapshots' resident bytes next to what K deep copies
 * would have held.
 *
 * Flags (for perf bisection without recompiling):
 *   --workload NAME[,NAME...]  bench these workloads (default: the 3
 *                              with the longest golden runs)
 *   --trials N                 injection trials per campaign
 *                              (default: SOFTCHECK_TRIALS or 200)
 *   --checkpoints K[,K...]     K values (default: 0,8,32,128,256; the
 *                              first is the speedup baseline)
 *   --threads N                worker threads (default: 0 = hardware)
 *   --suite-threads N[,N...]   scheduler widths for the suite-scaling
 *                              section (default: 1,2,4,8)
 *   --tier interp|threaded|lockstep|both|all  execution tier(s) for
 *                              the K sweep (default: all; "both" =
 *                              interp+threaded). Each (workload, mode,
 *                              K) point runs on each tier, outcomes
 *                              are asserted identical, and speedup
 *                              summaries (threaded over interp, and
 *                              lockstep over threaded, at the same K)
 *                              are printed and recorded.
 *   --lanes L[,L...]           lane-group widths for the lockstep
 *                              lane-width sweep (default: 1,4,8,16).
 *                              The K sweep itself runs lockstep at the
 *                              default width (SOFTCHECK_LANES or 8).
 *   --placement uniform|adaptive  snapshot placement for the K sweep
 *                              and suite sections (default: adaptive).
 *                              A separate section always benches both
 *                              at equal K and reports the expected and
 *                              measured fast-forward cost per trial.
 *   --shards S[,S...]          worker-process counts for the trial-
 *                              sharding section (default: 0,2,4;
 *                              0 = the in-process baseline row)
 *   --sampling blind|stratified  sampling plan for the K sweep and
 *                              suite sections (default: blind, or
 *                              SOFTCHECK_SAMPLING). A separate
 *                              fault-space pruning section always
 *                              benches both head to head per workload,
 *                              asserts bit-identical outcome counts,
 *                              and reports the statically resolved
 *                              fraction plus the error-bar shrink at
 *                              equal trial budget.
 *
 * The lockstep rows carry laneOccupancy: the mean fraction of the
 * configured lane slots a group fetch actually served (forked trial
 * lanes plus pending trials riding the shared stem). Lockstep lane
 * groups and checkpoints are two answers to the same redundancy —
 * shared-prefix re-execution — so they trade against each other: at
 * K = 0 every trial leans on the stem and the tier wins outright; as
 * checkpoints densify, private rewinds get cheaper than a shared
 * replay and the tier's profitability guard hands trials back to the
 * scalar path (occupancy 0, parity throughput). The headline
 * lockstepSpeedup geomean is therefore taken at the smallest K in the
 * sweep — the tier's design point, and the budget a memory-constrained
 * campaign actually runs at — while the JSON records every per-K row,
 * fade-out included, plus geomeanAllBudgets for the blended view.
 *
 * A second section sweeps a workload x hardening-mode x seed grid
 * through runCampaignSuite and through a per-config runCampaign loop,
 * recording the end-to-end suite speedup and where the wall-clock goes
 * per phase (compile / profile / baseline / golden / trials). The
 * suite characterizes each (workload, mode) cell once and fans the
 * seed variants out of it. The pre-suite flow additionally ran the
 * instrumented golden pass twice per campaign (calibration +
 * checkpoint recording); its cost is reconstructed exactly as the
 * single-loop wall plus one extra goldenSeconds per cell and reported
 * as the legacy reference.
 *
 * A third section sweeps the suite's work-stealing scheduler width
 * (--suite-threads) over the same grid, asserting bit-identical cell
 * outcomes at every width and recording wall seconds, task CPU
 * seconds, and the speedup versus the one-thread schedule — the
 * whole-suite scaling headline. hostHardwareThreads is recorded next
 * to it so a flat curve on a small machine reads as what it is.
 *
 * Two service-layer sections close the run: a trial-sharding sweep
 * (fork-and-merge worker processes over one serialized bundle,
 * outcome counts asserted bit-identical to in-process at every shard
 * count — on a 1-core container the rows honestly show dispatch
 * overhead rather than a parallel win), and an artifact-cache section
 * that runs the suite grid cold then warm against a scratch cache
 * directory, asserting the warm pass serves every cell with zero
 * fault-free phase seconds.
 *
 * Writes machine-readable results to BENCH_campaign.json (override the
 * path with SOFTCHECK_BENCH_JSON) so the perf trajectory is trackable
 * across PRs. Outcome counts are asserted identical across K as a
 * determinism sanity check.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <stdlib.h>

#include "bench_util.hh"
#include "support/concurrency.hh"
#include "support/error.hh"

namespace
{

using namespace softcheck;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct Row
{
    std::string workload;
    HardeningMode mode;
    ExecTier tier = ExecTier::Interp;
    unsigned k = 0;
    unsigned lanes = 0;        //!< lockstep group width (0 = scalar tier)
    double laneOccupancy = 0;  //!< mean served-lane fraction (lockstep)
    uint64_t goldenDynInstrs = 0;
    double trialSeconds = 0;
    double trialsPerSec = 0;
    double speedup = 1.0; //!< vs the first-K row of the same campaign
    uint64_t snapshotBytes = 0;         //!< COW-resident page bytes
    uint64_t snapshotBytesFullCopy = 0; //!< K deep copies (pre-COW)
    CheckpointPlacement placement = CheckpointPlacement::Adaptive;
    double expectedFF = 0; //!< model E[ff instr-equivalents]/trial
    double measuredFF = 0; //!< measured ff instr-equivalents/trial
    CampaignPhaseTimes phase;           //!< per-phase wall clock
};

struct BenchOptions
{
    std::vector<std::string> workloads; //!< empty = 3 longest
    unsigned trials = 0;                //!< 0 = env/default
    std::vector<unsigned> ks = {0, 8, 32, 128, 256};
    unsigned threads = 0;
    std::vector<unsigned> suiteThreads = {1, 2, 4, 8};
    std::vector<unsigned> lanes = {1, 4, 8, 16};
    /** Tiers for the K sweep, in run order. The last one also drives
     * the suite sections. */
    std::vector<ExecTier> tiers = {ExecTier::Interp, ExecTier::Threaded,
                                   ExecTier::Lockstep};
    /** Worker-process counts for the trial-sharding section (0 = the
     * in-process trial phase, the baseline row). */
    std::vector<unsigned> shardCounts = {0, 2, 4};
    /** Placement for the K sweep and suite sections; the dedicated
     * comparison section benches both regardless. */
    CheckpointPlacement placement = CheckpointPlacement::Adaptive;
    /** Sampling plan for the K sweep and suite sections; the
     * fault-space pruning section benches both regardless. */
    SamplingPlan sampling = benchutil::benchSampling();
};

std::vector<std::string>
splitList(const char *arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = arg;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    return out;
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload NAME[,NAME...]] [--trials N] "
                 "[--checkpoints K[,K...]] [--threads N] "
                 "[--suite-threads N[,N...]] "
                 "[--tier interp|threaded|lockstep|both|all] "
                 "[--lanes L[,L...]] [--placement uniform|adaptive] "
                 "[--sampling blind|stratified] "
                 "[--shards S[,S...]]\n",
                 argv0);
    std::exit(2);
}

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--workload")) {
            for (std::string &w : splitList(value()))
                opt.workloads.push_back(std::move(w));
        } else if (!std::strcmp(argv[i], "--trials")) {
            opt.trials =
                static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
            if (opt.trials == 0)
                usage(argv[0]);
        } else if (!std::strcmp(argv[i], "--checkpoints")) {
            opt.ks.clear();
            for (const std::string &k : splitList(value()))
                opt.ks.push_back(static_cast<unsigned>(
                    std::strtoul(k.c_str(), nullptr, 10)));
            if (opt.ks.empty())
                usage(argv[0]);
        } else if (!std::strcmp(argv[i], "--threads")) {
            opt.threads =
                static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--tier")) {
            const char *t = value();
            if (!std::strcmp(t, "interp"))
                opt.tiers = {ExecTier::Interp};
            else if (!std::strcmp(t, "threaded"))
                opt.tiers = {ExecTier::Threaded};
            else if (!std::strcmp(t, "lockstep"))
                opt.tiers = {ExecTier::Lockstep};
            else if (!std::strcmp(t, "both"))
                opt.tiers = {ExecTier::Interp, ExecTier::Threaded};
            else if (!std::strcmp(t, "all"))
                opt.tiers = {ExecTier::Interp, ExecTier::Threaded,
                             ExecTier::Lockstep};
            else
                usage(argv[0]);
        } else if (!std::strcmp(argv[i], "--placement")) {
            const char *p = value();
            if (!std::strcmp(p, "uniform"))
                opt.placement = CheckpointPlacement::Uniform;
            else if (!std::strcmp(p, "adaptive"))
                opt.placement = CheckpointPlacement::Adaptive;
            else
                usage(argv[0]);
        } else if (!std::strcmp(argv[i], "--sampling")) {
            const char *s = value();
            if (!std::strcmp(s, "blind"))
                opt.sampling = SamplingPlan::Blind;
            else if (!std::strcmp(s, "stratified"))
                opt.sampling = SamplingPlan::Stratified;
            else
                usage(argv[0]);
        } else if (!std::strcmp(argv[i], "--lanes")) {
            opt.lanes.clear();
            for (const std::string &l : splitList(value()))
                opt.lanes.push_back(static_cast<unsigned>(
                    std::strtoul(l.c_str(), nullptr, 10)));
            if (opt.lanes.empty() ||
                std::find(opt.lanes.begin(), opt.lanes.end(), 0u) !=
                    opt.lanes.end())
                usage(argv[0]);
        } else if (!std::strcmp(argv[i], "--shards")) {
            opt.shardCounts.clear();
            for (const std::string &s : splitList(value()))
                opt.shardCounts.push_back(static_cast<unsigned>(
                    std::strtoul(s.c_str(), nullptr, 10)));
            if (opt.shardCounts.empty())
                usage(argv[0]);
        } else if (!std::strcmp(argv[i], "--suite-threads")) {
            opt.suiteThreads.clear();
            for (const std::string &t : splitList(value()))
                opt.suiteThreads.push_back(static_cast<unsigned>(
                    std::strtoul(t.c_str(), nullptr, 10)));
            if (opt.suiteThreads.empty() ||
                std::find(opt.suiteThreads.begin(),
                          opt.suiteThreads.end(),
                          0u) != opt.suiteThreads.end())
                usage(argv[0]);
        } else {
            usage(argv[0]);
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseArgs(argc, argv);
    const unsigned trials =
        opt.trials ? opt.trials : benchutil::trialsPerBenchmark(200);

    benchutil::printHeader(
        "Campaign throughput: checkpointed trial fast-forwarding "
        "with COW snapshots",
        strformat("%u trials per campaign; K = snapshots of the "
                  "fault-free run (0 = replay every trial from "
                  "instruction 0); snapKB = resident snapshot bytes "
                  "(COW pages vs full copies)",
                  trials));

    // Default workload set: ranked by golden-run length, the three
    // longest — prefix replay cost scales with goldenDynInstrs, so
    // these dominate real campaign wall time.
    std::vector<std::string> workloads = opt.workloads;
    if (workloads.empty()) {
        struct Candidate
        {
            std::string name;
            uint64_t golden;
        };
        std::vector<Candidate> cands;
        for (const std::string &name : benchutil::benchmarkNames()) {
            CampaignConfig cfg =
                benchutil::makeConfig(name, HardeningMode::Original, 0);
            cands.push_back(
                {name, characterizeOnly(cfg).goldenDynInstrs});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const Candidate &a, const Candidate &b) {
                      return a.golden > b.golden;
                  });
        cands.resize(std::min<std::size_t>(cands.size(), 3));
        for (const Candidate &c : cands)
            workloads.push_back(c.name);
    }

    const HardeningMode modes[] = {HardeningMode::Original,
                                   HardeningMode::DupValChks};

    std::vector<Row> rows;
    benchutil::printRule();
    std::printf("%-10s %-12s %-8s %12s %4s %5s %5s %6s %10s %12s %8s "
                "%9s %9s %10s %10s\n",
                "workload", "mode", "tier", "goldenInstr", "K", "lanes",
                "occ", "plc", "trial-sec", "trials/sec", "speedup",
                "snapKB", "fullKB", "expFF/tr", "measFF/tr");
    benchutil::printRule();

    for (const std::string &workload : workloads) {
        for (const HardeningMode mode : modes) {
            CampaignConfig cfg =
                benchutil::makeConfig(workload, mode, trials);
            cfg.threads = opt.threads;
            cfg.placement = opt.placement;
            cfg.sampling = opt.sampling;

            // Outcomes must be identical across every K *and* every
            // tier of this campaign — one reference set serves both
            // determinism checks.
            bool have_base_counts = false;
            std::array<uint64_t, kNumOutcomes> base_counts{};
            for (const ExecTier tier : opt.tiers) {
                cfg.tier = tier;
                double base_tps = 0;
                for (const unsigned k : opt.ks) {
                    cfg.checkpoints = k;
                    const CampaignResult r = runCampaign(cfg);
                    // Campaigns now time their phases directly, so the
                    // injection phase the checkpoints accelerate no
                    // longer has to be separated out by a subtraction
                    // trick.
                    const double trial_seconds =
                        std::max(r.phase.trialsSeconds, 1e-9);

                    if (!have_base_counts) {
                        base_counts = r.counts;
                        have_base_counts = true;
                    } else {
                        scAssert(r.counts == base_counts,
                                 "campaign outcomes diverged across "
                                 "checkpoints/tier variants");
                    }

                    Row row;
                    row.workload = workload;
                    row.mode = mode;
                    row.tier = tier;
                    row.k = k;
                    row.lanes = tier == ExecTier::Lockstep ? cfg.lanes
                                                           : 0;
                    row.laneOccupancy = r.laneOccupancy;
                    row.goldenDynInstrs = r.goldenDynInstrs;
                    row.trialSeconds = trial_seconds;
                    row.trialsPerSec = trials / trial_seconds;
                    if (base_tps == 0)
                        base_tps = row.trialsPerSec;
                    row.speedup = row.trialsPerSec / base_tps;
                    row.snapshotBytes = r.snapshotBytes;
                    row.snapshotBytesFullCopy = r.snapshotBytesFullCopy;
                    row.placement = cfg.placement;
                    row.expectedFF = r.expectedFastForwardInstrs;
                    row.measuredFF = r.measuredFFInstrsPerTrial();
                    row.phase = r.phase;
                    rows.push_back(row);

                    char lanes_buf[16] = "-";
                    char occ_buf[16] = "-";
                    if (row.lanes) {
                        std::snprintf(lanes_buf, sizeof lanes_buf, "%u",
                                      row.lanes);
                        std::snprintf(occ_buf, sizeof occ_buf, "%.2f",
                                      row.laneOccupancy);
                    }
                    std::printf(
                        "%-10s %-12s %-8s %12llu %4u %5s %5s %6s %10.3f "
                        "%12.1f %7.2fx %9.1f %9.1f %10.0f %10.0f\n",
                        row.workload.c_str(), hardeningModeName(mode),
                        execTierName(tier),
                        static_cast<unsigned long long>(
                            row.goldenDynInstrs),
                        row.k, lanes_buf, occ_buf,
                        row.k ? placementName(row.placement) : "-",
                        row.trialSeconds,
                        row.trialsPerSec, row.speedup,
                        static_cast<double>(row.snapshotBytes) / 1024.0,
                        static_cast<double>(row.snapshotBytesFullCopy) /
                            1024.0,
                        row.expectedFF, row.measuredFF);
                }
            }
        }
    }
    benchutil::printRule();

    // ---- tier speedup: threaded vs interp at the same (w, mode, K) ----
    struct TierCmp
    {
        std::string workload;
        HardeningMode mode;
        unsigned k = 0;
        double interpTps = 0;
        double threadedTps = 0;
        double speedup = 0;
    };
    std::vector<TierCmp> tier_cmps;
    if (opt.tiers.size() > 1) {
        for (const Row &a : rows) {
            if (a.tier != ExecTier::Interp)
                continue;
            for (const Row &b : rows) {
                if (b.tier == ExecTier::Threaded &&
                    b.workload == a.workload && b.mode == a.mode &&
                    b.k == a.k) {
                    tier_cmps.push_back({a.workload, a.mode, a.k,
                                         a.trialsPerSec, b.trialsPerSec,
                                         b.trialsPerSec /
                                             a.trialsPerSec});
                }
            }
        }
        benchutil::printHeader(
            "Tier speedup: threaded trials/sec over interp trials/sec "
            "at the same K");
        std::printf("  %-10s %-12s %4s %12s %12s %8s\n", "workload",
                    "mode", "K", "interp t/s", "threaded t/s",
                    "speedup");
        for (const TierCmp &c : tier_cmps)
            std::printf("  %-10s %-12s %4u %12.1f %12.1f %7.2fx\n",
                        c.workload.c_str(), hardeningModeName(c.mode),
                        c.k, c.interpTps, c.threadedTps, c.speedup);
    }

    // ---- lockstep speedup: lane groups vs scalar threaded, same K ----
    struct LockstepCmp
    {
        std::string workload;
        HardeningMode mode;
        unsigned k = 0;
        unsigned lanes = 0;
        double threadedTps = 0;
        double lockstepTps = 0;
        double laneOccupancy = 0;
        double speedup = 0;
    };
    std::vector<LockstepCmp> lockstep_cmps;
    for (const Row &a : rows) {
        if (a.tier != ExecTier::Threaded)
            continue;
        for (const Row &b : rows) {
            if (b.tier == ExecTier::Lockstep && b.workload == a.workload &&
                b.mode == a.mode && b.k == a.k) {
                lockstep_cmps.push_back(
                    {a.workload, a.mode, a.k, b.lanes, a.trialsPerSec,
                     b.trialsPerSec, b.laneOccupancy,
                     b.trialsPerSec / a.trialsPerSec});
            }
        }
    }
    if (!lockstep_cmps.empty()) {
        benchutil::printHeader(
            "Lockstep speedup: lane-group trials/sec over scalar "
            "threaded trials/sec at the same K",
            "the tier targets low checkpoint budgets, where trials "
            "share one long stem replay; with dense checkpoints its "
            "guard delegates to the scalar tier (occ 0) at parity");
        std::printf("  %-10s %-12s %4s %5s %5s %12s %12s %8s\n",
                    "workload", "mode", "K", "lanes", "occ",
                    "threaded t/s", "lockstep t/s", "speedup");
        for (const LockstepCmp &c : lockstep_cmps)
            std::printf(
                "  %-10s %-12s %4u %5u %5.2f %12.1f %12.1f %7.2fx\n",
                c.workload.c_str(), hardeningModeName(c.mode), c.k,
                c.lanes, c.laneOccupancy, c.threadedTps, c.lockstepTps,
                c.speedup);
    }

    // ---- lane-width sweep: lockstep grouping at varying widths -------
    std::vector<Row> lane_rows;
    const bool have_lockstep =
        std::find(opt.tiers.begin(), opt.tiers.end(),
                  ExecTier::Lockstep) != opt.tiers.end();
    if (have_lockstep) {
        // The tier's design point — the smallest checkpoint budget in
        // the sweep, where every trial leans on the shared stem and
        // width actually changes how much of it is amortized.
        const unsigned lane_k =
            *std::min_element(opt.ks.begin(), opt.ks.end());
        benchutil::printHeader(
            "Lane-width sweep: lockstep trials/sec by group width",
            strformat("K = %u checkpoints; occ = mean fraction of the "
                      "configured lane slots a group fetch served",
                      lane_k));
        std::printf("  %-10s %-12s %5s %5s %12s %8s\n", "workload",
                    "mode", "lanes", "occ", "trials/sec", "speedup");
        for (const std::string &workload : workloads) {
            for (const HardeningMode mode : modes) {
                CampaignConfig cfg =
                    benchutil::makeConfig(workload, mode, trials);
                cfg.threads = opt.threads;
                cfg.tier = ExecTier::Lockstep;
                cfg.checkpoints = lane_k;
                double base_tps = 0;
                bool have_counts = false;
                std::array<uint64_t, kNumOutcomes> counts{};
                for (const unsigned lanes : opt.lanes) {
                    cfg.lanes = lanes;
                    const CampaignResult r = runCampaign(cfg);
                    if (!have_counts) {
                        counts = r.counts;
                        have_counts = true;
                    } else {
                        scAssert(r.counts == counts,
                                 "campaign outcomes diverged across "
                                 "lane widths");
                    }
                    const double trial_seconds =
                        std::max(r.phase.trialsSeconds, 1e-9);
                    Row row;
                    row.workload = workload;
                    row.mode = mode;
                    row.tier = ExecTier::Lockstep;
                    row.k = lane_k;
                    row.lanes = lanes;
                    row.laneOccupancy = r.laneOccupancy;
                    row.goldenDynInstrs = r.goldenDynInstrs;
                    row.trialSeconds = trial_seconds;
                    row.trialsPerSec = trials / trial_seconds;
                    if (base_tps == 0)
                        base_tps = row.trialsPerSec;
                    row.speedup = row.trialsPerSec / base_tps;
                    lane_rows.push_back(row);
                    std::printf(
                        "  %-10s %-12s %5u %5.2f %12.1f %7.2fx\n",
                        workload.c_str(), hardeningModeName(mode),
                        lanes, row.laneOccupancy, row.trialsPerSec,
                        row.speedup);
                }
            }
        }
    }

    // ---- placement comparison: adaptive vs uniform at equal K --------
    struct PlacementCmp
    {
        std::string workload;
        HardeningMode mode;
        unsigned k = 0;           //!< requested K (same for both)
        unsigned trials = 0;      //!< head-to-head trial count
        unsigned uniformCount = 0;  //!< kept snapshots, uniform
        unsigned adaptiveCount = 0; //!< kept snapshots, adaptive
        double uniformExpFF = 0;
        double adaptiveExpFF = 0;
        double uniformMeasFF = 0;
        double adaptiveMeasFF = 0;
        /** 1 - adaptive/uniform of the measured per-trial cost. */
        double measuredReduction = 0;
    };
    std::vector<PlacementCmp> placement_cmps;
    {
        // Equal-K head-to-head: both placements choose from the same
        // candidate grid, outcomes are asserted identical, and the
        // expected and measured per-trial fast-forward cost (replay
        // instructions + restoreInstrsPerPage x restore pages) decide
        // the winner. Measured costs are deterministic for a fixed
        // (config, schedule): same seeds => same injection points for
        // both placements. The placement effect is on the order of a
        // percent, so resolving it in a sampled mean needs tens of
        // thousands of trials; the section therefore benches the
        // workloads with the *shortest* golden runs — where that many
        // fast-forwarded trials cost a second or two — instead of the
        // long-run throughput subset. The K-sweep rows above still
        // record expected/measured cost for every benched row.
        unsigned cmp_k = 0;
        for (const unsigned k : opt.ks)
            if (k == 32 || (k > 0 && cmp_k == 0))
                cmp_k = k;
        if (cmp_k == 0)
            cmp_k = 32;
        const ExecTier cmp_tier = opt.tiers.back();
        std::vector<std::string> cmp_workloads = workloads;
        if (opt.workloads.empty()) {
            struct Candidate
            {
                std::string name;
                uint64_t golden;
            };
            std::vector<Candidate> cands;
            for (const std::string &name : benchutil::benchmarkNames()) {
                CampaignConfig cfg = benchutil::makeConfig(
                    name, HardeningMode::Original, 0);
                cands.push_back(
                    {name, characterizeOnly(cfg).goldenDynInstrs});
            }
            std::sort(cands.begin(), cands.end(),
                      [](const Candidate &a, const Candidate &b) {
                          return a.golden < b.golden;
                      });
            cands.resize(std::min<std::size_t>(cands.size(), 4));
            cmp_workloads.clear();
            for (const Candidate &c : cands)
                cmp_workloads.push_back(c.name);
        }
        benchutil::printHeader(
            "Checkpoint placement: adaptive vs uniform at equal K",
            strformat("K = %u, %s tier; FF/trial = expected (model) "
                      "and measured fast-forward instruction-"
                      "equivalents per trial; outcomes asserted "
                      "identical",
                      cmp_k, execTierName(cmp_tier)));
        std::printf("  %-10s %-12s %9s %9s %9s %9s %9s %9s %7s\n",
                    "workload", "mode", "unifK", "adptK", "unifExp",
                    "adptExp", "unifMeas", "adptMeas", "reduc");
        const unsigned cmp_trials = std::max(20 * trials, 20000u);
        for (const std::string &workload : cmp_workloads) {
            for (const HardeningMode mode : modes) {
                CampaignConfig cfg =
                    benchutil::makeConfig(workload, mode, cmp_trials);
                cfg.threads = opt.threads;
                cfg.tier = cmp_tier;
                cfg.checkpoints = cmp_k;
                cfg.placement = CheckpointPlacement::Uniform;
                const CampaignResult u = runCampaign(cfg);
                cfg.placement = CheckpointPlacement::Adaptive;
                const CampaignResult a = runCampaign(cfg);
                scAssert(u.counts == a.counts,
                         "campaign outcomes diverged across placements");
                PlacementCmp c;
                c.workload = workload;
                c.mode = mode;
                c.k = cmp_k;
                c.trials = cmp_trials;
                c.uniformCount = u.snapshotCount;
                c.adaptiveCount = a.snapshotCount;
                c.uniformExpFF = u.expectedFastForwardInstrs;
                c.adaptiveExpFF = a.expectedFastForwardInstrs;
                c.uniformMeasFF = u.measuredFFInstrsPerTrial();
                c.adaptiveMeasFF = a.measuredFFInstrsPerTrial();
                c.measuredReduction =
                    c.uniformMeasFF > 0
                        ? 1.0 - c.adaptiveMeasFF / c.uniformMeasFF
                        : 0.0;
                placement_cmps.push_back(c);
                std::printf("  %-10s %-12s %9u %9u %9.0f %9.0f %9.0f "
                            "%9.0f %6.1f%%\n",
                            workload.c_str(), hardeningModeName(mode),
                            c.uniformCount, c.adaptiveCount,
                            c.uniformExpFF, c.adaptiveExpFF,
                            c.uniformMeasFF, c.adaptiveMeasFF,
                            100.0 * c.measuredReduction);
            }
        }
    }

    // ---- fault-space pruning: stratified vs blind at equal budget ----
    struct PruneRow
    {
        std::string workload;
        HardeningMode mode = HardeningMode::Original;
        uint64_t goldenDynInstrs = 0;
        double staticMaskedWeight = 0; //!< exact W of the zero-variance stratum
        uint64_t staticallyResolved = 0; //!< trials never executed (static)
        uint64_t classMembers = 0;       //!< trials covered by a class rep
        uint64_t faultClasses = 0;
        double resolvedFraction = 0; //!< (resolved + members) / trials
        double effectiveSampleSize = 0;
        double blindMoE = 0; //!< worst-case 95% margin, percentage points
        double stratMoE = 0;
    };
    std::vector<PruneRow> prune_rows;
    {
        // Every Table I workload, blind vs stratified at the same seed
        // and budget. The static resolutions are exactness-preserving,
        // so the outcome counts must be bit-identical — asserted — and
        // the whole payoff is the per-workload pruned fraction plus
        // the worst-case error bar at equal budget.
        benchutil::printHeader(
            "Fault-space pruning: stratified vs blind sampling at "
            "equal trial budget",
            strformat("%u trials per campaign; resolved = trials "
                      "statically proven Masked, members = trials "
                      "covered by an equivalence-class representative; "
                      "MoE = worst-case 95%% margin (percentage "
                      "points); outcome counts asserted identical",
                      trials));
        std::printf("  %-10s %-12s %12s %7s %9s %8s %8s %7s %8s %9s "
                    "%9s\n",
                    "workload", "mode", "goldenInstr", "W", "resolved",
                    "members", "classes", "frac", "ESS", "blindMoE",
                    "stratMoE");
        for (const std::string &name : benchutil::benchmarkNames()) {
            CampaignConfig cfg = benchutil::makeConfig(
                name, HardeningMode::Original, trials);
            cfg.threads = opt.threads;
            cfg.checkpoints = 32;
            cfg.sampling = SamplingPlan::Blind;
            const CampaignResult blind = runCampaign(cfg);
            cfg.sampling = SamplingPlan::Stratified;
            const CampaignResult strat = runCampaign(cfg);
            scAssert(blind.counts == strat.counts,
                     "stratified campaign diverged from blind");
            PruneRow r;
            r.workload = name;
            r.mode = cfg.mode;
            r.goldenDynInstrs = strat.goldenDynInstrs;
            r.staticMaskedWeight = strat.staticMaskedWeight;
            r.staticallyResolved = strat.trialsStaticallyResolved;
            r.classMembers = strat.trialsClassMembers;
            r.faultClasses = strat.faultClasses;
            r.resolvedFraction = strat.staticallyResolvedFraction();
            // JSON has no infinity: a fully-resolved campaign (no
            // active trials) records -1 instead.
            r.effectiveSampleSize =
                std::isfinite(strat.effectiveSampleSize())
                    ? strat.effectiveSampleSize()
                    : -1.0;
            r.blindMoE = blind.marginOfError95WorstCase();
            r.stratMoE = strat.marginOfError95WorstCase();
            prune_rows.push_back(r);
            std::printf("  %-10s %-12s %12llu %7.4f %9llu %8llu %8llu "
                        "%6.1f%% %8.0f %8.2fpp %8.2fpp\n",
                        name.c_str(), hardeningModeName(r.mode),
                        static_cast<unsigned long long>(
                            r.goldenDynInstrs),
                        r.staticMaskedWeight,
                        static_cast<unsigned long long>(
                            r.staticallyResolved),
                        static_cast<unsigned long long>(r.classMembers),
                        static_cast<unsigned long long>(r.faultClasses),
                        100.0 * r.resolvedFraction,
                        r.effectiveSampleSize, r.blindMoE, r.stratMoE);
        }
    }

    // ---- suite sweep: workload x mode grid, shared fault-free work ----
    std::vector<std::string> sweep_workloads = workloads;
    {
        // At least 4 workloads so the per-workload sharing shows up in
        // an end-to-end sweep (pad from the Table I list).
        for (const std::string &name : benchutil::benchmarkNames()) {
            if (sweep_workloads.size() >= 4)
                break;
            if (std::find(sweep_workloads.begin(),
                          sweep_workloads.end(),
                          name) == sweep_workloads.end())
                sweep_workloads.push_back(name);
        }
    }
    const std::vector<HardeningMode> sweep_modes = {
        HardeningMode::Original, HardeningMode::DupOnly,
        HardeningMode::DupValChks, HardeningMode::FullDup};

    SuiteConfig sweep;
    sweep.workloads = sweep_workloads;
    sweep.modes = sweep_modes;
    sweep.base = benchutil::makeConfig("", HardeningMode::Original,
                                       trials);
    sweep.base.threads = opt.threads;
    // The suite sections run on the last requested tier (threaded when
    // enabled — it is the campaign engine's production configuration);
    // outcome identity across tiers is already asserted above.
    sweep.base.tier = opt.tiers.back();
    sweep.base.placement = opt.placement;
    sweep.base.sampling = opt.sampling;
    // A grid scout: many configurations screened with a modest trial
    // count each (the paper's per-point deep campaigns come after the
    // scout picks the interesting cells). Fast-forward aggressively —
    // the snapshots are recorded once per (workload, mode) and serve
    // every seed.
    const unsigned sweep_trials = std::max(10u, trials / 8);
    sweep.base.trials = sweep_trials;
    sweep.base.checkpoints = 256;
    sweep.seeds = {sweep.base.seed, sweep.base.seed + 1,
                   sweep.base.seed + 2};

    benchutil::printHeader(
        "Suite sweep: shared fault-free work across a workload x mode "
        "x seed grid",
        strformat("%zu workloads x %zu modes x %zu seeds, %u trials "
                  "per cell",
                  sweep_workloads.size(), sweep_modes.size(),
                  sweep.seeds.size(), sweep_trials));

    const auto t_suite = std::chrono::steady_clock::now();
    const SuiteResult suite = runCampaignSuite(sweep);
    const double suite_seconds = secondsSince(t_suite);

    // The same grid as independent campaigns (today's fixed
    // runCampaign, which already merges calibration and checkpoint
    // recording into one golden pass).
    double single_golden_seconds = 0;
    const auto t_single = std::chrono::steady_clock::now();
    for (std::size_t wi = 0; wi < sweep_workloads.size(); ++wi) {
        for (std::size_t mi = 0; mi < sweep_modes.size(); ++mi) {
            for (std::size_t si = 0; si < sweep.seeds.size(); ++si) {
                CampaignConfig cfg = sweep.base;
                cfg.workload = sweep_workloads[wi];
                cfg.mode = sweep_modes[mi];
                cfg.seed = sweep.seeds[si];
                const CampaignResult r = runCampaign(cfg);
                scAssert(r.counts == suite.cell(wi, mi, si).counts,
                         "suite cell diverged from standalone campaign");
                single_golden_seconds += r.phase.goldenSeconds;
            }
        }
    }
    const double single_seconds = secondsSince(t_single);
    // The pre-suite engine also ran the instrumented golden pass twice
    // per campaign; reconstruct that flow's cost exactly: the single
    // loop plus one extra golden pass per cell.
    const double legacy_seconds =
        single_seconds + single_golden_seconds;

    std::printf("  %-34s %8.3f s\n", "suite (shared artifacts)",
                suite_seconds);
    std::printf("  %-34s %8.3f s  (%.2fx)\n",
                "per-config runCampaign loop", single_seconds,
                single_seconds / suite_seconds);
    std::printf("  %-34s %8.3f s  (%.2fx)\n",
                "pre-suite flow (2x golden runs)", legacy_seconds,
                legacy_seconds / suite_seconds);
    std::printf("  suite phases: compile %.3f, profile %.3f, baseline "
                "%.3f, golden %.3f, trials %.3f s\n",
                suite.phase.compileSeconds, suite.phase.profileSeconds,
                suite.phase.baselineSeconds, suite.phase.goldenSeconds,
                suite.phase.trialsSeconds);
    for (const SuiteWorkloadStats &ws : suite.workloadStats) {
        std::printf("  %-10s snapshot bytes: suite-shared %.1f KB vs "
                    "per-cell sum %.1f KB (%.2fx)\n",
                    ws.workload.c_str(),
                    static_cast<double>(ws.suiteSnapshotBytes) / 1024.0,
                    static_cast<double>(ws.cellSnapshotBytesSum) /
                        1024.0,
                    ws.suiteSnapshotBytes
                        ? static_cast<double>(ws.cellSnapshotBytesSum) /
                              static_cast<double>(ws.suiteSnapshotBytes)
                        : 0.0);
    }

    // ---- suite scaling: scheduler width sweep over the same grid ------
    const unsigned host_threads = hardwareThreads();
    benchutil::printHeader(
        "Suite scaling: work-stealing scheduler width on the same "
        "grid",
        strformat("wall seconds end to end; cpu = summed task "
                  "seconds; host has %u hardware thread%s",
                  host_threads, host_threads == 1 ? "" : "s"));

    struct ScaleRow
    {
        unsigned threads = 0;
        double wallSeconds = 0;
        double cpuSeconds = 0;
        double speedupVs1 = 1.0;
    };
    std::vector<ScaleRow> scale_rows;
    std::printf("  %8s %10s %10s %9s %9s\n", "threads", "wall-sec",
                "cpu-sec", "speedup", "cpu/wall");
    double scale_base_wall = 0;
    for (const unsigned t : opt.suiteThreads) {
        SuiteConfig cfg = sweep;
        cfg.base.threads = t;
        const SuiteResult r = runCampaignSuite(cfg);
        scAssert(r.cells.size() == suite.cells.size(),
                 "scaling sweep grid size changed");
        for (std::size_t i = 0; i < r.cells.size(); ++i)
            scAssert(r.cells[i].counts == suite.cells[i].counts,
                     "suite outcomes diverged across scheduler widths");
        ScaleRow row;
        row.threads = t;
        row.wallSeconds = r.wallSeconds;
        row.cpuSeconds = r.cpuSeconds;
        if (scale_base_wall == 0)
            scale_base_wall = r.wallSeconds;
        row.speedupVs1 = scale_base_wall / r.wallSeconds;
        scale_rows.push_back(row);
        std::printf("  %8u %10.3f %10.3f %8.2fx %9.2f\n", row.threads,
                    row.wallSeconds, row.cpuSeconds, row.speedupVs1,
                    row.wallSeconds > 0
                        ? row.cpuSeconds / row.wallSeconds
                        : 0.0);
    }

    // ---- multi-process trial sharding ---------------------------------
    struct ShardRow
    {
        unsigned shards = 0; //!< 0 = in-process trial phase
        double trialSeconds = 0;
        double trialsPerSec = 0;
        double speedupVsInProcess = 1.0;
    };
    std::vector<ShardRow> shard_rows;
    {
        CampaignConfig cfg = benchutil::makeConfig(
            workloads.front(), HardeningMode::DupValChks, trials);
        cfg.threads = opt.threads;
        cfg.tier = opt.tiers.back();
        cfg.checkpoints = 32;
        benchutil::printHeader(
            "Multi-process trial sharding: fork-and-merge workers "
            "over one serialized bundle",
            strformat("%u trials, %s/dupvalchks; shards=0 is the "
                      "in-process phase; workers deserialize the "
                      "bundle, so shard rows pay serialization + fork "
                      "overhead — on this %u-thread host a parallel "
                      "win needs spare cores, a 1-core container "
                      "shows the overhead honestly",
                      trials, workloads.front().c_str(),
                      host_threads));
        std::printf("  %8s %10s %12s %9s\n", "shards", "trial-sec",
                    "trials/sec", "speedup");
        CampaignResult shard_base;
        for (const unsigned s : opt.shardCounts) {
            CampaignConfig scfg = cfg;
            scfg.shards = s;
            const CampaignResult r = runCampaign(scfg);
            if (shard_rows.empty())
                shard_base = r;
            scAssert(r.counts == shard_base.counts &&
                         r.usdcLargeChange == shard_base.usdcLargeChange,
                     "sharded outcomes diverged from the first row");
            ShardRow row;
            row.shards = s;
            row.trialSeconds = r.phase.trialsSeconds;
            row.trialsPerSec = r.trialsPerSec();
            row.speedupVsInProcess =
                shard_rows.empty()
                    ? 1.0
                    : shard_rows.front().trialSeconds / row.trialSeconds;
            shard_rows.push_back(row);
            std::printf("  %8u %10.3f %12.1f %8.2fx\n", row.shards,
                        row.trialSeconds, row.trialsPerSec,
                        row.speedupVsInProcess);
        }
    }

    // ---- artifact cache: cold vs warm ---------------------------------
    struct CacheRun
    {
        double wallSeconds = 0;
        double compileSeconds = 0;
        double profileSeconds = 0;
        double baselineSeconds = 0;
        double goldenSeconds = 0;
        double cacheLoadSeconds = 0;
        unsigned servedCells = 0;
    };
    CacheRun cache_cold, cache_warm;
    {
        std::string cache_dir = (std::filesystem::temp_directory_path() /
                                 "softcheck-bench-cache-XXXXXX")
                                    .string();
        scAssert(::mkdtemp(cache_dir.data()) != nullptr,
                 "cannot create bench cache directory");
        SuiteConfig ccfg = sweep;
        ccfg.base.artifactCacheDir = cache_dir;
        benchutil::printHeader(
            "Artifact cache: the same suite grid cold vs. warm",
            strformat("%zu workloads x %zu modes x %zu seeds, %u "
                      "trials per cell; warm requests skip compile / "
                      "profile / baseline / golden and pay only the "
                      "bundle load + trial phase",
                      sweep_workloads.size(), sweep_modes.size(),
                      sweep.seeds.size(), sweep_trials));
        auto run_once = [&](const char *label) {
            const auto t0 = std::chrono::steady_clock::now();
            const SuiteResult r = runCampaignSuite(ccfg);
            CacheRun c;
            c.wallSeconds = secondsSince(t0);
            c.compileSeconds = r.phase.compileSeconds;
            c.profileSeconds = r.phase.profileSeconds;
            c.baselineSeconds = r.phase.baselineSeconds;
            c.goldenSeconds = r.phase.goldenSeconds;
            c.cacheLoadSeconds = r.phase.cacheLoadSeconds;
            for (std::size_t i = 0; i < r.cells.size(); ++i) {
                scAssert(r.cells[i].counts == suite.cells[i].counts,
                         "cached suite diverged from uncached");
                if (r.cells[i].servedFromCache)
                    ++c.servedCells;
            }
            std::printf("  %-6s wall %7.3f s  fault-free phases "
                        "%7.3f s  cacheLoad %6.3f s  cells from "
                        "cache %u/%zu\n",
                        label, c.wallSeconds,
                        c.compileSeconds + c.profileSeconds +
                            c.baselineSeconds + c.goldenSeconds,
                        c.cacheLoadSeconds, c.servedCells,
                        r.cells.size());
            return c;
        };
        cache_cold = run_once("cold");
        cache_warm = run_once("warm");
        scAssert(cache_cold.servedCells == 0,
                 "cold run unexpectedly hit the cache");
        scAssert(cache_warm.servedCells == sweep_workloads.size() *
                                               sweep_modes.size() *
                                               sweep.seeds.size(),
                 "warm run missed the cache");
        scAssert(cache_warm.compileSeconds == 0 &&
                     cache_warm.goldenSeconds == 0,
                 "warm run recomputed a cached phase");
        std::error_code ec;
        std::filesystem::remove_all(cache_dir, ec);
    }

    const char *json_path = std::getenv("SOFTCHECK_BENCH_JSON");
    if (!json_path)
        json_path = "BENCH_campaign.json";
    FILE *f = std::fopen(json_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"campaign_throughput\",\n"
                 "  \"trials\": %u,\n  \"results\": [\n",
                 trials);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"workload\": \"%s\", \"mode\": \"%s\", "
            "\"tier\": \"%s\", "
            "\"goldenDynInstrs\": %llu, \"checkpoints\": %u, "
            "\"lanes\": %u, \"laneOccupancy\": %.4f, "
            "\"trialSeconds\": %.6f, \"trialsPerSec\": %.2f, "
            "\"speedupVsReplay\": %.3f, \"snapshotBytes\": %llu, "
            "\"snapshotBytesFullCopy\": %llu, "
            "\"placement\": \"%s\", "
            "\"expectedFFInstrsPerTrial\": %.2f, "
            "\"measuredFFInstrsPerTrial\": %.2f, "
            "\"compileSeconds\": %.6f, \"profileSeconds\": %.6f, "
            "\"baselineSeconds\": %.6f, \"goldenSeconds\": %.6f}%s\n",
            r.workload.c_str(), hardeningModeName(r.mode),
            execTierName(r.tier),
            static_cast<unsigned long long>(r.goldenDynInstrs), r.k,
            r.lanes, r.laneOccupancy,
            r.trialSeconds, r.trialsPerSec, r.speedup,
            static_cast<unsigned long long>(r.snapshotBytes),
            static_cast<unsigned long long>(r.snapshotBytesFullCopy),
            r.k ? placementName(r.placement) : "none",
            r.expectedFF, r.measuredFF,
            r.phase.compileSeconds, r.phase.profileSeconds,
            r.phase.baselineSeconds, r.phase.goldenSeconds,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");

    if (!tier_cmps.empty()) {
        double geo = 0;
        for (const TierCmp &c : tier_cmps)
            geo += std::log(c.speedup);
        geo = std::exp(geo / static_cast<double>(tier_cmps.size()));
        std::fprintf(f, "  \"tierSpeedup\": {\n"
                        "    \"geomean\": %.3f,\n"
                        "    \"rows\": [\n",
                     geo);
        for (std::size_t i = 0; i < tier_cmps.size(); ++i) {
            const TierCmp &c = tier_cmps[i];
            std::fprintf(
                f,
                "      {\"workload\": \"%s\", \"mode\": \"%s\", "
                "\"checkpoints\": %u, \"interpTrialsPerSec\": %.2f, "
                "\"threadedTrialsPerSec\": %.2f, \"speedup\": %.3f}%s\n",
                c.workload.c_str(), hardeningModeName(c.mode), c.k,
                c.interpTps, c.threadedTps, c.speedup,
                i + 1 < tier_cmps.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  },\n");
    }

    if (!lockstep_cmps.empty()) {
        // The headline geomean is taken at the tier's design point —
        // the smallest checkpoint budget in the sweep, where trials
        // have no dense snapshots to rewind to and the shared stem
        // replay is the only amortization available. Rows at every
        // budget are recorded below, including the dense-checkpoint
        // ones where the tier's guard delegates to the scalar path;
        // geomeanAllBudgets aggregates all of them.
        unsigned min_k = lockstep_cmps.front().k;
        for (const LockstepCmp &c : lockstep_cmps)
            min_k = std::min(min_k, c.k);
        double geo = 0, geo_all = 0;
        unsigned n_lo = 0;
        for (const LockstepCmp &c : lockstep_cmps) {
            geo_all += std::log(c.speedup);
            if (c.k == min_k) {
                geo += std::log(c.speedup);
                ++n_lo;
            }
        }
        geo = std::exp(geo / static_cast<double>(n_lo));
        geo_all =
            std::exp(geo_all / static_cast<double>(lockstep_cmps.size()));
        std::fprintf(f, "  \"lockstepSpeedup\": {\n"
                        "    \"geomean\": %.3f,\n"
                        "    \"geomeanCheckpoints\": %u,\n"
                        "    \"geomeanAllBudgets\": %.3f,\n"
                        "    \"lanes\": %u,\n"
                        "    \"rows\": [\n",
                     geo, min_k, geo_all, lockstep_cmps.front().lanes);
        for (std::size_t i = 0; i < lockstep_cmps.size(); ++i) {
            const LockstepCmp &c = lockstep_cmps[i];
            std::fprintf(
                f,
                "      {\"workload\": \"%s\", \"mode\": \"%s\", "
                "\"checkpoints\": %u, \"lanes\": %u, "
                "\"laneOccupancy\": %.4f, "
                "\"threadedTrialsPerSec\": %.2f, "
                "\"lockstepTrialsPerSec\": %.2f, \"speedup\": %.3f}%s\n",
                c.workload.c_str(), hardeningModeName(c.mode), c.k,
                c.lanes, c.laneOccupancy, c.threadedTps, c.lockstepTps,
                c.speedup, i + 1 < lockstep_cmps.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  },\n");
    }

    if (!lane_rows.empty()) {
        std::fprintf(f, "  \"laneSweep\": [\n");
        for (std::size_t i = 0; i < lane_rows.size(); ++i) {
            const Row &r = lane_rows[i];
            std::fprintf(
                f,
                "    {\"workload\": \"%s\", \"mode\": \"%s\", "
                "\"checkpoints\": %u, \"lanes\": %u, "
                "\"laneOccupancy\": %.4f, \"trialsPerSec\": %.2f, "
                "\"speedupVsFirstWidth\": %.3f}%s\n",
                r.workload.c_str(), hardeningModeName(r.mode), r.k,
                r.lanes, r.laneOccupancy, r.trialsPerSec, r.speedup,
                i + 1 < lane_rows.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
    }

    if (!placement_cmps.empty()) {
        // A workload "improves" when adaptive's measured per-trial
        // cost, summed over the benched modes, undercuts uniform's.
        std::vector<std::string> improved;
        {
            std::vector<std::string> names;
            for (const PlacementCmp &c : placement_cmps)
                if (std::find(names.begin(), names.end(), c.workload) ==
                    names.end())
                    names.push_back(c.workload);
            for (const std::string &w : names) {
                double unif = 0, adpt = 0;
                for (const PlacementCmp &c : placement_cmps) {
                    if (c.workload != w)
                        continue;
                    unif += c.uniformMeasFF;
                    adpt += c.adaptiveMeasFF;
                }
                if (adpt < unif)
                    improved.push_back(w);
            }
        }
        std::fprintf(f,
                     "  \"placementComparison\": {\n"
                     "    \"checkpoints\": %u,\n"
                     "    \"trials\": %u,\n"
                     "    \"workloadsImproved\": %zu,\n"
                     "    \"rows\": [\n",
                     placement_cmps.front().k,
                     placement_cmps.front().trials, improved.size());
        for (std::size_t i = 0; i < placement_cmps.size(); ++i) {
            const PlacementCmp &c = placement_cmps[i];
            std::fprintf(
                f,
                "      {\"workload\": \"%s\", \"mode\": \"%s\", "
                "\"checkpoints\": %u, \"uniformSnapshots\": %u, "
                "\"adaptiveSnapshots\": %u, "
                "\"uniformExpectedFF\": %.2f, "
                "\"adaptiveExpectedFF\": %.2f, "
                "\"uniformMeasuredFF\": %.2f, "
                "\"adaptiveMeasuredFF\": %.2f, "
                "\"measuredReduction\": %.4f}%s\n",
                c.workload.c_str(), hardeningModeName(c.mode), c.k,
                c.uniformCount, c.adaptiveCount, c.uniformExpFF,
                c.adaptiveExpFF, c.uniformMeasFF, c.adaptiveMeasFF,
                c.measuredReduction,
                i + 1 < placement_cmps.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  },\n");
    }

    if (!prune_rows.empty()) {
        std::size_t over20 = 0;
        for (const PruneRow &r : prune_rows)
            if (r.resolvedFraction >= 0.20)
                ++over20;
        std::fprintf(f,
                     "  \"faultSpacePruning\": {\n"
                     "    \"trials\": %u,\n"
                     "    \"workloadsOver20pctResolved\": %zu,\n"
                     "    \"rows\": [\n",
                     trials, over20);
        for (std::size_t i = 0; i < prune_rows.size(); ++i) {
            const PruneRow &r = prune_rows[i];
            std::fprintf(
                f,
                "      {\"workload\": \"%s\", \"mode\": \"%s\", "
                "\"goldenDynInstrs\": %llu, "
                "\"staticMaskedWeight\": %.6f, "
                "\"trialsStaticallyResolved\": %llu, "
                "\"trialsClassMembers\": %llu, "
                "\"faultClasses\": %llu, "
                "\"staticallyResolvedFraction\": %.4f, "
                "\"effectiveSampleSize\": %.1f, "
                "\"blindMoE95Worst\": %.4f, "
                "\"stratifiedMoE95Worst\": %.4f}%s\n",
                r.workload.c_str(), hardeningModeName(r.mode),
                static_cast<unsigned long long>(r.goldenDynInstrs),
                r.staticMaskedWeight,
                static_cast<unsigned long long>(r.staticallyResolved),
                static_cast<unsigned long long>(r.classMembers),
                static_cast<unsigned long long>(r.faultClasses),
                r.resolvedFraction, r.effectiveSampleSize, r.blindMoE,
                r.stratMoE, i + 1 < prune_rows.size() ? "," : "");
        }
        std::fprintf(f, "    ]\n  },\n");
    }

    uint64_t sweep_total_trials = 0;
    for (const CampaignResult &c : suite.cells)
        sweep_total_trials += c.totalTrials();
    std::fprintf(
        f,
        "  \"suite\": {\n"
        "    \"workloads\": %zu, \"modes\": %zu, \"seeds\": %zu, "
        "\"trialsPerCell\": %u, \"tier\": \"%s\",\n"
        "    \"suiteWallSeconds\": %.6f, \"suiteCpuSeconds\": %.6f, "
        "\"singleWallSeconds\": %.6f, "
        "\"legacySingleSeconds\": %.6f,\n"
        "    \"speedupVsSingle\": %.3f, \"speedupVsLegacy\": %.3f,\n"
        "    \"compileSeconds\": %.6f, \"profileSeconds\": %.6f, "
        "\"baselineSeconds\": %.6f, \"goldenSeconds\": %.6f, "
        "\"trialsSeconds\": %.6f, \"trialsPerSec\": %.2f,\n"
        "    \"perWorkloadSnapshots\": [\n",
        sweep_workloads.size(), sweep_modes.size(),
        suite.seeds.size(), sweep_trials,
        execTierName(sweep.base.tier),
        suite_seconds, suite.cpuSeconds, single_seconds, legacy_seconds,
        single_seconds / suite_seconds, legacy_seconds / suite_seconds,
        suite.phase.compileSeconds, suite.phase.profileSeconds,
        suite.phase.baselineSeconds, suite.phase.goldenSeconds,
        suite.phase.trialsSeconds,
        suite.phase.trialsSeconds > 0
            ? static_cast<double>(sweep_total_trials) /
                  suite.phase.trialsSeconds
            : 0.0);
    for (std::size_t i = 0; i < suite.workloadStats.size(); ++i) {
        const SuiteWorkloadStats &ws = suite.workloadStats[i];
        std::fprintf(
            f,
            "      {\"workload\": \"%s\", \"suiteSnapshotBytes\": "
            "%llu, \"cellSnapshotBytesSum\": %llu}%s\n",
            ws.workload.c_str(),
            static_cast<unsigned long long>(ws.suiteSnapshotBytes),
            static_cast<unsigned long long>(ws.cellSnapshotBytesSum),
            i + 1 < suite.workloadStats.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  },\n");

    std::fprintf(f,
                 "  \"suiteScaling\": {\n"
                 "    \"hostHardwareThreads\": %u,\n"
                 "    \"grid\": \"%zux%zux%zu\", \"trialsPerCell\": "
                 "%u,\n"
                 "    \"rows\": [\n",
                 host_threads, sweep_workloads.size(),
                 sweep_modes.size(), suite.seeds.size(), sweep_trials);
    for (std::size_t i = 0; i < scale_rows.size(); ++i) {
        const ScaleRow &r = scale_rows[i];
        std::fprintf(f,
                     "      {\"threads\": %u, \"wallSeconds\": %.6f, "
                     "\"cpuSeconds\": %.6f, \"speedupVs1\": %.3f}%s\n",
                     r.threads, r.wallSeconds, r.cpuSeconds,
                     r.speedupVs1,
                     i + 1 < scale_rows.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  },\n");

    // Shard rows are bit-identical by assertion above; on a 1-core
    // host the sweep measures pure dispatch overhead, which is the
    // honest number for this container (see hostHardwareThreads).
    std::fprintf(f,
                 "  \"shardSweep\": {\n"
                 "    \"workload\": \"%s\", \"trials\": %u, "
                 "\"hostHardwareThreads\": %u,\n"
                 "    \"rows\": [\n",
                 workloads.front().c_str(), trials, host_threads);
    for (std::size_t i = 0; i < shard_rows.size(); ++i) {
        const ShardRow &r = shard_rows[i];
        std::fprintf(f,
                     "      {\"shards\": %u, \"trialSeconds\": %.6f, "
                     "\"trialsPerSec\": %.2f, "
                     "\"speedupVsInProcess\": %.3f}%s\n",
                     r.shards, r.trialSeconds, r.trialsPerSec,
                     r.speedupVsInProcess,
                     i + 1 < shard_rows.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  },\n");

    std::fprintf(
        f,
        "  \"artifactCache\": {\n"
        "    \"grid\": \"%zux%zux%zu\", \"trialsPerCell\": %u,\n"
        "    \"cold\": {\"wallSeconds\": %.6f, \"faultFreeSeconds\": "
        "%.6f, \"cacheLoadSeconds\": %.6f, \"servedCells\": %u},\n"
        "    \"warm\": {\"wallSeconds\": %.6f, \"faultFreeSeconds\": "
        "%.6f, \"cacheLoadSeconds\": %.6f, \"servedCells\": %u},\n"
        "    \"warmSpeedup\": %.3f\n  }\n}\n",
        sweep_workloads.size(), sweep_modes.size(), suite.seeds.size(),
        sweep_trials, cache_cold.wallSeconds,
        cache_cold.compileSeconds + cache_cold.profileSeconds +
            cache_cold.baselineSeconds + cache_cold.goldenSeconds,
        cache_cold.cacheLoadSeconds, cache_cold.servedCells,
        cache_warm.wallSeconds,
        cache_warm.compileSeconds + cache_warm.profileSeconds +
            cache_warm.baselineSeconds + cache_warm.goldenSeconds,
        cache_warm.cacheLoadSeconds, cache_warm.servedCells,
        cache_warm.wallSeconds > 0
            ? cache_cold.wallSeconds / cache_warm.wallSeconds
            : 0.0);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
    return 0;
}
