/**
 * @file
 * Campaign throughput: trials/sec with checkpointed trial
 * fast-forwarding (CampaignConfig::checkpoints = K) versus full-replay
 * trials (K = 0), on the workloads with the longest golden runs —
 * where redundant prefix re-execution dominates an SFI campaign.
 *
 * Writes machine-readable results to BENCH_campaign.json (override the
 * path with SOFTCHECK_BENCH_JSON) so the perf trajectory is trackable
 * across PRs. Outcome counts are asserted identical across K as a
 * determinism sanity check.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.hh"
#include "support/error.hh"

namespace
{

using namespace softcheck;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct Row
{
    std::string workload;
    HardeningMode mode;
    unsigned k = 0;
    uint64_t goldenDynInstrs = 0;
    double trialSeconds = 0;
    double trialsPerSec = 0;
    double speedup = 1.0; //!< vs the K=0 row of the same campaign
};

} // namespace

int
main()
{
    const unsigned trials = benchutil::trialsPerBenchmark(200);

    benchutil::printHeader(
        "Campaign throughput: checkpointed trial fast-forwarding",
        strformat("%u trials per campaign; K = snapshots of the "
                  "fault-free run (0 = replay every trial from "
                  "instruction 0)",
                  trials));

    // Rank workloads by golden-run length and bench the three longest:
    // prefix replay cost scales with goldenDynInstrs, so these dominate
    // real campaign wall time.
    struct Candidate
    {
        std::string name;
        uint64_t golden;
    };
    std::vector<Candidate> cands;
    for (const std::string &name : benchutil::benchmarkNames()) {
        CampaignConfig cfg =
            benchutil::makeConfig(name, HardeningMode::Original, 0);
        cands.push_back({name, characterizeOnly(cfg).goldenDynInstrs});
    }
    std::sort(cands.begin(), cands.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.golden > b.golden;
              });
    cands.resize(std::min<std::size_t>(cands.size(), 3));

    const HardeningMode modes[] = {HardeningMode::Original,
                                   HardeningMode::DupValChks};
    const unsigned ks[] = {0, 8, 32};

    std::vector<Row> rows;
    benchutil::printRule();
    std::printf("%-10s %-12s %12s %4s %10s %12s %8s\n", "workload",
                "mode", "goldenInstr", "K", "trial-sec", "trials/sec",
                "speedup");
    benchutil::printRule();

    for (const Candidate &cand : cands) {
        for (const HardeningMode mode : modes) {
            CampaignConfig cfg =
                benchutil::makeConfig(cand.name, mode, trials);

            // Fixed campaign overhead (compile, profile, golden run,
            // calibration) measured separately so trials/sec reflects
            // the injection phase the checkpoints accelerate.
            const auto t_char = std::chrono::steady_clock::now();
            const CampaignResult base = characterizeOnly(cfg);
            const double char_seconds = secondsSince(t_char);

            double k0_tps = 0;
            std::array<uint64_t, kNumOutcomes> k0_counts{};
            for (const unsigned k : ks) {
                cfg.checkpoints = k;
                const auto t0 = std::chrono::steady_clock::now();
                const CampaignResult r = runCampaign(cfg);
                const double total_seconds = secondsSince(t0);
                const double trial_seconds =
                    std::max(total_seconds - char_seconds, 1e-9);

                if (k == 0)
                    k0_counts = r.counts;
                else
                    scAssert(r.counts == k0_counts,
                             "checkpointed campaign diverged from "
                             "full-replay outcomes");

                Row row;
                row.workload = cand.name;
                row.mode = mode;
                row.k = k;
                row.goldenDynInstrs = r.goldenDynInstrs;
                row.trialSeconds = trial_seconds;
                row.trialsPerSec = trials / trial_seconds;
                if (k == 0)
                    k0_tps = row.trialsPerSec;
                row.speedup = row.trialsPerSec / k0_tps;
                rows.push_back(row);

                std::printf("%-10s %-12s %12llu %4u %10.3f %12.1f %7.2fx\n",
                            row.workload.c_str(),
                            hardeningModeName(mode),
                            static_cast<unsigned long long>(
                                row.goldenDynInstrs),
                            row.k, row.trialSeconds, row.trialsPerSec,
                            row.speedup);
            }
        }
    }
    benchutil::printRule();

    const char *json_path = std::getenv("SOFTCHECK_BENCH_JSON");
    if (!json_path)
        json_path = "BENCH_campaign.json";
    FILE *f = std::fopen(json_path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"campaign_throughput\",\n"
                 "  \"trials\": %u,\n  \"results\": [\n",
                 trials);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"workload\": \"%s\", \"mode\": \"%s\", "
            "\"goldenDynInstrs\": %llu, \"checkpoints\": %u, "
            "\"trialSeconds\": %.6f, \"trialsPerSec\": %.2f, "
            "\"speedupVsReplay\": %.3f}%s\n",
            r.workload.c_str(), hardeningModeName(r.mode),
            static_cast<unsigned long long>(r.goldenDynInstrs), r.k,
            r.trialSeconds, r.trialsPerSec, r.speedup,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
    return 0;
}
