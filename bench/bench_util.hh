/**
 * @file
 * Shared plumbing for the figure-reproduction benches: trial-count
 * scaling (SOFTCHECK_TRIALS env var; the paper uses 1000 per benchmark,
 * the default here is smaller so the whole suite runs in minutes),
 * campaign helpers, and table formatting.
 */

#ifndef SOFTCHECK_BENCH_BENCH_UTIL_HH
#define SOFTCHECK_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault/campaign.hh"
#include "fault/suite.hh"
#include "support/stats.hh"
#include "support/text.hh"
#include "workloads/workload.hh"

namespace softcheck::benchutil
{

/** Injection trials per benchmark (paper: 1000). Override with
 * SOFTCHECK_TRIALS. */
inline unsigned
trialsPerBenchmark(unsigned dflt = 250)
{
    if (const char *env = std::getenv("SOFTCHECK_TRIALS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return dflt;
}

/** Execution tier for bench campaigns. Override with SOFTCHECK_TIER
 * ("interp", "threaded", or "lockstep") — used by CI to drive the
 * figure benches through the faster tiers without recompiling;
 * results are bit-identical either way. */
inline ExecTier
benchTier(ExecTier dflt = ExecTier::Interp)
{
    if (const char *env = std::getenv("SOFTCHECK_TIER")) {
        const std::string v(env);
        if (v == "threaded")
            return ExecTier::Threaded;
        if (v == "lockstep")
            return ExecTier::Lockstep;
        if (v == "interp")
            return ExecTier::Interp;
        std::fprintf(stderr, "SOFTCHECK_TIER: unknown tier '%s'\n",
                     env);
        std::exit(2);
    }
    return dflt;
}

/** Lane-group width for lockstep-tier bench campaigns. Override with
 * SOFTCHECK_LANES; CI's lanes=1 build pins the degenerate width that
 * must match the scalar threaded tier exactly. */
inline unsigned
benchLanes(unsigned dflt = 8)
{
    if (const char *env = std::getenv("SOFTCHECK_LANES")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return dflt;
}

/** Sampling plan for bench campaigns. Override with
 * SOFTCHECK_SAMPLING=blind|stratified; CI's stratified-equivalence
 * job pins each in turn and diffs the figure outputs — outcome counts
 * are bit-identical by construction, stratified just adds the static
 * resolutions and shrinks the error bars. */
inline SamplingPlan
benchSampling(SamplingPlan dflt = SamplingPlan::Blind)
{
    if (const char *env = std::getenv("SOFTCHECK_SAMPLING")) {
        const std::string v(env);
        if (v == "blind")
            return SamplingPlan::Blind;
        if (v == "stratified")
            return SamplingPlan::Stratified;
        std::fprintf(stderr, "SOFTCHECK_SAMPLING: unknown plan '%s'\n",
                     env);
        std::exit(2);
    }
    return dflt;
}

/** Checkpoint placement for bench campaigns. Override with
 * SOFTCHECK_PLACEMENT=uniform|adaptive; CI's placement-equivalence
 * job pins each in turn and diffs the outcome counts. */
inline CheckpointPlacement
benchPlacement(CheckpointPlacement dflt = CheckpointPlacement::Adaptive)
{
    if (const char *env = std::getenv("SOFTCHECK_PLACEMENT")) {
        const std::string v(env);
        if (v == "uniform")
            return CheckpointPlacement::Uniform;
        if (v == "adaptive")
            return CheckpointPlacement::Adaptive;
    }
    return dflt;
}

inline CampaignConfig
makeConfig(const std::string &workload, HardeningMode mode,
           unsigned trials)
{
    CampaignConfig cfg;
    cfg.workload = workload;
    cfg.mode = mode;
    cfg.trials = trials;
    cfg.seed = 0xC0FFEE;
    cfg.tier = benchTier();
    cfg.lanes = benchLanes();
    cfg.placement = benchPlacement();
    cfg.sampling = benchSampling();
    return cfg;
}

/**
 * Benchmark names in Table I order. SOFTCHECK_WORKLOADS (a
 * comma-separated list) restricts the set — used by CI smoke runs to
 * keep the figure benches to a couple of workloads.
 */
inline std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    if (const char *env = std::getenv("SOFTCHECK_WORKLOADS")) {
        std::string cur;
        for (const char *p = env;; ++p) {
            if (*p == ',' || *p == '\0') {
                if (!cur.empty())
                    names.push_back(getWorkload(cur).name);
                cur.clear();
                if (*p == '\0')
                    break;
            } else if (*p != ' ') {
                cur += *p;
            }
        }
        if (!names.empty())
            return names;
    }
    for (const Workload *w : allWorkloads())
        names.push_back(w->name);
    return names;
}

/** Suite over @p workloads x @p modes with the benches' common knobs. */
inline SuiteConfig
makeSuite(std::vector<std::string> workloads,
          std::vector<HardeningMode> modes, unsigned trials)
{
    SuiteConfig s;
    s.workloads = std::move(workloads);
    s.modes = std::move(modes);
    s.base = makeConfig("", HardeningMode::Original, trials);
    return s;
}

/** One-line per-phase wall-clock summary of a finished suite. */
inline void
printSuiteTiming(const SuiteResult &s)
{
    uint64_t trials = 0;
    for (const CampaignResult &c : s.cells)
        trials += c.totalTrials();
    std::printf(
        "\nsuite wall %.2fs (compile %.2fs, profile %.2fs, baseline "
        "%.2fs, golden %.2fs, trials %.2fs; %.0f trials/sec)\n",
        s.wallSeconds, s.phase.compileSeconds, s.phase.profileSeconds,
        s.phase.baselineSeconds, s.phase.goldenSeconds,
        s.phase.trialsSeconds,
        s.phase.trialsSeconds > 0
            ? static_cast<double>(trials) / s.phase.trialsSeconds
            : 0.0);
}

inline void
printHeader(const std::string &title, const std::string &subtitle = {})
{
    std::printf("\n=== %s ===\n", title.c_str());
    if (!subtitle.empty())
        std::printf("%s\n", subtitle.c_str());
}

inline void
printRule(unsigned width = 100)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace softcheck::benchutil

#endif // SOFTCHECK_BENCH_BENCH_UTIL_HH
