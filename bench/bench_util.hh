/**
 * @file
 * Shared plumbing for the figure-reproduction benches: trial-count
 * scaling (SOFTCHECK_TRIALS env var; the paper uses 1000 per benchmark,
 * the default here is smaller so the whole suite runs in minutes),
 * campaign helpers, and table formatting.
 */

#ifndef SOFTCHECK_BENCH_BENCH_UTIL_HH
#define SOFTCHECK_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault/campaign.hh"
#include "support/stats.hh"
#include "support/text.hh"
#include "workloads/workload.hh"

namespace softcheck::benchutil
{

/** Injection trials per benchmark (paper: 1000). Override with
 * SOFTCHECK_TRIALS. */
inline unsigned
trialsPerBenchmark(unsigned dflt = 250)
{
    if (const char *env = std::getenv("SOFTCHECK_TRIALS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return dflt;
}

inline CampaignConfig
makeConfig(const std::string &workload, HardeningMode mode,
           unsigned trials)
{
    CampaignConfig cfg;
    cfg.workload = workload;
    cfg.mode = mode;
    cfg.trials = trials;
    cfg.seed = 0xC0FFEE;
    return cfg;
}

/** All benchmark names in Table I order. */
inline std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const Workload *w : allWorkloads())
        names.push_back(w->name);
    return names;
}

inline void
printHeader(const std::string &title, const std::string &subtitle = {})
{
    std::printf("\n=== %s ===\n", title.c_str());
    if (!subtitle.empty())
        std::printf("%s\n", subtitle.c_str());
}

inline void
printRule(unsigned width = 100)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace softcheck::benchutil

#endif // SOFTCHECK_BENCH_BENCH_UTIL_HH
