/**
 * @file
 * Reproduces the paper's Figure 12: runtime overhead of Dup only and
 * Dup + val chks per benchmark (paper means: 7.6% and 19.5%), plus the
 * full-duplication comparison point from the text (57%). Runtime is
 * simulated cycles from the Table II cost model; the table's
 * parameters are printed for reference.
 */

#include "bench_util.hh"
#include "interp/cost_model.hh"

using namespace softcheck;
using namespace softcheck::benchutil;

int
main()
{
    printHeader("Table II: simulated core configuration");
    std::printf("%s\n", CostConfig{}.str().c_str());

    printHeader("Figure 12: performance overhead (fault-free runs, "
                "test inputs)",
                "overhead = hardened cycles / baseline cycles - 1");
    std::printf("%-10s %12s %12s %12s %12s\n", "benchmark",
                "base cycles", "Dup only", "Dup+val chks", "full dup");
    printRule();

    // Fault-free characterization only: trials = 0.
    const auto suite = runCampaignSuite(makeSuite(
        benchmarkNames(),
        {HardeningMode::DupOnly, HardeningMode::DupValChks,
         HardeningMode::FullDup},
        0));

    std::vector<double> dup, dup_chk, full;
    for (std::size_t wi = 0; wi < suite.config.workloads.size(); ++wi) {
        const CampaignResult &r_dup = suite.cell(wi, 0);
        const CampaignResult &r_chk = suite.cell(wi, 1);
        const CampaignResult &r_full = suite.cell(wi, 2);
        std::printf("%-10s %12llu %11.1f%% %11.1f%% %11.1f%%\n",
                    suite.config.workloads[wi].c_str(),
                    static_cast<unsigned long long>(
                        r_dup.baselineCycles),
                    100.0 * r_dup.overhead(), 100.0 * r_chk.overhead(),
                    100.0 * r_full.overhead());
        dup.push_back(100.0 * r_dup.overhead());
        dup_chk.push_back(100.0 * r_chk.overhead());
        full.push_back(100.0 * r_full.overhead());
    }
    printRule();
    std::printf("%-10s %12s %11.1f%% %11.1f%% %11.1f%%\n", "MEAN", "",
                mean(dup), mean(dup_chk), mean(full));
    std::printf("(paper means: Dup only 7.6%%, Dup+val chks 19.5%%, "
                "full duplication 57%%)\n");
    std::printf("\nresult shape: Dup only < Dup+val chks << full dup: "
                "%s\n",
                (mean(dup) < mean(dup_chk) && mean(dup_chk) < mean(full))
                    ? "HOLDS"
                    : "VIOLATED");
    printSuiteTiming(suite);

    printHeader("Vacuous-check elimination (Dup + val chks)",
                "checks whose pass set provably contains everything a "
                "corrupted operand can produce are elided: same "
                "instruction stream and cycles (campaigns stay "
                "bit-identical), fewer comparisons evaluated");
    std::printf("%-10s %8s %8s %12s %12s %8s\n", "benchmark", "checks",
                "vacuous", "evals", "evals-elided", "saved");
    printRule();
    for (std::size_t wi = 0; wi < suite.config.workloads.size(); ++wi) {
        const CampaignResult &before = suite.cell(wi, 1);
        if (before.report.vacuousChecks == 0)
            continue;
        auto cfg = makeConfig(suite.config.workloads[wi],
                              HardeningMode::DupValChks, 0);
        cfg.elideVacuousChecks = true;
        const auto after = characterizeOnly(cfg);
        const uint64_t saved =
            before.goldenCheckEvals - after.goldenCheckEvals;
        std::printf("%-10s %8u %8u %12llu %12llu %7.1f%%\n",
                    suite.config.workloads[wi].c_str(),
                    before.totalCheckCount, after.report.elidedChecks,
                    static_cast<unsigned long long>(
                        before.goldenCheckEvals),
                    static_cast<unsigned long long>(
                        after.goldenCheckEvals),
                    before.goldenCheckEvals
                        ? 100.0 * static_cast<double>(saved) /
                              static_cast<double>(
                                  before.goldenCheckEvals)
                        : 0.0);
    }
    printRule();
    return 0;
}
