/**
 * @file
 * Reproduces the paper's Figure 11: classification of injected faults
 * (Masked / SWDetect / HWDetect / Failure / USDC) for the Original,
 * Dup-only and Dup+val-chks configurations, plus the full-duplication
 * comparison from the text (USDC 1.4% at 57% overhead).
 *
 * Per the paper, acceptable-quality outputs (ASDCs) are counted inside
 * Masked here; Figure 13's bench reports them separately.
 */

#include "bench_util.hh"

using namespace softcheck;
using namespace softcheck::benchutil;

namespace
{

void
printRow(const std::string &label, const CampaignResult &r)
{
    std::printf("  %-16s %8.1f %9.1f %9.1f %8.1f %6.1f %9.1f\n",
                label.c_str(),
                r.pct(Outcome::Masked) + r.pct(Outcome::ASDC),
                r.pct(Outcome::SWDetect), r.pct(Outcome::HWDetect),
                r.pct(Outcome::Failure), r.pct(Outcome::USDC),
                r.coveragePct());
}

} // namespace

int
main()
{
    const unsigned trials = trialsPerBenchmark();
    const std::vector<HardeningMode> modes = {
        HardeningMode::Original, HardeningMode::DupOnly,
        HardeningMode::DupValChks, HardeningMode::FullDup};

    printHeader("Figure 11: fault coverage by configuration",
                strformat("%u injection trials per benchmark per "
                          "configuration (paper used 1000; margin of "
                          "error +-%.1f points)",
                          trials, 100.0 * marginOfError(trials)));
    std::printf("  %-16s %8s %9s %9s %8s %6s %9s\n", "config",
                "Masked%", "SWDet%", "HWDet%", "Fail%", "USDC%",
                "coverage%");

    std::vector<std::vector<double>> usdc(modes.size()),
        coverage(modes.size()), masked(modes.size()),
        swdet(modes.size()), hwdet(modes.size()), fail(modes.size());

    const auto suite =
        runCampaignSuite(makeSuite(benchmarkNames(), modes, trials));
    for (std::size_t wi = 0; wi < suite.config.workloads.size(); ++wi) {
        std::printf("%s\n", suite.config.workloads[wi].c_str());
        for (std::size_t mi = 0; mi < modes.size(); ++mi) {
            const CampaignResult &r = suite.cell(wi, mi);
            printRow(hardeningModeName(modes[mi]), r);
            usdc[mi].push_back(r.pct(Outcome::USDC));
            coverage[mi].push_back(r.coveragePct());
            masked[mi].push_back(r.pct(Outcome::Masked) +
                                 r.pct(Outcome::ASDC));
            swdet[mi].push_back(r.pct(Outcome::SWDetect));
            hwdet[mi].push_back(r.pct(Outcome::HWDetect));
            fail[mi].push_back(r.pct(Outcome::Failure));
        }
    }

    printRule();
    std::printf("MEANS (paper: USDC 3.4%% -> 1.8%% -> 1.2%%; full dup "
                "1.4%%)\n");
    std::printf("  %-16s %8s %9s %9s %8s %6s %9s\n", "config",
                "Masked%", "SWDet%", "HWDet%", "Fail%", "USDC%",
                "coverage%");
    for (std::size_t mi = 0; mi < modes.size(); ++mi) {
        std::printf("  %-16s %8.1f %9.1f %9.1f %8.1f %6.1f %9.1f\n",
                    hardeningModeName(modes[mi]), mean(masked[mi]),
                    mean(swdet[mi]), mean(hwdet[mi]), mean(fail[mi]),
                    mean(usdc[mi]), mean(coverage[mi]));
    }

    // The headline ordering must hold.
    const bool usdc_improves =
        mean(usdc[1]) <= mean(usdc[0]) && mean(usdc[2]) <= mean(usdc[1]);
    std::printf("\nresult shape: USDC(Original) >= USDC(Dup only) >= "
                "USDC(Dup+val chks): %s\n",
                usdc_improves ? "HOLDS" : "VIOLATED");
    printSuiteTiming(suite);
    return 0;
}
