/**
 * @file
 * Reproduces the paper's Figure 10 (and prints the Table I inventory):
 * state variables, duplicated instructions, and inserted value checks
 * as a fraction of total static IR instructions, per benchmark, for the
 * full Dup + val chks configuration. The paper reports at most 11.4%
 * of static instructions duplicated and at most 8.3% carrying value
 * checks.
 */

#include "bench_util.hh"
#include "fidelity/fidelity.hh"

using namespace softcheck;
using namespace softcheck::benchutil;

int
main()
{
    printHeader("Table I: benchmark inventory");
    std::printf("%-10s %-8s %-10s %-56s\n", "benchmark", "category",
                "fidelity", "description");
    printRule();
    for (const Workload *w : allWorkloads()) {
        std::printf("%-10s %-8s %-10s %-56s\n", w->name.c_str(),
                    w->category.c_str(),
                    strformat("%s %.4g", fidelityKindName(w->fidelity),
                              w->threshold)
                        .c_str(),
                    w->description.c_str());
    }

    printHeader(
        "Figure 10: static hardening statistics (Dup + val chks)",
        "fractions of total static IR instructions after hardening; "
        "coverage columns classify each *original* instruction (audit)");
    std::printf("%-10s %8s %9s %8s %8s %9s %9s %9s %8s %9s %9s %8s\n",
                "benchmark", "instrs", "statevar", "dup", "dup%",
                "valchks", "vchk%", "eqchks", "opt1cut", "cov-dup%",
                "cov-chk%", "unprot%");
    printRule();

    std::vector<double> dup_fracs, chk_fracs, unprot_fracs;
    for (const std::string &name : benchmarkNames()) {
        auto r = characterizeOnly(
            makeConfig(name, HardeningMode::DupValChks, 0));
        const auto &st = r.report.stats;
        const auto &pc = r.report.protection;
        std::printf("%-10s %8u %9u %8u %7.1f%% %9u %8.1f%% %9u %8u "
                    "%8.1f%% %8.1f%% %7.1f%%\n",
                    name.c_str(), st.totalInstructions,
                    r.report.stateVars, st.duplicatedInstructions,
                    100.0 * st.dupFraction(), st.valueChecks(),
                    100.0 * st.valueCheckFraction(), st.checkEq,
                    r.report.suppressedByOpt1, 100.0 * pc.dupFraction(),
                    100.0 * pc.checkFraction(),
                    100.0 * pc.unprotectedFraction());
        dup_fracs.push_back(100.0 * st.dupFraction());
        chk_fracs.push_back(100.0 * st.valueCheckFraction());
        unprot_fracs.push_back(100.0 * pc.unprotectedFraction());
    }
    printRule();
    std::printf("mean duplicated = %.1f%% (paper: max 11.4%%); "
                "mean value checks = %.1f%% (paper: max 8.3%%); "
                "mean unprotected originals = %.1f%%\n",
                mean(dup_fracs), mean(chk_fracs), mean(unprot_fracs));
    return 0;
}
