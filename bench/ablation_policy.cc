/**
 * @file
 * Sensitivity of the value-check machinery to its two main knobs:
 *
 *   - histogram bin budget B (the paper fixes B = 5 in Algorithm 1),
 *   - range coverage threshold (how much profiled mass a range check
 *     must cover before the site is considered amenable).
 *
 * Reported per setting: amenable sites, inserted checks, fault-free
 * false positives, overhead, and USDC rate on jpegdec.
 */

#include "bench_util.hh"

using namespace softcheck;
using namespace softcheck::benchutil;

int
main()
{
    const unsigned trials = trialsPerBenchmark(150);
    const std::string name = "kmeans";

    printHeader("Ablation: histogram bin budget B (Algorithm 1)",
                strformat("benchmark %s, %u trials", name.c_str(),
                          trials));
    std::printf("  %3s %9s %9s %10s %7s\n", "B", "valchks",
                "fp fires", "overhead", "USDC%");
    for (unsigned bins : {2u, 3u, 5u, 8u, 16u}) {
        auto cfg = makeConfig(name, HardeningMode::DupValChks, trials);
        // Bin budget is a ValueProfiler parameter; the campaign uses
        // the CheckPolicy default, so thread it via the policy knob
        // reserved for it.
        cfg.policy.histogramBins = bins;
        auto r = runCampaign(cfg);
        std::printf("  %3u %9u %9llu %9.1f%% %7.2f\n", bins,
                    r.report.valueChecks,
                    static_cast<unsigned long long>(
                        r.calibrationCheckFails),
                    100.0 * r.overhead(), r.pct(Outcome::USDC));
    }

    printHeader("Ablation: Algorithm 2 range threshold R_thr "
                "(jpegdec; gates which sites are check-amenable)");
    std::printf("  %10s %9s %9s %10s %7s %7s\n", "R_thr", "valchks",
                "opt2cuts", "overhead", "USDC%", "SDC%");
    for (double thr : {64.0, 1024.0, 65536.0, 16777216.0}) {
        auto cfg = makeConfig("jpegdec", HardeningMode::DupValChks,
                              trials);
        cfg.policy.intRangeThreshold = thr;
        cfg.policy.floatRangeThreshold = thr;
        auto r = runCampaign(cfg);
        std::printf("  %10.0f %9u %9u %9.1f%% %7.2f %7.2f\n", thr,
                    r.report.valueChecks, r.report.opt2Stops,
                    100.0 * r.overhead(), r.pct(Outcome::USDC),
                    r.sdcPct());
    }

    printHeader("Ablation: HWDetect window (paper: 1000 cycles), jpegdec");
    std::printf("  %7s %9s %9s %7s\n", "window", "HWDet%", "Fail%",
                "USDC%");
    for (uint64_t window : {10ULL, 100ULL, 1000ULL, 10000ULL}) {
        auto cfg = makeConfig("jpegdec", HardeningMode::Original,
                              trials);
        cfg.hwDetectWindowCycles = window;
        auto r = runCampaign(cfg);
        std::printf("  %7llu %9.1f %9.1f %7.2f\n",
                    static_cast<unsigned long long>(window),
                    r.pct(Outcome::HWDetect), r.pct(Outcome::Failure),
                    r.pct(Outcome::USDC));
    }
    return 0;
}
