/**
 * @file
 * google-benchmark microbenchmarks for the substrate itself: histogram
 * maintenance (Algorithm 1), range extraction (Algorithm 2),
 * interpreter dispatch throughput, memory-system access, compilation,
 * and the hardening passes.
 */

#include <benchmark/benchmark.h>

#include "core/pipeline.hh"
#include "fault/campaign.hh"
#include "frontend/compile.hh"
#include "profile/value_profiler.hh"
#include "workloads/workload.hh"

namespace
{

using namespace softcheck;

void
BM_HistogramInsert(benchmark::State &state)
{
    Rng rng(1);
    std::vector<double> values(4096);
    for (double &v : values)
        v = static_cast<double>(rng.nextRange(0, 100000));
    OnlineHistogram h(5);
    std::size_t i = 0;
    for (auto _ : state) {
        h.insert(values[i++ & 4095]);
        benchmark::DoNotOptimize(h.totalCount());
    }
}
BENCHMARK(BM_HistogramInsert);

void
BM_FrequentRangeExtract(benchmark::State &state)
{
    Rng rng(2);
    OnlineHistogram h(5);
    for (int i = 0; i < 10000; ++i)
        h.insert(static_cast<double>(rng.nextRange(0, 5000)));
    for (auto _ : state) {
        auto fr = extractFrequentRange(h, 1000.0);
        benchmark::DoNotOptimize(fr.mass);
    }
}
BENCHMARK(BM_FrequentRangeExtract);

void
BM_MemoryAccess(benchmark::State &state)
{
    Memory mem;
    const uint64_t base = mem.alloc(1 << 16);
    uint64_t addr = base;
    uint64_t v = 0;
    for (auto _ : state) {
        mem.write(addr, 8, v);
        mem.read(addr, 8, v);
        addr = base + ((addr + 64) & 0xFFF8);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_MemoryAccess);

/** Interpreter throughput on an arithmetic loop (instructions/sec). */
void
BM_InterpreterDispatch(benchmark::State &state)
{
    auto mod = compileMiniLang(R"(
        fn main(n: i32) -> i32 {
            var s: i32 = 0;
            for (var i: i32 = 0; i < n; i = i + 1) {
                s = (s + i * 3) ^ (i >> 2);
            }
            return s;
        })", "bench");
    ExecModule em(*mod);
    uint64_t instrs = 0;
    for (auto _ : state) {
        Memory mem;
        Interpreter interp(em, mem);
        auto r = interp.run(em.functionIndex("main"), {10000}, {});
        instrs += r.dynInstrs;
        benchmark::DoNotOptimize(r.retValue);
    }
    state.counters["instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterDispatch);

void
BM_CompileMiniLang(benchmark::State &state)
{
    const Workload &w = getWorkload("jpegdec");
    for (auto _ : state) {
        auto mod = compileMiniLang(w.source, w.name);
        benchmark::DoNotOptimize(mod->totalInstructions());
    }
}
BENCHMARK(BM_CompileMiniLang);

void
BM_HardenDupValChks(benchmark::State &state)
{
    const Workload &w = getWorkload("jpegdec");
    // Profile once outside the loop.
    auto pmod = compileMiniLang(w.source, w.name);
    const unsigned sites = assignProfileSites(*pmod);
    ExecModule em(*pmod);
    auto spec = w.makeInput(true);
    auto run = prepareRun(spec);
    ValueProfiler prof(em.numProfileSites());
    ExecOptions opts;
    opts.profiler = &prof;
    Interpreter interp(em, *run.mem);
    interp.run(em.functionIndex(w.entry), run.args, opts);
    ProfileData pd(prof, floatSiteFlags(*pmod, sites));

    for (auto _ : state) {
        auto mod = compileMiniLang(w.source, w.name);
        assignProfileSites(*mod);
        HardeningOptions hopts;
        hopts.mode = HardeningMode::DupValChks;
        auto report = hardenModule(*mod, hopts, &pd);
        benchmark::DoNotOptimize(report.valueChecks);
    }
}
BENCHMARK(BM_HardenDupValChks);

void
BM_WorkloadGoldenRun(benchmark::State &state)
{
    const Workload &w = getWorkload("tiff2bw");
    auto mod = compileMiniLang(w.source, w.name);
    ExecModule em(*mod);
    auto spec = w.makeInput(false);
    for (auto _ : state) {
        auto run = prepareRun(spec);
        Interpreter interp(em, *run.mem);
        auto r = interp.run(em.functionIndex(w.entry), run.args, {});
        benchmark::DoNotOptimize(r.cycles);
    }
}
BENCHMARK(BM_WorkloadGoldenRun);

void
BM_SingleFaultTrial(benchmark::State &state)
{
    const Workload &w = getWorkload("svm");
    auto mod = compileMiniLang(w.source, w.name);
    ExecModule em(*mod);
    auto spec = w.makeInput(false);
    uint64_t seed = 0;
    for (auto _ : state) {
        auto run = prepareRun(spec);
        Rng rng(++seed);
        ExecOptions opts;
        opts.faultAtDynInstr = 1000 + (seed % 100000);
        opts.faultRng = &rng;
        opts.maxDynInstrs = 10'000'000;
        Interpreter interp(em, *run.mem);
        auto r = interp.run(em.functionIndex(w.entry), run.args, opts);
        benchmark::DoNotOptimize(r.term);
    }
}
BENCHMARK(BM_SingleFaultTrial);

} // namespace

BENCHMARK_MAIN();
