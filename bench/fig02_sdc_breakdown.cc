/**
 * @file
 * Reproduces the paper's Figure 2: for UNMODIFIED applications, silent
 * data corruptions split into acceptable SDCs (ASDC) and unacceptable
 * SDCs (USDC), the latter attributed to large vs small instruction
 * output value changes. The paper reports that, on average, 77% of
 * SDCs are ASDCs and most USDCs stem from large value changes.
 */

#include "bench_util.hh"

using namespace softcheck;
using namespace softcheck::benchutil;

int
main()
{
    const unsigned trials = trialsPerBenchmark();
    printHeader("Figure 2: SDC breakdown on unmodified applications",
                strformat("%u injection trials per benchmark "
                          "(SOFTCHECK_TRIALS to change; paper used "
                          "1000)",
                          trials));

    std::printf("%-10s %8s %8s %8s %14s %14s %10s\n", "benchmark",
                "SDC%", "ASDC%", "USDC%", "USDC-large%", "USDC-small%",
                "ASDC/SDC%");
    printRule();

    const auto suite = runCampaignSuite(
        makeSuite(benchmarkNames(), {HardeningMode::Original}, trials));

    std::vector<double> sdc, asdc_share, usdc_large_share;
    for (std::size_t wi = 0; wi < suite.config.workloads.size(); ++wi) {
        const std::string &name = suite.config.workloads[wi];
        const CampaignResult &r = suite.cell(wi, 0);
        const double total = static_cast<double>(trials);
        const double asdc = r.pct(Outcome::ASDC);
        const double usdc = r.pct(Outcome::USDC);
        const double large =
            100.0 * static_cast<double>(r.usdcLargeChange) / total;
        const double small =
            100.0 * static_cast<double>(r.usdcSmallChange) / total;
        const double sdc_pct = asdc + usdc;
        std::printf("%-10s %8.2f %8.2f %8.2f %14.2f %14.2f %10.1f\n",
                    name.c_str(), sdc_pct, asdc, usdc, large, small,
                    sdc_pct > 0 ? 100.0 * asdc / sdc_pct : 100.0);
        sdc.push_back(sdc_pct);
        if (sdc_pct > 0)
            asdc_share.push_back(100.0 * asdc / sdc_pct);
        if (usdc > 0)
            usdc_large_share.push_back(100.0 * large / usdc);
    }
    printRule();
    std::printf("mean SDC = %.2f%%; mean ASDC share of SDCs = %.1f%% "
                "(paper: 77%%)\n",
                mean(sdc), mean(asdc_share));
    if (!usdc_large_share.empty())
        std::printf("mean large-value-change share of USDCs = %.1f%% "
                    "(paper: most USDCs, ~14%% of SDCs)\n",
                    mean(usdc_large_share));
    std::printf("margin of error (95%%): +-%.1f points\n",
                100.0 * marginOfError(trials));
    printSuiteTiming(suite);
    return 0;
}
