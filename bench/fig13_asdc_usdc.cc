/**
 * @file
 * Reproduces the paper's Figure 13: SDCs split into acceptable (ASDC)
 * and unacceptable (USDC) for Original / Dup only / Dup + val chks.
 * Paper means: SDC 15% -> 9.5% -> 7.3%; USDC 3.4% -> 1.8% -> 1.2%.
 */

#include "bench_util.hh"

using namespace softcheck;
using namespace softcheck::benchutil;

int
main()
{
    const unsigned trials = trialsPerBenchmark();
    const std::vector<HardeningMode> modes = {
        HardeningMode::Original, HardeningMode::DupOnly,
        HardeningMode::DupValChks};

    printHeader("Figure 13: acceptable vs unacceptable SDCs",
                strformat("%u injection trials per benchmark per "
                          "configuration",
                          trials));
    std::printf("%-10s | %21s | %21s | %21s\n", "",
                "Original", "Dup only", "Dup + val chks");
    std::printf("%-10s | %6s %6s %6s | %6s %6s %6s | %6s %6s %6s\n",
                "benchmark", "SDC%", "ASDC%", "USDC%", "SDC%", "ASDC%",
                "USDC%", "SDC%", "ASDC%", "USDC%");
    printRule(90);

    const auto suite =
        runCampaignSuite(makeSuite(benchmarkNames(), modes, trials));

    std::vector<std::vector<double>> sdc(3), asdc(3), usdc(3);
    for (std::size_t wi = 0; wi < suite.config.workloads.size(); ++wi) {
        std::printf("%-10s |", suite.config.workloads[wi].c_str());
        for (std::size_t mi = 0; mi < modes.size(); ++mi) {
            const CampaignResult &r = suite.cell(wi, mi);
            const double a = r.pct(Outcome::ASDC);
            const double u = r.pct(Outcome::USDC);
            std::printf(" %6.2f %6.2f %6.2f %s", a + u, a, u,
                        mi + 1 < modes.size() ? "|" : "");
            sdc[mi].push_back(a + u);
            asdc[mi].push_back(a);
            usdc[mi].push_back(u);
        }
        std::printf("\n");
    }
    printRule(90);
    std::printf("%-10s |", "MEAN");
    for (std::size_t mi = 0; mi < modes.size(); ++mi) {
        std::printf(" %6.2f %6.2f %6.2f %s", mean(sdc[mi]),
                    mean(asdc[mi]), mean(usdc[mi]),
                    mi + 1 < modes.size() ? "|" : "");
    }
    std::printf("\n(paper means: SDC 15 / 9.5 / 7.3; "
                "USDC 3.4 / 1.8 / 1.2)\n");

    const bool shape = mean(usdc[1]) <= mean(usdc[0]) &&
                       mean(usdc[2]) <= mean(usdc[1]) &&
                       mean(sdc[1]) <= mean(sdc[0]);
    std::printf("\nresult shape: SDC and USDC shrink with hardening: "
                "%s\n",
                shape ? "HOLDS" : "VIOLATED");
    printSuiteTiming(suite);
    return 0;
}
