/**
 * @file
 * Reproduces the paper's input-sensitivity study (Sec. V): 2-fold
 * cross-validation on jpegdec and kmeans — profile on the test input
 * and inject on the train input, then compare outcome distributions
 * with the normal direction. The paper reports per-category deltas
 * under ~0.5 points and an overhead delta of ~3%.
 */

#include <cmath>

#include "bench_util.hh"

using namespace softcheck;
using namespace softcheck::benchutil;

int
main()
{
    const unsigned trials = trialsPerBenchmark();
    printHeader("2-fold cross-validation (Dup + val chks)",
                strformat("%u trials per fold", trials));

    // The folds differ in a suite-wide knob (swapTrainTest), so each
    // fold is one suite over both workloads.
    auto fold_a = makeSuite({"jpegdec", "kmeans"},
                            {HardeningMode::DupValChks}, trials);
    auto fold_b = fold_a;
    fold_b.base.swapTrainTest = true;

    const auto suite_a = runCampaignSuite(fold_a);
    const auto suite_b = runCampaignSuite(fold_b);

    for (std::size_t wi = 0; wi < suite_a.config.workloads.size();
         ++wi) {
        const CampaignResult &a = suite_a.cell(wi, 0);
        const CampaignResult &b = suite_b.cell(wi, 0);

        std::printf("\n%s\n", suite_a.config.workloads[wi].c_str());
        std::printf("  %-22s %8s %8s %8s\n", "outcome",
                    "fold A%", "fold B%", "|delta|");
        double max_delta = 0.0;
        for (unsigned o = 0; o < kNumOutcomes; ++o) {
            const auto oc = static_cast<Outcome>(o);
            const double d = std::fabs(a.pct(oc) - b.pct(oc));
            max_delta = std::max(max_delta, d);
            std::printf("  %-22s %8.2f %8.2f %8.2f\n",
                        outcomeName(oc), a.pct(oc), b.pct(oc), d);
        }
        std::printf("  %-22s %7.1f%% %7.1f%% %8.2f\n", "overhead",
                    100.0 * a.overhead(), 100.0 * b.overhead(),
                    std::fabs(100.0 * (a.overhead() - b.overhead())));
        std::printf("  max outcome delta %.2f points "
                    "(moe +-%.1f; paper: <=0.5 points)\n",
                    max_delta, a.marginOfError95WorstCase());
    }
    printSuiteTiming(suite_a);
    return 0;
}
