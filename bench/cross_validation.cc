/**
 * @file
 * Reproduces the paper's input-sensitivity study (Sec. V): 2-fold
 * cross-validation on jpegdec and kmeans — profile on the test input
 * and inject on the train input, then compare outcome distributions
 * with the normal direction. The paper reports per-category deltas
 * under ~0.5 points and an overhead delta of ~3%.
 */

#include <cmath>

#include "bench_util.hh"

using namespace softcheck;
using namespace softcheck::benchutil;

int
main()
{
    const unsigned trials = trialsPerBenchmark();
    printHeader("2-fold cross-validation (Dup + val chks)",
                strformat("%u trials per fold", trials));

    for (const std::string &name : {std::string("jpegdec"),
                                    std::string("kmeans")}) {
        auto cfg_a = makeConfig(name, HardeningMode::DupValChks,
                                trials);
        auto cfg_b = cfg_a;
        cfg_b.swapTrainTest = true;

        auto a = runCampaign(cfg_a);
        auto b = runCampaign(cfg_b);

        std::printf("\n%s\n", name.c_str());
        std::printf("  %-22s %8s %8s %8s\n", "outcome",
                    "fold A%", "fold B%", "|delta|");
        double max_delta = 0.0;
        for (unsigned o = 0; o < kNumOutcomes; ++o) {
            const auto oc = static_cast<Outcome>(o);
            const double d = std::fabs(a.pct(oc) - b.pct(oc));
            max_delta = std::max(max_delta, d);
            std::printf("  %-22s %8.2f %8.2f %8.2f\n",
                        outcomeName(oc), a.pct(oc), b.pct(oc), d);
        }
        std::printf("  %-22s %7.1f%% %7.1f%% %8.2f\n", "overhead",
                    100.0 * a.overhead(), 100.0 * b.overhead(),
                    std::fabs(100.0 * (a.overhead() - b.overhead())));
        std::printf("  max outcome delta %.2f points "
                    "(moe +-%.1f; paper: <=0.5 points)\n",
                    max_delta, a.marginOfError95());
    }
    return 0;
}
