/**
 * @file
 * Ablation of the paper's two chain optimizations (Sec. III-C):
 *
 *   Optimization 1 — among connected check-amenable instructions, keep
 *   only the deepest check (Fig. 8): fewer checks, same chain coverage.
 *   Optimization 2 — stop duplication at check-amenable values and let
 *   the check stand in for the duplicate (Fig. 9): cheaper chains, at
 *   the risk of extra SDCs the paper observes on mp3enc/h264enc.
 *
 * For each of the four on/off combinations this bench reports static
 * check/duplication counts, runtime overhead, and USDC rate.
 */

#include "bench_util.hh"

using namespace softcheck;
using namespace softcheck::benchutil;

int
main()
{
    const unsigned trials = trialsPerBenchmark(150);
    const std::vector<std::string> subjects = {"jpegdec", "mp3dec",
                                               "kmeans", "g721dec"};

    printHeader("Ablation: Optimization 1 (deepest checks) and "
                "Optimization 2 (cut duplication at amenable values)",
                strformat("%u trials per point", trials));

    for (const std::string &name : subjects) {
        std::printf("\n%s\n", name.c_str());
        std::printf("  %-14s %8s %8s %9s %10s %7s %7s\n", "variant",
                    "dup", "valchks", "opt1cut", "overhead", "USDC%",
                    "SDC%");
        for (int variant = 0; variant < 4; ++variant) {
            const bool opt1 = variant & 1;
            const bool opt2 = variant & 2;
            auto cfg = makeConfig(name, HardeningMode::DupValChks,
                                  trials);
            cfg.enableOpt1 = opt1;
            cfg.enableOpt2 = opt2;
            auto r = runCampaign(cfg);
            std::printf("  opt1=%d opt2=%d %8u %8u %9u %9.1f%% %7.2f "
                        "%7.2f\n",
                        opt1, opt2, r.report.duplicatedInstrs,
                        r.report.valueChecks,
                        r.report.suppressedByOpt1,
                        100.0 * r.overhead(), r.pct(Outcome::USDC),
                        r.sdcPct());
        }
    }
    std::printf("\nExpected: Opt 1 cuts value checks with little "
                "coverage change; Opt 2 cuts duplicated instructions "
                "(and hence overhead) but can raise SDCs slightly, "
                "as the paper reports for mp3enc/h264enc.\n");
    return 0;
}
