/**
 * @file
 * Reproduces the paper's false-positive analysis (Sec. V): expected
 * value checks can fire without any fault when the test input leaves
 * the profiled range. The paper reports one check failure per ~235K
 * instructions on average; the recover-once-then-ignore rule turns
 * these into at most one spurious recovery per check.
 */

#include <cmath>

#include "bench_util.hh"

using namespace softcheck;
using namespace softcheck::benchutil;

int
main()
{
    printHeader("False positives: fault-free value-check failures "
                "(Dup + val chks, test input)",
                "fp-risk = checks whose *static* value range escapes "
                "the profiled bound (range analysis): an unseen input "
                "could fire them fault-free. observed = checks that "
                "actually fired on this test input.");
    std::printf("%-10s %10s %10s %10s %10s %12s %14s %18s\n",
                "benchmark", "checks", "fp-risk", "vacuous", "disabled",
                "fp fires", "instructions", "instrs per FP");
    printRule();

    uint64_t total_fp = 0, total_instrs = 0, total_recoveries = 0;
    unsigned total_risk = 0, observed_risky = 0;
    for (const std::string &name : benchmarkNames()) {
        auto r = characterizeOnly(
            makeConfig(name, HardeningMode::DupValChks, 0));
        const double per_fp = r.instrsPerFalsePositive();
        std::printf("%-10s %10u %10u %10u %10u %12llu %14llu %18s\n",
                    name.c_str(), r.totalCheckCount,
                    r.report.fpRiskChecks, r.report.vacuousChecks,
                    r.disabledCheckCount,
                    static_cast<unsigned long long>(
                        r.calibrationCheckFails),
                    static_cast<unsigned long long>(r.goldenDynInstrs),
                    std::isinf(per_fp)
                        ? "none"
                        : strformat("%.0f", per_fp).c_str());
        total_fp += r.calibrationCheckFails;
        total_instrs += r.goldenDynInstrs;
        total_recoveries += r.disabledCheckCount;
        total_risk += r.report.fpRiskChecks;
        observed_risky += r.disabledCheckCount;
    }
    printRule();
    std::printf("static fp-risk checks: %u; checks observed firing on "
                "this test input: %u (the static set over-approximates "
                "— a risky range needs a reaching input to fire)\n",
                total_risk, observed_risky);
    if (total_fp > 0) {
        std::printf("aggregate raw check failures: 1 per %.0f "
                    "instructions (paper: 1 per 235K)\n",
                    static_cast<double>(total_instrs) /
                        static_cast<double>(total_fp));
        std::printf("aggregate recovery initiations (recover-once "
                    "rule: each check recovers at most once, then is "
                    "ignored): 1 per %.0f instructions\n",
                    static_cast<double>(total_instrs) /
                        static_cast<double>(total_recoveries));
    } else {
        std::printf("aggregate: no false positives observed\n");
    }
    std::printf("(dominant source: single-value checks on "
                "input-size-derived values such as loop bounds; the "
                "paper notes multi-input profiling as the remedy)\n");
    return 0;
}
