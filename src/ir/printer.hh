/**
 * @file
 * Human-readable textual dump of modules, functions, and instructions
 * in an LLVM-like syntax. Used by tests, examples, and debugging.
 */

#ifndef SOFTCHECK_IR_PRINTER_HH
#define SOFTCHECK_IR_PRINTER_HH

#include <ostream>
#include <string>

#include "ir/module.hh"

namespace softcheck
{

/** Print a whole module. */
void printModule(const Module &m, std::ostream &os);

/** Print a single function. */
void printFunction(const Function &fn, std::ostream &os);

/** One-line rendering of a single instruction (no trailing newline). */
std::string instructionToString(const Instruction &inst);

/** Convenience: whole module as a string. */
std::string moduleToString(const Module &m);

/** Convenience: whole function as a string. */
std::string functionToString(const Function &fn);

} // namespace softcheck

#endif // SOFTCHECK_IR_PRINTER_HH
