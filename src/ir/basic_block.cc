#include "ir/basic_block.hh"

#include "support/error.hh"

namespace softcheck
{

Instruction *
BasicBlock::append(std::unique_ptr<Instruction> inst)
{
    inst->setParent(this);
    insts.push_back(std::move(inst));
    return insts.back().get();
}

Instruction *
BasicBlock::insert(iterator pos, std::unique_ptr<Instruction> inst)
{
    inst->setParent(this);
    auto it = insts.insert(pos, std::move(inst));
    return it->get();
}

Instruction *
BasicBlock::insertBefore(Instruction *before,
                         std::unique_ptr<Instruction> inst)
{
    return insert(iteratorTo(before), std::move(inst));
}

Instruction *
BasicBlock::insertAfter(Instruction *after,
                        std::unique_ptr<Instruction> inst)
{
    auto it = iteratorTo(after);
    ++it;
    return insert(it, std::move(inst));
}

void
BasicBlock::erase(Instruction *inst)
{
    scAssert(inst->users().empty(),
             "erasing instruction that still has users: ",
             opcodeName(inst->opcode()));
    insts.erase(iteratorTo(inst));
}

BasicBlock::iterator
BasicBlock::iteratorTo(Instruction *inst)
{
    for (auto it = insts.begin(); it != insts.end(); ++it) {
        if (it->get() == inst)
            return it;
    }
    scPanic("instruction not in block ", nam);
}

BasicBlock::iterator
BasicBlock::firstNonPhi()
{
    auto it = insts.begin();
    while (it != insts.end() && (*it)->opcode() == Opcode::Phi)
        ++it;
    return it;
}

std::vector<Instruction *>
BasicBlock::phis() const
{
    std::vector<Instruction *> out;
    for (const auto &inst : insts) {
        if (inst->opcode() != Opcode::Phi)
            break;
        out.push_back(inst.get());
    }
    return out;
}

} // namespace softcheck
