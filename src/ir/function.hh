/**
 * @file
 * A function: arguments plus an ordered list of basic blocks, the first
 * of which is the entry block. Functions own their blocks and
 * arguments.
 */

#ifndef SOFTCHECK_IR_FUNCTION_HH
#define SOFTCHECK_IR_FUNCTION_HH

#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.hh"

namespace softcheck
{

class Module;

class Function
{
  public:
    using BlockList = std::list<std::unique_ptr<BasicBlock>>;

    Function(Module *parent, std::string nm, Type return_type)
        : par(parent), nam(std::move(nm)), retTy(return_type)
    {}

    Function(const Function &) = delete;
    Function &operator=(const Function &) = delete;

    /** Breaks every operand web before members are destroyed, so the
     * per-instruction destructor never touches a dead operand. */
    ~Function();

    Module *parent() const { return par; }
    const std::string &name() const { return nam; }
    Type returnType() const { return retTy; }

    // Arguments -------------------------------------------------------
    Argument *addArg(Type t, std::string nm);
    std::size_t numArgs() const { return args.size(); }
    Argument *arg(std::size_t i) const { return args[i].get(); }

    // Blocks ----------------------------------------------------------
    BasicBlock *addBlock(std::string nm);
    /** Insert a new block right after @p after (for edge splitting). */
    BasicBlock *addBlockAfter(BasicBlock *after, std::string nm);

    /**
     * Remove and destroy a block. The caller must have already detached
     * every cross-block reference (phi incomings, branch targets, value
     * uses) to the block's contents.
     */
    void removeBlock(BasicBlock *bb);

    BasicBlock *entry() const
    {
        return blocks.empty() ? nullptr : blocks.front().get();
    }

    BlockList::iterator begin() { return blocks.begin(); }
    BlockList::iterator end() { return blocks.end(); }
    BlockList::const_iterator begin() const { return blocks.begin(); }
    BlockList::const_iterator end() const { return blocks.end(); }
    std::size_t numBlocks() const { return blocks.size(); }

    /**
     * Assign dense instruction ids and register slots.
     *
     * Arguments get slots [0, numArgs); every result-producing
     * instruction gets the next slot. All instructions (including void
     * ones) receive sequential ids. Must be re-run after any pass that
     * adds or removes instructions before interpreting the function.
     */
    void renumber();

    /** Number of register slots after the last renumber(). */
    unsigned numSlots() const { return slots; }

    /** Total static instruction count after the last renumber(). */
    unsigned numInstructions() const { return instCount; }

    /** Predecessor map, recomputed from terminators on each call. */
    std::map<const BasicBlock *, std::vector<BasicBlock *>>
    predecessors() const;

    /** Blocks in reverse post-order from the entry. */
    std::vector<BasicBlock *> reversePostOrder() const;

  private:
    Module *par;
    std::string nam;
    Type retTy;
    std::vector<std::unique_ptr<Argument>> args;
    BlockList blocks;
    unsigned slots = 0;
    unsigned instCount = 0;
};

} // namespace softcheck

#endif // SOFTCHECK_IR_FUNCTION_HH
