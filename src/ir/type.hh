/**
 * @file
 * Lightweight value-semantics type system for the SoftCheck IR.
 *
 * The IR is typed like a small subset of LLVM IR: one void type, integer
 * types i1/i8/i16/i32/i64, floating types f32/f64, and a single opaque
 * pointer type (pointee element types are carried by the memory
 * instructions that need them, as in modern LLVM).
 */

#ifndef SOFTCHECK_IR_TYPE_HH
#define SOFTCHECK_IR_TYPE_HH

#include <string>

#include "support/error.hh"

namespace softcheck
{

/** Discriminator for Type. */
enum class TypeKind : uint8_t
{
    Void,
    I1,
    I8,
    I16,
    I32,
    I64,
    F32,
    F64,
    Ptr,
};

/** A trivially copyable IR type. */
class Type
{
  public:
    constexpr Type() : knd(TypeKind::Void) {}
    constexpr explicit Type(TypeKind k) : knd(k) {}

    static constexpr Type voidTy() { return Type(TypeKind::Void); }
    static constexpr Type i1() { return Type(TypeKind::I1); }
    static constexpr Type i8() { return Type(TypeKind::I8); }
    static constexpr Type i16() { return Type(TypeKind::I16); }
    static constexpr Type i32() { return Type(TypeKind::I32); }
    static constexpr Type i64() { return Type(TypeKind::I64); }
    static constexpr Type f32() { return Type(TypeKind::F32); }
    static constexpr Type f64() { return Type(TypeKind::F64); }
    static constexpr Type ptr() { return Type(TypeKind::Ptr); }

    constexpr TypeKind kind() const { return knd; }

    constexpr bool isVoid() const { return knd == TypeKind::Void; }
    constexpr bool isPtr() const { return knd == TypeKind::Ptr; }

    constexpr bool
    isInteger() const
    {
        return knd >= TypeKind::I1 && knd <= TypeKind::I64;
    }

    constexpr bool
    isFloat() const
    {
        return knd == TypeKind::F32 || knd == TypeKind::F64;
    }

    /** Bit width; pointers are 64-bit, void is 0. */
    constexpr unsigned
    bitWidth() const
    {
        switch (knd) {
          case TypeKind::Void: return 0;
          case TypeKind::I1: return 1;
          case TypeKind::I8: return 8;
          case TypeKind::I16: return 16;
          case TypeKind::I32: return 32;
          case TypeKind::I64: return 64;
          case TypeKind::F32: return 32;
          case TypeKind::F64: return 64;
          case TypeKind::Ptr: return 64;
        }
        return 0;
    }

    /** Size in bytes when stored to memory. */
    constexpr unsigned
    storeSize() const
    {
        const unsigned bits = bitWidth();
        return bits <= 8 ? (bits ? 1 : 0) : bits / 8;
    }

    /** Textual spelling, e.g. "i32". */
    std::string
    str() const
    {
        switch (knd) {
          case TypeKind::Void: return "void";
          case TypeKind::I1: return "i1";
          case TypeKind::I8: return "i8";
          case TypeKind::I16: return "i16";
          case TypeKind::I32: return "i32";
          case TypeKind::I64: return "i64";
          case TypeKind::F32: return "f32";
          case TypeKind::F64: return "f64";
          case TypeKind::Ptr: return "ptr";
        }
        return "?";
    }

    constexpr bool operator==(const Type &o) const { return knd == o.knd; }
    constexpr bool operator!=(const Type &o) const { return knd != o.knd; }

  private:
    TypeKind knd;
};

} // namespace softcheck

#endif // SOFTCHECK_IR_TYPE_HH
