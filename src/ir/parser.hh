/**
 * @file
 * Parser for the textual IR form emitted by printer.hh, completing the
 * print/parse round trip. Useful for writing IR test cases directly,
 * persisting hardened modules, and diffing transformations.
 *
 * Accepted grammar (one construct per line; ';' starts a comment):
 *
 *   global @NAME : TYPE[N] = [v0, v1, ...]
 *   fn @name(T %a, T %b) -> T {
 *   label:
 *       %res = opcode ...        ; operand syntax as printed
 *       check.range T %v, T lo, T hi !check_id N
 *       ...metadata: !check_id N, !prof N, !dup
 *   }
 */

#ifndef SOFTCHECK_IR_PARSER_HH
#define SOFTCHECK_IR_PARSER_HH

#include <memory>
#include <string>

#include "ir/module.hh"

namespace softcheck
{

/** Parse a textual module; throws FatalError with a line number on
 * malformed input. The result is verified and renumbered. */
std::unique_ptr<Module> parseIR(const std::string &text,
                                const std::string &module_name = "parsed");

} // namespace softcheck

#endif // SOFTCHECK_IR_PARSER_HH
