/**
 * @file
 * Deep module cloning. Lets a caller keep a pristine compiled module
 * and derive independently-hardened copies from it without re-running
 * the front end — e.g. to compare Original / DupOnly / DupValChks side
 * by side in one process.
 */

#ifndef SOFTCHECK_IR_CLONE_HH
#define SOFTCHECK_IR_CLONE_HH

#include <memory>

#include "ir/module.hh"

namespace softcheck
{

/**
 * Structurally identical deep copy of @p m (functions, blocks,
 * instructions, globals, names, and all hardening metadata:
 * check ids, profile ids, duplicate flags). Constants are re-uniqued
 * in the new module. The clone is renumbered and ready to execute.
 */
std::unique_ptr<Module> cloneModule(const Module &m);

} // namespace softcheck

#endif // SOFTCHECK_IR_CLONE_HH
