/**
 * @file
 * Base class of everything that can appear as an instruction operand:
 * function arguments, integer/float constants, and instructions
 * themselves. Tracks users so passes can walk def-use edges and perform
 * replace-all-uses-with rewrites.
 */

#ifndef SOFTCHECK_IR_VALUE_HH
#define SOFTCHECK_IR_VALUE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.hh"
#include "support/bits.hh"

namespace softcheck
{

class Instruction;

/** Root of the IR value hierarchy. Not copyable; identity matters. */
class Value
{
  public:
    enum class Kind : uint8_t
    {
        Argument,
        ConstantInt,
        ConstantFloat,
        Instruction,
    };

    Value(Kind k, Type t, std::string nm = {})
        : knd(k), typ(t), nam(std::move(nm))
    {}

    Value(const Value &) = delete;
    Value &operator=(const Value &) = delete;
    virtual ~Value() = default;

    Kind kind() const { return knd; }
    Type type() const { return typ; }

    const std::string &name() const { return nam; }
    void setName(std::string nm) { nam = std::move(nm); }

    bool isConstant() const
    {
        return knd == Kind::ConstantInt || knd == Kind::ConstantFloat;
    }

    /**
     * Register slot assigned by Function::renumber(); -1 for constants
     * and void-producing values. Used by the interpreter's frames and by
     * the fault injector to enumerate live registers.
     */
    int slot() const { return slt; }
    void setSlot(int s) { slt = s; }

    /** Instructions currently using this value (with multiplicity). */
    const std::vector<Instruction *> &users() const { return usrs; }

    /** Rewrite every use of this value to @p replacement. */
    void replaceAllUsesWith(Value *replacement);

  protected:
    friend class Instruction;

    void addUser(Instruction *user) { usrs.push_back(user); }
    void removeUser(Instruction *user);

  private:
    Kind knd;
    Type typ;
    std::string nam;
    int slt = -1;
    std::vector<Instruction *> usrs;
};

/** A formal parameter of a Function. */
class Argument : public Value
{
  public:
    Argument(Type t, std::string nm, unsigned idx)
        : Value(Kind::Argument, t, std::move(nm)), argIdx(idx)
    {}

    unsigned index() const { return argIdx; }

  private:
    unsigned argIdx;
};

/**
 * An integer constant. The payload is stored zero-extended/truncated to
 * the type's width; use signedValue() for a sign-extended view.
 */
class ConstantInt : public Value
{
  public:
    ConstantInt(Type t, uint64_t v)
        : Value(Kind::ConstantInt, t), val(truncBits(v, t.bitWidth()))
    {}

    uint64_t rawValue() const { return val; }
    int64_t signedValue() const
    {
        return signExtend(val, type().bitWidth());
    }

  private:
    uint64_t val;
};

/** A floating-point constant (f32 constants are stored rounded). */
class ConstantFloat : public Value
{
  public:
    ConstantFloat(Type t, double v)
        : Value(Kind::ConstantFloat, t),
          val(t.kind() == TypeKind::F32
              ? static_cast<double>(static_cast<float>(v)) : v)
    {}

    double value() const { return val; }

  private:
    double val;
};

} // namespace softcheck

#endif // SOFTCHECK_IR_VALUE_HH
