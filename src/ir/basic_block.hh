/**
 * @file
 * A basic block: an ordered list of instructions ending in exactly one
 * terminator. Blocks own their instructions.
 */

#ifndef SOFTCHECK_IR_BASIC_BLOCK_HH
#define SOFTCHECK_IR_BASIC_BLOCK_HH

#include <list>
#include <memory>
#include <string>

#include "ir/instruction.hh"

namespace softcheck
{

class Function;

class BasicBlock
{
  public:
    using InstList = std::list<std::unique_ptr<Instruction>>;
    using iterator = InstList::iterator;
    using const_iterator = InstList::const_iterator;

    BasicBlock(Function *parent, std::string nm)
        : par(parent), nam(std::move(nm))
    {}

    BasicBlock(const BasicBlock &) = delete;
    BasicBlock &operator=(const BasicBlock &) = delete;

    Function *parent() const { return par; }
    const std::string &name() const { return nam; }
    void setName(std::string nm) { nam = std::move(nm); }

    bool empty() const { return insts.empty(); }
    std::size_t size() const { return insts.size(); }

    iterator begin() { return insts.begin(); }
    iterator end() { return insts.end(); }
    const_iterator begin() const { return insts.begin(); }
    const_iterator end() const { return insts.end(); }

    Instruction *front() const { return insts.front().get(); }
    Instruction *back() const { return insts.back().get(); }

    /** Terminator instruction, or null if the block is unterminated. */
    Instruction *
    terminator() const
    {
        if (insts.empty() || !insts.back()->isTerminator())
            return nullptr;
        return insts.back().get();
    }

    /** Append an instruction; takes ownership. Returns raw pointer. */
    Instruction *append(std::unique_ptr<Instruction> inst);

    /** Insert before @p pos; takes ownership. Returns raw pointer. */
    Instruction *insert(iterator pos, std::unique_ptr<Instruction> inst);

    /** Insert immediately before @p before (which must be in here). */
    Instruction *insertBefore(Instruction *before,
                              std::unique_ptr<Instruction> inst);

    /** Insert immediately after @p after (which must be in here). */
    Instruction *insertAfter(Instruction *after,
                             std::unique_ptr<Instruction> inst);

    /** Remove and destroy @p inst. @pre inst has no remaining users. */
    void erase(Instruction *inst);

    /** Iterator pointing at @p inst. */
    iterator iteratorTo(Instruction *inst);

    /** Successor blocks (empty if unterminated). */
    std::vector<BasicBlock *>
    successors() const
    {
        Instruction *term = terminator();
        return term ? term->successors() : std::vector<BasicBlock *>{};
    }

    /** First non-phi instruction position. */
    iterator firstNonPhi();

    /** All phi instructions at the top of the block. */
    std::vector<Instruction *> phis() const;

  private:
    Function *par;
    std::string nam;
    InstList insts;
};

} // namespace softcheck

#endif // SOFTCHECK_IR_BASIC_BLOCK_HH
