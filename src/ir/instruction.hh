/**
 * @file
 * Instruction class and the full opcode set of the SoftCheck IR,
 * including the four runtime-check intrinsics that the hardening passes
 * insert (CheckEq for duplication comparisons; CheckOne / CheckTwo /
 * CheckRange for the paper's three expected-value check shapes, Fig. 6).
 */

#ifndef SOFTCHECK_IR_INSTRUCTION_HH
#define SOFTCHECK_IR_INSTRUCTION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/value.hh"

namespace softcheck
{

class BasicBlock;
class Function;

/** Every operation the IR supports. */
enum class Opcode : uint8_t
{
    // Terminators
    Ret,
    Br,
    CondBr,
    // Integer arithmetic / bitwise
    Add,
    Sub,
    Mul,
    SDiv,
    UDiv,
    SRem,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    // Floating-point arithmetic
    FAdd,
    FSub,
    FMul,
    FDiv,
    // Comparisons (predicate in Instruction::predicate())
    ICmp,
    FCmp,
    // Casts
    Trunc,
    ZExt,
    SExt,
    FPToSI,
    SIToFP,
    FPTrunc,
    FPExt,
    PtrToInt,
    IntToPtr,
    // Memory
    Load,
    Store,
    Gep,
    Alloca,
    // Control / data merge
    Phi,
    Select,
    Call,
    GlobalAddr,
    // Math intrinsics (pure, value-producing; eligible for duplication)
    Sqrt,
    FAbs,
    Exp,
    Log,
    Sin,
    Cos,
    FMin,
    FMax,
    // Runtime checks inserted by the hardening passes (void result)
    CheckEq,
    CheckOne,
    CheckTwo,
    CheckRange,
};

/** Number of opcodes (for dense per-opcode tables/histograms). */
constexpr unsigned kNumIrOpcodes =
    static_cast<unsigned>(Opcode::CheckRange) + 1;

/** Comparison predicate used by ICmp / FCmp. */
enum class Predicate : uint8_t
{
    None,
    // ICmp
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
    // FCmp (ordered)
    OEq,
    ONe,
    OLt,
    OLe,
    OGt,
    OGe,
};

class Instruction;

/**
 * Shallow clone for duplication passes: copies opcode, type, predicate,
 * element type, callee and operands (initially the same values; the
 * caller remaps them), marks the clone as a duplicate, and does NOT
 * copy check/profile ids or block operands.
 */
std::unique_ptr<Instruction> cloneForDuplication(const Instruction &inst);

const char *opcodeName(Opcode op);
const char *predicateName(Predicate p);

bool isTerminator(Opcode op);
bool isIntBinary(Opcode op);
bool isFloatBinary(Opcode op);
bool isCast(Opcode op);
bool isMathIntrinsic(Opcode op);
bool isCheck(Opcode op);
bool isCommutative(Opcode op);

/**
 * A single IR instruction. Owns no operands (operands are owned by
 * their defining function/module); maintains use lists on its operands.
 */
class Instruction : public Value
{
  public:
    Instruction(Opcode op, Type result_type, std::string nm = {});
    ~Instruction() override;

    Opcode opcode() const { return op; }

    BasicBlock *parent() const { return par; }
    void setParent(BasicBlock *bb) { par = bb; }

    /** Per-function dense numbering assigned by Function::renumber(). */
    uint32_t id() const { return idNum; }
    void setId(uint32_t id) { idNum = id; }

    // Operand access -------------------------------------------------
    std::size_t numOperands() const { return ops.size(); }
    Value *operand(std::size_t i) const { return ops[i]; }
    const std::vector<Value *> &operands() const { return ops; }

    void addOperand(Value *v);
    void setOperand(std::size_t i, Value *v);
    void dropAllOperands();

    // Block operands (CondBr/Br successors, Phi incoming blocks) ------
    std::size_t numBlockOperands() const { return blockOps.size(); }
    BasicBlock *blockOperand(std::size_t i) const { return blockOps[i]; }
    void addBlockOperand(BasicBlock *bb) { blockOps.push_back(bb); }
    void setBlockOperand(std::size_t i, BasicBlock *bb) { blockOps[i] = bb; }

    /** Successor blocks of a terminator. */
    std::vector<BasicBlock *> successors() const;

    // Phi helpers ----------------------------------------------------
    void addIncoming(Value *v, BasicBlock *from);
    Value *incomingValue(std::size_t i) const { return operand(i); }
    BasicBlock *incomingBlock(std::size_t i) const
    {
        return blockOperand(i);
    }
    /** Incoming value for @p from; null if absent. */
    Value *incomingValueFor(const BasicBlock *from) const;

    /** Remove the i-th (value, block) incoming pair of a phi. */
    void removeIncoming(std::size_t i);

    // Extra payloads -------------------------------------------------
    Predicate predicate() const { return pred; }
    void setPredicate(Predicate p) { pred = p; }

    /** Element type scaled by Gep / loaded by Load / allocated by
     * Alloca / stored by Store. */
    Type elementType() const { return elemTy; }
    void setElementType(Type t) { elemTy = t; }

    Function *callee() const { return calleeFn; }
    void setCallee(Function *f) { calleeFn = f; }

    /** Referenced module global (GlobalAddr only). */
    const class GlobalVariable *globalRef() const { return glb; }
    void setGlobalRef(const class GlobalVariable *g) { glb = g; }

    // Hardening metadata ----------------------------------------------
    /** Unique id of a runtime check (CheckEq/One/Two/Range); -1 o/w. */
    int checkId() const { return chkId; }
    void setCheckId(int id) { chkId = id; }

    /** Value-profiling site id; -1 if this instruction is unprofiled. */
    int profileId() const { return profId; }
    void setProfileId(int id) { profId = id; }

    /** True if this instruction was created by a duplication pass. */
    bool isDuplicate() const { return dup; }
    void setDuplicate(bool d) { dup = d; }

    /**
     * True for a check proven vacuous and elided by the pipeline: the
     * interpreter still fetches it (same dynamic instruction stream
     * and cycle cost, so fault-injection campaigns stay bit-identical)
     * but skips the comparison.
     */
    bool isElided() const { return elided; }
    void setElided(bool e) { elided = e; }

    bool isTerminator() const { return softcheck::isTerminator(op); }
    bool hasResult() const { return !type().isVoid(); }

  private:
    Opcode op;
    Predicate pred = Predicate::None;
    Type elemTy = Type::voidTy();
    BasicBlock *par = nullptr;
    Function *calleeFn = nullptr;
    const class GlobalVariable *glb = nullptr;
    std::vector<Value *> ops;
    std::vector<BasicBlock *> blockOps;
    uint32_t idNum = 0;
    int chkId = -1;
    int profId = -1;
    bool dup = false;
    bool elided = false;
};

} // namespace softcheck

#endif // SOFTCHECK_IR_INSTRUCTION_HH
