#include "ir/clone.hh"

#include <map>

#include "support/error.hh"

namespace softcheck
{

std::unique_ptr<Module>
cloneModule(const Module &m)
{
    auto out = std::make_unique<Module>(m.name());

    // Globals.
    std::map<const GlobalVariable *, GlobalVariable *> global_map;
    for (const GlobalVariable *g : m.globals())
        global_map[g] = out->createGlobal(g->name(), g->elementType(),
                                          g->init());

    // Function shells first so calls can be remapped in any order.
    std::map<const Function *, Function *> fn_map;
    std::map<const Value *, Value *> value_map;
    for (const Function *fn : m.functions()) {
        Function *nf = out->createFunction(fn->name(),
                                           fn->returnType());
        fn_map[fn] = nf;
        for (std::size_t i = 0; i < fn->numArgs(); ++i) {
            Argument *na =
                nf->addArg(fn->arg(i)->type(), fn->arg(i)->name());
            value_map[fn->arg(i)] = na;
        }
    }

    auto map_constant = [&](const Value *v) -> Value * {
        if (auto *ci = dynamic_cast<const ConstantInt *>(v))
            return out->getConstInt(ci->type(), ci->rawValue());
        if (auto *cf = dynamic_cast<const ConstantFloat *>(v))
            return out->getConstFloat(cf->type(), cf->value());
        return nullptr;
    };

    for (const Function *fn : m.functions()) {
        Function *nf = fn_map.at(fn);
        std::map<const BasicBlock *, BasicBlock *> block_map;
        for (const auto &bb : *fn)
            block_map[bb.get()] = nf->addBlock(bb->name());

        // Create all instructions first (operands remapped after, so
        // phi back edges resolve).
        for (const auto &bb : *fn) {
            BasicBlock *nb = block_map.at(bb.get());
            for (const auto &inst : *bb) {
                auto ni = std::make_unique<Instruction>(
                    inst->opcode(), inst->type(), inst->name());
                ni->setPredicate(inst->predicate());
                ni->setElementType(inst->elementType());
                if (inst->callee())
                    ni->setCallee(fn_map.at(inst->callee()));
                if (inst->globalRef())
                    ni->setGlobalRef(global_map.at(inst->globalRef()));
                ni->setCheckId(inst->checkId());
                ni->setProfileId(inst->profileId());
                ni->setDuplicate(inst->isDuplicate());
                value_map[inst.get()] = nb->append(std::move(ni));
            }
        }

        // Wire operands and block operands.
        for (const auto &bb : *fn) {
            for (const auto &inst : *bb) {
                auto *ni = static_cast<Instruction *>(
                    value_map.at(inst.get()));
                for (Value *op : inst->operands()) {
                    Value *mapped = map_constant(op);
                    if (!mapped)
                        mapped = value_map.at(op);
                    ni->addOperand(mapped);
                }
                for (std::size_t i = 0; i < inst->numBlockOperands();
                     ++i)
                    ni->addBlockOperand(
                        block_map.at(inst->blockOperand(i)));
            }
        }
    }

    out->renumberAll();
    return out;
}

} // namespace softcheck
