/**
 * @file
 * The top-level IR container. Owns functions and a uniqued constant
 * pool (so constants can be compared by pointer identity).
 */

#ifndef SOFTCHECK_IR_MODULE_HH
#define SOFTCHECK_IR_MODULE_HH

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hh"

namespace softcheck
{

/**
 * A module-level constant array (lookup tables such as quantization
 * matrices or the paper's Fig. 5 crc_table). Element values are stored
 * canonically (integers truncated to width; floats as bit patterns).
 */
class GlobalVariable
{
  public:
    GlobalVariable(std::string nm, Type elem, std::vector<uint64_t> init,
                   unsigned idx)
        : nam(std::move(nm)), elemTy(elem), vals(std::move(init)),
          index_(idx)
    {}

    const std::string &name() const { return nam; }
    Type elementType() const { return elemTy; }
    uint64_t count() const { return vals.size(); }
    const std::vector<uint64_t> &init() const { return vals; }
    unsigned index() const { return index_; }

  private:
    std::string nam;
    Type elemTy;
    std::vector<uint64_t> vals;
    unsigned index_;
};

class Module
{
  public:
    explicit Module(std::string nm) : nam(std::move(nm)) {}

    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    const std::string &name() const { return nam; }

    /** Create a function; the name must be unique in the module. */
    Function *createFunction(const std::string &nm, Type return_type);

    /** Look up a function by name; null if absent. */
    Function *getFunction(const std::string &nm) const;

    const std::vector<Function *> &functions() const { return fnOrder; }

    /** Uniqued integer constant of type @p t with (truncated) value. */
    ConstantInt *getConstInt(Type t, uint64_t value);
    ConstantInt *getConstInt(Type t, int64_t value)
    {
        return getConstInt(t, static_cast<uint64_t>(value));
    }
    ConstantInt *getConstInt(Type t, int value)
    {
        return getConstInt(t, static_cast<uint64_t>(
                                  static_cast<int64_t>(value)));
    }
    ConstantInt *getTrue() { return getConstInt(Type::i1(), uint64_t{1}); }
    ConstantInt *getFalse() { return getConstInt(Type::i1(), uint64_t{0}); }

    /** Uniqued floating constant. */
    ConstantFloat *getConstFloat(Type t, double value);

    /** Create a module-level constant array. */
    GlobalVariable *createGlobal(const std::string &nm, Type elem,
                                 std::vector<uint64_t> init);

    /** Look up a global by name; null if absent. */
    GlobalVariable *getGlobal(const std::string &nm) const;

    const std::vector<GlobalVariable *> &globals() const
    {
        return glbOrder;
    }

    /** Renumber every function (see Function::renumber()). */
    void renumberAll();

    /** Total static instruction count across all functions. */
    unsigned totalInstructions() const;

  private:
    std::string nam;

    // Constant pools and globals are declared before the functions so
    // that destruction (reverse order) tears functions down first —
    // Function::~Function unlinks instruction operands, which must
    // still be alive at that point.
    std::map<std::pair<TypeKind, uint64_t>,
             std::unique_ptr<ConstantInt>> intPool;
    std::map<std::pair<TypeKind, uint64_t>,
             std::unique_ptr<ConstantFloat>> floatPool;
    std::map<std::string, std::unique_ptr<GlobalVariable>> glbs;
    std::vector<GlobalVariable *> glbOrder;

    std::map<std::string, std::unique_ptr<Function>> fns;
    std::vector<Function *> fnOrder;
};

} // namespace softcheck

#endif // SOFTCHECK_IR_MODULE_HH
