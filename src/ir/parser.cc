#include "ir/parser.hh"

#include <bit>
#include <cctype>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "ir/irbuilder.hh"
#include "ir/verifier.hh"
#include "support/error.hh"
#include "support/text.hh"

namespace softcheck
{

namespace
{

/** Tokenize one line into words / names / punctuation. */
std::vector<std::string>
lineTokens(const std::string &line)
{
    std::vector<std::string> toks;
    std::size_t i = 0;
    const std::size_t n = line.size();
    auto is_name_char = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) ||
               c == '_' || c == '.';
    };
    while (i < n) {
        const char c = line[i];
        if (c == ';')
            break; // comment
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '-' && i + 1 < n && line[i + 1] == '>') {
            toks.push_back("->");
            i += 2;
            continue;
        }
        if (std::strchr(",()[]=:{}", c)) {
            toks.push_back(std::string{c});
            ++i;
            continue;
        }
        if (c == '%' || c == '@' || c == '!') {
            std::size_t start = i++;
            while (i < n && is_name_char(line[i]))
                ++i;
            toks.push_back(line.substr(start, i - start));
            continue;
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            // Number (int or float, optional exponent / inf / nan).
            std::size_t start = i++;
            while (i < n && (std::isdigit(static_cast<unsigned char>(
                                 line[i])) ||
                             line[i] == '.' || line[i] == 'e' ||
                             line[i] == 'E' || line[i] == '+' ||
                             ((line[i] == '-') &&
                              (line[i - 1] == 'e' ||
                               line[i - 1] == 'E'))))
                ++i;
            // "-inf" / "-nan"
            if (i < n && (line.compare(i, 3, "inf") == 0 ||
                          line.compare(i, 3, "nan") == 0))
                i += 3;
            toks.push_back(line.substr(start, i - start));
            continue;
        }
        if (is_name_char(c)) {
            std::size_t start = i;
            while (i < n && is_name_char(line[i]))
                ++i;
            toks.push_back(line.substr(start, i - start));
            continue;
        }
        scFatal("IR parse: unexpected character '", std::string{c},
                "'");
    }
    return toks;
}

bool
typeFromString(const std::string &s, Type &out)
{
    if (s == "i1") { out = Type::i1(); return true; }
    if (s == "i8") { out = Type::i8(); return true; }
    if (s == "i16") { out = Type::i16(); return true; }
    if (s == "i32") { out = Type::i32(); return true; }
    if (s == "i64") { out = Type::i64(); return true; }
    if (s == "f32") { out = Type::f32(); return true; }
    if (s == "f64") { out = Type::f64(); return true; }
    if (s == "ptr") { out = Type::ptr(); return true; }
    if (s == "void") { out = Type::voidTy(); return true; }
    return false;
}

Opcode
opcodeFromString(const std::string &s, bool &ok)
{
    static const std::map<std::string, Opcode> table = [] {
        std::map<std::string, Opcode> t;
        for (int i = 0; i <= static_cast<int>(Opcode::CheckRange); ++i)
            t[opcodeName(static_cast<Opcode>(i))] =
                static_cast<Opcode>(i);
        return t;
    }();
    auto it = table.find(s);
    ok = it != table.end();
    return ok ? it->second : Opcode::Ret;
}

Predicate
predicateFromString(const std::string &s, bool &ok)
{
    static const std::map<std::string, Predicate> table = [] {
        std::map<std::string, Predicate> t;
        for (int i = static_cast<int>(Predicate::Eq);
             i <= static_cast<int>(Predicate::OGe); ++i)
            t[predicateName(static_cast<Predicate>(i))] =
                static_cast<Predicate>(i);
        return t;
    }();
    auto it = table.find(s);
    ok = it != table.end();
    return ok ? it->second : Predicate::None;
}

class Parser
{
  public:
    Parser(const std::string &text, const std::string &module_name)
        : mod(std::make_unique<Module>(module_name))
    {
        std::istringstream is(text);
        std::string line;
        while (std::getline(is, line))
            lines.push_back(trim(line));
    }

    std::unique_ptr<Module>
    run()
    {
        scanSignatures();
        parseBodies();
        verifyModuleOrDie(*mod);
        mod->renumberAll();
        return std::move(mod);
    }

  private:
    [[noreturn]] void
    err(std::size_t line_no, const std::string &msg)
    {
        scFatal("IR parse error at line ", line_no + 1, ": ", msg, " | ",
                lines[line_no]);
    }

    Type
    parseType(std::size_t line_no, const std::string &tok)
    {
        Type t;
        if (!typeFromString(tok, t))
            err(line_no, "expected type, got '" + tok + "'");
        return t;
    }

    /** Pass 1: globals and function signatures. */
    void
    scanSignatures()
    {
        for (std::size_t ln = 0; ln < lines.size(); ++ln) {
            if (lines[ln].rfind("global ", 0) == 0)
                parseGlobal(ln);
            else if (lines[ln].rfind("fn ", 0) == 0)
                parseSignature(ln);
        }
    }

    void
    parseGlobal(std::size_t ln)
    {
        auto toks = lineTokens(lines[ln]);
        // global @NAME : TYPE [ N ] = [ v, v, ... ]
        std::size_t p = 1;
        const std::string name = toks.at(p++).substr(1);
        if (toks.at(p++) != ":")
            err(ln, "expected ':'");
        const Type elem = parseType(ln, toks.at(p++));
        if (toks.at(p++) != "[")
            err(ln, "expected '['");
        const uint64_t count = std::stoull(toks.at(p++));
        if (toks.at(p++) != "]" || toks.at(p++) != "=" ||
            toks.at(p++) != "[")
            err(ln, "malformed global");
        std::vector<uint64_t> init;
        while (p < toks.size() && toks[p] != "]") {
            if (toks[p] == ",") {
                ++p;
                continue;
            }
            init.push_back(literalBits(ln, elem, toks[p++]));
        }
        if (init.size() != count)
            err(ln, "global initializer count mismatch");
        mod->createGlobal(name, elem, std::move(init));
    }

    void
    parseSignature(std::size_t ln)
    {
        auto toks = lineTokens(lines[ln]);
        // fn @name ( T %a , T %b ) -> T {
        std::size_t p = 1;
        const std::string name = toks.at(p++).substr(1);
        if (toks.at(p++) != "(")
            err(ln, "expected '('");
        std::vector<std::pair<Type, std::string>> params;
        while (p < toks.size() && toks[p] != ")") {
            if (toks[p] == ",") {
                ++p;
                continue;
            }
            const Type t = parseType(ln, toks.at(p++));
            params.emplace_back(t, toks.at(p++).substr(1));
        }
        ++p; // ')'
        Type ret = Type::voidTy();
        if (p < toks.size() && toks[p] == "->") {
            ++p;
            ret = parseType(ln, toks.at(p++));
        }
        Function *fn = mod->createFunction(name, ret);
        for (auto &[t, nm] : params)
            fn->addArg(t, nm);
    }

    uint64_t
    literalBits(std::size_t ln, Type t, const std::string &tok)
    {
        try {
            if (t.isFloat()) {
                const double d = std::stod(tok);
                if (t.kind() == TypeKind::F32)
                    return std::bit_cast<uint32_t>(
                        static_cast<float>(d));
                return std::bit_cast<uint64_t>(d);
            }
            return truncBits(
                static_cast<uint64_t>(std::stoll(tok)), t.bitWidth());
        } catch (const std::exception &) {
            err(ln, "bad literal '" + tok + "'");
        }
    }

    Value *
    constantFor(std::size_t ln, Type t, const std::string &tok)
    {
        try {
            if (t.isFloat())
                return mod->getConstFloat(t, std::stod(tok));
        } catch (const std::exception &) {
            err(ln, "bad float literal '" + tok + "'");
        }
        return mod->getConstInt(t, literalBits(ln, t, tok));
    }

    // ---- per-function state -------------------------------------------

    struct Fixup
    {
        Instruction *inst;
        std::size_t operandIdx;
        std::string name;
        std::size_t line;
    };

    void
    parseBodies()
    {
        for (std::size_t ln = 0; ln < lines.size(); ++ln) {
            if (lines[ln].rfind("fn ", 0) != 0)
                continue;
            auto sig = lineTokens(lines[ln]);
            const std::string name = sig.at(1).substr(1);
            Function *fn = mod->getFunction(name);
            // Body extends to the matching '}' line.
            std::size_t end = ln + 1;
            while (end < lines.size() && lines[end] != "}")
                ++end;
            if (end >= lines.size())
                err(ln, "missing '}'");
            parseBody(fn, ln + 1, end);
            ln = end;
        }
    }

    void
    parseBody(Function *fn, std::size_t first, std::size_t end)
    {
        values.clear();
        blocks.clear();
        fixups.clear();
        for (std::size_t i = 0; i < fn->numArgs(); ++i)
            values[fn->arg(i)->name()] = fn->arg(i);

        // Pre-scan labels so forward branch references resolve.
        for (std::size_t ln = first; ln < end; ++ln) {
            const std::string &line = lines[ln];
            if (line.empty())
                continue;
            if (line.back() == ':' &&
                line.find(' ') == std::string::npos) {
                const std::string label =
                    line.substr(0, line.size() - 1);
                blocks[label] = fn->addBlock(label);
            }
        }
        if (fn->numBlocks() == 0)
            err(first, "function has no blocks");

        BasicBlock *cur = nullptr;
        for (std::size_t ln = first; ln < end; ++ln) {
            const std::string &line = lines[ln];
            if (line.empty())
                continue;
            if (line.back() == ':' &&
                line.find(' ') == std::string::npos) {
                cur = blocks.at(line.substr(0, line.size() - 1));
                continue;
            }
            if (!cur)
                err(ln, "instruction before first label");
            parseInstruction(fn, cur, ln);
        }

        // Resolve forward references.
        for (const Fixup &fx : fixups) {
            auto it = values.find(fx.name);
            if (it == values.end())
                err(fx.line, "undefined value '%" + fx.name + "'");
            fx.inst->setOperand(fx.operandIdx, it->second);
        }
    }

    /** Operand: %name (value), or literal of type @p t. Appends to
     * @p inst (with fixup when the name is not yet defined). */
    void
    addOperand(Instruction *inst, std::size_t ln, Type t,
               const std::string &tok)
    {
        if (!tok.empty() && tok[0] == '%') {
            const std::string name = tok.substr(1);
            auto it = values.find(name);
            if (it != values.end()) {
                if (it->second->type() != t)
                    err(ln, "operand %" + name + " has type " +
                                it->second->type().str() +
                                ", expected " + t.str());
                inst->addOperand(it->second);
            } else {
                // Placeholder of the right type; patched later.
                inst->addOperand(
                    t.isFloat()
                        ? static_cast<Value *>(
                              mod->getConstFloat(t, 0.0))
                        : static_cast<Value *>(
                              mod->getConstInt(t, uint64_t{0})));
                fixups.push_back(
                    {inst, inst->numOperands() - 1, name, ln});
            }
            return;
        }
        inst->addOperand(constantFor(ln, t, tok));
    }

    BasicBlock *
    blockRef(std::size_t ln, const std::string &tok)
    {
        scAssert(!tok.empty(), "empty block token");
        const std::string name =
            tok[0] == '%' ? tok.substr(1) : tok;
        auto it = blocks.find(name);
        if (it == blocks.end())
            err(ln, "unknown block '%" + name + "'");
        return it->second;
    }

    void
    parseInstruction(Function *fn, BasicBlock *bb, std::size_t ln)
    {
        auto toks = lineTokens(lines[ln]);
        std::size_t p = 0;

        std::string result_name;
        if (toks[p][0] == '%' && p + 1 < toks.size() &&
            toks[p + 1] == "=") {
            result_name = toks[p].substr(1);
            p += 2;
        }

        bool ok = false;
        const Opcode op = opcodeFromString(toks.at(p++), ok);
        if (!ok)
            err(ln, "unknown opcode '" + toks[p - 1] + "'");

        // Trailing metadata is handled uniformly at the end.
        auto meta_begin = toks.size();
        for (std::size_t i = p; i < toks.size(); ++i) {
            if (!toks[i].empty() && toks[i][0] == '!') {
                meta_begin = i;
                break;
            }
        }
        const std::vector<std::string> body(
            toks.begin() + static_cast<std::ptrdiff_t>(p),
            toks.begin() + static_cast<std::ptrdiff_t>(meta_begin));

        Instruction *inst = buildInstruction(fn, bb, ln, op, body);

        // Metadata.
        for (std::size_t i = meta_begin; i < toks.size(); ++i) {
            if (toks[i] == "!dup") {
                inst->setDuplicate(true);
            } else if (toks[i] == "!elided") {
                inst->setElided(true);
            } else if (toks[i] == "!check_id") {
                inst->setCheckId(
                    static_cast<int>(std::stol(toks.at(++i))));
            } else if (toks[i] == "!prof") {
                inst->setProfileId(
                    static_cast<int>(std::stol(toks.at(++i))));
            } else {
                err(ln, "unknown metadata '" + toks[i] + "'");
            }
        }

        if (!result_name.empty()) {
            inst->setName(result_name);
            if (!values.emplace(result_name, inst).second)
                err(ln, "redefinition of %" + result_name);
        }
    }

    /** Construct one instruction from its body tokens (no metadata). */
    Instruction *
    buildInstruction(Function *fn, BasicBlock *bb, std::size_t ln,
                     Opcode op, const std::vector<std::string> &t)
    {
        auto want = [&](std::size_t i) -> const std::string & {
            if (i >= t.size())
                err(ln, "unexpected end of instruction");
            return t[i];
        };
        auto skip_commas = [&](std::size_t &i) {
            while (i < t.size() && t[i] == ",")
                ++i;
        };

        if (isIntBinary(op) || isFloatBinary(op)) {
            // op T %a, %b
            const Type ty = parseType(ln, want(0));
            auto inst = std::make_unique<Instruction>(op, ty);
            Instruction *raw = bb->append(std::move(inst));
            addOperand(raw, ln, ty, want(1));
            std::size_t i = 2;
            skip_commas(i);
            addOperand(raw, ln, ty, want(i));
            return raw;
        }
        if (isCast(op)) {
            // op T %v to T2
            const Type src = parseType(ln, want(0));
            std::size_t i = 2;
            if (want(i) != "to")
                err(ln, "expected 'to' in cast");
            const Type dst = parseType(ln, want(i + 1));
            auto inst = std::make_unique<Instruction>(op, dst);
            Instruction *raw = bb->append(std::move(inst));
            addOperand(raw, ln, src, want(1));
            return raw;
        }

        switch (op) {
          case Opcode::Ret: {
            auto inst = std::make_unique<Instruction>(op,
                                                      Type::voidTy());
            Instruction *raw = bb->append(std::move(inst));
            if (!t.empty())
                addOperand(raw, ln, parseType(ln, want(0)), want(1));
            return raw;
          }
          case Opcode::Br: {
            // br label %bb
            auto inst = std::make_unique<Instruction>(op,
                                                      Type::voidTy());
            Instruction *raw = bb->append(std::move(inst));
            raw->addBlockOperand(blockRef(ln, want(1)));
            return raw;
          }
          case Opcode::CondBr: {
            // condbr i1 %c, label %a, label %b
            auto inst = std::make_unique<Instruction>(op,
                                                      Type::voidTy());
            Instruction *raw = bb->append(std::move(inst));
            addOperand(raw, ln, Type::i1(), want(1));
            std::size_t i = 2;
            skip_commas(i);
            if (want(i) != "label")
                err(ln, "expected 'label'");
            raw->addBlockOperand(blockRef(ln, want(i + 1)));
            i += 2;
            skip_commas(i);
            if (want(i) != "label")
                err(ln, "expected 'label'");
            raw->addBlockOperand(blockRef(ln, want(i + 1)));
            return raw;
          }
          case Opcode::ICmp:
          case Opcode::FCmp: {
            // icmp slt T %a, %b
            bool ok = false;
            const Predicate pred = predicateFromString(want(0), ok);
            if (!ok)
                err(ln, "bad predicate '" + want(0) + "'");
            const Type ty = parseType(ln, want(1));
            auto inst = std::make_unique<Instruction>(op, Type::i1());
            inst->setPredicate(pred);
            Instruction *raw = bb->append(std::move(inst));
            addOperand(raw, ln, ty, want(2));
            std::size_t i = 3;
            skip_commas(i);
            addOperand(raw, ln, ty, want(i));
            return raw;
          }
          case Opcode::Load: {
            // load T, ptr %p
            const Type elem = parseType(ln, want(0));
            auto inst = std::make_unique<Instruction>(op, elem);
            inst->setElementType(elem);
            Instruction *raw = bb->append(std::move(inst));
            std::size_t i = 1;
            skip_commas(i);
            if (want(i) != "ptr")
                err(ln, "expected 'ptr'");
            addOperand(raw, ln, Type::ptr(), want(i + 1));
            return raw;
          }
          case Opcode::Store: {
            // store T %v, ptr %p
            const Type elem = parseType(ln, want(0));
            auto inst = std::make_unique<Instruction>(op,
                                                      Type::voidTy());
            inst->setElementType(elem);
            Instruction *raw = bb->append(std::move(inst));
            addOperand(raw, ln, elem, want(1));
            std::size_t i = 2;
            skip_commas(i);
            if (want(i) != "ptr")
                err(ln, "expected 'ptr'");
            addOperand(raw, ln, Type::ptr(), want(i + 1));
            return raw;
          }
          case Opcode::Gep: {
            // gep T, ptr %p, i64 %i
            const Type elem = parseType(ln, want(0));
            auto inst = std::make_unique<Instruction>(op, Type::ptr());
            inst->setElementType(elem);
            Instruction *raw = bb->append(std::move(inst));
            std::size_t i = 1;
            skip_commas(i);
            addOperand(raw, ln, Type::ptr(), want(i + 1));
            i += 2;
            skip_commas(i);
            addOperand(raw, ln, parseType(ln, want(i)), want(i + 1));
            return raw;
          }
          case Opcode::Alloca: {
            // alloca T, i64 N
            const Type elem = parseType(ln, want(0));
            auto inst = std::make_unique<Instruction>(op, Type::ptr());
            inst->setElementType(elem);
            Instruction *raw = bb->append(std::move(inst));
            std::size_t i = 1;
            skip_commas(i);
            addOperand(raw, ln, parseType(ln, want(i)), want(i + 1));
            return raw;
          }
          case Opcode::GlobalAddr: {
            // globaladdr @NAME
            const std::string name = want(0).substr(1);
            const GlobalVariable *g = mod->getGlobal(name);
            if (!g)
                err(ln, "unknown global '@" + name + "'");
            auto inst = std::make_unique<Instruction>(op, Type::ptr());
            inst->setGlobalRef(g);
            inst->setElementType(g->elementType());
            return bb->append(std::move(inst));
          }
          case Opcode::Phi: {
            // phi T [v, %bb], [v, %bb]
            const Type ty = parseType(ln, want(0));
            auto inst = std::make_unique<Instruction>(op, ty);
            Instruction *raw = bb->append(std::move(inst));
            std::size_t i = 1;
            while (i < t.size()) {
                skip_commas(i);
                if (i >= t.size())
                    break;
                if (want(i) != "[")
                    err(ln, "expected '[' in phi");
                addOperand(raw, ln, ty, want(i + 1));
                std::size_t j = i + 2;
                skip_commas(j);
                raw->addBlockOperand(blockRef(ln, want(j)));
                if (want(j + 1) != "]")
                    err(ln, "expected ']' in phi");
                i = j + 2;
            }
            return raw;
          }
          case Opcode::Call: {
            // call T @f(T %a, T %b)
            const Type ret = parseType(ln, want(0));
            const std::string callee_name = want(1).substr(1);
            Function *callee = mod->getFunction(callee_name);
            if (!callee)
                err(ln, "unknown function '@" + callee_name + "'");
            auto inst = std::make_unique<Instruction>(op, ret);
            inst->setCallee(callee);
            Instruction *raw = bb->append(std::move(inst));
            std::size_t i = 2;
            if (want(i) != "(")
                err(ln, "expected '(' in call");
            ++i;
            while (i < t.size() && t[i] != ")") {
                skip_commas(i);
                if (t[i] == ")")
                    break;
                const Type at = parseType(ln, want(i));
                addOperand(raw, ln, at, want(i + 1));
                i += 2;
            }
            return raw;
          }
          default: {
            // Select, math intrinsics, checks: every operand typed.
            Type result = Type::voidTy();
            if (op == Opcode::Select) {
                // result type = arm type (second operand's type).
                result = parseType(ln, want(3 + 0)); // after "i1 %c ,"
            } else if (isMathIntrinsic(op)) {
                result = parseType(ln, want(0));
            }
            auto inst = std::make_unique<Instruction>(op, result);
            Instruction *raw = bb->append(std::move(inst));
            std::size_t i = 0;
            while (i < t.size()) {
                skip_commas(i);
                if (i >= t.size())
                    break;
                const Type ty = parseType(ln, want(i));
                addOperand(raw, ln, ty, want(i + 1));
                i += 2;
            }
            (void)fn;
            return raw;
          }
        }
    }

    std::unique_ptr<Module> mod;
    std::vector<std::string> lines;
    std::map<std::string, Value *> values;
    std::map<std::string, BasicBlock *> blocks;
    std::vector<Fixup> fixups;
};

} // namespace

std::unique_ptr<Module>
parseIR(const std::string &text, const std::string &module_name)
{
    return Parser(text, module_name).run();
}

} // namespace softcheck
