/**
 * @file
 * Convenience factory for IR construction with an insertion point,
 * mirroring llvm::IRBuilder. All create* methods type-check their
 * operands via scAssert and insert at the current point.
 */

#ifndef SOFTCHECK_IR_IRBUILDER_HH
#define SOFTCHECK_IR_IRBUILDER_HH

#include <memory>
#include <string>
#include <vector>

#include "ir/module.hh"

namespace softcheck
{

class IRBuilder
{
  public:
    explicit IRBuilder(Module &m) : mod(m) {}

    Module &module() const { return mod; }

    // Insertion point --------------------------------------------------
    void
    setInsertPoint(BasicBlock *bb)
    {
        blk = bb;
        pos = bb->end();
    }

    void
    setInsertPoint(BasicBlock *bb, BasicBlock::iterator it)
    {
        blk = bb;
        pos = it;
    }

    /** Insert new instructions immediately before @p inst. */
    void
    setInsertBefore(Instruction *inst)
    {
        blk = inst->parent();
        pos = blk->iteratorTo(inst);
    }

    /** Insert new instructions immediately after @p inst. */
    void
    setInsertAfter(Instruction *inst)
    {
        blk = inst->parent();
        pos = std::next(blk->iteratorTo(inst));
    }

    BasicBlock *insertBlock() const { return blk; }

    // Constants ---------------------------------------------------------
    ConstantInt *constI32(int64_t v) { return mod.getConstInt(Type::i32(), v); }
    ConstantInt *constI64(int64_t v) { return mod.getConstInt(Type::i64(), v); }
    ConstantInt *constBool(bool v)
    {
        return mod.getConstInt(Type::i1(), uint64_t{v});
    }
    ConstantFloat *constF64(double v)
    {
        return mod.getConstFloat(Type::f64(), v);
    }

    // Arithmetic ---------------------------------------------------------
    Instruction *createBinary(Opcode op, Value *a, Value *b,
                              std::string nm = {});

    Instruction *createAdd(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::Add, a, b, std::move(nm)); }
    Instruction *createSub(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::Sub, a, b, std::move(nm)); }
    Instruction *createMul(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::Mul, a, b, std::move(nm)); }
    Instruction *createSDiv(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::SDiv, a, b, std::move(nm)); }
    Instruction *createUDiv(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::UDiv, a, b, std::move(nm)); }
    Instruction *createSRem(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::SRem, a, b, std::move(nm)); }
    Instruction *createURem(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::URem, a, b, std::move(nm)); }
    Instruction *createAnd(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::And, a, b, std::move(nm)); }
    Instruction *createOr(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::Or, a, b, std::move(nm)); }
    Instruction *createXor(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::Xor, a, b, std::move(nm)); }
    Instruction *createShl(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::Shl, a, b, std::move(nm)); }
    Instruction *createLShr(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::LShr, a, b, std::move(nm)); }
    Instruction *createAShr(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::AShr, a, b, std::move(nm)); }
    Instruction *createFAdd(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::FAdd, a, b, std::move(nm)); }
    Instruction *createFSub(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::FSub, a, b, std::move(nm)); }
    Instruction *createFMul(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::FMul, a, b, std::move(nm)); }
    Instruction *createFDiv(Value *a, Value *b, std::string nm = {})
    { return createBinary(Opcode::FDiv, a, b, std::move(nm)); }

    // Comparisons ---------------------------------------------------------
    Instruction *createICmp(Predicate p, Value *a, Value *b,
                            std::string nm = {});
    Instruction *createFCmp(Predicate p, Value *a, Value *b,
                            std::string nm = {});

    // Casts ----------------------------------------------------------------
    Instruction *createCast(Opcode op, Value *v, Type to,
                            std::string nm = {});

    /** Integer-to-integer resize choosing trunc / sext / no-op. */
    Value *createIntResize(Value *v, Type to, bool is_signed = true);

    // Memory -----------------------------------------------------------------
    Instruction *createAlloca(Type elem, Value *count, std::string nm = {});
    Instruction *createLoad(Type elem, Value *ptr, std::string nm = {});
    Instruction *createStore(Value *val, Value *ptr);
    Instruction *createGep(Value *ptr, Value *index, Type elem,
                           std::string nm = {});

    // Control -------------------------------------------------------------
    Instruction *createGlobalAddr(const GlobalVariable *g,
                                  std::string nm = {});
    Instruction *createPhi(Type t, std::string nm = {});
    Instruction *createSelect(Value *cond, Value *tv, Value *fv,
                              std::string nm = {});
    Instruction *createCall(Function *callee,
                            const std::vector<Value *> &call_args,
                            std::string nm = {});
    Instruction *createRet(Value *v = nullptr);
    Instruction *createBr(BasicBlock *dest);
    Instruction *createCondBr(Value *cond, BasicBlock *true_bb,
                              BasicBlock *false_bb);

    // Math intrinsics ---------------------------------------------------
    Instruction *createUnaryMath(Opcode op, Value *v, std::string nm = {});
    Instruction *createBinaryMath(Opcode op, Value *a, Value *b,
                                  std::string nm = {});

    // Hardening checks ----------------------------------------------------
    Instruction *createCheckEq(Value *orig, Value *dup, int check_id);
    Instruction *createCheckOne(Value *v, Value *expected, int check_id);
    Instruction *createCheckTwo(Value *v, Value *e0, Value *e1,
                                int check_id);
    Instruction *createCheckRange(Value *v, Value *lo, Value *hi,
                                  int check_id);

  private:
    Instruction *insert(std::unique_ptr<Instruction> inst);

    Module &mod;
    BasicBlock *blk = nullptr;
    BasicBlock::iterator pos;
};

} // namespace softcheck

#endif // SOFTCHECK_IR_IRBUILDER_HH
