#include "ir/verifier.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "ir/printer.hh"
#include "support/error.hh"

namespace softcheck
{

namespace
{

class FunctionVerifier
{
  public:
    explicit FunctionVerifier(const Function &f) : fn(f) {}

    std::vector<std::string>
    run()
    {
        collectLocals();
        checkBlocks();
        return std::move(problems);
    }

  private:
    template <typename... Args>
    void
    problem(const Instruction *inst, Args &&...args)
    {
        std::ostringstream os;
        os << "[" << fn.name() << "] ";
        os << detail::concat(std::forward<Args>(args)...);
        if (inst)
            os << " in: " << instructionToString(*inst);
        problems.push_back(os.str());
    }

    void
    collectLocals()
    {
        for (std::size_t i = 0; i < fn.numArgs(); ++i)
            locals.insert(fn.arg(i));
        for (const auto &bb : fn) {
            blockSet.insert(bb.get());
            for (const auto &inst : *bb)
                locals.insert(inst.get());
        }
    }

    bool
    isLocalOperand(const Value *v) const
    {
        return v->isConstant() || locals.count(v);
    }

    void
    checkBlocks()
    {
        if (!fn.entry()) {
            problem(nullptr, "function has no blocks");
            return;
        }
        auto preds = fn.predecessors();
        for (const auto &bb : fn) {
            if (bb->empty()) {
                problem(nullptr, "empty block %", bb->name());
                continue;
            }
            if (!bb->terminator())
                problem(nullptr, "block %", bb->name(),
                        " lacks a terminator");
            bool seen_non_phi = false;
            std::size_t idx = 0;
            for (const auto &inst : *bb) {
                const bool is_last = (idx == bb->size() - 1);
                if (inst->isTerminator() && !is_last)
                    problem(inst.get(), "terminator mid-block");
                if (inst->opcode() == Opcode::Phi) {
                    if (seen_non_phi)
                        problem(inst.get(), "phi after non-phi");
                    checkPhi(*inst, preds[bb.get()]);
                } else {
                    seen_non_phi = true;
                }
                checkInstruction(*inst);
                ++idx;
            }
        }
        checkPredSuccConsistency(preds);
    }

    /** Every successor edge must appear in the predecessor map and
     * every predecessor edge in the successor list. */
    void
    checkPredSuccConsistency(
        const std::map<const BasicBlock *, std::vector<BasicBlock *>>
            &preds)
    {
        for (const auto &bb : fn) {
            for (BasicBlock *succ : bb->successors()) {
                if (!blockSet.count(succ))
                    continue; // reported as a bad block operand
                const auto &plist = preds.at(succ);
                if (std::find(plist.begin(), plist.end(), bb.get()) ==
                    plist.end())
                    problem(bb->terminator(), "successor %",
                            succ->name(), " does not list %",
                            bb->name(), " as a predecessor");
            }
            for (BasicBlock *p : preds.at(bb.get())) {
                auto succs = p->successors();
                if (std::find(succs.begin(), succs.end(), bb.get()) ==
                    succs.end())
                    problem(p->terminator(), "predecessor %",
                            p->name(), " does not list %", bb->name(),
                            " as a successor");
            }
        }
    }

    void
    checkPhi(const Instruction &phi, const std::vector<BasicBlock *> &preds)
    {
        if (phi.numOperands() != phi.numBlockOperands()) {
            problem(&phi, "phi value/block operand count mismatch");
            return;
        }
        // Exactly one incoming per CFG predecessor: no duplicates, no
        // extras, none missing.
        std::set<const BasicBlock *> incoming;
        const std::set<const BasicBlock *> pred_set(preds.begin(),
                                                    preds.end());
        for (std::size_t i = 0; i < phi.numBlockOperands(); ++i) {
            const BasicBlock *in = phi.incomingBlock(i);
            if (!incoming.insert(in).second)
                problem(&phi, "phi has two incomings for block %",
                        in->name());
            if (!pred_set.count(in))
                problem(&phi, "phi incoming from non-predecessor %",
                        in->name());
            if (phi.operand(i)->type() != phi.type())
                problem(&phi, "phi incoming type mismatch");
        }
        for (const BasicBlock *p : pred_set) {
            if (!incoming.count(p))
                problem(&phi, "phi missing incoming for predecessor %",
                        p->name());
        }
    }

    void
    checkOperandCount(const Instruction &inst, std::size_t want)
    {
        if (inst.numOperands() != want)
            problem(&inst, "expected ", want, " operands, got ",
                    inst.numOperands());
    }

    void
    checkInstruction(const Instruction &inst)
    {
        for (std::size_t i = 0; i < inst.numOperands(); ++i) {
            const Value *v = inst.operand(i);
            if (!isLocalOperand(v))
                problem(&inst, "operand ", i,
                        " defined outside this function");
            if (v->type().isVoid())
                problem(&inst, "void-typed operand");
        }
        for (std::size_t i = 0; i < inst.numBlockOperands(); ++i) {
            if (!blockSet.count(inst.blockOperand(i)))
                problem(&inst, "block operand outside this function");
        }

        const Opcode op = inst.opcode();
        if (isIntBinary(op) || isFloatBinary(op)) {
            checkOperandCount(inst, 2);
            if (inst.numOperands() == 2) {
                if (inst.operand(0)->type() != inst.operand(1)->type() ||
                    inst.operand(0)->type() != inst.type())
                    problem(&inst, "binary type mismatch");
                if (isIntBinary(op) && !inst.type().isInteger())
                    problem(&inst, "int binary on non-int");
                if (isFloatBinary(op) && !inst.type().isFloat())
                    problem(&inst, "float binary on non-float");
            }
            return;
        }
        if (isCast(op)) {
            checkOperandCount(inst, 1);
            return;
        }

        switch (op) {
          case Opcode::Ret:
            if (fn.returnType().isVoid()) {
                checkOperandCount(inst, 0);
            } else {
                checkOperandCount(inst, 1);
                if (inst.numOperands() == 1 &&
                    inst.operand(0)->type() != fn.returnType())
                    problem(&inst, "return type mismatch");
            }
            break;
          case Opcode::Br:
            checkOperandCount(inst, 0);
            if (inst.numBlockOperands() != 1)
                problem(&inst, "br needs one successor");
            break;
          case Opcode::CondBr:
            checkOperandCount(inst, 1);
            if (inst.numBlockOperands() != 2)
                problem(&inst, "condbr needs two successors");
            if (inst.numOperands() == 1 &&
                inst.operand(0)->type() != Type::i1())
                problem(&inst, "condbr condition must be i1");
            break;
          case Opcode::ICmp:
          case Opcode::FCmp:
            checkOperandCount(inst, 2);
            if (inst.type() != Type::i1())
                problem(&inst, "compare must produce i1");
            if (inst.predicate() == Predicate::None)
                problem(&inst, "compare lacks predicate");
            break;
          case Opcode::Load:
            checkOperandCount(inst, 1);
            if (inst.numOperands() == 1 &&
                !inst.operand(0)->type().isPtr())
                problem(&inst, "load from non-pointer");
            if (inst.type() != inst.elementType())
                problem(&inst, "load result/element type mismatch");
            break;
          case Opcode::Store:
            checkOperandCount(inst, 2);
            if (inst.numOperands() == 2 &&
                !inst.operand(1)->type().isPtr())
                problem(&inst, "store to non-pointer");
            break;
          case Opcode::Gep:
            checkOperandCount(inst, 2);
            if (inst.elementType().isVoid())
                problem(&inst, "gep without element type");
            break;
          case Opcode::Alloca:
            checkOperandCount(inst, 1);
            break;
          case Opcode::Phi:
            if (inst.numOperands() == 0)
                problem(&inst, "phi with no incoming values");
            break;
          case Opcode::Select:
            checkOperandCount(inst, 3);
            break;
          case Opcode::Call: {
            if (!inst.callee()) {
                problem(&inst, "call without callee");
                break;
            }
            checkOperandCount(inst, inst.callee()->numArgs());
            if (inst.type() != inst.callee()->returnType())
                problem(&inst, "call result type mismatch");
            break;
          }
          case Opcode::GlobalAddr:
            checkOperandCount(inst, 0);
            if (!inst.globalRef())
                problem(&inst, "globaladdr without global");
            if (!inst.type().isPtr())
                problem(&inst, "globaladdr must produce ptr");
            break;
          case Opcode::Sqrt:
          case Opcode::FAbs:
          case Opcode::Exp:
          case Opcode::Log:
          case Opcode::Sin:
          case Opcode::Cos:
            checkOperandCount(inst, 1);
            break;
          case Opcode::FMin:
          case Opcode::FMax:
            checkOperandCount(inst, 2);
            break;
          case Opcode::CheckEq:
          case Opcode::CheckOne:
            checkOperandCount(inst, 2);
            break;
          case Opcode::CheckTwo:
          case Opcode::CheckRange:
            checkOperandCount(inst, 3);
            break;
          default:
            break;
        }

        if (isCheck(op) && inst.checkId() < 0)
            problem(&inst, "check without check id");
    }

    const Function &fn;
    std::set<const Value *> locals;
    std::set<const BasicBlock *> blockSet;
    std::vector<std::string> problems;
};

} // namespace

std::vector<std::string>
verifyFunction(const Function &fn)
{
    return FunctionVerifier(fn).run();
}

std::vector<std::string>
verifyModule(const Module &m)
{
    std::vector<std::string> all;
    for (const Function *fn : m.functions()) {
        auto probs = verifyFunction(*fn);
        all.insert(all.end(), probs.begin(), probs.end());
    }
    return all;
}

void
verifyModuleOrDie(const Module &m)
{
    auto probs = verifyModule(m);
    if (!probs.empty())
        scFatal("IR verification failed: ", probs.front(), " (and ",
                probs.size() - 1, " more)");
}

} // namespace softcheck
