#include "ir/printer.hh"

#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "support/error.hh"

namespace softcheck
{

namespace
{

/** Optional per-function display-name overrides (uniquified names). */
using NameMap = std::map<const Value *, std::string>;
const NameMap *gNames = nullptr;

/** Render an operand reference. */
std::string
valueRef(const Value &v)
{
    if (gNames) {
        auto it = gNames->find(&v);
        if (it != gNames->end())
            return "%" + it->second;
    }
    switch (v.kind()) {
      case Value::Kind::ConstantInt: {
        const auto &c = static_cast<const ConstantInt &>(v);
        return std::to_string(c.signedValue());
      }
      case Value::Kind::ConstantFloat: {
        const auto &c = static_cast<const ConstantFloat &>(v);
        // max_digits10 so the textual form round-trips exactly.
        std::ostringstream os;
        os.precision(17);
        os << c.value();
        return os.str();
      }
      case Value::Kind::Argument:
        return "%" + v.name();
      case Value::Kind::Instruction: {
        const auto &inst = static_cast<const Instruction &>(v);
        if (!inst.name().empty())
            return "%" + inst.name();
        return "%t" + std::to_string(inst.id());
      }
    }
    return "%?";
}

std::string
typedRef(const Value &v)
{
    return v.type().str() + " " + valueRef(v);
}

} // namespace

std::string
instructionToString(const Instruction &inst)
{
    std::ostringstream os;
    const Opcode op = inst.opcode();

    if (inst.hasResult())
        os << valueRef(inst) << " = ";

    os << opcodeName(op);

    switch (op) {
      case Opcode::Ret:
        if (inst.numOperands())
            os << " " << typedRef(*inst.operand(0));
        break;
      case Opcode::Br:
        os << " label %" << inst.blockOperand(0)->name();
        break;
      case Opcode::CondBr:
        os << " " << typedRef(*inst.operand(0))
           << ", label %" << inst.blockOperand(0)->name()
           << ", label %" << inst.blockOperand(1)->name();
        break;
      case Opcode::ICmp:
      case Opcode::FCmp:
        os << " " << predicateName(inst.predicate()) << " "
           << typedRef(*inst.operand(0)) << ", "
           << valueRef(*inst.operand(1));
        break;
      case Opcode::Load:
        os << " " << inst.elementType().str() << ", "
           << typedRef(*inst.operand(0));
        break;
      case Opcode::Store:
        os << " " << typedRef(*inst.operand(0)) << ", "
           << typedRef(*inst.operand(1));
        break;
      case Opcode::Gep:
        os << " " << inst.elementType().str() << ", "
           << typedRef(*inst.operand(0)) << ", "
           << typedRef(*inst.operand(1));
        break;
      case Opcode::Alloca:
        os << " " << inst.elementType().str() << ", "
           << typedRef(*inst.operand(0));
        break;
      case Opcode::GlobalAddr:
        os << " @" << (inst.globalRef() ? inst.globalRef()->name()
                                        : std::string("?"));
        break;
      case Opcode::Phi: {
        os << " " << inst.type().str() << " ";
        for (std::size_t i = 0; i < inst.numOperands(); ++i) {
            if (i)
                os << ", ";
            os << "[" << valueRef(*inst.operand(i)) << ", %"
               << inst.incomingBlock(i)->name() << "]";
        }
        break;
      }
      case Opcode::Call: {
        os << " " << inst.callee()->returnType().str() << " @"
           << inst.callee()->name() << "(";
        for (std::size_t i = 0; i < inst.numOperands(); ++i) {
            if (i)
                os << ", ";
            os << typedRef(*inst.operand(i));
        }
        os << ")";
        break;
      }
      case Opcode::Trunc:
      case Opcode::ZExt:
      case Opcode::SExt:
      case Opcode::FPToSI:
      case Opcode::SIToFP:
      case Opcode::FPTrunc:
      case Opcode::FPExt:
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
        os << " " << typedRef(*inst.operand(0)) << " to "
           << inst.type().str();
        break;
      default: {
        if (isIntBinary(op) || isFloatBinary(op)) {
            // add i32 %a, %b  (operands share the result type)
            os << " " << typedRef(*inst.operand(0)) << ", "
               << valueRef(*inst.operand(1));
        } else {
            // select / math intrinsics / checks: every operand typed,
            // so the textual form is parseable without inference.
            for (std::size_t i = 0; i < inst.numOperands(); ++i)
                os << (i ? ", " : " ") << typedRef(*inst.operand(i));
        }
        break;
      }
    }

    if (isCheck(op))
        os << " !check_id " << inst.checkId();
    if (inst.isDuplicate())
        os << " !dup";
    if (inst.profileId() >= 0)
        os << " !prof " << inst.profileId();
    if (inst.isElided())
        os << " !elided";
    return os.str();
}

void
printFunction(const Function &fn, std::ostream &os)
{
    // Uniquify display names: the front end may give several
    // instructions the same name (e.g. one "x.v" per load of x), which
    // would be ambiguous — and unparseable — in text.
    NameMap names;
    std::set<std::string> used;
    for (std::size_t i = 0; i < fn.numArgs(); ++i)
        used.insert(fn.arg(i)->name());
    for (const auto &bb : fn) {
        for (const auto &inst : *bb) {
            if (inst->name().empty() || !inst->hasResult())
                continue;
            std::string nm = inst->name();
            if (!used.insert(nm).second) {
                nm += "." + std::to_string(inst->id());
                used.insert(nm);
            }
            if (nm != inst->name())
                names[inst.get()] = nm;
        }
    }
    gNames = names.empty() ? nullptr : &names;

    os << "fn @" << fn.name() << "(";
    for (std::size_t i = 0; i < fn.numArgs(); ++i) {
        if (i)
            os << ", ";
        os << fn.arg(i)->type().str() << " %" << fn.arg(i)->name();
    }
    os << ") -> " << fn.returnType().str() << " {\n";
    for (const auto &bb : fn) {
        os << bb->name() << ":\n";
        for (const auto &inst : *bb)
            os << "    " << instructionToString(*inst) << "\n";
    }
    os << "}\n";
    gNames = nullptr;
}

void
printModule(const Module &m, std::ostream &os)
{
    os << "; module " << m.name() << "\n";
    for (const GlobalVariable *g : m.globals()) {
        os << "global @" << g->name() << " : "
           << g->elementType().str() << "[" << g->count() << "] = [";
        for (uint64_t i = 0; i < g->count(); ++i) {
            if (i)
                os << ", ";
            if (g->elementType().isFloat()) {
                std::ostringstream fs;
                fs.precision(17);
                const uint64_t raw = g->init()[i];
                if (g->elementType().kind() == TypeKind::F32) {
                    float f;
                    uint32_t bits32 = static_cast<uint32_t>(raw);
                    std::memcpy(&f, &bits32, sizeof f);
                    fs << f;
                } else {
                    double d;
                    std::memcpy(&d, &raw, sizeof d);
                    fs << d;
                }
                os << fs.str();
            } else {
                os << signExtend(g->init()[i],
                                 g->elementType().bitWidth());
            }
        }
        os << "]\n";
    }
    if (!m.globals().empty())
        os << "\n";
    for (const Function *fn : m.functions()) {
        printFunction(*fn, os);
        os << "\n";
    }
}

std::string
moduleToString(const Module &m)
{
    std::ostringstream os;
    printModule(m, os);
    return os.str();
}

std::string
functionToString(const Function &fn)
{
    std::ostringstream os;
    printFunction(fn, os);
    return os.str();
}

} // namespace softcheck
