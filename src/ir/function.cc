#include "ir/function.hh"

#include <algorithm>
#include <set>

#include "support/error.hh"

namespace softcheck
{

Function::~Function()
{
    for (auto &bb : blocks) {
        for (auto &inst : *bb)
            inst->dropAllOperands();
    }
}

Argument *
Function::addArg(Type t, std::string nm)
{
    args.push_back(std::make_unique<Argument>(
        t, std::move(nm), static_cast<unsigned>(args.size())));
    return args.back().get();
}

BasicBlock *
Function::addBlock(std::string nm)
{
    blocks.push_back(std::make_unique<BasicBlock>(this, std::move(nm)));
    return blocks.back().get();
}

BasicBlock *
Function::addBlockAfter(BasicBlock *after, std::string nm)
{
    for (auto it = blocks.begin(); it != blocks.end(); ++it) {
        if (it->get() == after) {
            ++it;
            auto inserted = blocks.insert(
                it, std::make_unique<BasicBlock>(this, std::move(nm)));
            return inserted->get();
        }
    }
    scPanic("addBlockAfter: block not in function ", nam);
}

void
Function::removeBlock(BasicBlock *bb)
{
    for (auto it = blocks.begin(); it != blocks.end(); ++it) {
        if (it->get() == bb) {
            blocks.erase(it);
            return;
        }
    }
    scPanic("removeBlock: block not in function ", nam);
}

void
Function::renumber()
{
    int slot = 0;
    for (auto &a : args)
        a->setSlot(slot++);

    uint32_t id = 0;
    for (auto &bb : blocks) {
        for (auto &inst : *bb) {
            inst->setId(id++);
            inst->setSlot(inst->hasResult() ? slot++ : -1);
        }
    }
    slots = static_cast<unsigned>(slot);
    instCount = id;
}

std::map<const BasicBlock *, std::vector<BasicBlock *>>
Function::predecessors() const
{
    std::map<const BasicBlock *, std::vector<BasicBlock *>> preds;
    for (const auto &bb : blocks)
        preds[bb.get()]; // ensure every block has an entry
    for (const auto &bb : blocks) {
        for (BasicBlock *succ : bb->successors()) {
            auto &list = preds[succ];
            // Deduplicate (a condbr may target the same block twice).
            if (std::find(list.begin(), list.end(), bb.get()) == list.end())
                list.push_back(bb.get());
        }
    }
    return preds;
}

std::vector<BasicBlock *>
Function::reversePostOrder() const
{
    std::vector<BasicBlock *> post;
    std::set<const BasicBlock *> visited;

    // Iterative post-order DFS from the entry block.
    struct Item
    {
        BasicBlock *bb;
        std::vector<BasicBlock *> succs;
        std::size_t next = 0;
    };
    std::vector<Item> stack;
    if (entry()) {
        visited.insert(entry());
        stack.push_back({entry(), entry()->successors()});
    }
    while (!stack.empty()) {
        Item &top = stack.back();
        if (top.next < top.succs.size()) {
            BasicBlock *succ = top.succs[top.next++];
            if (visited.insert(succ).second)
                stack.push_back({succ, succ->successors()});
        } else {
            post.push_back(top.bb);
            stack.pop_back();
        }
    }
    std::reverse(post.begin(), post.end());
    return post;
}

} // namespace softcheck
