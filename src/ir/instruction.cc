#include "ir/instruction.hh"

#include <algorithm>

#include "ir/basic_block.hh"
#include "support/error.hh"

namespace softcheck
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Ret: return "ret";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::SDiv: return "sdiv";
      case Opcode::UDiv: return "udiv";
      case Opcode::SRem: return "srem";
      case Opcode::URem: return "urem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::LShr: return "lshr";
      case Opcode::AShr: return "ashr";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::ICmp: return "icmp";
      case Opcode::FCmp: return "fcmp";
      case Opcode::Trunc: return "trunc";
      case Opcode::ZExt: return "zext";
      case Opcode::SExt: return "sext";
      case Opcode::FPToSI: return "fptosi";
      case Opcode::SIToFP: return "sitofp";
      case Opcode::FPTrunc: return "fptrunc";
      case Opcode::FPExt: return "fpext";
      case Opcode::PtrToInt: return "ptrtoint";
      case Opcode::IntToPtr: return "inttoptr";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Gep: return "gep";
      case Opcode::Alloca: return "alloca";
      case Opcode::Phi: return "phi";
      case Opcode::Select: return "select";
      case Opcode::Call: return "call";
      case Opcode::GlobalAddr: return "globaladdr";
      case Opcode::Sqrt: return "sqrt";
      case Opcode::FAbs: return "fabs";
      case Opcode::Exp: return "exp";
      case Opcode::Log: return "log";
      case Opcode::Sin: return "sin";
      case Opcode::Cos: return "cos";
      case Opcode::FMin: return "fmin";
      case Opcode::FMax: return "fmax";
      case Opcode::CheckEq: return "check.eq";
      case Opcode::CheckOne: return "check.one";
      case Opcode::CheckTwo: return "check.two";
      case Opcode::CheckRange: return "check.range";
    }
    return "?";
}

const char *
predicateName(Predicate p)
{
    switch (p) {
      case Predicate::None: return "none";
      case Predicate::Eq: return "eq";
      case Predicate::Ne: return "ne";
      case Predicate::Slt: return "slt";
      case Predicate::Sle: return "sle";
      case Predicate::Sgt: return "sgt";
      case Predicate::Sge: return "sge";
      case Predicate::Ult: return "ult";
      case Predicate::Ule: return "ule";
      case Predicate::Ugt: return "ugt";
      case Predicate::Uge: return "uge";
      case Predicate::OEq: return "oeq";
      case Predicate::ONe: return "one";
      case Predicate::OLt: return "olt";
      case Predicate::OLe: return "ole";
      case Predicate::OGt: return "ogt";
      case Predicate::OGe: return "oge";
    }
    return "?";
}

bool
isTerminator(Opcode op)
{
    return op == Opcode::Ret || op == Opcode::Br || op == Opcode::CondBr;
}

bool
isIntBinary(Opcode op)
{
    return op >= Opcode::Add && op <= Opcode::AShr;
}

bool
isFloatBinary(Opcode op)
{
    return op >= Opcode::FAdd && op <= Opcode::FDiv;
}

bool
isCast(Opcode op)
{
    return op >= Opcode::Trunc && op <= Opcode::IntToPtr;
}

bool
isMathIntrinsic(Opcode op)
{
    return op >= Opcode::Sqrt && op <= Opcode::FMax;
}

bool
isCheck(Opcode op)
{
    return op >= Opcode::CheckEq && op <= Opcode::CheckRange;
}

bool
isCommutative(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FMin:
      case Opcode::FMax:
        return true;
      default:
        return false;
    }
}

std::unique_ptr<Instruction>
cloneForDuplication(const Instruction &inst)
{
    auto dup = std::make_unique<Instruction>(
        inst.opcode(), inst.type(),
        inst.name().empty() ? std::string{} : inst.name() + ".d");
    dup->setPredicate(inst.predicate());
    dup->setElementType(inst.elementType());
    dup->setCallee(inst.callee());
    dup->setGlobalRef(inst.globalRef());
    for (Value *op : inst.operands())
        dup->addOperand(op);
    dup->setDuplicate(true);
    return dup;
}

Instruction::Instruction(Opcode opc, Type result_type, std::string nm)
    : Value(Kind::Instruction, result_type, std::move(nm)), op(opc)
{}

Instruction::~Instruction()
{
    dropAllOperands();
}

void
Instruction::addOperand(Value *v)
{
    scAssert(v, "null operand");
    ops.push_back(v);
    v->addUser(this);
}

void
Instruction::setOperand(std::size_t i, Value *v)
{
    scAssert(i < ops.size(), "operand index out of range");
    scAssert(v, "null operand");
    ops[i]->removeUser(this);
    ops[i] = v;
    v->addUser(this);
}

void
Instruction::dropAllOperands()
{
    for (Value *v : ops)
        v->removeUser(this);
    ops.clear();
}

std::vector<BasicBlock *>
Instruction::successors() const
{
    scAssert(isTerminator(), "successors() on non-terminator");
    return blockOps;
}

void
Instruction::addIncoming(Value *v, BasicBlock *from)
{
    scAssert(op == Opcode::Phi, "addIncoming on non-phi");
    addOperand(v);
    addBlockOperand(from);
}

void
Instruction::removeIncoming(std::size_t i)
{
    scAssert(op == Opcode::Phi, "removeIncoming on non-phi");
    scAssert(i < ops.size() && i < blockOps.size(),
             "removeIncoming index out of range");
    ops[i]->removeUser(this);
    ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
    blockOps.erase(blockOps.begin() + static_cast<std::ptrdiff_t>(i));
}

Value *
Instruction::incomingValueFor(const BasicBlock *from) const
{
    scAssert(op == Opcode::Phi, "incomingValueFor on non-phi");
    for (std::size_t i = 0; i < blockOps.size(); ++i) {
        if (blockOps[i] == from)
            return ops[i];
    }
    return nullptr;
}

void
Value::replaceAllUsesWith(Value *replacement)
{
    scAssert(replacement != this, "RAUW with self");
    // Copy: setOperand mutates the user list.
    std::vector<Instruction *> users_copy = usrs;
    for (Instruction *user : users_copy) {
        for (std::size_t i = 0; i < user->numOperands(); ++i) {
            if (user->operand(i) == this)
                user->setOperand(i, replacement);
        }
    }
}

void
Value::removeUser(Instruction *user)
{
    auto it = std::find(usrs.begin(), usrs.end(), user);
    scAssert(it != usrs.end(), "removeUser: not a user");
    usrs.erase(it);
}

} // namespace softcheck
