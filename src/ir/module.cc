#include "ir/module.hh"

#include "support/error.hh"

namespace softcheck
{

Function *
Module::createFunction(const std::string &nm, Type return_type)
{
    if (fns.count(nm))
        scFatal("duplicate function name '", nm, "'");
    auto fn = std::make_unique<Function>(this, nm, return_type);
    Function *raw = fn.get();
    fns.emplace(nm, std::move(fn));
    fnOrder.push_back(raw);
    return raw;
}

Function *
Module::getFunction(const std::string &nm) const
{
    auto it = fns.find(nm);
    return it == fns.end() ? nullptr : it->second.get();
}

GlobalVariable *
Module::createGlobal(const std::string &nm, Type elem,
                     std::vector<uint64_t> init)
{
    if (glbs.count(nm))
        scFatal("duplicate global name '", nm, "'");
    scAssert(!elem.isVoid() && !init.empty(), "bad global definition");
    auto g = std::make_unique<GlobalVariable>(
        nm, elem, std::move(init),
        static_cast<unsigned>(glbOrder.size()));
    GlobalVariable *raw = g.get();
    glbs.emplace(nm, std::move(g));
    glbOrder.push_back(raw);
    return raw;
}

GlobalVariable *
Module::getGlobal(const std::string &nm) const
{
    auto it = glbs.find(nm);
    return it == glbs.end() ? nullptr : it->second.get();
}

ConstantInt *
Module::getConstInt(Type t, uint64_t value)
{
    scAssert(t.isInteger() || t.isPtr(), "getConstInt on ", t.str());
    const uint64_t canon = truncBits(value, t.bitWidth());
    auto key = std::make_pair(t.kind(), canon);
    auto it = intPool.find(key);
    if (it != intPool.end())
        return it->second.get();
    auto c = std::make_unique<ConstantInt>(t, canon);
    ConstantInt *raw = c.get();
    intPool.emplace(key, std::move(c));
    return raw;
}

ConstantFloat *
Module::getConstFloat(Type t, double value)
{
    scAssert(t.isFloat(), "getConstFloat on ", t.str());
    if (t.kind() == TypeKind::F32)
        value = static_cast<double>(static_cast<float>(value));
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof bits);
    auto key = std::make_pair(t.kind(), bits);
    auto it = floatPool.find(key);
    if (it != floatPool.end())
        return it->second.get();
    auto c = std::make_unique<ConstantFloat>(t, value);
    ConstantFloat *raw = c.get();
    floatPool.emplace(key, std::move(c));
    return raw;
}

void
Module::renumberAll()
{
    for (Function *fn : fnOrder)
        fn->renumber();
}

unsigned
Module::totalInstructions() const
{
    unsigned total = 0;
    for (Function *fn : fnOrder) {
        for (const auto &bb : *fn)
            total += static_cast<unsigned>(bb->size());
    }
    return total;
}

} // namespace softcheck
