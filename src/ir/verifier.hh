/**
 * @file
 * Structural IR verifier. Catches malformed IR early: missing or
 * misplaced terminators, phi/predecessor mismatches, type errors,
 * cross-function operand references, and bad operand counts.
 *
 * Dominance verification (defs dominate uses) lives in
 * analysis/dominance_verify.hh to keep the IR library free of analysis
 * dependencies.
 */

#ifndef SOFTCHECK_IR_VERIFIER_HH
#define SOFTCHECK_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/module.hh"

namespace softcheck
{

/** Collect all structural problems; empty result means "valid". */
std::vector<std::string> verifyFunction(const Function &fn);

/** Verify every function in @p m. */
std::vector<std::string> verifyModule(const Module &m);

/** Verify and scFatal on the first problem (for pipeline use). */
void verifyModuleOrDie(const Module &m);

} // namespace softcheck

#endif // SOFTCHECK_IR_VERIFIER_HH
