#include "ir/irbuilder.hh"

#include "support/error.hh"

namespace softcheck
{

Instruction *
IRBuilder::insert(std::unique_ptr<Instruction> inst)
{
    scAssert(blk, "IRBuilder has no insertion point");
    return blk->insert(pos, std::move(inst));
}

Instruction *
IRBuilder::createBinary(Opcode op, Value *a, Value *b, std::string nm)
{
    scAssert(a->type() == b->type(), "binary operand type mismatch: ",
             a->type().str(), " vs ", b->type().str());
    if (isIntBinary(op))
        scAssert(a->type().isInteger(), opcodeName(op), " needs int");
    else if (isFloatBinary(op))
        scAssert(a->type().isFloat(), opcodeName(op), " needs float");
    else
        scPanic("createBinary with non-binary opcode ", opcodeName(op));

    auto inst = std::make_unique<Instruction>(op, a->type(), std::move(nm));
    inst->addOperand(a);
    inst->addOperand(b);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createICmp(Predicate p, Value *a, Value *b, std::string nm)
{
    scAssert(p >= Predicate::Eq && p <= Predicate::Uge,
             "bad icmp predicate");
    scAssert(a->type() == b->type(), "icmp type mismatch");
    scAssert(a->type().isInteger() || a->type().isPtr(),
             "icmp needs integer or pointer operands");
    auto inst = std::make_unique<Instruction>(Opcode::ICmp, Type::i1(),
                                              std::move(nm));
    inst->setPredicate(p);
    inst->addOperand(a);
    inst->addOperand(b);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createFCmp(Predicate p, Value *a, Value *b, std::string nm)
{
    scAssert(p >= Predicate::OEq && p <= Predicate::OGe,
             "bad fcmp predicate");
    scAssert(a->type() == b->type() && a->type().isFloat(),
             "fcmp needs matching float operands");
    auto inst = std::make_unique<Instruction>(Opcode::FCmp, Type::i1(),
                                              std::move(nm));
    inst->setPredicate(p);
    inst->addOperand(a);
    inst->addOperand(b);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createCast(Opcode op, Value *v, Type to, std::string nm)
{
    scAssert(isCast(op), "createCast with non-cast opcode");
    const Type from = v->type();
    switch (op) {
      case Opcode::Trunc:
        scAssert(from.isInteger() && to.isInteger() &&
                 from.bitWidth() > to.bitWidth(), "bad trunc");
        break;
      case Opcode::ZExt:
      case Opcode::SExt:
        scAssert(from.isInteger() && to.isInteger() &&
                 from.bitWidth() < to.bitWidth(), "bad ext");
        break;
      case Opcode::FPToSI:
        scAssert(from.isFloat() && to.isInteger(), "bad fptosi");
        break;
      case Opcode::SIToFP:
        scAssert(from.isInteger() && to.isFloat(), "bad sitofp");
        break;
      case Opcode::FPTrunc:
        scAssert(from.kind() == TypeKind::F64 &&
                 to.kind() == TypeKind::F32, "bad fptrunc");
        break;
      case Opcode::FPExt:
        scAssert(from.kind() == TypeKind::F32 &&
                 to.kind() == TypeKind::F64, "bad fpext");
        break;
      case Opcode::PtrToInt:
        scAssert(from.isPtr() && to.isInteger(), "bad ptrtoint");
        break;
      case Opcode::IntToPtr:
        scAssert(from.isInteger() && to.isPtr(), "bad inttoptr");
        break;
      default:
        scPanic("unhandled cast");
    }
    auto inst = std::make_unique<Instruction>(op, to, std::move(nm));
    inst->addOperand(v);
    return insert(std::move(inst));
}

Value *
IRBuilder::createIntResize(Value *v, Type to, bool is_signed)
{
    const Type from = v->type();
    scAssert(from.isInteger() && to.isInteger(), "int resize on non-int");
    if (from == to)
        return v;
    if (from.bitWidth() > to.bitWidth())
        return createCast(Opcode::Trunc, v, to);
    return createCast(is_signed ? Opcode::SExt : Opcode::ZExt, v, to);
}

Instruction *
IRBuilder::createAlloca(Type elem, Value *count, std::string nm)
{
    scAssert(!elem.isVoid(), "alloca of void");
    scAssert(count->type().isInteger(), "alloca count must be integer");
    auto inst = std::make_unique<Instruction>(Opcode::Alloca, Type::ptr(),
                                              std::move(nm));
    inst->setElementType(elem);
    inst->addOperand(count);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createLoad(Type elem, Value *ptr, std::string nm)
{
    scAssert(ptr->type().isPtr(), "load from non-pointer");
    scAssert(!elem.isVoid(), "load of void");
    auto inst = std::make_unique<Instruction>(Opcode::Load, elem,
                                              std::move(nm));
    inst->setElementType(elem);
    inst->addOperand(ptr);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createStore(Value *val, Value *ptr)
{
    scAssert(ptr->type().isPtr(), "store to non-pointer");
    auto inst = std::make_unique<Instruction>(Opcode::Store,
                                              Type::voidTy());
    inst->setElementType(val->type());
    inst->addOperand(val);
    inst->addOperand(ptr);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createGep(Value *ptr, Value *index, Type elem, std::string nm)
{
    scAssert(ptr->type().isPtr(), "gep on non-pointer");
    // Indices are always i64 so the interpreter can treat the canonical
    // register value as a signed 64-bit offset without width metadata.
    scAssert(index->type() == Type::i64(), "gep index must be i64");
    scAssert(!elem.isVoid(), "gep with void element type");
    auto inst = std::make_unique<Instruction>(Opcode::Gep, Type::ptr(),
                                              std::move(nm));
    inst->setElementType(elem);
    inst->addOperand(ptr);
    inst->addOperand(index);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createGlobalAddr(const GlobalVariable *g, std::string nm)
{
    scAssert(g, "null global");
    auto inst = std::make_unique<Instruction>(Opcode::GlobalAddr,
                                              Type::ptr(),
                                              std::move(nm));
    inst->setGlobalRef(g);
    inst->setElementType(g->elementType());
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createPhi(Type t, std::string nm)
{
    scAssert(!t.isVoid(), "phi of void");
    auto inst = std::make_unique<Instruction>(Opcode::Phi, t,
                                              std::move(nm));
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createSelect(Value *cond, Value *tv, Value *fv, std::string nm)
{
    scAssert(cond->type() == Type::i1(), "select condition must be i1");
    scAssert(tv->type() == fv->type(), "select arm type mismatch");
    auto inst = std::make_unique<Instruction>(Opcode::Select, tv->type(),
                                              std::move(nm));
    inst->addOperand(cond);
    inst->addOperand(tv);
    inst->addOperand(fv);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createCall(Function *callee,
                      const std::vector<Value *> &call_args,
                      std::string nm)
{
    scAssert(callee, "call with null callee");
    scAssert(call_args.size() == callee->numArgs(),
             "call argument count mismatch for ", callee->name());
    for (std::size_t i = 0; i < call_args.size(); ++i) {
        scAssert(call_args[i]->type() == callee->arg(i)->type(),
                 "call argument ", i, " type mismatch for ",
                 callee->name());
    }
    auto inst = std::make_unique<Instruction>(
        Opcode::Call, callee->returnType(), std::move(nm));
    inst->setCallee(callee);
    for (Value *a : call_args)
        inst->addOperand(a);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createRet(Value *v)
{
    auto inst = std::make_unique<Instruction>(Opcode::Ret, Type::voidTy());
    if (v)
        inst->addOperand(v);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createBr(BasicBlock *dest)
{
    auto inst = std::make_unique<Instruction>(Opcode::Br, Type::voidTy());
    inst->addBlockOperand(dest);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createCondBr(Value *cond, BasicBlock *true_bb,
                        BasicBlock *false_bb)
{
    scAssert(cond->type() == Type::i1(), "condbr condition must be i1");
    auto inst = std::make_unique<Instruction>(Opcode::CondBr,
                                              Type::voidTy());
    inst->addOperand(cond);
    inst->addBlockOperand(true_bb);
    inst->addBlockOperand(false_bb);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createUnaryMath(Opcode op, Value *v, std::string nm)
{
    scAssert(op >= Opcode::Sqrt && op <= Opcode::Cos,
             "not a unary math intrinsic");
    scAssert(v->type().isFloat(), opcodeName(op), " needs float");
    auto inst = std::make_unique<Instruction>(op, v->type(),
                                              std::move(nm));
    inst->addOperand(v);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createBinaryMath(Opcode op, Value *a, Value *b, std::string nm)
{
    scAssert(op == Opcode::FMin || op == Opcode::FMax,
             "not a binary math intrinsic");
    scAssert(a->type() == b->type() && a->type().isFloat(),
             opcodeName(op), " needs matching floats");
    auto inst = std::make_unique<Instruction>(op, a->type(),
                                              std::move(nm));
    inst->addOperand(a);
    inst->addOperand(b);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createCheckEq(Value *orig, Value *dup, int check_id)
{
    scAssert(orig->type() == dup->type(), "check.eq type mismatch");
    auto inst = std::make_unique<Instruction>(Opcode::CheckEq,
                                              Type::voidTy());
    inst->addOperand(orig);
    inst->addOperand(dup);
    inst->setCheckId(check_id);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createCheckOne(Value *v, Value *expected, int check_id)
{
    scAssert(v->type() == expected->type(), "check.one type mismatch");
    auto inst = std::make_unique<Instruction>(Opcode::CheckOne,
                                              Type::voidTy());
    inst->addOperand(v);
    inst->addOperand(expected);
    inst->setCheckId(check_id);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createCheckTwo(Value *v, Value *e0, Value *e1, int check_id)
{
    scAssert(v->type() == e0->type() && v->type() == e1->type(),
             "check.two type mismatch");
    auto inst = std::make_unique<Instruction>(Opcode::CheckTwo,
                                              Type::voidTy());
    inst->addOperand(v);
    inst->addOperand(e0);
    inst->addOperand(e1);
    inst->setCheckId(check_id);
    return insert(std::move(inst));
}

Instruction *
IRBuilder::createCheckRange(Value *v, Value *lo, Value *hi, int check_id)
{
    scAssert(v->type() == lo->type() && v->type() == hi->type(),
             "check.range type mismatch");
    auto inst = std::make_unique<Instruction>(Opcode::CheckRange,
                                              Type::voidTy());
    inst->addOperand(v);
    inst->addOperand(lo);
    inst->addOperand(hi);
    inst->setCheckId(check_id);
    return insert(std::move(inst));
}

} // namespace softcheck
