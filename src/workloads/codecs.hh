/**
 * @file
 * Golden reference codecs (host C++). Two uses:
 *  - produce bitstream inputs for the decoder benchmarks (jpegdec,
 *    g721dec, mp3dec, h264dec), and
 *  - map encoder-benchmark outputs back to the pixel/sample domain so
 *    PSNR/segSNR can be computed (jpegenc, g721enc, mp3enc, h264enc).
 *
 * Stream formats are shared contracts with the MiniLang kernels; see
 * the per-function comments. Fidelity never requires bit-exact parity
 * between C++ and MiniLang arithmetic — only format compatibility —
 * because faulty and golden outputs are post-processed identically.
 */

#ifndef SOFTCHECK_WORKLOADS_CODECS_HH
#define SOFTCHECK_WORKLOADS_CODECS_HH

#include <cstdint>
#include <vector>

namespace softcheck::codecs
{

// ---- JPEG-like image codec ----------------------------------------
// Stream: [nblocks] then per block: (run, value) pairs in zigzag order,
// terminated by the pair (99, 0). Quant step at zigzag position k is
// 10 + k. Blocks are 8x8 in raster order; dims must be multiples of 8.

std::vector<int32_t> jpegEncode(const std::vector<int32_t> &img,
                                unsigned w, unsigned h);
std::vector<int32_t> jpegDecode(const std::vector<int32_t> &stream,
                                unsigned w, unsigned h);

/** Worst-case stream length for a w x h image. */
std::size_t jpegMaxStream(unsigned w, unsigned h);

// ---- IMA-ADPCM audio codec (G.721 stand-in) ------------------------
// One 4-bit code (stored as one int32) per input sample.

std::vector<int32_t> adpcmEncode(const std::vector<int32_t> &samples);
std::vector<int32_t> adpcmDecode(const std::vector<int32_t> &codes);

// ---- Subband (MP3 stand-in) audio codec -----------------------------
// Frames of 32 samples; per frame: 32 quantized DCT coefficients + 1
// CRC word over the coefficients. Sample count must be a multiple of
// 32. Stream length = (n/32) * 33.

std::vector<int32_t> subbandEncode(const std::vector<int32_t> &samples);
std::vector<int32_t> subbandDecode(const std::vector<int32_t> &stream,
                                   unsigned num_samples);

/** CRC used by the subband codec (table-driven, poly 0xEDB88320). */
int32_t subbandCrc(const int32_t *coeffs, unsigned n);

// ---- Motion-compensated video codec (H.264 stand-in) ----------------
// Frames of w x h (multiples of 8); frame 0 intra-coded (64 quantized
// coefficients per 8x8 block, step 10), frames 1.. inter-coded: per
// block [mvx, mvy, 64 residual coefficients] (step 8), motion search
// +-2 against the previously *decoded* frame.

std::vector<int32_t> videoEncode(const std::vector<int32_t> &frames,
                                 unsigned w, unsigned h,
                                 unsigned num_frames);
std::vector<int32_t> videoDecode(const std::vector<int32_t> &stream,
                                 unsigned w, unsigned h,
                                 unsigned num_frames);

} // namespace softcheck::codecs

#endif // SOFTCHECK_WORKLOADS_CODECS_HH
