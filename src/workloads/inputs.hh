/**
 * @file
 * Deterministic synthetic input generators standing in for the paper's
 * media/ML inputs (which are proprietary or unavailable offline). The
 * generators produce realistic locality: smooth shaded regions, edges
 * and periodic texture for images; multi-tone signals with envelopes
 * for audio; translating patterns for video; Gaussian clusters and
 * linearly separable classes for the ML kernels. Train and test inputs
 * use different seeds and sizes, per Table I.
 */

#ifndef SOFTCHECK_WORKLOADS_INPUTS_HH
#define SOFTCHECK_WORKLOADS_INPUTS_HH

#include <cstdint>
#include <vector>

namespace softcheck
{

/** Grayscale image, row-major, values 0..255. */
std::vector<int32_t> makeImage(unsigned w, unsigned h, uint64_t seed);

/** Interleaved RGB image (3 * w * h values 0..255). */
std::vector<int32_t> makeRgbImage(unsigned w, unsigned h, uint64_t seed);

/** 16-bit PCM-like audio samples in [-32768, 32767]. */
std::vector<int32_t> makeAudio(unsigned n, uint64_t seed);

/** Video: @p frames grayscale frames of w x h with global motion. */
std::vector<int32_t> makeVideo(unsigned frames, unsigned w, unsigned h,
                               uint64_t seed);

/** Gaussian clusters: n points x dims features around k centers
 * (row-major doubles in [0, 100] roughly). */
std::vector<double> makeClusterData(unsigned n, unsigned dims,
                                    unsigned k, uint64_t seed);

/** Linearly separable (noisy) labeled data: features row-major; labels
 * +1/-1 written to @p labels. */
std::vector<double> makeLabeledData(unsigned n, unsigned dims,
                                    uint64_t seed,
                                    std::vector<int32_t> &labels);

} // namespace softcheck

#endif // SOFTCHECK_WORKLOADS_INPUTS_HH
