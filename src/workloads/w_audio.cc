/**
 * @file
 * Audio benchmarks (paper Table I): g721enc/g721dec (IMA-ADPCM codec
 * standing in for G.721) and mp3enc/mp3dec (32-band DCT subband codec
 * with per-frame CRC, whose CRC loop mirrors the paper's Fig. 3).
 */

#include "workloads/codecs.hh"
#include "workloads/inputs.hh"
#include "workloads/workloads_internal.hh"

namespace softcheck
{

namespace
{

/** Shared ADPCM tables (identical to codecs.cc; consistency is the
 * format contract between the MiniLang and C++ halves). */
const char *kAdpcmTables = R"(
const STEP: i32[89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16,
    17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88,
    97, 107, 118, 130, 143, 157, 173, 190, 209,
    230, 253, 279, 307, 337, 371, 408, 449, 494,
    544, 598, 658, 724, 796, 876, 963, 1060, 1166,
    1282, 1411, 1552, 1707, 1878, 2066, 2272, 2499, 2749,
    3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484,
    7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767];
const IDX: i32[16] = [
    -1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];
)";

/** g721enc: main(codes, samples, n) -> final predictor value. */
const std::string kG721encSrc = std::string(kAdpcmTables) + R"(
fn main(codes: ptr<i32>, samples: ptr<i32>, n: i32) -> i32 {
    var pred: i32 = 0;
    var index: i32 = 0;
    for (var i: i32 = 0; i < n; i = i + 1) {
        var step: i32 = STEP[index];
        var diff: i32 = samples[i] - pred;
        var code: i32 = 0;
        if (diff < 0) {
            code = 8;
            diff = -diff;
        }
        if (diff >= step) {
            code = code | 4;
            diff = diff - step;
        }
        if (diff >= step / 2) {
            code = code | 2;
            diff = diff - step / 2;
        }
        if (diff >= step / 4) {
            code = code | 1;
        }

        var delta: i32 = step / 8;
        if ((code & 1) != 0) { delta = delta + step / 4; }
        if ((code & 2) != 0) { delta = delta + step / 2; }
        if ((code & 4) != 0) { delta = delta + step; }
        if ((code & 8) != 0) {
            pred = pred - delta;
        } else {
            pred = pred + delta;
        }
        if (pred > 32767) { pred = 32767; }
        if (pred < -32768) { pred = -32768; }
        index = index + IDX[code];
        if (index < 0) { index = 0; }
        if (index > 88) { index = 88; }
        codes[i] = code;
    }
    return pred;
}
)";

/** g721dec: main(samples, codes, n) -> final predictor value. */
const std::string kG721decSrc = std::string(kAdpcmTables) + R"(
fn main(samples: ptr<i32>, codes: ptr<i32>, n: i32) -> i32 {
    var pred: i32 = 0;
    var index: i32 = 0;
    for (var i: i32 = 0; i < n; i = i + 1) {
        var code: i32 = codes[i];
        var step: i32 = STEP[index];
        var delta: i32 = step / 8;
        if ((code & 1) != 0) { delta = delta + step / 4; }
        if ((code & 2) != 0) { delta = delta + step / 2; }
        if ((code & 4) != 0) { delta = delta + step; }
        if ((code & 8) != 0) {
            pred = pred - delta;
        } else {
            pred = pred + delta;
        }
        if (pred > 32767) { pred = 32767; }
        if (pred < -32768) { pred = -32768; }
        index = index + IDX[code & 15];
        if (index < 0) { index = 0; }
        if (index > 88) { index = 88; }
        samples[i] = pred;
    }
    return pred;
}
)";

/** Shared CRC-table builder + frame CRC (cf. paper Fig. 3's crc loop). */
const char *kCrcHelpers = R"(
const PI: f64 = 3.141592653589793;

fn build_crc_table(tab: ptr<i32>) -> void {
    for (var i: i32 = 0; i < 256; i = i + 1) {
        var c: i32 = i;
        for (var k: i32 = 0; k < 8; k = k + 1) {
            if ((c & 1) != 0) {
                c = -306674912 ^ ((c >> 1) & 2147483647);
            } else {
                c = (c >> 1) & 2147483647;
            }
        }
        tab[i] = c;
    }
}

fn frame_crc(tab: ptr<i32>, q: ptr<i32>, base: i32, n: i32) -> i32 {
    var crc: i32 = -1;
    for (var i: i32 = 0; i < n; i = i + 1) {
        var byte: i32 = q[base + i] & 255;
        var idx: i32 = (crc ^ byte) & 255;
        crc = tab[idx] ^ ((crc >> 8) & 16777215);
    }
    return crc;
}
)";

/**
 * mp3enc: 32-sample frames, 32-point DCT, per-band quantization and a
 * CRC word per frame. main(stream, samples, nframes) -> last crc.
 */
const std::string kMp3encSrc = std::string(kCrcHelpers) + R"(
fn quantize(v: f64, step: f64) -> i32 {
    var q: f64 = v / step;
    if (q >= 0.0) {
        return i32(q + 0.5);
    }
    return i32(q - 0.5);
}

fn main(stream: ptr<i32>, samples: ptr<i32>, nframes: i32) -> i32 {
    var crctab: i32[256];
    build_crc_table(crctab);

    // DCT-II basis: ct[n*32+k] = cos((2n+1) k pi / 64).
    var ct: f64[1024];
    for (var n2: i32 = 0; n2 < 32; n2 = n2 + 1) {
        for (var k2: i32 = 0; k2 < 32; k2 = k2 + 1) {
            ct[n2 * 32 + k2] =
                cos(f64(2 * n2 + 1) * f64(k2) * PI / 64.0);
        }
    }
    var s0: f64 = sqrt(1.0 / 32.0);
    var s1: f64 = sqrt(2.0 / 32.0);

    var crc: i32 = 0;
    for (var f: i32 = 0; f < nframes; f = f + 1) {
        var base: i32 = f * 33;
        for (var k: i32 = 0; k < 32; k = k + 1) {
            var acc: f64 = 0.0;
            for (var n: i32 = 0; n < 32; n = n + 1) {
                acc = acc + f64(samples[f * 32 + n]) * ct[n * 32 + k];
            }
            var scale: f64 = s1;
            if (k == 0) {
                scale = s0;
            }
            var step: f64 = 4.0 + 3.0 * f64(k / 4);
            stream[base + k] = quantize(acc * scale, step);
        }
        crc = frame_crc(crctab, stream, base, 32);
        stream[base + 32] = crc;
    }
    return crc;
}
)";

/**
 * mp3dec: verifies each frame's CRC (counting mismatches), then
 * dequantizes and runs the inverse DCT.
 * main(samples, stream, nframes) -> number of CRC mismatches.
 */
const std::string kMp3decSrc = std::string(kCrcHelpers) + R"(
fn main(samples: ptr<i32>, stream: ptr<i32>, nframes: i32) -> i32 {
    var crctab: i32[256];
    build_crc_table(crctab);

    var ct: f64[1024];
    for (var n2: i32 = 0; n2 < 32; n2 = n2 + 1) {
        for (var k2: i32 = 0; k2 < 32; k2 = k2 + 1) {
            ct[n2 * 32 + k2] =
                cos(f64(2 * n2 + 1) * f64(k2) * PI / 64.0);
        }
    }
    var s0: f64 = sqrt(1.0 / 32.0);
    var s1: f64 = sqrt(2.0 / 32.0);

    var bad: i32 = 0;
    for (var f: i32 = 0; f < nframes; f = f + 1) {
        var base: i32 = f * 33;
        var crc: i32 = frame_crc(crctab, stream, base, 32);
        if (crc != stream[base + 32]) {
            bad = bad + 1;
        }
        for (var n: i32 = 0; n < 32; n = n + 1) {
            var acc: f64 = 0.0;
            for (var k: i32 = 0; k < 32; k = k + 1) {
                var scale: f64 = s1;
                if (k == 0) {
                    scale = s0;
                }
                var step: f64 = 4.0 + 3.0 * f64(k / 4);
                acc = acc + f64(stream[base + k]) * step * scale
                          * ct[n * 32 + k];
            }
            var v: i32 = i32(acc);
            if (v > 32767) { v = 32767; }
            if (v < -32768) { v = -32768; }
            samples[f * 32 + n] = v;
        }
    }
    return bad;
}
)";

WorkloadRunSpec
g721encInput(bool train)
{
    const unsigned n = train ? 2048 : 1536;
    auto audio = makeAudio(n, train ? 5001 : 6002);
    WorkloadRunSpec spec;
    spec.args.push_back(WorkloadArg::outputBuffer(Type::i32(), n));
    spec.args.push_back(
        WorkloadArg::buffer(Type::i32(), toWords(audio)));
    spec.args.push_back(WorkloadArg::scalarI32(n));
    return spec;
}

WorkloadRunSpec
g721decInput(bool train)
{
    const unsigned n = train ? 2048 : 1536;
    auto audio = makeAudio(n, train ? 5003 : 6004);
    auto codes = codecs::adpcmEncode(audio);
    WorkloadRunSpec spec;
    spec.args.push_back(WorkloadArg::outputBuffer(Type::i32(), n));
    spec.args.push_back(
        WorkloadArg::buffer(Type::i32(), toWords(codes)));
    spec.args.push_back(WorkloadArg::scalarI32(n));
    return spec;
}

WorkloadRunSpec
mp3encInput(bool train)
{
    const unsigned frames = train ? 48 : 32;
    auto audio = makeAudio(frames * 32, train ? 5005 : 6006);
    WorkloadRunSpec spec;
    spec.args.push_back(WorkloadArg::outputBuffer(
        Type::i32(), static_cast<uint64_t>(frames) * 33));
    spec.args.push_back(
        WorkloadArg::buffer(Type::i32(), toWords(audio)));
    spec.args.push_back(WorkloadArg::scalarI32(frames));
    return spec;
}

WorkloadRunSpec
mp3decInput(bool train)
{
    const unsigned frames = train ? 48 : 32;
    auto audio = makeAudio(frames * 32, train ? 5007 : 6008);
    auto stream = codecs::subbandEncode(audio);
    WorkloadRunSpec spec;
    spec.args.push_back(WorkloadArg::outputBuffer(
        Type::i32(), static_cast<uint64_t>(frames) * 32));
    spec.args.push_back(
        WorkloadArg::buffer(Type::i32(), toWords(stream)));
    spec.args.push_back(WorkloadArg::scalarI32(frames));
    return spec;
}

} // namespace

void
appendAudioWorkloads(std::vector<Workload> &out)
{
    {
        Workload w;
        w.name = "g721enc";
        w.category = "audio";
        w.description = "IMA-ADPCM audio encoder (G.721 stand-in)";
        w.source = kG721encSrc.c_str();
        w.fidelity = FidelityKind::SegmentalSnr;
        w.threshold = 80.0;
        w.makeInput = g721encInput;
        w.fidelitySignal = [](const WorkloadRunSpec &,
                              const RawOutput &raw) {
            auto samples = codecs::adpcmDecode(fromDoubles(raw[0]));
            return std::vector<double>(samples.begin(), samples.end());
        };
        out.push_back(std::move(w));
    }
    {
        Workload w;
        w.name = "g721dec";
        w.category = "audio";
        w.description = "IMA-ADPCM audio decoder (G.721 stand-in)";
        w.source = kG721decSrc.c_str();
        w.fidelity = FidelityKind::SegmentalSnr;
        w.threshold = 80.0;
        w.makeInput = g721decInput;
        out.push_back(std::move(w));
    }
    {
        Workload w;
        w.name = "mp3enc";
        w.category = "audio";
        w.description = "32-band subband audio encoder with frame CRC";
        w.source = kMp3encSrc.c_str();
        w.fidelity = FidelityKind::Psnr;
        w.threshold = 30.0;
        w.makeInput = mp3encInput;
        w.fidelitySignal = [](const WorkloadRunSpec &spec,
                              const RawOutput &raw) {
            const unsigned frames =
                static_cast<unsigned>(spec.args[2].scalar);
            auto samples = codecs::subbandDecode(fromDoubles(raw[0]),
                                                 frames * 32);
            return std::vector<double>(samples.begin(), samples.end());
        };
        out.push_back(std::move(w));
    }
    {
        Workload w;
        w.name = "mp3dec";
        w.category = "audio";
        w.description =
            "subband audio decoder with CRC verification loop (Fig. 3)";
        w.source = kMp3decSrc.c_str();
        w.fidelity = FidelityKind::Psnr;
        w.threshold = 30.0;
        w.makeInput = mp3decInput;
        out.push_back(std::move(w));
    }
}

} // namespace softcheck
