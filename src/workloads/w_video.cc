/**
 * @file
 * Video benchmarks (paper Table I, mediabench II): h264enc / h264dec —
 * a block-based motion-compensated codec (intra DCT frame 0, +-2
 * motion search and residual DCT for P frames).
 */

#include "workloads/codecs.hh"
#include "workloads/inputs.hh"
#include "workloads/workloads_internal.hh"

namespace softcheck
{

namespace
{

const char *kDctHelpers = R"(
const PI: f64 = 3.141592653589793;

fn quantize(v: f64, step: f64) -> i32 {
    var q: f64 = v / step;
    if (q >= 0.0) {
        return i32(q + 0.5);
    }
    return i32(q - 0.5);
}
)";

/**
 * h264enc: main(stream, frames, w, h, nf) -> stream length.
 * Stream: frame 0 intra (64 coeffs / block, step 10); P frames per
 * block: mvx, mvy, 64 residual coeffs (step 8). Motion search is
 * against the previous *original* frame (open-loop; fidelity compares
 * two decodes of the same format, so encoder drift cancels).
 */
const std::string kH264encSrc = std::string(kDctHelpers) + R"(
fn fdct_block(px: ptr<f64>, coef: ptr<f64>, ct: ptr<f64>,
              cs: ptr<f64>) -> void {
    var tmp: f64[64];
    for (var y: i32 = 0; y < 8; y = y + 1) {
        for (var v: i32 = 0; v < 8; v = v + 1) {
            var acc: f64 = 0.0;
            for (var x: i32 = 0; x < 8; x = x + 1) {
                acc = acc + px[y * 8 + x] * ct[x * 8 + v];
            }
            tmp[y * 8 + v] = acc * cs[v] * 0.5;
        }
    }
    for (var u: i32 = 0; u < 8; u = u + 1) {
        for (var v2: i32 = 0; v2 < 8; v2 = v2 + 1) {
            var acc2: f64 = 0.0;
            for (var y2: i32 = 0; y2 < 8; y2 = y2 + 1) {
                acc2 = acc2 + tmp[y2 * 8 + v2] * ct[y2 * 8 + u];
            }
            coef[u * 8 + v2] = acc2 * cs[u] * 0.5;
        }
    }
}

fn main(stream: ptr<i32>, frames: ptr<i32>, w: i32, h: i32,
        nf: i32) -> i32 {
    var ct: f64[64];
    for (var x: i32 = 0; x < 8; x = x + 1) {
        for (var u: i32 = 0; u < 8; u = u + 1) {
            ct[x * 8 + u] = cos(f64(2 * x + 1) * f64(u) * PI / 16.0);
        }
    }
    var cs: f64[8];
    cs[0] = 0.7071067811865476;
    for (var u2: i32 = 1; u2 < 8; u2 = u2 + 1) {
        cs[u2] = 1.0;
    }

    var bw: i32 = w / 8;
    var bh: i32 = h / 8;
    var fsz: i32 = w * h;
    var pos: i32 = 0;
    var px: f64[64];
    var coef: f64[64];

    // Intra frame 0.
    for (var b: i32 = 0; b < bw * bh; b = b + 1) {
        var by: i32 = b / bw;
        var bx: i32 = b - by * bw;
        for (var y: i32 = 0; y < 8; y = y + 1) {
            for (var x2: i32 = 0; x2 < 8; x2 = x2 + 1) {
                px[y * 8 + x2] =
                    f64(frames[(by * 8 + y) * w + bx * 8 + x2] - 128);
            }
        }
        fdct_block(px, coef, ct, cs);
        for (var k: i32 = 0; k < 64; k = k + 1) {
            stream[pos + k] = quantize(coef[k], 10.0);
        }
        pos = pos + 64;
    }

    // P frames.
    for (var f: i32 = 1; f < nf; f = f + 1) {
        for (var b2: i32 = 0; b2 < bw * bh; b2 = b2 + 1) {
            var by2: i32 = b2 / bw;
            var bx2: i32 = b2 - by2 * bw;
            var bestsad: i32 = 2000000000;
            var bestdx: i32 = 0;
            var bestdy: i32 = 0;
            for (var dy: i32 = -2; dy <= 2; dy = dy + 1) {
                for (var dx: i32 = -2; dx <= 2; dx = dx + 1) {
                    var px0: i32 = bx2 * 8 + dx;
                    var py0: i32 = by2 * 8 + dy;
                    if (px0 >= 0 && py0 >= 0 && px0 + 8 <= w
                        && py0 + 8 <= h) {
                        var sad: i32 = 0;
                        for (var y3: i32 = 0; y3 < 8; y3 = y3 + 1) {
                            for (var x3: i32 = 0; x3 < 8; x3 = x3 + 1) {
                                var d: i32 =
                                    frames[f * fsz + (by2 * 8 + y3) * w
                                           + bx2 * 8 + x3]
                                  - frames[(f - 1) * fsz
                                           + (py0 + y3) * w + px0 + x3];
                                if (d < 0) {
                                    d = -d;
                                }
                                sad = sad + d;
                            }
                        }
                        if (sad < bestsad) {
                            bestsad = sad;
                            bestdx = dx;
                            bestdy = dy;
                        }
                    }
                }
            }
            stream[pos] = bestdx;
            stream[pos + 1] = bestdy;
            pos = pos + 2;
            for (var y4: i32 = 0; y4 < 8; y4 = y4 + 1) {
                for (var x4: i32 = 0; x4 < 8; x4 = x4 + 1) {
                    px[y4 * 8 + x4] =
                        f64(frames[f * fsz + (by2 * 8 + y4) * w
                                   + bx2 * 8 + x4]
                          - frames[(f - 1) * fsz
                                   + (by2 * 8 + y4 + bestdy) * w
                                   + bx2 * 8 + x4 + bestdx]);
                }
            }
            fdct_block(px, coef, ct, cs);
            for (var k2: i32 = 0; k2 < 64; k2 = k2 + 1) {
                stream[pos + k2] = quantize(coef[k2], 8.0);
            }
            pos = pos + 64;
        }
    }
    return pos;
}
)";

/**
 * h264dec: main(out_frames, stream, w, h, nf) -> stream length read.
 * Mirrors codecs::videoDecode.
 */
const std::string kH264decSrc = std::string(kDctHelpers) + R"(
fn idct_block(coef: ptr<f64>, px: ptr<f64>, ct: ptr<f64>,
              cs: ptr<f64>) -> void {
    var tmp: f64[64];
    for (var y: i32 = 0; y < 8; y = y + 1) {
        for (var v: i32 = 0; v < 8; v = v + 1) {
            var acc: f64 = 0.0;
            for (var u: i32 = 0; u < 8; u = u + 1) {
                acc = acc + cs[u] * coef[u * 8 + v] * ct[y * 8 + u];
            }
            tmp[y * 8 + v] = acc * 0.5;
        }
    }
    for (var y2: i32 = 0; y2 < 8; y2 = y2 + 1) {
        for (var x: i32 = 0; x < 8; x = x + 1) {
            var acc2: f64 = 0.0;
            for (var v2: i32 = 0; v2 < 8; v2 = v2 + 1) {
                acc2 = acc2 + cs[v2] * tmp[y2 * 8 + v2] * ct[x * 8 + v2];
            }
            px[y2 * 8 + x] = acc2 * 0.5;
        }
    }
}

fn main(out: ptr<i32>, stream: ptr<i32>, w: i32, h: i32,
        nf: i32) -> i32 {
    var ct: f64[64];
    for (var x: i32 = 0; x < 8; x = x + 1) {
        for (var u: i32 = 0; u < 8; u = u + 1) {
            ct[x * 8 + u] = cos(f64(2 * x + 1) * f64(u) * PI / 16.0);
        }
    }
    var cs: f64[8];
    cs[0] = 0.7071067811865476;
    for (var u2: i32 = 1; u2 < 8; u2 = u2 + 1) {
        cs[u2] = 1.0;
    }

    var bw: i32 = w / 8;
    var bh: i32 = h / 8;
    var fsz: i32 = w * h;
    var pos: i32 = 0;
    var coef: f64[64];
    var px: f64[64];

    // Intra frame 0.
    for (var b: i32 = 0; b < bw * bh; b = b + 1) {
        var by: i32 = b / bw;
        var bx: i32 = b - by * bw;
        for (var k: i32 = 0; k < 64; k = k + 1) {
            coef[k] = f64(stream[pos + k]) * 10.0;
        }
        pos = pos + 64;
        idct_block(coef, px, ct, cs);
        for (var y: i32 = 0; y < 8; y = y + 1) {
            for (var x2: i32 = 0; x2 < 8; x2 = x2 + 1) {
                var p: i32 = i32(px[y * 8 + x2] + 128.5);
                if (p < 0) { p = 0; }
                if (p > 255) { p = 255; }
                out[(by * 8 + y) * w + bx * 8 + x2] = p;
            }
        }
    }

    // P frames.
    for (var f: i32 = 1; f < nf; f = f + 1) {
        for (var b2: i32 = 0; b2 < bw * bh; b2 = b2 + 1) {
            var by2: i32 = b2 / bw;
            var bx2: i32 = b2 - by2 * bw;
            var dx: i32 = stream[pos];
            var dy: i32 = stream[pos + 1];
            pos = pos + 2;
            for (var k2: i32 = 0; k2 < 64; k2 = k2 + 1) {
                coef[k2] = f64(stream[pos + k2]) * 8.0;
            }
            pos = pos + 64;
            idct_block(coef, px, ct, cs);
            for (var y2: i32 = 0; y2 < 8; y2 = y2 + 1) {
                for (var x3: i32 = 0; x3 < 8; x3 = x3 + 1) {
                    var py: i32 = by2 * 8 + y2 + dy;
                    var px2: i32 = bx2 * 8 + x3 + dx;
                    var pred: i32 = 128;
                    if (py >= 0 && px2 >= 0 && py < h && px2 < w) {
                        pred = out[(f - 1) * fsz + py * w + px2];
                    }
                    var rv: f64 = px[y2 * 8 + x3];
                    var p2: i32 = 0;
                    if (rv >= 0.0) {
                        p2 = pred + i32(rv + 0.5);
                    } else {
                        p2 = pred + i32(rv - 0.5);
                    }
                    if (p2 < 0) { p2 = 0; }
                    if (p2 > 255) { p2 = 255; }
                    out[f * fsz + (by2 * 8 + y2) * w + bx2 * 8 + x3] = p2;
                }
            }
        }
    }
    return pos;
}
)";

constexpr unsigned kW = 32, kH = 24;

WorkloadRunSpec
h264encInput(bool train)
{
    const unsigned nf = train ? 4 : 3;
    auto video = makeVideo(nf, kW, kH, train ? 7001 : 8002);
    const uint64_t blocks = (kW / 8) * (kH / 8);
    const uint64_t stream_len =
        blocks * 64 + (nf - 1) * blocks * 66;
    WorkloadRunSpec spec;
    spec.args.push_back(
        WorkloadArg::outputBuffer(Type::i32(), stream_len));
    spec.args.push_back(
        WorkloadArg::buffer(Type::i32(), toWords(video)));
    spec.args.push_back(WorkloadArg::scalarI32(kW));
    spec.args.push_back(WorkloadArg::scalarI32(kH));
    spec.args.push_back(WorkloadArg::scalarI32(nf));
    return spec;
}

WorkloadRunSpec
h264decInput(bool train)
{
    const unsigned nf = train ? 4 : 3;
    auto video = makeVideo(nf, kW, kH, train ? 7003 : 8004);
    auto stream = codecs::videoEncode(video, kW, kH, nf);
    WorkloadRunSpec spec;
    spec.args.push_back(WorkloadArg::outputBuffer(
        Type::i32(), static_cast<uint64_t>(kW) * kH * nf));
    spec.args.push_back(
        WorkloadArg::buffer(Type::i32(), toWords(stream)));
    spec.args.push_back(WorkloadArg::scalarI32(kW));
    spec.args.push_back(WorkloadArg::scalarI32(kH));
    spec.args.push_back(WorkloadArg::scalarI32(nf));
    return spec;
}

} // namespace

void
appendVideoWorkloads(std::vector<Workload> &out)
{
    {
        Workload w;
        w.name = "h264enc";
        w.category = "video";
        w.description =
            "motion-compensated video encoder (intra + P frames)";
        w.source = kH264encSrc.c_str();
        w.fidelity = FidelityKind::Psnr;
        w.threshold = 30.0;
        w.makeInput = h264encInput;
        w.fidelitySignal = [](const WorkloadRunSpec &spec,
                              const RawOutput &raw) {
            const unsigned nf =
                static_cast<unsigned>(spec.args[4].scalar);
            auto frames = codecs::videoDecode(fromDoubles(raw[0]), kW,
                                              kH, nf);
            return std::vector<double>(frames.begin(), frames.end());
        };
        out.push_back(std::move(w));
    }
    {
        Workload w;
        w.name = "h264dec";
        w.category = "video";
        w.description = "motion-compensated video decoder";
        w.source = kH264decSrc.c_str();
        w.fidelity = FidelityKind::Psnr;
        w.threshold = 30.0;
        w.makeInput = h264decInput;
        out.push_back(std::move(w));
    }
}

} // namespace softcheck
