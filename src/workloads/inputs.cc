#include "workloads/inputs.hh"

#include <algorithm>
#include <cmath>

#include "support/rng.hh"

namespace softcheck
{

namespace
{

int32_t
clamp255(double v)
{
    return static_cast<int32_t>(std::clamp(v, 0.0, 255.0));
}

} // namespace

std::vector<int32_t>
makeImage(unsigned w, unsigned h, uint64_t seed)
{
    Rng rng(seed);
    // Scene statistics stay in a narrow family across seeds (paper:
    // profiling inputs are representative of test inputs); the phase,
    // edge position and noise vary freely.
    const double gx = 65.0 + 15.0 * rng.nextDouble();
    const double phase = rng.nextDouble() * 6.28318;
    const double fx = 0.22 + 0.06 * rng.nextDouble();
    const double fy = 0.16 + 0.06 * rng.nextDouble();
    const unsigned edge_x = w / 3 + static_cast<unsigned>(
                                        rng.nextBelow(std::max(1u, w / 4)));
    std::vector<int32_t> img(static_cast<std::size_t>(w) * h);
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            // Smooth gradient + sinusoidal texture + one hard edge +
            // small deterministic noise.
            double v = gx + 90.0 * (double(y) / h) +
                       35.0 * std::sin(fx * x + phase) *
                           std::cos(fy * y);
            if (x > edge_x)
                v += 60.0;
            v += 6.0 * (rng.nextDouble() - 0.5);
            img[static_cast<std::size_t>(y) * w + x] = clamp255(v);
        }
    }
    return img;
}

std::vector<int32_t>
makeRgbImage(unsigned w, unsigned h, uint64_t seed)
{
    auto r = makeImage(w, h, seed);
    auto g = makeImage(w, h, seed ^ 0x1111);
    auto b = makeImage(w, h, seed ^ 0x2222);
    std::vector<int32_t> out;
    out.reserve(3 * r.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
        out.push_back(r[i]);
        out.push_back(g[i]);
        out.push_back(b[i]);
    }
    return out;
}

std::vector<int32_t>
makeAudio(unsigned n, uint64_t seed)
{
    Rng rng(seed);
    const double f1 = 0.01 + 0.05 * rng.nextDouble();
    const double f2 = 0.07 + 0.1 * rng.nextDouble();
    const double f3 = 0.2 + 0.2 * rng.nextDouble();
    std::vector<int32_t> out(n);
    for (unsigned i = 0; i < n; ++i) {
        const double env =
            0.4 + 0.6 * std::fabs(std::sin(i * 3.14159 / n * 3.0));
        double v = 9000.0 * std::sin(f1 * i) +
                   5000.0 * std::sin(f2 * i + 1.0) +
                   2500.0 * std::sin(f3 * i + 2.0);
        v = env * v + 120.0 * (rng.nextDouble() - 0.5);
        out[i] = static_cast<int32_t>(
            std::clamp(v, -32768.0, 32767.0));
    }
    return out;
}

std::vector<int32_t>
makeVideo(unsigned frames, unsigned w, unsigned h, uint64_t seed)
{
    Rng rng(seed);
    // A base texture translated per frame (global motion), plus a small
    // moving bright square (local motion).
    const unsigned bw = 2 * w, bh = 2 * h;
    auto base = makeImage(bw, bh, seed ^ 0xabcd);
    const int dx = 1 + static_cast<int>(rng.nextBelow(2));
    const int dy = static_cast<int>(rng.nextBelow(2));
    std::vector<int32_t> out;
    out.reserve(static_cast<std::size_t>(frames) * w * h);
    for (unsigned f = 0; f < frames; ++f) {
        const unsigned ox = (f * static_cast<unsigned>(dx)) % (bw - w);
        const unsigned oy = (f * static_cast<unsigned>(dy)) % (bh - h);
        const unsigned sq_x = (5 + 3 * f) % (w - 6);
        const unsigned sq_y = (4 + 2 * f) % (h - 6);
        for (unsigned y = 0; y < h; ++y) {
            for (unsigned x = 0; x < w; ++x) {
                int32_t v = base[static_cast<std::size_t>(oy + y) * bw +
                                 ox + x];
                if (x >= sq_x && x < sq_x + 5 && y >= sq_y &&
                    y < sq_y + 5)
                    v = std::min(255, v + 70);
                out.push_back(v);
            }
        }
    }
    return out;
}

std::vector<double>
makeClusterData(unsigned n, unsigned dims, unsigned k, uint64_t seed)
{
    // Cluster centers come from a fixed stream so train and test
    // inputs are drawn from the same distribution (the paper's
    // "representative input" assumption for profiling); only the
    // samples vary with the seed.
    Rng center_rng(0xC3A7E55ULL + k * 131 + dims);
    Rng rng(seed);
    std::vector<std::vector<double>> centers(k,
                                             std::vector<double>(dims));
    for (auto &c : centers) {
        for (double &v : c)
            v = 100.0 * center_rng.nextDouble();
    }
    std::vector<double> data;
    data.reserve(static_cast<std::size_t>(n) * dims);
    for (unsigned i = 0; i < n; ++i) {
        const auto &c = centers[i % k];
        for (unsigned d = 0; d < dims; ++d)
            data.push_back(c[d] + 6.0 * rng.nextGaussian());
    }
    return data;
}

std::vector<double>
makeLabeledData(unsigned n, unsigned dims, uint64_t seed,
                std::vector<int32_t> &labels)
{
    // The ground-truth weight vector is shared across seeds (same
    // underlying classification task); only the sampled points differ.
    Rng weight_rng(0x5E9AULL + dims);
    Rng rng(seed);
    std::vector<double> w(dims);
    for (double &v : w)
        v = weight_rng.nextGaussian();
    std::vector<double> data;
    data.reserve(static_cast<std::size_t>(n) * dims);
    labels.clear();
    labels.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        double dot = 0.0;
        std::vector<double> x(dims);
        for (unsigned d = 0; d < dims; ++d) {
            x[d] = 4.0 * rng.nextGaussian();
            dot += w[d] * x[d];
        }
        // ~5% label noise keeps the problem realistic.
        int32_t label = dot >= 0.0 ? 1 : -1;
        if (rng.nextDouble() < 0.05)
            label = -label;
        labels.push_back(label);
        for (unsigned d = 0; d < dims; ++d)
            data.push_back(x[d]);
    }
    return data;
}

} // namespace softcheck
