/**
 * @file
 * Workload framework: the 13 soft-computing benchmarks of the paper's
 * Table I, re-implemented as MiniLang kernels with deterministic
 * synthetic inputs, golden reference codecs (for encoder fidelity), and
 * per-benchmark fidelity metrics/thresholds.
 */

#ifndef SOFTCHECK_WORKLOADS_WORKLOAD_HH
#define SOFTCHECK_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fidelity/fidelity.hh"
#include "interp/interpreter.hh"
#include "ir/type.hh"

namespace softcheck
{

/** One entry-function argument: a memory buffer or a scalar. */
struct WorkloadArg
{
    enum class Kind : uint8_t
    {
        Buffer,
        Scalar
    };
    Kind kind = Kind::Scalar;

    // Buffer
    Type elem;                   //!< element type
    std::vector<uint64_t> data;  //!< canonical initial contents
    uint64_t count = 0;          //!< element count
    bool isOutput = false;       //!< read back after the run

    // Scalar
    uint64_t scalar = 0;

    static WorkloadArg
    buffer(Type elem_ty, std::vector<uint64_t> init, bool output = false)
    {
        WorkloadArg a;
        a.kind = Kind::Buffer;
        a.elem = elem_ty;
        a.count = init.size();
        a.data = std::move(init);
        a.isOutput = output;
        return a;
    }

    static WorkloadArg
    outputBuffer(Type elem_ty, uint64_t count)
    {
        WorkloadArg a;
        a.kind = Kind::Buffer;
        a.elem = elem_ty;
        a.count = count;
        a.data.assign(count, 0);
        a.isOutput = true;
        return a;
    }

    static WorkloadArg
    scalarI32(int64_t v)
    {
        WorkloadArg a;
        a.kind = Kind::Scalar;
        a.scalar = truncBits(static_cast<uint64_t>(v), 32);
        return a;
    }
};

/** Concrete input instance (train or test). */
struct WorkloadRunSpec
{
    std::vector<WorkloadArg> args;
};

/**
 * Raw output of one run: the contents of each output buffer, in
 * argument order, converted to doubles per the element type.
 */
using RawOutput = std::vector<std::vector<double>>;

/** Static description of one benchmark. */
struct Workload
{
    std::string name;       //!< e.g. "jpegdec"
    std::string category;   //!< image / vision / audio / video / ml
    std::string description;
    const char *source = nullptr; //!< MiniLang source text
    std::string entry = "main";

    FidelityKind fidelity = FidelityKind::Psnr;
    double threshold = 30.0;

    /** Build the train (profiling) or test (evaluation) input. */
    std::function<WorkloadRunSpec(bool train)> makeInput;

    /**
     * Map raw output buffers to the fidelity signal (e.g. decode an
     * encoder's bitstream with the golden reference codec). Default:
     * concatenate all output buffers.
     */
    std::function<std::vector<double>(const WorkloadRunSpec &,
                                      const RawOutput &)>
        fidelitySignal;
};

/** A run-ready instantiation: memory + entry args. */
struct PreparedRun
{
    std::unique_ptr<Memory> mem;
    std::vector<uint64_t> args;       //!< raw entry argument values
    std::vector<uint64_t> bufferAddr; //!< address per buffer arg (0 for
                                      //!< scalars), in arg order
};

/** Allocate and fill a Memory for @p spec. */
PreparedRun prepareRun(const WorkloadRunSpec &spec);

/**
 * Fork @p src copy-on-write: the clone shares every memory page with
 * the source until one side writes it, so runs forked from one pristine
 * image share the pages none of them dirties (e.g. input buffers).
 * NOT safe to call concurrently on the same @p src (the COW fork
 * rewrites the source's dirty bitmaps).
 */
PreparedRun clonePreparedRun(const PreparedRun &src);

/** Read the output buffers back as doubles. */
RawOutput readOutputs(const WorkloadRunSpec &spec,
                      const PreparedRun &run);

/** Fidelity signal for @p w given a finished run. */
std::vector<double> extractSignal(const Workload &w,
                                  const WorkloadRunSpec &spec,
                                  const PreparedRun &run);

/** All 13 registered benchmarks, in the paper's Table I order. */
const std::vector<const Workload *> &allWorkloads();

/** Look up by name; scFatal if unknown. */
const Workload &getWorkload(const std::string &name);

} // namespace softcheck

#endif // SOFTCHECK_WORKLOADS_WORKLOAD_HH
