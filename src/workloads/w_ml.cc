/**
 * @file
 * Machine-learning benchmarks (paper Table I): kmeans (Lloyd's
 * clustering, in-house in the paper) and svm (linear SVM trained with
 * sub-gradient descent, svmlight stand-in).
 */

#include "workloads/inputs.hh"
#include "workloads/workloads_internal.hh"

namespace softcheck
{

namespace
{

/**
 * kmeans: Lloyd's algorithm on n x d doubles, k clusters, 10
 * iterations; centers seeded from the first k points.
 * Entry: main(assign, data, n, d, k) -> assignment checksum.
 */
const char *kKmeansSrc = R"(
fn main(assign: ptr<i32>, data: ptr<f64>, n: i32, d: i32,
        k: i32) -> i32 {
    var centers: f64[64];
    var sums: f64[64];
    var counts: i32[8];

    for (var c: i32 = 0; c < k; c = c + 1) {
        for (var j: i32 = 0; j < d; j = j + 1) {
            centers[c * d + j] = data[c * d + j];
        }
    }

    var checksum: i32 = 0;
    for (var iter: i32 = 0; iter < 10; iter = iter + 1) {
        for (var c2: i32 = 0; c2 < k; c2 = c2 + 1) {
            counts[c2] = 0;
            for (var j2: i32 = 0; j2 < d; j2 = j2 + 1) {
                sums[c2 * d + j2] = 0.0;
            }
        }
        checksum = 0;
        for (var i: i32 = 0; i < n; i = i + 1) {
            var best: i32 = 0;
            var bestd: f64 = 1.0e30;
            for (var c3: i32 = 0; c3 < k; c3 = c3 + 1) {
                var dist: f64 = 0.0;
                for (var j3: i32 = 0; j3 < d; j3 = j3 + 1) {
                    var diff: f64 = data[i * d + j3]
                                  - centers[c3 * d + j3];
                    dist = dist + diff * diff;
                }
                if (dist < bestd) {
                    bestd = dist;
                    best = c3;
                }
            }
            assign[i] = best;
            counts[best] = counts[best] + 1;
            for (var j4: i32 = 0; j4 < d; j4 = j4 + 1) {
                sums[best * d + j4] = sums[best * d + j4]
                                    + data[i * d + j4];
            }
            checksum = (checksum + best) & 1073741823;
        }
        for (var c4: i32 = 0; c4 < k; c4 = c4 + 1) {
            if (counts[c4] > 0) {
                for (var j5: i32 = 0; j5 < d; j5 = j5 + 1) {
                    centers[c4 * d + j5] = sums[c4 * d + j5]
                                         / f64(counts[c4]);
                }
            }
        }
    }
    return checksum;
}
)";

/**
 * svm: linear SVM (Pegasos-style sub-gradient training, 5 epochs),
 * then classification of the test set.
 * Entry: main(pred, trainx, trainy, testx, ntrain, ntest, d)
 *   -> number of positive predictions.
 */
const char *kSvmSrc = R"(
fn main(pred: ptr<i32>, trainx: ptr<f64>, trainy: ptr<i32>,
        testx: ptr<f64>, ntrain: i32, ntest: i32, d: i32) -> i32 {
    var w: f64[16];
    for (var j: i32 = 0; j < d; j = j + 1) {
        w[j] = 0.0;
    }

    var lr: f64 = 0.01;
    var lambda: f64 = 0.001;
    for (var epoch: i32 = 0; epoch < 5; epoch = epoch + 1) {
        for (var i: i32 = 0; i < ntrain; i = i + 1) {
            var dot: f64 = 0.0;
            for (var j2: i32 = 0; j2 < d; j2 = j2 + 1) {
                dot = dot + w[j2] * trainx[i * d + j2];
            }
            var y: f64 = f64(trainy[i]);
            var decay: f64 = 1.0 - lr * lambda;
            if (y * dot < 1.0) {
                for (var j3: i32 = 0; j3 < d; j3 = j3 + 1) {
                    w[j3] = w[j3] * decay
                          + lr * y * trainx[i * d + j3];
                }
            } else {
                for (var j4: i32 = 0; j4 < d; j4 = j4 + 1) {
                    w[j4] = w[j4] * decay;
                }
            }
        }
    }

    var positives: i32 = 0;
    for (var t: i32 = 0; t < ntest; t = t + 1) {
        var dot2: f64 = 0.0;
        for (var j5: i32 = 0; j5 < d; j5 = j5 + 1) {
            dot2 = dot2 + w[j5] * testx[t * d + j5];
        }
        if (dot2 >= 0.0) {
            pred[t] = 1;
            positives = positives + 1;
        } else {
            pred[t] = -1;
        }
    }
    return positives;
}
)";

WorkloadRunSpec
kmeansInput(bool train)
{
    const unsigned n = train ? 120 : 90;
    const unsigned d = 8;
    const unsigned k = 5;
    auto data = makeClusterData(n, d, k, train ? 9001 : 9502);
    WorkloadRunSpec spec;
    spec.args.push_back(WorkloadArg::outputBuffer(Type::i32(), n));
    spec.args.push_back(
        WorkloadArg::buffer(Type::f64(), toWordsF64(data)));
    spec.args.push_back(WorkloadArg::scalarI32(n));
    spec.args.push_back(WorkloadArg::scalarI32(d));
    spec.args.push_back(WorkloadArg::scalarI32(k));
    return spec;
}

WorkloadRunSpec
svmInput(bool train)
{
    const unsigned ntrain = train ? 200 : 160;
    const unsigned ntest = train ? 160 : 120;
    const unsigned d = 8;
    std::vector<int32_t> train_labels, test_labels;
    auto trainx =
        makeLabeledData(ntrain, d, train ? 9003 : 9504, train_labels);
    auto testx =
        makeLabeledData(ntest, d, train ? 9005 : 9506, test_labels);
    WorkloadRunSpec spec;
    spec.args.push_back(WorkloadArg::outputBuffer(Type::i32(), ntest));
    spec.args.push_back(
        WorkloadArg::buffer(Type::f64(), toWordsF64(trainx)));
    spec.args.push_back(
        WorkloadArg::buffer(Type::i32(), toWords(train_labels)));
    spec.args.push_back(
        WorkloadArg::buffer(Type::f64(), toWordsF64(testx)));
    spec.args.push_back(WorkloadArg::scalarI32(ntrain));
    spec.args.push_back(WorkloadArg::scalarI32(ntest));
    spec.args.push_back(WorkloadArg::scalarI32(d));
    return spec;
}

} // namespace

void
appendMlWorkloads(std::vector<Workload> &out)
{
    {
        Workload w;
        w.name = "kmeans";
        w.category = "ml";
        w.description = "Lloyd's k-means clustering";
        w.source = kKmeansSrc;
        w.fidelity = FidelityKind::ClassErrorDelta;
        w.threshold = 0.10;
        w.makeInput = kmeansInput;
        out.push_back(std::move(w));
    }
    {
        Workload w;
        w.name = "svm";
        w.category = "ml";
        w.description = "linear SVM (sub-gradient training + inference)";
        w.source = kSvmSrc;
        w.fidelity = FidelityKind::ClassErrorDelta;
        w.threshold = 0.10;
        w.makeInput = svmInput;
        out.push_back(std::move(w));
    }
}

} // namespace softcheck
