#include "workloads/workload.hh"

#include <bit>

#include "support/error.hh"

namespace softcheck
{

PreparedRun
prepareRun(const WorkloadRunSpec &spec)
{
    PreparedRun run;
    run.mem = std::make_unique<Memory>();
    run.args.reserve(spec.args.size());
    run.bufferAddr.reserve(spec.args.size());
    for (const WorkloadArg &arg : spec.args) {
        if (arg.kind == WorkloadArg::Kind::Scalar) {
            run.args.push_back(arg.scalar);
            run.bufferAddr.push_back(0);
            continue;
        }
        const unsigned esz = arg.elem.storeSize();
        const uint64_t base = run.mem->alloc(arg.count * esz);
        for (uint64_t i = 0; i < arg.count; ++i) {
            const bool ok =
                run.mem->write(base + i * esz, esz, arg.data[i]);
            scAssert(ok, "buffer init write failed");
        }
        run.args.push_back(base);
        run.bufferAddr.push_back(base);
    }
    return run;
}

PreparedRun
clonePreparedRun(const PreparedRun &src)
{
    PreparedRun run;
    run.mem = std::make_unique<Memory>(*src.mem);
    run.args = src.args;
    run.bufferAddr = src.bufferAddr;
    return run;
}

namespace
{

double
elementToDouble(Type t, uint64_t raw)
{
    switch (t.kind()) {
      case TypeKind::F64:
        return std::bit_cast<double>(raw);
      case TypeKind::F32:
        return static_cast<double>(
            std::bit_cast<float>(static_cast<uint32_t>(raw)));
      default:
        return static_cast<double>(signExtend(raw, t.bitWidth()));
    }
}

} // namespace

RawOutput
readOutputs(const WorkloadRunSpec &spec, const PreparedRun &run)
{
    RawOutput out;
    for (std::size_t a = 0; a < spec.args.size(); ++a) {
        const WorkloadArg &arg = spec.args[a];
        if (arg.kind != WorkloadArg::Kind::Buffer || !arg.isOutput)
            continue;
        const unsigned esz = arg.elem.storeSize();
        std::vector<double> vals;
        vals.reserve(arg.count);
        for (uint64_t i = 0; i < arg.count; ++i) {
            uint64_t raw = 0;
            const bool ok =
                run.mem->read(run.bufferAddr[a] + i * esz, esz, raw);
            scAssert(ok, "output read failed");
            vals.push_back(elementToDouble(arg.elem, raw));
        }
        out.push_back(std::move(vals));
    }
    return out;
}

std::vector<double>
extractSignal(const Workload &w, const WorkloadRunSpec &spec,
              const PreparedRun &run)
{
    RawOutput raw = readOutputs(spec, run);
    if (w.fidelitySignal)
        return w.fidelitySignal(spec, raw);
    std::vector<double> all;
    for (auto &buf : raw)
        all.insert(all.end(), buf.begin(), buf.end());
    return all;
}

const Workload &
getWorkload(const std::string &name)
{
    for (const Workload *w : allWorkloads()) {
        if (w->name == name)
            return *w;
    }
    scFatal("unknown workload '", name, "'");
}

} // namespace softcheck
