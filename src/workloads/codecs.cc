#include "workloads/codecs.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "support/error.hh"

namespace softcheck::codecs
{

namespace
{

/** Zigzag scan order: zigzag position -> raster index in the 8x8
 * block. The same literal table appears in the MiniLang kernels; only
 * consistency between the two matters. */
constexpr int kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
};

constexpr int kEob = 99;

int32_t
roundQuant(double v, double step)
{
    const double q = v / step;
    return static_cast<int32_t>(q >= 0 ? q + 0.5 : q - 0.5);
}

/** 8x8 forward DCT-II on level-shifted pixels. */
void
fdct8x8(const double in[64], double out[64])
{
    for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
            double acc = 0.0;
            for (int y = 0; y < 8; ++y) {
                for (int x = 0; x < 8; ++x) {
                    acc += in[y * 8 + x] *
                           std::cos((2 * x + 1) * v * M_PI / 16.0) *
                           std::cos((2 * y + 1) * u * M_PI / 16.0);
                }
            }
            const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
            const double cv = v == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
            out[u * 8 + v] = 0.25 * cu * cv * acc;
        }
    }
}

/** 8x8 inverse DCT. */
void
idct8x8(const double in[64], double out[64])
{
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            double acc = 0.0;
            for (int u = 0; u < 8; ++u) {
                for (int v = 0; v < 8; ++v) {
                    const double cu =
                        u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
                    const double cv =
                        v == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
                    acc += cu * cv * in[u * 8 + v] *
                           std::cos((2 * x + 1) * v * M_PI / 16.0) *
                           std::cos((2 * y + 1) * u * M_PI / 16.0);
                }
            }
            out[y * 8 + x] = 0.25 * acc;
        }
    }
}

} // namespace

std::size_t
jpegMaxStream(unsigned w, unsigned h)
{
    const std::size_t blocks = (w / 8) * (h / 8);
    return 1 + blocks * (2 * 64 + 2);
}

std::vector<int32_t>
jpegEncode(const std::vector<int32_t> &img, unsigned w, unsigned h)
{
    scAssert(w % 8 == 0 && h % 8 == 0, "jpeg dims must be multiple of 8");
    const unsigned bw = w / 8, bh = h / 8;
    std::vector<int32_t> stream;
    stream.push_back(static_cast<int32_t>(bw * bh));
    double px[64], coef[64];
    for (unsigned by = 0; by < bh; ++by) {
        for (unsigned bx = 0; bx < bw; ++bx) {
            for (int y = 0; y < 8; ++y)
                for (int x = 0; x < 8; ++x)
                    px[y * 8 + x] =
                        img[(by * 8 + y) * w + bx * 8 + x] - 128.0;
            fdct8x8(px, coef);
            int run = 0;
            for (int k = 0; k < 64; ++k) {
                const int32_t q =
                    roundQuant(coef[kZigzag[k]], 10.0 + k);
                if (q == 0) {
                    ++run;
                } else {
                    stream.push_back(run);
                    stream.push_back(q);
                    run = 0;
                }
            }
            stream.push_back(kEob);
            stream.push_back(0);
        }
    }
    return stream;
}

std::vector<int32_t>
jpegDecode(const std::vector<int32_t> &stream, unsigned w, unsigned h)
{
    const unsigned bw = w / 8, bh = h / 8;
    std::vector<int32_t> img(static_cast<std::size_t>(w) * h, 0);
    std::size_t pos = 1;
    double coef[64], px[64];
    for (unsigned b = 0; b < bw * bh; ++b) {
        std::fill(std::begin(coef), std::end(coef), 0.0);
        int k = 0;
        while (pos + 1 < stream.size()) {
            const int32_t run = stream[pos];
            const int32_t val = stream[pos + 1];
            pos += 2;
            if (run == kEob)
                break;
            // The stream may be arbitrarily corrupted (fault-injection
            // outputs are decoded for fidelity): bound the scan index.
            if (run < 0 || run > 63)
                break;
            k += run;
            if (k < 0 || k >= 64)
                break;
            coef[kZigzag[k]] = val * (10.0 + k);
            ++k;
        }
        idct8x8(coef, px);
        const unsigned by = b / bw, bx = b % bw;
        for (int y = 0; y < 8; ++y) {
            for (int x = 0; x < 8; ++x) {
                img[(by * 8 + y) * w + bx * 8 + x] =
                    static_cast<int32_t>(
                        std::clamp(px[y * 8 + x] + 128.0, 0.0, 255.0));
            }
        }
    }
    return img;
}

// ---- ADPCM ----------------------------------------------------------

namespace
{

/** Standard IMA-ADPCM step table (89 entries). */
constexpr int kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,
    17,    19,    21,    23,    25,    28,    31,    34,    37,
    41,    45,    50,    55,    60,    66,    73,    80,    88,
    97,    107,   118,   130,   143,   157,   173,   190,   209,
    230,   253,   279,   307,   337,   371,   408,   449,   494,
    544,   598,   658,   724,   796,   876,   963,   1060,  1166,
    1282,  1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,
    3024,  3327,  3660,  4026,  4428,  4871,  5358,  5894,  6484,
    7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
};

constexpr int kIndexTable[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8,
};

} // namespace

std::vector<int32_t>
adpcmEncode(const std::vector<int32_t> &samples)
{
    std::vector<int32_t> codes;
    codes.reserve(samples.size());
    int pred = 0, index = 0;
    for (int32_t s : samples) {
        const int step = kStepTable[index];
        int diff = s - pred;
        int code = 0;
        if (diff < 0) {
            code = 8;
            diff = -diff;
        }
        if (diff >= step) {
            code |= 4;
            diff -= step;
        }
        if (diff >= step / 2) {
            code |= 2;
            diff -= step / 2;
        }
        if (diff >= step / 4)
            code |= 1;

        int delta = step / 8;
        if (code & 1)
            delta += step / 4;
        if (code & 2)
            delta += step / 2;
        if (code & 4)
            delta += step;
        pred += (code & 8) ? -delta : delta;
        pred = std::clamp(pred, -32768, 32767);
        index = std::clamp(index + kIndexTable[code], 0, 88);
        codes.push_back(code);
    }
    return codes;
}

std::vector<int32_t>
adpcmDecode(const std::vector<int32_t> &codes)
{
    std::vector<int32_t> samples;
    samples.reserve(codes.size());
    int pred = 0, index = 0;
    for (int32_t code : codes) {
        const int step = kStepTable[index];
        int delta = step / 8;
        if (code & 1)
            delta += step / 4;
        if (code & 2)
            delta += step / 2;
        if (code & 4)
            delta += step;
        pred += (code & 8) ? -delta : delta;
        pred = std::clamp(pred, -32768, 32767);
        index = std::clamp(index + kIndexTable[code & 15], 0, 88);
        samples.push_back(pred);
    }
    return samples;
}

// ---- Subband --------------------------------------------------------

int32_t
subbandCrc(const int32_t *coeffs, unsigned n)
{
    // Table-driven CRC32 (poly 0xEDB88320) over the low byte of each
    // coefficient, kept in signed-int32 friendly arithmetic (matches
    // the MiniLang kernel, which computes the same table in-language).
    // Magic-static init: trial workers on the campaign scheduler call
    // this concurrently, so the table must be published exactly once.
    static const std::array<int32_t, 256> table = [] {
        std::array<int32_t, 256> t{};
        for (int i = 0; i < 256; ++i) {
            uint32_t c = static_cast<uint32_t>(i);
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = static_cast<int32_t>(c);
        }
        return t;
    }();
    uint32_t crc = 0xFFFFFFFFu;
    for (unsigned i = 0; i < n; ++i) {
        const uint32_t byte =
            static_cast<uint32_t>(coeffs[i]) & 0xFFu;
        crc = static_cast<uint32_t>(
                  table[(crc ^ byte) & 0xFFu]) ^
              (crc >> 8);
    }
    return static_cast<int32_t>(crc);
}

namespace
{

constexpr unsigned kFrame = 32;

double
subbandStep(unsigned k)
{
    return 4.0 + 3.0 * (k / 4);
}

void
dct32(const double in[kFrame], double out[kFrame])
{
    for (unsigned k = 0; k < kFrame; ++k) {
        double acc = 0.0;
        for (unsigned n = 0; n < kFrame; ++n)
            acc += in[n] * std::cos((2 * n + 1) * k * M_PI /
                                    (2.0 * kFrame));
        out[k] = acc * (k == 0 ? std::sqrt(1.0 / kFrame)
                               : std::sqrt(2.0 / kFrame));
    }
}

void
idct32(const double in[kFrame], double out[kFrame])
{
    for (unsigned n = 0; n < kFrame; ++n) {
        double acc = 0.0;
        for (unsigned k = 0; k < kFrame; ++k)
            acc += in[k] *
                   (k == 0 ? std::sqrt(1.0 / kFrame)
                           : std::sqrt(2.0 / kFrame)) *
                   std::cos((2 * n + 1) * k * M_PI / (2.0 * kFrame));
        out[n] = acc;
    }
}

} // namespace

std::vector<int32_t>
subbandEncode(const std::vector<int32_t> &samples)
{
    scAssert(samples.size() % kFrame == 0,
             "sample count must be a multiple of 32");
    std::vector<int32_t> stream;
    double in[kFrame], coef[kFrame];
    for (std::size_t f = 0; f < samples.size() / kFrame; ++f) {
        for (unsigned i = 0; i < kFrame; ++i)
            in[i] = samples[f * kFrame + i];
        dct32(in, coef);
        int32_t q[kFrame];
        for (unsigned k = 0; k < kFrame; ++k) {
            q[k] = roundQuant(coef[k], subbandStep(k));
            stream.push_back(q[k]);
        }
        stream.push_back(subbandCrc(q, kFrame));
    }
    return stream;
}

std::vector<int32_t>
subbandDecode(const std::vector<int32_t> &stream, unsigned num_samples)
{
    std::vector<int32_t> samples;
    samples.reserve(num_samples);
    double coef[kFrame], out[kFrame];
    const unsigned frames = num_samples / kFrame;
    for (unsigned f = 0; f < frames; ++f) {
        const std::size_t base = static_cast<std::size_t>(f) * 33;
        for (unsigned k = 0; k < kFrame; ++k)
            coef[k] = stream[base + k] * subbandStep(k);
        idct32(coef, out);
        for (unsigned i = 0; i < kFrame; ++i)
            samples.push_back(static_cast<int32_t>(std::clamp(
                out[i], -32768.0, 32767.0)));
    }
    return samples;
}

// ---- Video ----------------------------------------------------------

namespace
{

constexpr int kIntraStep = 10;
constexpr int kInterStep = 8;
constexpr int kSearch = 2;

void
encodeBlockIntra(const int32_t *frame, unsigned w, unsigned bx,
                 unsigned by, std::vector<int32_t> &stream)
{
    double px[64], coef[64];
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            px[y * 8 + x] =
                frame[(by * 8 + y) * w + bx * 8 + x] - 128.0;
    fdct8x8(px, coef);
    for (int k = 0; k < 64; ++k)
        stream.push_back(roundQuant(coef[k], kIntraStep));
}

void
decodeBlockIntra(const int32_t *coeffs, int32_t *frame, unsigned w,
                 unsigned bx, unsigned by)
{
    double coef[64], px[64];
    for (int k = 0; k < 64; ++k)
        coef[k] = coeffs[k] * double(kIntraStep);
    idct8x8(coef, px);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            frame[(by * 8 + y) * w + bx * 8 + x] =
                static_cast<int32_t>(
                    std::clamp(px[y * 8 + x] + 128.0, 0.0, 255.0));
}

} // namespace

std::vector<int32_t>
videoEncode(const std::vector<int32_t> &frames, unsigned w, unsigned h,
            unsigned num_frames)
{
    scAssert(w % 8 == 0 && h % 8 == 0, "video dims multiple of 8");
    const unsigned bw = w / 8, bh = h / 8;
    const std::size_t fsz = static_cast<std::size_t>(w) * h;
    std::vector<int32_t> stream;
    std::vector<int32_t> recon(fsz, 0);

    // Intra frame 0.
    for (unsigned by = 0; by < bh; ++by)
        for (unsigned bx = 0; bx < bw; ++bx)
            encodeBlockIntra(frames.data(), w, bx, by, stream);
    // Reconstruct frame 0 for use as reference.
    {
        std::size_t pos = 0;
        for (unsigned by = 0; by < bh; ++by)
            for (unsigned bx = 0; bx < bw; ++bx) {
                decodeBlockIntra(stream.data() + pos, recon.data(), w,
                                 bx, by);
                pos += 64;
            }
    }

    std::vector<int32_t> cur_recon(fsz, 0);
    for (unsigned f = 1; f < num_frames; ++f) {
        const int32_t *cur = frames.data() + f * fsz;
        for (unsigned by = 0; by < bh; ++by) {
            for (unsigned bx = 0; bx < bw; ++bx) {
                // Motion search +-kSearch against the reconstructed
                // previous frame.
                int best_sad = INT32_MAX, best_dx = 0, best_dy = 0;
                for (int dy = -kSearch; dy <= kSearch; ++dy) {
                    for (int dx = -kSearch; dx <= kSearch; ++dx) {
                        const int px0 = int(bx * 8) + dx;
                        const int py0 = int(by * 8) + dy;
                        if (px0 < 0 || py0 < 0 || px0 + 8 > int(w) ||
                            py0 + 8 > int(h))
                            continue;
                        int sad = 0;
                        for (int y = 0; y < 8; ++y)
                            for (int x = 0; x < 8; ++x)
                                sad += std::abs(
                                    cur[(by * 8 + y) * w + bx * 8 + x] -
                                    recon[(py0 + y) * w + px0 + x]);
                        if (sad < best_sad) {
                            best_sad = sad;
                            best_dx = dx;
                            best_dy = dy;
                        }
                    }
                }
                stream.push_back(best_dx);
                stream.push_back(best_dy);
                // Residual DCT.
                double res[64], coef[64];
                for (int y = 0; y < 8; ++y)
                    for (int x = 0; x < 8; ++x)
                        res[y * 8 + x] =
                            cur[(by * 8 + y) * w + bx * 8 + x] -
                            recon[(by * 8 + y + best_dy) * w + bx * 8 +
                                  x + best_dx];
                fdct8x8(res, coef);
                int32_t q[64];
                for (int k = 0; k < 64; ++k) {
                    q[k] = roundQuant(coef[k], kInterStep);
                    stream.push_back(q[k]);
                }
                // Reconstruct the block (prediction + dequant residual).
                double rc[64], rp[64];
                for (int k = 0; k < 64; ++k)
                    rc[k] = q[k] * double(kInterStep);
                idct8x8(rc, rp);
                for (int y = 0; y < 8; ++y)
                    for (int x = 0; x < 8; ++x)
                        cur_recon[(by * 8 + y) * w + bx * 8 + x] =
                            static_cast<int32_t>(std::clamp(
                                recon[(by * 8 + y + best_dy) * w +
                                      bx * 8 + x + best_dx] +
                                    rp[y * 8 + x],
                                0.0, 255.0));
            }
        }
        recon = cur_recon;
    }
    return stream;
}

std::vector<int32_t>
videoDecode(const std::vector<int32_t> &stream, unsigned w, unsigned h,
            unsigned num_frames)
{
    const unsigned bw = w / 8, bh = h / 8;
    const std::size_t fsz = static_cast<std::size_t>(w) * h;
    std::vector<int32_t> out(fsz * num_frames, 0);
    std::size_t pos = 0;

    for (unsigned by = 0; by < bh; ++by)
        for (unsigned bx = 0; bx < bw; ++bx) {
            decodeBlockIntra(stream.data() + pos, out.data(), w, bx,
                             by);
            pos += 64;
        }

    for (unsigned f = 1; f < num_frames; ++f) {
        const int32_t *prev = out.data() + (f - 1) * fsz;
        int32_t *cur = out.data() + f * fsz;
        for (unsigned by = 0; by < bh; ++by) {
            for (unsigned bx = 0; bx < bw; ++bx) {
                const int dx = stream[pos], dy = stream[pos + 1];
                pos += 2;
                double coef[64], res[64];
                for (int k = 0; k < 64; ++k)
                    coef[k] = stream[pos + k] * double(kInterStep);
                pos += 64;
                idct8x8(coef, res);
                for (int y = 0; y < 8; ++y) {
                    for (int x = 0; x < 8; ++x) {
                        const int py = int(by * 8 + y) + dy;
                        const int px = int(bx * 8 + x) + dx;
                        const int32_t pred =
                            (py >= 0 && px >= 0 && py < int(h) &&
                             px < int(w))
                                ? prev[py * w + px]
                                : 128;
                        cur[(by * 8 + y) * w + bx * 8 + x] =
                            static_cast<int32_t>(std::clamp(
                                pred + res[y * 8 + x], 0.0, 255.0));
                    }
                }
            }
        }
    }
    return out;
}

} // namespace softcheck::codecs
