/**
 * @file
 * Image-processing benchmarks (paper Table I, mediabench/mibench):
 * jpegenc, jpegdec, tiff2bw.
 */

#include "workloads/codecs.hh"
#include "workloads/inputs.hh"
#include "workloads/workloads_internal.hh"

namespace softcheck
{

namespace
{

/**
 * jpegenc: 8x8 DCT + zigzag quantization + zero-run-length encoding.
 * Entry: main(out_stream, img, w, h) -> stream length.
 */
const char *kJpegencSrc = R"(
const ZZ: i32[64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63];
const PI: f64 = 3.141592653589793;

fn quantize(v: f64, step: f64) -> i32 {
    var q: f64 = v / step;
    if (q >= 0.0) {
        return i32(q + 0.5);
    }
    return i32(q - 0.5);
}

fn main(out: ptr<i32>, img: ptr<i32>, w: i32, h: i32) -> i32 {
    var ct: f64[64];
    for (var x: i32 = 0; x < 8; x = x + 1) {
        for (var u: i32 = 0; u < 8; u = u + 1) {
            ct[x * 8 + u] = cos(f64(2 * x + 1) * f64(u) * PI / 16.0);
        }
    }
    var cs: f64[8];
    cs[0] = 0.7071067811865476;
    for (var u: i32 = 1; u < 8; u = u + 1) {
        cs[u] = 1.0;
    }

    var bw: i32 = w / 8;
    var bh: i32 = h / 8;
    out[0] = bw * bh;
    var pos: i32 = 1;
    var px: f64[64];
    var tmp: f64[64];
    var coef: f64[64];

    for (var b: i32 = 0; b < bw * bh; b = b + 1) {
        var by: i32 = b / bw;
        var bx: i32 = b - by * bw;
        for (var y: i32 = 0; y < 8; y = y + 1) {
            for (var x: i32 = 0; x < 8; x = x + 1) {
                px[y * 8 + x] =
                    f64(img[(by * 8 + y) * w + bx * 8 + x] - 128);
            }
        }
        // Separable DCT: rows then columns.
        for (var y: i32 = 0; y < 8; y = y + 1) {
            for (var v: i32 = 0; v < 8; v = v + 1) {
                var acc: f64 = 0.0;
                for (var x: i32 = 0; x < 8; x = x + 1) {
                    acc = acc + px[y * 8 + x] * ct[x * 8 + v];
                }
                tmp[y * 8 + v] = acc * cs[v] * 0.5;
            }
        }
        for (var u: i32 = 0; u < 8; u = u + 1) {
            for (var v: i32 = 0; v < 8; v = v + 1) {
                var acc2: f64 = 0.0;
                for (var y: i32 = 0; y < 8; y = y + 1) {
                    acc2 = acc2 + tmp[y * 8 + v] * ct[y * 8 + u];
                }
                coef[u * 8 + v] = acc2 * cs[u] * 0.5;
            }
        }
        // Zigzag + RLE.
        var run: i32 = 0;
        for (var k: i32 = 0; k < 64; k = k + 1) {
            var q: i32 = quantize(coef[ZZ[k]], 10.0 + f64(k));
            if (q == 0) {
                run = run + 1;
            } else {
                out[pos] = run;
                out[pos + 1] = q;
                pos = pos + 2;
                run = 0;
            }
        }
        out[pos] = 99;
        out[pos + 1] = 0;
        pos = pos + 2;
    }
    return pos;
}
)";

/**
 * jpegdec: run-length parse + dequantize + separable IDCT + clamp.
 * Entry: main(out_img, stream, w, h) -> stream positions consumed.
 */
const char *kJpegdecSrc = R"(
const ZZ: i32[64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63];
const PI: f64 = 3.141592653589793;

fn main(out: ptr<i32>, stream: ptr<i32>, w: i32, h: i32) -> i32 {
    var ct: f64[64];
    for (var x: i32 = 0; x < 8; x = x + 1) {
        for (var u: i32 = 0; u < 8; u = u + 1) {
            ct[x * 8 + u] = cos(f64(2 * x + 1) * f64(u) * PI / 16.0);
        }
    }
    var cs: f64[8];
    cs[0] = 0.7071067811865476;
    for (var u: i32 = 1; u < 8; u = u + 1) {
        cs[u] = 1.0;
    }

    var bw: i32 = w / 8;
    var nblocks: i32 = stream[0];
    var pos: i32 = 1;
    var coef: f64[64];
    var tmp: f64[64];

    for (var b: i32 = 0; b < nblocks; b = b + 1) {
        for (var i: i32 = 0; i < 64; i = i + 1) {
            coef[i] = 0.0;
        }
        // Run-length decode (the bitstream-parsing loop whose state
        // variables make corruption catastrophic, cf. paper Fig. 1c).
        var k: i32 = 0;
        var done: i32 = 0;
        while (done == 0) {
            var run: i32 = stream[pos];
            var val: i32 = stream[pos + 1];
            pos = pos + 2;
            if (run == 99) {
                done = 1;
            } else {
                k = k + run;
                if (k < 64) {
                    coef[ZZ[k]] = f64(val) * (10.0 + f64(k));
                    k = k + 1;
                } else {
                    done = 1;
                }
            }
        }
        // Separable IDCT: columns then rows.
        for (var y2: i32 = 0; y2 < 8; y2 = y2 + 1) {
            for (var v: i32 = 0; v < 8; v = v + 1) {
                var acc: f64 = 0.0;
                for (var u: i32 = 0; u < 8; u = u + 1) {
                    acc = acc + cs[u] * coef[u * 8 + v] * ct[y2 * 8 + u];
                }
                tmp[y2 * 8 + v] = acc * 0.5;
            }
        }
        var by: i32 = b / bw;
        var bx: i32 = b - by * bw;
        for (var y: i32 = 0; y < 8; y = y + 1) {
            for (var x: i32 = 0; x < 8; x = x + 1) {
                var acc2: f64 = 0.0;
                for (var v2: i32 = 0; v2 < 8; v2 = v2 + 1) {
                    acc2 = acc2 + cs[v2] * tmp[y * 8 + v2] * ct[x * 8 + v2];
                }
                var p: i32 = i32(acc2 * 0.5 + 128.5);
                if (p < 0) {
                    p = 0;
                }
                if (p > 255) {
                    p = 255;
                }
                out[(by * 8 + y) * w + bx * 8 + x] = p;
            }
        }
    }
    return pos;
}
)";

/**
 * tiff2bw: RGB -> luma with a gamma lookup table.
 * Entry: main(out_gray, rgb_interleaved, npixels) -> luma checksum.
 */
const char *kTiff2bwSrc = R"(
fn main(out: ptr<i32>, rgb: ptr<i32>, n: i32) -> i32 {
    var gamma: i32[256];
    for (var i: i32 = 0; i < 256; i = i + 1) {
        gamma[i] = (i * i + i * 255) / 510;
    }
    var checksum: i32 = 0;
    for (var p: i32 = 0; p < n; p = p + 1) {
        var r: i32 = rgb[p * 3];
        var g: i32 = rgb[p * 3 + 1];
        var b: i32 = rgb[p * 3 + 2];
        var y: i32 = (77 * r + 150 * g + 29 * b) >> 8;
        if (y < 0) {
            y = 0;
        }
        if (y > 255) {
            y = 255;
        }
        out[p] = gamma[y];
        checksum = (checksum + y) & 16777215;
    }
    return checksum;
}
)";

constexpr unsigned kEncTrainW = 48, kEncTrainH = 48;
constexpr unsigned kEncTestW = 32, kEncTestH = 32;

WorkloadRunSpec
jpegencInput(bool train)
{
    const unsigned w = train ? kEncTrainW : kEncTestW;
    const unsigned h = train ? kEncTrainH : kEncTestH;
    auto img = makeImage(w, h, train ? 1001 : 2002);
    WorkloadRunSpec spec;
    spec.args.push_back(WorkloadArg::outputBuffer(
        Type::i32(), codecs::jpegMaxStream(w, h)));
    spec.args.push_back(WorkloadArg::buffer(Type::i32(), toWords(img)));
    spec.args.push_back(WorkloadArg::scalarI32(w));
    spec.args.push_back(WorkloadArg::scalarI32(h));
    return spec;
}

WorkloadRunSpec
jpegdecInput(bool train)
{
    const unsigned w = train ? kEncTrainW : kEncTestW;
    const unsigned h = train ? kEncTrainH : kEncTestH;
    auto img = makeImage(w, h, train ? 1003 : 2004);
    auto stream = codecs::jpegEncode(img, w, h);
    stream.resize(codecs::jpegMaxStream(w, h), 0);
    WorkloadRunSpec spec;
    spec.args.push_back(WorkloadArg::outputBuffer(
        Type::i32(), static_cast<uint64_t>(w) * h));
    spec.args.push_back(
        WorkloadArg::buffer(Type::i32(), toWords(stream)));
    spec.args.push_back(WorkloadArg::scalarI32(w));
    spec.args.push_back(WorkloadArg::scalarI32(h));
    return spec;
}

WorkloadRunSpec
tiff2bwInput(bool train)
{
    const unsigned w = train ? 64 : 48;
    const unsigned h = train ? 48 : 40;
    auto rgb = makeRgbImage(w, h, train ? 1005 : 2006);
    WorkloadRunSpec spec;
    spec.args.push_back(WorkloadArg::outputBuffer(
        Type::i32(), static_cast<uint64_t>(w) * h));
    spec.args.push_back(WorkloadArg::buffer(Type::i32(), toWords(rgb)));
    spec.args.push_back(
        WorkloadArg::scalarI32(static_cast<int64_t>(w) * h));
    return spec;
}

} // namespace

void
appendImageWorkloads(std::vector<Workload> &out)
{
    {
        Workload w;
        w.name = "jpegenc";
        w.category = "image";
        w.description = "JPEG-like image encoder (DCT + quant + RLE)";
        w.source = kJpegencSrc;
        w.fidelity = FidelityKind::Psnr;
        w.threshold = 30.0;
        w.makeInput = jpegencInput;
        w.fidelitySignal = [](const WorkloadRunSpec &spec,
                              const RawOutput &raw) {
            const unsigned iw = static_cast<unsigned>(
                spec.args[2].scalar);
            const unsigned ih = static_cast<unsigned>(
                spec.args[3].scalar);
            auto pixels =
                codecs::jpegDecode(fromDoubles(raw[0]), iw, ih);
            std::vector<double> sig(pixels.begin(), pixels.end());
            return sig;
        };
        out.push_back(std::move(w));
    }
    {
        Workload w;
        w.name = "jpegdec";
        w.category = "image";
        w.description = "JPEG-like image decoder (RLE + dequant + IDCT)";
        w.source = kJpegdecSrc;
        w.fidelity = FidelityKind::Psnr;
        w.threshold = 30.0;
        w.makeInput = jpegdecInput;
        out.push_back(std::move(w));
    }
    {
        Workload w;
        w.name = "tiff2bw";
        w.category = "image";
        w.description = "RGB to grayscale conversion with gamma table";
        w.source = kTiff2bwSrc;
        w.fidelity = FidelityKind::Psnr;
        w.threshold = 30.0;
        w.makeInput = tiff2bwInput;
        out.push_back(std::move(w));
    }
}

} // namespace softcheck
