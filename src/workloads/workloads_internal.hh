/**
 * @file
 * Internal registration hooks: each category file appends its
 * workloads; registry.cc assembles the global list.
 */

#ifndef SOFTCHECK_WORKLOADS_WORKLOADS_INTERNAL_HH
#define SOFTCHECK_WORKLOADS_WORKLOADS_INTERNAL_HH

#include "workloads/workload.hh"

namespace softcheck
{

void appendImageWorkloads(std::vector<Workload> &out);
void appendVisionWorkloads(std::vector<Workload> &out);
void appendAudioWorkloads(std::vector<Workload> &out);
void appendVideoWorkloads(std::vector<Workload> &out);
void appendMlWorkloads(std::vector<Workload> &out);

/** Convert an int32 vector to canonical buffer words. */
std::vector<uint64_t> toWords(const std::vector<int32_t> &v);

/** Convert a double vector to canonical f64 buffer words. */
std::vector<uint64_t> toWordsF64(const std::vector<double> &v);

/** Convert a raw-output double buffer back to int32 values. */
std::vector<int32_t> fromDoubles(const std::vector<double> &v);

} // namespace softcheck

#endif // SOFTCHECK_WORKLOADS_WORKLOADS_INTERNAL_HH
