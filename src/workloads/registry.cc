#include <bit>

#include "workloads/workloads_internal.hh"

namespace softcheck
{

std::vector<uint64_t>
toWords(const std::vector<int32_t> &v)
{
    std::vector<uint64_t> out;
    out.reserve(v.size());
    for (int32_t x : v)
        out.push_back(truncBits(static_cast<uint64_t>(
                                    static_cast<int64_t>(x)),
                                32));
    return out;
}

std::vector<uint64_t>
toWordsF64(const std::vector<double> &v)
{
    std::vector<uint64_t> out;
    out.reserve(v.size());
    for (double x : v)
        out.push_back(std::bit_cast<uint64_t>(x));
    return out;
}

std::vector<int32_t>
fromDoubles(const std::vector<double> &v)
{
    std::vector<int32_t> out;
    out.reserve(v.size());
    for (double x : v)
        out.push_back(static_cast<int32_t>(x));
    return out;
}

const std::vector<const Workload *> &
allWorkloads()
{
    static const std::vector<Workload> storage = [] {
        std::vector<Workload> all;
        appendImageWorkloads(all);
        appendVisionWorkloads(all);
        appendAudioWorkloads(all);
        appendVideoWorkloads(all);
        appendMlWorkloads(all);
        return all;
    }();
    static const std::vector<const Workload *> ptrs = [] {
        std::vector<const Workload *> p;
        for (const Workload &w : storage)
            p.push_back(&w);
        return p;
    }();
    return ptrs;
}

} // namespace softcheck
