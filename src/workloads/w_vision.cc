/**
 * @file
 * Computer-vision benchmarks (paper Table I, SD-VBS): segm (image
 * segmentation) and tex_synth (texture synthesis).
 */

#include "workloads/inputs.hh"
#include "workloads/workloads_internal.hh"

namespace softcheck
{

namespace
{

/**
 * segm: intensity k-means segmentation followed by one 4-neighbour
 * majority smoothing pass. Entry: main(labels, img, w, h, k) ->
 * total intra-cluster distance (scaled).
 */
const char *kSegmSrc = R"(
fn main(labels: ptr<i32>, img: ptr<i32>, w: i32, h: i32, k: i32) -> i32 {
    var centers: i32[8];
    var sums: i32[8];
    var counts: i32[8];
    var n: i32 = w * h;

    // Spread initial centers over the intensity range.
    for (var c: i32 = 0; c < k; c = c + 1) {
        centers[c] = (255 * c + 127) / k;
    }

    var total: i32 = 0;
    for (var iter: i32 = 0; iter < 8; iter = iter + 1) {
        for (var c: i32 = 0; c < k; c = c + 1) {
            sums[c] = 0;
            counts[c] = 0;
        }
        total = 0;
        for (var i: i32 = 0; i < n; i = i + 1) {
            var v: i32 = img[i];
            var best: i32 = 0;
            var bestd: i32 = 1000000;
            for (var c2: i32 = 0; c2 < k; c2 = c2 + 1) {
                var d: i32 = v - centers[c2];
                if (d < 0) {
                    d = -d;
                }
                if (d < bestd) {
                    bestd = d;
                    best = c2;
                }
            }
            labels[i] = best;
            sums[best] = sums[best] + v;
            counts[best] = counts[best] + 1;
            total = (total + bestd) & 1073741823;
        }
        for (var c3: i32 = 0; c3 < k; c3 = c3 + 1) {
            if (counts[c3] > 0) {
                centers[c3] = sums[c3] / counts[c3];
            }
        }
    }

    // Majority smoothing over the 4-neighbourhood.
    for (var y: i32 = 1; y < h - 1; y = y + 1) {
        for (var x: i32 = 1; x < w - 1; x = x + 1) {
            var me: i32 = labels[y * w + x];
            var same: i32 = 0;
            var up: i32 = labels[(y - 1) * w + x];
            var down: i32 = labels[(y + 1) * w + x];
            var left: i32 = labels[y * w + x - 1];
            var right: i32 = labels[y * w + x + 1];
            if (up == me) { same = same + 1; }
            if (down == me) { same = same + 1; }
            if (left == me) { same = same + 1; }
            if (right == me) { same = same + 1; }
            if (same == 0 && up == down) {
                labels[y * w + x] = up;
            }
        }
    }
    return total;
}
)";

/**
 * tex_synth: causal-neighbourhood texture synthesis (Efros-Leung
 * style, deterministic best match). The top rows/left column are
 * seeded from the sample; remaining pixels copy the sample pixel whose
 * L-shaped causal neighbourhood matches best (SSD).
 * Entry: main(out, sample, sw, sh, ow, oh) -> SSD checksum.
 */
const char *kTexSynthSrc = R"(
fn main(out: ptr<i32>, sample: ptr<i32>, sw: i32, sh: i32,
        ow: i32, oh: i32) -> i32 {
    // Seed border from the sample (tiled).
    for (var x0: i32 = 0; x0 < ow; x0 = x0 + 1) {
        out[x0] = sample[x0 - (x0 / sw) * sw];
    }
    for (var y0: i32 = 1; y0 < oh; y0 = y0 + 1) {
        out[y0 * ow] = sample[(y0 - (y0 / sh) * sh) * sw];
    }

    var checksum: i32 = 0;
    for (var y: i32 = 1; y < oh; y = y + 1) {
        for (var x: i32 = 1; x < ow; x = x + 1) {
            var bestd: i32 = 2000000000;
            var bestv: i32 = 0;
            for (var sy: i32 = 1; sy < sh; sy = sy + 1) {
                for (var sx: i32 = 1; sx < sw; sx = sx + 1) {
                    // L-shaped causal neighbourhood: left, up, up-left.
                    var d1: i32 = out[y * ow + x - 1]
                                - sample[sy * sw + sx - 1];
                    var d2: i32 = out[(y - 1) * ow + x]
                                - sample[(sy - 1) * sw + sx];
                    var d3: i32 = out[(y - 1) * ow + x - 1]
                                - sample[(sy - 1) * sw + sx - 1];
                    var d: i32 = d1 * d1 + d2 * d2 + d3 * d3;
                    if (d < bestd) {
                        bestd = d;
                        bestv = sample[sy * sw + sx];
                    }
                }
            }
            out[y * ow + x] = bestv;
            checksum = (checksum + bestd) & 1073741823;
        }
    }
    return checksum;
}
)";

WorkloadRunSpec
segmInput(bool train)
{
    const unsigned w = train ? 40 : 32;
    const unsigned h = train ? 32 : 24;
    auto img = makeImage(w, h, train ? 3001 : 4002);
    WorkloadRunSpec spec;
    spec.args.push_back(WorkloadArg::outputBuffer(
        Type::i32(), static_cast<uint64_t>(w) * h));
    spec.args.push_back(WorkloadArg::buffer(Type::i32(), toWords(img)));
    spec.args.push_back(WorkloadArg::scalarI32(w));
    spec.args.push_back(WorkloadArg::scalarI32(h));
    spec.args.push_back(WorkloadArg::scalarI32(4));
    return spec;
}

WorkloadRunSpec
texSynthInput(bool train)
{
    const unsigned sw = train ? 12 : 10;
    const unsigned sh = train ? 12 : 10;
    const unsigned ow = train ? 14 : 12;
    const unsigned oh = train ? 14 : 12;
    auto sample = makeImage(sw, sh, train ? 3003 : 4004);
    WorkloadRunSpec spec;
    spec.args.push_back(WorkloadArg::outputBuffer(
        Type::i32(), static_cast<uint64_t>(ow) * oh));
    spec.args.push_back(
        WorkloadArg::buffer(Type::i32(), toWords(sample)));
    spec.args.push_back(WorkloadArg::scalarI32(sw));
    spec.args.push_back(WorkloadArg::scalarI32(sh));
    spec.args.push_back(WorkloadArg::scalarI32(ow));
    spec.args.push_back(WorkloadArg::scalarI32(oh));
    return spec;
}

} // namespace

void
appendVisionWorkloads(std::vector<Workload> &out)
{
    {
        Workload w;
        w.name = "segm";
        w.category = "vision";
        w.description = "intensity k-means image segmentation";
        w.source = kSegmSrc;
        w.fidelity = FidelityKind::Mismatch;
        w.threshold = 0.10;
        w.makeInput = segmInput;
        out.push_back(std::move(w));
    }
    {
        Workload w;
        w.name = "tex_synth";
        w.category = "vision";
        w.description = "causal-neighbourhood texture synthesis";
        w.source = kTexSynthSrc;
        w.fidelity = FidelityKind::Mismatch;
        w.threshold = 0.10;
        w.makeInput = texSynthInput;
        out.push_back(std::move(w));
    }
}

} // namespace softcheck
