/**
 * @file
 * MiniLang abstract syntax tree. Plain data; ownership via unique_ptr.
 */

#ifndef SOFTCHECK_FRONTEND_AST_HH
#define SOFTCHECK_FRONTEND_AST_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "frontend/lexer.hh"
#include "ir/type.hh"

namespace softcheck::ast
{

/** Source-level type: a scalar or ptr<scalar>. */
struct TypeRef
{
    Type scalar;          //!< element/scalar IR type (bool = i1)
    bool isPointer = false;

    std::string
    str() const
    {
        if (isPointer)
            return "ptr<" + scalar.str() + ">";
        return scalar.kind() == TypeKind::I1 ? "bool" : scalar.str();
    }
};

// --------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------

enum class ExprKind : uint8_t
{
    IntLit,
    FloatLit,
    BoolLit,
    VarRef,
    Index,   //!< base[index]
    Unary,
    Binary,
    Call,    //!< also builtins (sqrt, fabs, ...)
    Cast,    //!< T(expr)
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr
{
    ExprKind kind;
    int line = 0;

    // Literals
    int64_t intValue = 0;
    double floatValue = 0;
    bool boolValue = false;

    // VarRef / Index / Call: the name
    std::string name;

    // Unary/Binary operator (token kind), Cast target
    TokKind op = TokKind::End;
    TypeRef castType;

    // Children: Unary(1), Binary(2), Index(1: the index), Call(args)
    std::vector<ExprPtr> children;
};

// --------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------

enum class StmtKind : uint8_t
{
    VarDecl,
    Assign,
    ExprStmt,
    If,
    While,
    For,
    Return,
    Break,
    Continue,
    Block,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt
{
    StmtKind kind;
    int line = 0;

    // VarDecl
    std::string name;
    TypeRef declType;
    uint64_t arraySize = 0; //!< 0 = scalar
    ExprPtr init;           //!< optional

    // Assign: name [index] = value
    ExprPtr index; //!< null for scalar assignment
    ExprPtr value;

    // ExprStmt / Return / If / While / For conditions
    ExprPtr expr;

    // If: thenBody/elseBody; While/For: body; Block: body
    std::vector<StmtPtr> body;
    std::vector<StmtPtr> elseBody;

    // For
    StmtPtr forInit; //!< VarDecl or Assign
    StmtPtr forStep; //!< Assign
};

// --------------------------------------------------------------------
// Top level
// --------------------------------------------------------------------

struct Param
{
    std::string name;
    TypeRef type;
};

struct FnDecl
{
    std::string name;
    std::vector<Param> params;
    TypeRef returnType;   //!< scalar or void (scalar=void means void)
    bool returnsVoid = true;
    std::vector<StmtPtr> body;
    int line = 0;
};

struct ConstDecl
{
    std::string name;
    TypeRef elemType;
    bool isArray = false;
    uint64_t arraySize = 0;
    std::vector<ExprPtr> values; //!< literal initializers
    int line = 0;
};

struct Program
{
    std::vector<ConstDecl> consts;
    std::vector<FnDecl> functions;
};

} // namespace softcheck::ast

#endif // SOFTCHECK_FRONTEND_AST_HH
