/**
 * @file
 * MiniLang lexer. MiniLang is the small C-like language the workloads
 * are written in; it plays the role of the benchmark C sources that the
 * paper compiles with LLVM.
 */

#ifndef SOFTCHECK_FRONTEND_LEXER_HH
#define SOFTCHECK_FRONTEND_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace softcheck
{

enum class TokKind : uint8_t
{
    End,
    Ident,
    IntLit,
    FloatLit,
    // Keywords
    KwFn,
    KwVar,
    KwConst,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwTrue,
    KwFalse,
    // Punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Colon,
    Arrow,     // ->
    Assign,    // =
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Shl,
    Shr,
    Amp,
    Pipe,
    Caret,
    AmpAmp,
    PipePipe,
    Bang,
    Tilde,
};

struct Token
{
    TokKind kind = TokKind::End;
    std::string text;
    int64_t intValue = 0;
    double floatValue = 0;
    int line = 0;
};

/** Tokenize @p source; throws FatalError on bad input. */
std::vector<Token> tokenize(const std::string &source);

const char *tokKindName(TokKind k);

} // namespace softcheck

#endif // SOFTCHECK_FRONTEND_LEXER_HH
