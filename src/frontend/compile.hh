/**
 * @file
 * One-call MiniLang -> verified SSA module compilation: parse, lower,
 * clean the CFG, promote locals to SSA (mem2reg), and verify.
 */

#ifndef SOFTCHECK_FRONTEND_COMPILE_HH
#define SOFTCHECK_FRONTEND_COMPILE_HH

#include <memory>
#include <string>

#include "ir/module.hh"

namespace softcheck
{

/**
 * Compile MiniLang source into a verified, renumbered SSA module.
 * Throws FatalError with a line-located message on any error.
 */
std::unique_ptr<Module> compileMiniLang(const std::string &source,
                                        const std::string &module_name);

} // namespace softcheck

#endif // SOFTCHECK_FRONTEND_COMPILE_HH
