#include "frontend/lexer.hh"

#include <cctype>
#include <map>

#include "support/error.hh"

namespace softcheck
{

const char *
tokKindName(TokKind k)
{
    switch (k) {
      case TokKind::End: return "<eof>";
      case TokKind::Ident: return "identifier";
      case TokKind::IntLit: return "integer literal";
      case TokKind::FloatLit: return "float literal";
      case TokKind::KwFn: return "fn";
      case TokKind::KwVar: return "var";
      case TokKind::KwConst: return "const";
      case TokKind::KwIf: return "if";
      case TokKind::KwElse: return "else";
      case TokKind::KwWhile: return "while";
      case TokKind::KwFor: return "for";
      case TokKind::KwReturn: return "return";
      case TokKind::KwBreak: return "break";
      case TokKind::KwContinue: return "continue";
      case TokKind::KwTrue: return "true";
      case TokKind::KwFalse: return "false";
      case TokKind::LParen: return "(";
      case TokKind::RParen: return ")";
      case TokKind::LBrace: return "{";
      case TokKind::RBrace: return "}";
      case TokKind::LBracket: return "[";
      case TokKind::RBracket: return "]";
      case TokKind::Comma: return ",";
      case TokKind::Semicolon: return ";";
      case TokKind::Colon: return ":";
      case TokKind::Arrow: return "->";
      case TokKind::Assign: return "=";
      case TokKind::EqEq: return "==";
      case TokKind::NotEq: return "!=";
      case TokKind::Lt: return "<";
      case TokKind::Le: return "<=";
      case TokKind::Gt: return ">";
      case TokKind::Ge: return ">=";
      case TokKind::Plus: return "+";
      case TokKind::Minus: return "-";
      case TokKind::Star: return "*";
      case TokKind::Slash: return "/";
      case TokKind::Percent: return "%";
      case TokKind::Shl: return "<<";
      case TokKind::Shr: return ">>";
      case TokKind::Amp: return "&";
      case TokKind::Pipe: return "|";
      case TokKind::Caret: return "^";
      case TokKind::AmpAmp: return "&&";
      case TokKind::PipePipe: return "||";
      case TokKind::Bang: return "!";
      case TokKind::Tilde: return "~";
    }
    return "?";
}

std::vector<Token>
tokenize(const std::string &src)
{
    static const std::map<std::string, TokKind> keywords = {
        {"fn", TokKind::KwFn},         {"var", TokKind::KwVar},
        {"const", TokKind::KwConst},   {"if", TokKind::KwIf},
        {"else", TokKind::KwElse},     {"while", TokKind::KwWhile},
        {"for", TokKind::KwFor},       {"return", TokKind::KwReturn},
        {"break", TokKind::KwBreak},   {"continue", TokKind::KwContinue},
        {"true", TokKind::KwTrue},     {"false", TokKind::KwFalse},
    };

    std::vector<Token> toks;
    std::size_t i = 0;
    int line = 1;
    const std::size_t n = src.size();

    auto peek = [&](std::size_t off = 0) {
        return i + off < n ? src[i + off] : '\0';
    };
    auto emit = [&](TokKind k, std::string text) {
        toks.push_back({k, std::move(text), 0, 0, line});
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments
        if (c == '/' && peek(1) == '/') {
            while (i < n && src[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i < n && !(src[i] == '*' && peek(1) == '/')) {
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            if (i >= n)
                scFatal("unterminated block comment at line ", line);
            i += 2;
            continue;
        }
        // Identifiers / keywords
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = i;
            while (i < n && (std::isalnum(
                                 static_cast<unsigned char>(src[i])) ||
                             src[i] == '_'))
                ++i;
            std::string word = src.substr(start, i - start);
            auto it = keywords.find(word);
            emit(it != keywords.end() ? it->second : TokKind::Ident,
                 std::move(word));
            continue;
        }
        // Numbers
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t start = i;
            bool is_float = false;
            if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
                i += 2;
                while (i < n && std::isxdigit(
                                    static_cast<unsigned char>(src[i])))
                    ++i;
                Token t;
                t.kind = TokKind::IntLit;
                t.text = src.substr(start, i - start);
                t.intValue = static_cast<int64_t>(
                    std::stoull(t.text.substr(2), nullptr, 16));
                t.line = line;
                toks.push_back(std::move(t));
                continue;
            }
            while (i < n &&
                   std::isdigit(static_cast<unsigned char>(src[i])))
                ++i;
            if (i < n && src[i] == '.' &&
                std::isdigit(static_cast<unsigned char>(peek(1)))) {
                is_float = true;
                ++i;
                while (i < n &&
                       std::isdigit(static_cast<unsigned char>(src[i])))
                    ++i;
            }
            if (i < n && (src[i] == 'e' || src[i] == 'E')) {
                std::size_t save = i;
                ++i;
                if (i < n && (src[i] == '+' || src[i] == '-'))
                    ++i;
                if (i < n &&
                    std::isdigit(static_cast<unsigned char>(src[i]))) {
                    is_float = true;
                    while (i < n && std::isdigit(static_cast<unsigned char>(
                                        src[i])))
                        ++i;
                } else {
                    i = save;
                }
            }
            Token t;
            t.text = src.substr(start, i - start);
            t.line = line;
            if (is_float) {
                t.kind = TokKind::FloatLit;
                t.floatValue = std::stod(t.text);
            } else {
                t.kind = TokKind::IntLit;
                t.intValue = static_cast<int64_t>(
                    std::stoull(t.text, nullptr, 10));
            }
            toks.push_back(std::move(t));
            continue;
        }
        // Operators / punctuation
        auto two = [&](char c2, TokKind k2, TokKind k1) {
            if (peek(1) == c2) {
                emit(k2, std::string{c, c2});
                i += 2;
            } else {
                emit(k1, std::string{c});
                ++i;
            }
        };
        switch (c) {
          case '(': emit(TokKind::LParen, "("); ++i; break;
          case ')': emit(TokKind::RParen, ")"); ++i; break;
          case '{': emit(TokKind::LBrace, "{"); ++i; break;
          case '}': emit(TokKind::RBrace, "}"); ++i; break;
          case '[': emit(TokKind::LBracket, "["); ++i; break;
          case ']': emit(TokKind::RBracket, "]"); ++i; break;
          case ',': emit(TokKind::Comma, ","); ++i; break;
          case ';': emit(TokKind::Semicolon, ";"); ++i; break;
          case ':': emit(TokKind::Colon, ":"); ++i; break;
          case '+': emit(TokKind::Plus, "+"); ++i; break;
          case '*': emit(TokKind::Star, "*"); ++i; break;
          case '/': emit(TokKind::Slash, "/"); ++i; break;
          case '%': emit(TokKind::Percent, "%"); ++i; break;
          case '^': emit(TokKind::Caret, "^"); ++i; break;
          case '~': emit(TokKind::Tilde, "~"); ++i; break;
          case '-':
            two('>', TokKind::Arrow, TokKind::Minus);
            break;
          case '=':
            two('=', TokKind::EqEq, TokKind::Assign);
            break;
          case '!':
            two('=', TokKind::NotEq, TokKind::Bang);
            break;
          case '<':
            if (peek(1) == '<') {
                emit(TokKind::Shl, "<<");
                i += 2;
            } else {
                two('=', TokKind::Le, TokKind::Lt);
            }
            break;
          case '>':
            if (peek(1) == '>') {
                emit(TokKind::Shr, ">>");
                i += 2;
            } else {
                two('=', TokKind::Ge, TokKind::Gt);
            }
            break;
          case '&':
            two('&', TokKind::AmpAmp, TokKind::Amp);
            break;
          case '|':
            two('|', TokKind::PipePipe, TokKind::Pipe);
            break;
          default:
            scFatal("unexpected character '", std::string{c},
                    "' at line ", line);
        }
    }
    toks.push_back({TokKind::End, "", 0, 0, line});
    return toks;
}

} // namespace softcheck
