#include "frontend/compile.hh"

#include "analysis/cfg_utils.hh"
#include "analysis/const_fold.hh"
#include "analysis/dominance_verify.hh"
#include "analysis/mem2reg.hh"
#include "frontend/irgen.hh"
#include "frontend/parser.hh"
#include "ir/verifier.hh"
#include "support/error.hh"

namespace softcheck
{

std::unique_ptr<Module>
compileMiniLang(const std::string &source, const std::string &module_name)
{
    ast::Program prog = parseProgram(source);
    std::unique_ptr<Module> mod = generateIR(prog, module_name);

    for (Function *fn : mod->functions()) {
        removeUnreachableBlocks(*fn);
        promoteAllocas(*fn);
        foldConstants(*fn);
        eliminateDeadCode(*fn);
    }

    verifyModuleOrDie(*mod);
    for (Function *fn : mod->functions()) {
        auto probs = verifyDominance(*fn);
        if (!probs.empty())
            scFatal("frontend produced invalid SSA: ", probs.front());
    }
    mod->renumberAll();
    return mod;
}

} // namespace softcheck
