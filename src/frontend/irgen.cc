#include "frontend/irgen.hh"

#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "ir/irbuilder.hh"
#include "support/error.hh"

namespace softcheck
{

using namespace ast;

namespace
{

/** Compile-time constant: integer or float. */
struct ConstVal
{
    bool isFloat = false;
    int64_t i = 0;
    double f = 0;

    double asDouble() const { return isFloat ? f : double(i); }
};

class IRGen
{
  public:
    IRGen(const Program &prog, const std::string &module_name)
        : program(prog),
          mod(std::make_unique<Module>(module_name)),
          builder(*mod)
    {}

    std::unique_ptr<Module>
    run()
    {
        declareConsts();
        declareFunctions();
        for (const FnDecl &fn : program.functions)
            generateFunction(fn);
        return std::move(mod);
    }

  private:
    // ---- symbols ------------------------------------------------------

    struct Sym
    {
        enum class Kind
        {
            ScalarLocal, //!< alloca of a scalar
            ArrayLocal,  //!< alloca of an array
            PtrParam,    //!< ptr<T> argument
            GlobalConst, //!< module const array
            ScalarConst, //!< compile-time scalar constant
        };
        Kind kind;
        Value *ptr = nullptr;  //!< alloca or Argument
        Type valType;          //!< scalar type / element type
        uint64_t count = 0;    //!< array element count (0 = unknown)
        const GlobalVariable *global = nullptr;
        ConstVal constant;
    };

    [[noreturn]] void
    err(int line, const std::string &msg) const
    {
        scFatal("semantic error at line ", line, ": ", msg);
    }

    Sym *
    lookup(const std::string &name)
    {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return &f->second;
        }
        auto g = moduleScope.find(name);
        return g == moduleScope.end() ? nullptr : &g->second;
    }

    void
    define(int line, const std::string &name, Sym sym)
    {
        if (!scopes.back().emplace(name, std::move(sym)).second)
            err(line, "redefinition of '" + name + "'");
    }

    // ---- compile-time evaluation ---------------------------------------

    ConstVal
    evalConst(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit:
            return {false, e.intValue, 0};
          case ExprKind::FloatLit:
            return {true, 0, e.floatValue};
          case ExprKind::BoolLit:
            return {false, e.boolValue ? 1 : 0, 0};
          case ExprKind::VarRef: {
            auto it = moduleScope.find(e.name);
            if (it == moduleScope.end() ||
                it->second.kind != Sym::Kind::ScalarConst)
                err(e.line, "'" + e.name +
                                "' is not a scalar constant");
            return it->second.constant;
          }
          case ExprKind::Unary: {
            ConstVal v = evalConst(*e.children[0]);
            if (e.op == TokKind::Minus) {
                if (v.isFloat)
                    v.f = -v.f;
                else
                    v.i = -v.i;
                return v;
            }
            if (e.op == TokKind::Tilde && !v.isFloat) {
                v.i = ~v.i;
                return v;
            }
            err(e.line, "unsupported constant unary operator");
          }
          case ExprKind::Binary: {
            const ConstVal a = evalConst(*e.children[0]);
            const ConstVal b = evalConst(*e.children[1]);
            if (a.isFloat || b.isFloat) {
                const double x = a.asDouble(), y = b.asDouble();
                switch (e.op) {
                  case TokKind::Plus: return {true, 0, x + y};
                  case TokKind::Minus: return {true, 0, x - y};
                  case TokKind::Star: return {true, 0, x * y};
                  case TokKind::Slash: return {true, 0, x / y};
                  default:
                    err(e.line, "unsupported constant float operator");
                }
            }
            switch (e.op) {
              case TokKind::Plus: return {false, a.i + b.i, 0};
              case TokKind::Minus: return {false, a.i - b.i, 0};
              case TokKind::Star: return {false, a.i * b.i, 0};
              case TokKind::Slash:
                if (b.i == 0)
                    err(e.line, "constant division by zero");
                return {false, a.i / b.i, 0};
              case TokKind::Percent:
                if (b.i == 0)
                    err(e.line, "constant modulo by zero");
                return {false, a.i % b.i, 0};
              case TokKind::Shl: return {false, a.i << (b.i & 63), 0};
              case TokKind::Shr: return {false, a.i >> (b.i & 63), 0};
              case TokKind::Amp: return {false, a.i & b.i, 0};
              case TokKind::Pipe: return {false, a.i | b.i, 0};
              case TokKind::Caret: return {false, a.i ^ b.i, 0};
              default:
                err(e.line, "unsupported constant operator");
            }
          }
          case ExprKind::Cast: {
            ConstVal v = evalConst(*e.children[0]);
            if (e.castType.scalar.isFloat())
                return {true, 0, v.asDouble()};
            return {false,
                    v.isFloat ? static_cast<int64_t>(v.f) : v.i, 0};
          }
          default:
            err(e.line, "expression is not a compile-time constant");
        }
    }

    /** Canonical storage bits for a constant of type @p t. */
    uint64_t
    canonicalBits(const ConstVal &v, Type t, int line)
    {
        if (t.isFloat()) {
            const double d = v.asDouble();
            if (t.kind() == TypeKind::F32)
                return std::bit_cast<uint32_t>(static_cast<float>(d));
            return std::bit_cast<uint64_t>(d);
        }
        if (v.isFloat)
            err(line, "float initializer for integer constant");
        return truncBits(static_cast<uint64_t>(v.i), t.bitWidth());
    }

    void
    declareConsts()
    {
        for (const ConstDecl &cd : program.consts) {
            if (moduleScope.count(cd.name))
                err(cd.line, "redefinition of '" + cd.name + "'");
            if (cd.isArray) {
                if (cd.values.size() != cd.arraySize)
                    err(cd.line,
                        "initializer count does not match array size");
                std::vector<uint64_t> init;
                init.reserve(cd.values.size());
                for (const ExprPtr &e : cd.values)
                    init.push_back(canonicalBits(evalConst(*e),
                                                 cd.elemType.scalar,
                                                 cd.line));
                Sym sym;
                sym.kind = Sym::Kind::GlobalConst;
                sym.valType = cd.elemType.scalar;
                sym.count = cd.arraySize;
                sym.global = mod->createGlobal(cd.name,
                                               cd.elemType.scalar,
                                               std::move(init));
                moduleScope.emplace(cd.name, std::move(sym));
            } else {
                Sym sym;
                sym.kind = Sym::Kind::ScalarConst;
                sym.valType = cd.elemType.scalar;
                sym.constant = evalConst(*cd.values[0]);
                moduleScope.emplace(cd.name, std::move(sym));
            }
        }
    }

    void
    declareFunctions()
    {
        for (const FnDecl &fn : program.functions) {
            const Type ret = fn.returnsVoid ? Type::voidTy()
                                            : fn.returnType.scalar;
            Function *f = mod->createFunction(fn.name, ret);
            for (const Param &p : fn.params)
                f->addArg(p.type.isPointer ? Type::ptr()
                                           : p.type.scalar,
                          p.name);
        }
    }

    // ---- conversions ----------------------------------------------------

    /** Implicit conversion (widening + constant folding). */
    Value *
    convert(Value *v, Type to, int line)
    {
        const Type from = v->type();
        if (from == to)
            return v;

        if (auto *ci = dynamic_cast<ConstantInt *>(v);
            ci && to.isInteger()) {
            const int64_t sv = ci->signedValue();
            const int64_t lo =
                to.bitWidth() >= 64
                    ? std::numeric_limits<int64_t>::min()
                    : -(int64_t(1) << (to.bitWidth() - 1));
            const int64_t hi =
                to.bitWidth() >= 64
                    ? std::numeric_limits<int64_t>::max()
                    : (int64_t(1) << to.bitWidth()) - 1;
            if (sv >= lo && sv <= hi)
                return mod->getConstInt(to, static_cast<uint64_t>(sv));
            err(line, "constant does not fit in " + to.str());
        }
        if (auto *cf = dynamic_cast<ConstantFloat *>(v);
            cf && to.isFloat())
            return mod->getConstFloat(to, cf->value());

        if (from.isInteger() && to.isInteger()) {
            if (from.bitWidth() < to.bitWidth() &&
                from.kind() != TypeKind::I1)
                return builder.createCast(Opcode::SExt, v, to);
            err(line, "implicit narrowing from " + from.str() + " to " +
                          to.str() + " (use an explicit cast)");
        }
        if (from.kind() == TypeKind::F32 && to.kind() == TypeKind::F64)
            return builder.createCast(Opcode::FPExt, v, to);
        err(line, "cannot implicitly convert " + from.str() + " to " +
                      to.str());
    }

    /** Explicit cast T(expr). */
    Value *
    castTo(Value *v, Type to, int line)
    {
        const Type from = v->type();
        if (from == to)
            return v;
        if (from.isInteger() && to.isInteger()) {
            if (from.kind() == TypeKind::I1)
                return builder.createCast(Opcode::ZExt, v, to);
            if (auto *ci = dynamic_cast<ConstantInt *>(v))
                return mod->getConstInt(
                    to, static_cast<uint64_t>(ci->signedValue()));
            if (from.bitWidth() < to.bitWidth())
                return builder.createCast(Opcode::SExt, v, to);
            return builder.createCast(Opcode::Trunc, v, to);
        }
        if (from.isInteger() && to.isFloat()) {
            if (from.kind() == TypeKind::I1)
                v = builder.createCast(Opcode::ZExt, v, Type::i32());
            if (auto *ci = dynamic_cast<ConstantInt *>(v))
                return mod->getConstFloat(
                    to, static_cast<double>(ci->signedValue()));
            return builder.createCast(Opcode::SIToFP, v, to);
        }
        if (from.isFloat() && to.isInteger()) {
            if (to.kind() == TypeKind::I1)
                err(line, "cannot cast float to bool");
            return builder.createCast(Opcode::FPToSI, v, to);
        }
        if (from.isFloat() && to.isFloat()) {
            if (auto *cf = dynamic_cast<ConstantFloat *>(v))
                return mod->getConstFloat(to, cf->value());
            return builder.createCast(from.kind() == TypeKind::F32
                                          ? Opcode::FPExt
                                          : Opcode::FPTrunc,
                                      v, to);
        }
        err(line, "invalid cast from " + from.str() + " to " + to.str());
    }

    /** Common type for a binary operation. */
    Type
    unify(Value *&a, Value *&b, int line)
    {
        const Type ta = a->type(), tb = b->type();
        if (ta == tb)
            return ta;
        if (ta.isInteger() && tb.isInteger()) {
            const Type wide =
                ta.bitWidth() >= tb.bitWidth() ? ta : tb;
            a = convert(a, wide, line);
            b = convert(b, wide, line);
            return wide;
        }
        if (ta.isFloat() && tb.isFloat()) {
            a = convert(a, Type::f64(), line);
            b = convert(b, Type::f64(), line);
            return Type::f64();
        }
        // Integer constants mix freely with floats (e.g. x * 2).
        if (auto *ci = dynamic_cast<ConstantInt *>(a);
            ci && tb.isFloat()) {
            a = mod->getConstFloat(
                tb, static_cast<double>(ci->signedValue()));
            return tb;
        }
        if (auto *ci = dynamic_cast<ConstantInt *>(b);
            ci && ta.isFloat()) {
            b = mod->getConstFloat(
                ta, static_cast<double>(ci->signedValue()));
            return ta;
        }
        err(line, "operand type mismatch: " + ta.str() + " vs " +
                      tb.str() + " (use an explicit cast)");
    }

    // ---- expression generation -----------------------------------------

    Value *
    genExpr(const Expr &e)
    {
        switch (e.kind) {
          case ExprKind::IntLit: {
            // i32 when it fits, i64 otherwise.
            if (e.intValue >= std::numeric_limits<int32_t>::min() &&
                e.intValue <= std::numeric_limits<int32_t>::max())
                return mod->getConstInt(Type::i32(), e.intValue);
            return mod->getConstInt(Type::i64(), e.intValue);
          }
          case ExprKind::FloatLit:
            return mod->getConstFloat(Type::f64(), e.floatValue);
          case ExprKind::BoolLit:
            return mod->getConstInt(Type::i1(),
                                    uint64_t{e.boolValue});
          case ExprKind::VarRef:
            return genVarRef(e);
          case ExprKind::Index:
            return genIndexRead(e);
          case ExprKind::Unary:
            return genUnary(e);
          case ExprKind::Binary:
            return genBinary(e);
          case ExprKind::Call:
            return genCall(e);
          case ExprKind::Cast:
            return castTo(genExpr(*e.children[0]), e.castType.scalar,
                          e.line);
        }
        scPanic("unhandled expression kind");
    }

    Value *
    genVarRef(const Expr &e)
    {
        Sym *sym = lookup(e.name);
        if (!sym)
            err(e.line, "use of undeclared variable '" + e.name + "'");
        switch (sym->kind) {
          case Sym::Kind::ScalarLocal:
            return builder.createLoad(sym->valType, sym->ptr, e.name);
          case Sym::Kind::ScalarConst:
            if (sym->valType.isFloat())
                return mod->getConstFloat(sym->valType,
                                          sym->constant.asDouble());
            return mod->getConstInt(
                sym->valType,
                static_cast<uint64_t>(sym->constant.i));
          case Sym::Kind::PtrParam:
            return sym->ptr;
          case Sym::Kind::ArrayLocal:
          case Sym::Kind::GlobalConst:
            err(e.line, "array '" + e.name +
                            "' must be indexed or passed to a function");
        }
        scPanic("unhandled symbol kind");
    }

    /** Pointer to element i of an indexable symbol. */
    Value *
    genElementPtr(const std::string &name, const Expr &index_expr,
                  int line, Type &elem_out)
    {
        Sym *sym = lookup(name);
        if (!sym)
            err(line, "use of undeclared variable '" + name + "'");
        Value *base = nullptr;
        switch (sym->kind) {
          case Sym::Kind::ArrayLocal:
          case Sym::Kind::PtrParam:
            base = sym->ptr;
            break;
          case Sym::Kind::GlobalConst:
            base = builder.createGlobalAddr(sym->global, name);
            break;
          default:
            err(line, "'" + name + "' is not indexable");
        }
        elem_out = sym->valType;
        Value *idx = genExpr(index_expr);
        if (!idx->type().isInteger() ||
            idx->type().kind() == TypeKind::I1)
            err(line, "array index must be an integer");
        idx = convert(idx, Type::i64(), line);
        return builder.createGep(base, idx, elem_out);
    }

    Value *
    genIndexRead(const Expr &e)
    {
        Type elem;
        Value *ptr = genElementPtr(e.name, *e.children[0], e.line, elem);
        return builder.createLoad(elem, ptr, e.name + ".v");
    }

    Value *
    genUnary(const Expr &e)
    {
        Value *v = genExpr(*e.children[0]);
        switch (e.op) {
          case TokKind::Minus:
            if (v->type().isFloat())
                return builder.createFSub(
                    mod->getConstFloat(v->type(), 0.0), v);
            if (v->type().isInteger() &&
                v->type().kind() != TypeKind::I1)
                return builder.createSub(
                    mod->getConstInt(v->type(), uint64_t{0}), v);
            err(e.line, "cannot negate " + v->type().str());
          case TokKind::Bang:
            if (v->type() != Type::i1())
                err(e.line, "'!' requires a bool operand");
            return builder.createXor(v, mod->getTrue());
          case TokKind::Tilde:
            if (!v->type().isInteger() ||
                v->type().kind() == TypeKind::I1)
                err(e.line, "'~' requires an integer operand");
            return builder.createXor(
                v, mod->getConstInt(v->type(), int64_t{-1}));
          default:
            scPanic("unhandled unary operator");
        }
    }

    Value *
    genBinary(const Expr &e)
    {
        if (e.op == TokKind::AmpAmp || e.op == TokKind::PipePipe)
            return genShortCircuit(e);

        Value *a = genExpr(*e.children[0]);

        // Shifts keep the left operand's type.
        if (e.op == TokKind::Shl || e.op == TokKind::Shr) {
            Value *b = genExpr(*e.children[1]);
            if (!a->type().isInteger() ||
                a->type().kind() == TypeKind::I1)
                err(e.line, "shift requires integer operands");
            if (auto *ci = dynamic_cast<ConstantInt *>(b))
                b = mod->getConstInt(
                    a->type(), static_cast<uint64_t>(ci->signedValue()));
            else if (b->type() != a->type())
                b = convert(b, a->type(), e.line);
            return builder.createBinary(
                e.op == TokKind::Shl ? Opcode::Shl : Opcode::AShr, a, b);
        }

        Value *b = genExpr(*e.children[1]);

        // Equality on bools.
        if (a->type() == Type::i1() && b->type() == Type::i1() &&
            (e.op == TokKind::EqEq || e.op == TokKind::NotEq)) {
            return builder.createICmp(e.op == TokKind::EqEq
                                          ? Predicate::Eq
                                          : Predicate::Ne,
                                      a, b);
        }
        if (a->type() == Type::i1() || b->type() == Type::i1())
            err(e.line, "bool operands require '&&', '||' or '=='");

        const Type t = unify(a, b, e.line);
        const bool flt = t.isFloat();

        switch (e.op) {
          case TokKind::Plus:
            return builder.createBinary(flt ? Opcode::FAdd : Opcode::Add,
                                        a, b);
          case TokKind::Minus:
            return builder.createBinary(flt ? Opcode::FSub : Opcode::Sub,
                                        a, b);
          case TokKind::Star:
            return builder.createBinary(flt ? Opcode::FMul : Opcode::Mul,
                                        a, b);
          case TokKind::Slash:
            return builder.createBinary(
                flt ? Opcode::FDiv : Opcode::SDiv, a, b);
          case TokKind::Percent:
            if (flt)
                err(e.line, "'%' requires integer operands");
            return builder.createSRem(a, b);
          case TokKind::Amp:
          case TokKind::Pipe:
          case TokKind::Caret: {
            if (flt)
                err(e.line, "bitwise operators require integers");
            const Opcode op = e.op == TokKind::Amp
                                  ? Opcode::And
                                  : e.op == TokKind::Pipe ? Opcode::Or
                                                          : Opcode::Xor;
            return builder.createBinary(op, a, b);
          }
          case TokKind::EqEq:
          case TokKind::NotEq:
          case TokKind::Lt:
          case TokKind::Le:
          case TokKind::Gt:
          case TokKind::Ge: {
            if (flt) {
                static const std::map<TokKind, Predicate> fp = {
                    {TokKind::EqEq, Predicate::OEq},
                    {TokKind::NotEq, Predicate::ONe},
                    {TokKind::Lt, Predicate::OLt},
                    {TokKind::Le, Predicate::OLe},
                    {TokKind::Gt, Predicate::OGt},
                    {TokKind::Ge, Predicate::OGe},
                };
                return builder.createFCmp(fp.at(e.op), a, b);
            }
            static const std::map<TokKind, Predicate> ip = {
                {TokKind::EqEq, Predicate::Eq},
                {TokKind::NotEq, Predicate::Ne},
                {TokKind::Lt, Predicate::Slt},
                {TokKind::Le, Predicate::Sle},
                {TokKind::Gt, Predicate::Sgt},
                {TokKind::Ge, Predicate::Sge},
            };
            return builder.createICmp(ip.at(e.op), a, b);
          }
          default:
            scPanic("unhandled binary operator");
        }
    }

    Value *
    genShortCircuit(const Expr &e)
    {
        const bool is_and = e.op == TokKind::AmpAmp;
        Value *lhs = genExpr(*e.children[0]);
        if (lhs->type() != Type::i1())
            err(e.line, "'&&'/'||' require bool operands");

        BasicBlock *lhs_end = builder.insertBlock();
        BasicBlock *rhs_bb = curFn->addBlockAfter(
            lhs_end, blockName(is_and ? "and.rhs" : "or.rhs"));
        BasicBlock *join_bb =
            curFn->addBlockAfter(rhs_bb,
                                 blockName(is_and ? "and.end" : "or.end"));

        if (is_and)
            builder.createCondBr(lhs, rhs_bb, join_bb);
        else
            builder.createCondBr(lhs, join_bb, rhs_bb);

        builder.setInsertPoint(rhs_bb);
        Value *rhs = genExpr(*e.children[1]);
        if (rhs->type() != Type::i1())
            err(e.line, "'&&'/'||' require bool operands");
        BasicBlock *rhs_end = builder.insertBlock();
        builder.createBr(join_bb);

        builder.setInsertPoint(join_bb);
        Instruction *phi = builder.createPhi(Type::i1());
        phi->addIncoming(is_and ? static_cast<Value *>(mod->getFalse())
                                : static_cast<Value *>(mod->getTrue()),
                         lhs_end);
        phi->addIncoming(rhs, rhs_end);
        // Phi must precede any instruction already in join_bb; it is the
        // first instruction because join_bb was empty until now.
        return phi;
    }

    Value *
    genCall(const Expr &e)
    {
        // Builtins
        static const std::map<std::string, Opcode> unary_math = {
            {"sqrt", Opcode::Sqrt}, {"fabs", Opcode::FAbs},
            {"exp", Opcode::Exp},   {"log", Opcode::Log},
            {"sin", Opcode::Sin},   {"cos", Opcode::Cos},
        };
        if (auto it = unary_math.find(e.name); it != unary_math.end()) {
            if (e.children.size() != 1)
                err(e.line, e.name + " takes one argument");
            Value *v = genExpr(*e.children[0]);
            if (!v->type().isFloat())
                err(e.line, e.name + " requires a float argument");
            v = convert(v, Type::f64(), e.line);
            return builder.createUnaryMath(it->second, v);
        }
        if (e.name == "fmin" || e.name == "fmax") {
            if (e.children.size() != 2)
                err(e.line, e.name + " takes two arguments");
            Value *a = convert(genExpr(*e.children[0]), Type::f64(),
                               e.line);
            Value *b = convert(genExpr(*e.children[1]), Type::f64(),
                               e.line);
            return builder.createBinaryMath(
                e.name == "fmin" ? Opcode::FMin : Opcode::FMax, a, b);
        }

        Function *callee = mod->getFunction(e.name);
        if (!callee)
            err(e.line, "call to undeclared function '" + e.name + "'");
        if (e.children.size() != callee->numArgs())
            err(e.line, "argument count mismatch calling '" + e.name +
                            "'");
        std::vector<Value *> args;
        for (std::size_t i = 0; i < e.children.size(); ++i) {
            const Expr &arg = *e.children[i];
            const Type want = callee->arg(i)->type();
            if (want.isPtr()) {
                // Pass an array/pointer by name.
                if (arg.kind != ExprKind::VarRef)
                    err(arg.line, "pointer argument must be an array or "
                                  "pointer variable");
                Sym *sym = lookup(arg.name);
                if (!sym)
                    err(arg.line, "use of undeclared variable '" +
                                      arg.name + "'");
                switch (sym->kind) {
                  case Sym::Kind::ArrayLocal:
                  case Sym::Kind::PtrParam:
                    args.push_back(sym->ptr);
                    break;
                  case Sym::Kind::GlobalConst:
                    args.push_back(
                        builder.createGlobalAddr(sym->global, arg.name));
                    break;
                  default:
                    err(arg.line, "'" + arg.name + "' is not a pointer");
                }
            } else {
                args.push_back(convert(genExpr(arg), want, arg.line));
            }
        }
        return builder.createCall(callee, args,
                                  callee->returnType().isVoid()
                                      ? std::string{}
                                      : e.name + ".r");
    }

    // ---- statement generation --------------------------------------------

    std::string
    blockName(const char *stem)
    {
        return std::string(stem) + "." + std::to_string(nextBlockId++);
    }

    /** Create an alloca in the entry block (hoisted for mem2reg). */
    Instruction *
    entryAlloca(Type elem, uint64_t count, const std::string &nm)
    {
        IRBuilder eb(*mod);
        eb.setInsertPoint(entryBlock, entryBlock->firstNonPhi());
        return eb.createAlloca(
            elem, mod->getConstInt(Type::i64(), count), nm);
    }

    void
    genStmtList(const std::vector<StmtPtr> &stmts)
    {
        for (const StmtPtr &s : stmts) {
            if (terminated) {
                // Dead code after break/continue/return: park it in an
                // unreachable block (cleaned by removeUnreachableBlocks).
                BasicBlock *dead = curFn->addBlock(blockName("dead"));
                builder.setInsertPoint(dead);
                terminated = false;
            }
            genStmt(*s);
        }
    }

    void
    genStmt(const Stmt &s)
    {
        switch (s.kind) {
          case StmtKind::VarDecl: {
            if (s.declType.isPointer)
                err(s.line, "local pointer variables are not supported");
            const Type t = s.declType.scalar;
            if (s.arraySize) {
                Sym sym;
                sym.kind = Sym::Kind::ArrayLocal;
                sym.valType = t;
                sym.count = s.arraySize;
                sym.ptr = entryAlloca(t, s.arraySize, s.name);
                define(s.line, s.name, std::move(sym));
            } else {
                Sym sym;
                sym.kind = Sym::Kind::ScalarLocal;
                sym.valType = t;
                sym.ptr = entryAlloca(t, 1, s.name);
                Value *init =
                    s.init ? convert(genExpr(*s.init), t, s.line)
                           : (t.isFloat()
                                  ? static_cast<Value *>(
                                        mod->getConstFloat(t, 0.0))
                                  : static_cast<Value *>(
                                        mod->getConstInt(t,
                                                         uint64_t{0})));
                builder.createStore(init, sym.ptr);
                define(s.line, s.name, std::move(sym));
            }
            break;
          }
          case StmtKind::Assign: {
            if (s.index) {
                Type elem;
                Value *ptr =
                    genElementPtr(s.name, *s.index, s.line, elem);
                Sym *sym = lookup(s.name);
                if (sym->kind == Sym::Kind::GlobalConst)
                    err(s.line, "cannot assign to constant array '" +
                                    s.name + "'");
                Value *v = convert(genExpr(*s.value), elem, s.line);
                builder.createStore(v, ptr);
            } else {
                Sym *sym = lookup(s.name);
                if (!sym)
                    err(s.line, "use of undeclared variable '" +
                                    s.name + "'");
                if (sym->kind != Sym::Kind::ScalarLocal)
                    err(s.line, "cannot assign to '" + s.name + "'");
                Value *v =
                    convert(genExpr(*s.value), sym->valType, s.line);
                builder.createStore(v, sym->ptr);
            }
            break;
          }
          case StmtKind::ExprStmt:
            genExpr(*s.expr);
            break;
          case StmtKind::Block:
            scopes.emplace_back();
            genStmtList(s.body);
            scopes.pop_back();
            break;
          case StmtKind::If:
            genIf(s);
            break;
          case StmtKind::While:
            genWhile(s);
            break;
          case StmtKind::For:
            genFor(s);
            break;
          case StmtKind::Return: {
            if (curFn->returnType().isVoid()) {
                if (s.expr)
                    err(s.line, "void function cannot return a value");
                builder.createRet();
            } else {
                if (!s.expr)
                    err(s.line, "non-void function must return a value");
                Value *v = convert(genExpr(*s.expr),
                                   curFn->returnType(), s.line);
                builder.createRet(v);
            }
            terminated = true;
            break;
          }
          case StmtKind::Break:
            if (loopStack.empty())
                err(s.line, "'break' outside a loop");
            builder.createBr(loopStack.back().breakTarget);
            terminated = true;
            break;
          case StmtKind::Continue:
            if (loopStack.empty())
                err(s.line, "'continue' outside a loop");
            builder.createBr(loopStack.back().continueTarget);
            terminated = true;
            break;
        }
    }

    Value *
    genCondition(const Expr &e)
    {
        Value *v = genExpr(e);
        if (v->type() != Type::i1())
            err(e.line, "condition must be a bool expression");
        return v;
    }

    void
    genIf(const Stmt &s)
    {
        Value *cond = genCondition(*s.expr);
        BasicBlock *cur = builder.insertBlock();
        BasicBlock *then_bb = curFn->addBlockAfter(cur,
                                                   blockName("if.then"));
        BasicBlock *else_bb =
            s.elseBody.empty()
                ? nullptr
                : curFn->addBlockAfter(then_bb, blockName("if.else"));
        BasicBlock *join_bb = curFn->addBlockAfter(
            else_bb ? else_bb : then_bb, blockName("if.end"));

        builder.createCondBr(cond, then_bb,
                             else_bb ? else_bb : join_bb);

        builder.setInsertPoint(then_bb);
        terminated = false;
        scopes.emplace_back();
        genStmtList(s.body);
        scopes.pop_back();
        if (!terminated)
            builder.createBr(join_bb);

        if (else_bb) {
            builder.setInsertPoint(else_bb);
            terminated = false;
            scopes.emplace_back();
            genStmtList(s.elseBody);
            scopes.pop_back();
            if (!terminated)
                builder.createBr(join_bb);
        }

        builder.setInsertPoint(join_bb);
        terminated = false;
    }

    void
    genWhile(const Stmt &s)
    {
        BasicBlock *cur = builder.insertBlock();
        BasicBlock *cond_bb =
            curFn->addBlockAfter(cur, blockName("while.cond"));
        BasicBlock *body_bb =
            curFn->addBlockAfter(cond_bb, blockName("while.body"));
        BasicBlock *exit_bb =
            curFn->addBlockAfter(body_bb, blockName("while.end"));

        builder.createBr(cond_bb);
        builder.setInsertPoint(cond_bb);
        Value *cond = genCondition(*s.expr);
        builder.createCondBr(cond, body_bb, exit_bb);

        builder.setInsertPoint(body_bb);
        terminated = false;
        loopStack.push_back({cond_bb, exit_bb});
        scopes.emplace_back();
        genStmtList(s.body);
        scopes.pop_back();
        loopStack.pop_back();
        if (!terminated)
            builder.createBr(cond_bb);

        builder.setInsertPoint(exit_bb);
        terminated = false;
    }

    void
    genFor(const Stmt &s)
    {
        scopes.emplace_back(); // for-init scope
        if (s.forInit)
            genStmt(*s.forInit);

        BasicBlock *cur = builder.insertBlock();
        BasicBlock *cond_bb =
            curFn->addBlockAfter(cur, blockName("for.cond"));
        BasicBlock *body_bb =
            curFn->addBlockAfter(cond_bb, blockName("for.body"));
        BasicBlock *step_bb =
            curFn->addBlockAfter(body_bb, blockName("for.step"));
        BasicBlock *exit_bb =
            curFn->addBlockAfter(step_bb, blockName("for.end"));

        builder.createBr(cond_bb);
        builder.setInsertPoint(cond_bb);
        if (s.expr) {
            Value *cond = genCondition(*s.expr);
            builder.createCondBr(cond, body_bb, exit_bb);
        } else {
            builder.createBr(body_bb);
        }

        builder.setInsertPoint(body_bb);
        terminated = false;
        loopStack.push_back({step_bb, exit_bb});
        scopes.emplace_back();
        genStmtList(s.body);
        scopes.pop_back();
        loopStack.pop_back();
        if (!terminated)
            builder.createBr(step_bb);

        builder.setInsertPoint(step_bb);
        terminated = false;
        if (s.forStep)
            genStmt(*s.forStep);
        builder.createBr(cond_bb);

        builder.setInsertPoint(exit_bb);
        terminated = false;
        scopes.pop_back();
    }

    void
    generateFunction(const FnDecl &decl)
    {
        curFn = mod->getFunction(decl.name);
        nextBlockId = 0;
        entryBlock = curFn->addBlock("entry");
        builder.setInsertPoint(entryBlock);
        terminated = false;
        scopes.clear();
        scopes.emplace_back();

        // Scalar parameters become mutable locals (so loop conditions
        // like Fig. 3's `len -= 32` work); pointer parameters stay SSA.
        for (std::size_t i = 0; i < decl.params.size(); ++i) {
            Argument *arg = curFn->arg(i);
            const Param &p = decl.params[i];
            Sym sym;
            if (p.type.isPointer) {
                sym.kind = Sym::Kind::PtrParam;
                sym.ptr = arg;
                sym.valType = p.type.scalar;
            } else {
                sym.kind = Sym::Kind::ScalarLocal;
                sym.valType = p.type.scalar;
                sym.ptr = entryAlloca(p.type.scalar, 1, p.name + ".a");
                builder.createStore(arg, sym.ptr);
            }
            define(decl.line, p.name, std::move(sym));
        }

        genStmtList(decl.body);

        if (!terminated) {
            if (curFn->returnType().isVoid()) {
                builder.createRet();
            } else if (curFn->returnType().isFloat()) {
                builder.createRet(
                    mod->getConstFloat(curFn->returnType(), 0.0));
            } else {
                builder.createRet(
                    mod->getConstInt(curFn->returnType(), uint64_t{0}));
            }
        }
    }

    struct LoopTargets
    {
        BasicBlock *continueTarget;
        BasicBlock *breakTarget;
    };

    const Program &program;
    std::unique_ptr<Module> mod;
    IRBuilder builder;
    Function *curFn = nullptr;
    BasicBlock *entryBlock = nullptr;
    bool terminated = false;
    unsigned nextBlockId = 0;
    std::vector<std::map<std::string, Sym>> scopes;
    std::map<std::string, Sym> moduleScope;
    std::vector<LoopTargets> loopStack;
};

} // namespace

std::unique_ptr<Module>
generateIR(const ast::Program &prog, const std::string &module_name)
{
    return IRGen(prog, module_name).run();
}

} // namespace softcheck
