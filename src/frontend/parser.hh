/**
 * @file
 * MiniLang recursive-descent parser with precedence climbing.
 */

#ifndef SOFTCHECK_FRONTEND_PARSER_HH
#define SOFTCHECK_FRONTEND_PARSER_HH

#include "frontend/ast.hh"

namespace softcheck
{

/** Parse MiniLang source into an AST; throws FatalError on errors. */
ast::Program parseProgram(const std::string &source);

} // namespace softcheck

#endif // SOFTCHECK_FRONTEND_PARSER_HH
