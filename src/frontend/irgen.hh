/**
 * @file
 * MiniLang AST -> SoftCheck IR lowering with semantic checking.
 *
 * Locals are lowered as allocas with loads/stores (LLVM clang style);
 * the caller runs mem2reg afterwards to obtain the SSA phi nodes the
 * hardening passes analyze. Module-level const arrays become
 * GlobalVariables; scalar consts are folded at compile time.
 */

#ifndef SOFTCHECK_FRONTEND_IRGEN_HH
#define SOFTCHECK_FRONTEND_IRGEN_HH

#include <memory>

#include "frontend/ast.hh"
#include "ir/module.hh"

namespace softcheck
{

/** Lower @p prog into a fresh module named @p module_name. */
std::unique_ptr<Module> generateIR(const ast::Program &prog,
                                   const std::string &module_name);

} // namespace softcheck

#endif // SOFTCHECK_FRONTEND_IRGEN_HH
