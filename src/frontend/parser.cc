#include "frontend/parser.hh"

#include <algorithm>
#include <map>

#include "support/error.hh"

namespace softcheck
{

using namespace ast;

namespace
{

/** True when @p name spells a scalar type. */
bool
scalarTypeFor(const std::string &name, Type &out)
{
    if (name == "i8") { out = Type::i8(); return true; }
    if (name == "i16") { out = Type::i16(); return true; }
    if (name == "i32") { out = Type::i32(); return true; }
    if (name == "i64") { out = Type::i64(); return true; }
    if (name == "f32") { out = Type::f32(); return true; }
    if (name == "f64") { out = Type::f64(); return true; }
    if (name == "bool") { out = Type::i1(); return true; }
    return false;
}

class Parser
{
  public:
    explicit Parser(const std::string &source)
        : toks(tokenize(source))
    {}

    Program
    run()
    {
        Program prog;
        while (cur().kind != TokKind::End) {
            if (cur().kind == TokKind::KwConst)
                prog.consts.push_back(parseConst());
            else if (cur().kind == TokKind::KwFn)
                prog.functions.push_back(parseFunction());
            else
                err("expected 'fn' or 'const'");
        }
        return prog;
    }

  private:
    const Token &cur() const { return toks[pos]; }
    const Token &peek(std::size_t off = 1) const
    {
        return toks[std::min(pos + off, toks.size() - 1)];
    }

    [[noreturn]] void
    err(const std::string &msg) const
    {
        scFatal("parse error at line ", cur().line, " near '",
                cur().text.empty() ? tokKindName(cur().kind) : cur().text,
                "': ", msg);
    }

    Token
    expect(TokKind k, const char *what)
    {
        if (cur().kind != k)
            err(std::string("expected ") + what);
        return toks[pos++];
    }

    bool
    accept(TokKind k)
    {
        if (cur().kind == k) {
            ++pos;
            return true;
        }
        return false;
    }

    TypeRef
    parseTypeRef()
    {
        TypeRef tr;
        const Token id = expect(TokKind::Ident, "type name");
        if (id.text == "ptr") {
            expect(TokKind::Lt, "'<' after ptr");
            const Token elem = expect(TokKind::Ident, "element type");
            if (!scalarTypeFor(elem.text, tr.scalar))
                err("unknown element type '" + elem.text + "'");
            expect(TokKind::Gt, "'>' after ptr element type");
            tr.isPointer = true;
            return tr;
        }
        if (!scalarTypeFor(id.text, tr.scalar))
            err("unknown type '" + id.text + "'");
        return tr;
    }

    ConstDecl
    parseConst()
    {
        ConstDecl cd;
        cd.line = cur().line;
        expect(TokKind::KwConst, "'const'");
        cd.name = expect(TokKind::Ident, "constant name").text;
        expect(TokKind::Colon, "':' after constant name");
        cd.elemType = parseTypeRef();
        if (cd.elemType.isPointer)
            err("constants cannot be pointers");
        if (accept(TokKind::LBracket)) {
            const Token n = expect(TokKind::IntLit, "array size");
            cd.isArray = true;
            cd.arraySize = static_cast<uint64_t>(n.intValue);
            expect(TokKind::RBracket, "']'");
        }
        expect(TokKind::Assign, "'='");
        if (cd.isArray) {
            expect(TokKind::LBracket, "'[' to open initializer");
            while (cur().kind != TokKind::RBracket) {
                cd.values.push_back(parseExpr());
                if (!accept(TokKind::Comma))
                    break;
            }
            expect(TokKind::RBracket, "']' to close initializer");
        } else {
            cd.values.push_back(parseExpr());
        }
        expect(TokKind::Semicolon, "';'");
        return cd;
    }

    FnDecl
    parseFunction()
    {
        FnDecl fn;
        fn.line = cur().line;
        expect(TokKind::KwFn, "'fn'");
        fn.name = expect(TokKind::Ident, "function name").text;
        expect(TokKind::LParen, "'('");
        while (cur().kind != TokKind::RParen) {
            Param p;
            p.name = expect(TokKind::Ident, "parameter name").text;
            expect(TokKind::Colon, "':'");
            p.type = parseTypeRef();
            fn.params.push_back(std::move(p));
            if (!accept(TokKind::Comma))
                break;
        }
        expect(TokKind::RParen, "')'");
        if (accept(TokKind::Arrow)) {
            const Token id = cur();
            if (id.kind == TokKind::Ident && id.text == "void") {
                ++pos;
                fn.returnsVoid = true;
            } else {
                fn.returnType = parseTypeRef();
                if (fn.returnType.isPointer)
                    err("functions cannot return pointers");
                fn.returnsVoid = false;
            }
        }
        fn.body = parseBlock();
        return fn;
    }

    std::vector<StmtPtr>
    parseBlock()
    {
        expect(TokKind::LBrace, "'{'");
        std::vector<StmtPtr> stmts;
        while (cur().kind != TokKind::RBrace)
            stmts.push_back(parseStmt());
        expect(TokKind::RBrace, "'}'");
        return stmts;
    }

    StmtPtr
    makeStmt(StmtKind k)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = k;
        s->line = cur().line;
        return s;
    }

    StmtPtr
    parseVarDecl()
    {
        auto s = makeStmt(StmtKind::VarDecl);
        expect(TokKind::KwVar, "'var'");
        s->name = expect(TokKind::Ident, "variable name").text;
        expect(TokKind::Colon, "':'");
        s->declType = parseTypeRef();
        if (accept(TokKind::LBracket)) {
            if (s->declType.isPointer)
                err("arrays of pointers are not supported");
            const Token n = expect(TokKind::IntLit, "array size");
            if (n.intValue <= 0)
                err("array size must be positive");
            s->arraySize = static_cast<uint64_t>(n.intValue);
            expect(TokKind::RBracket, "']'");
        }
        if (accept(TokKind::Assign)) {
            if (s->arraySize)
                err("array variables cannot have initializers");
            s->init = parseExpr();
        }
        return s;
    }

    /** Assignment starting at an identifier: x = e; or a[i] = e; */
    StmtPtr
    parseAssignTail()
    {
        auto s = makeStmt(StmtKind::Assign);
        s->name = expect(TokKind::Ident, "variable name").text;
        if (accept(TokKind::LBracket)) {
            s->index = parseExpr();
            expect(TokKind::RBracket, "']'");
        }
        expect(TokKind::Assign, "'='");
        s->value = parseExpr();
        return s;
    }

    StmtPtr
    parseSimpleStmt()
    {
        // var decl, assignment, or expression statement (no ';').
        if (cur().kind == TokKind::KwVar)
            return parseVarDecl();
        if (cur().kind == TokKind::Ident) {
            // Lookahead: Ident '=' or Ident '[' ... ']' '='.
            if (peek().kind == TokKind::Assign)
                return parseAssignTail();
            if (peek().kind == TokKind::LBracket) {
                // Scan to matching ']' and check for '='.
                std::size_t j = pos + 2;
                int depth = 1;
                while (j < toks.size() && depth > 0) {
                    if (toks[j].kind == TokKind::LBracket)
                        ++depth;
                    else if (toks[j].kind == TokKind::RBracket)
                        --depth;
                    ++j;
                }
                if (j < toks.size() && toks[j].kind == TokKind::Assign)
                    return parseAssignTail();
            }
        }
        auto s = makeStmt(StmtKind::ExprStmt);
        s->expr = parseExpr();
        return s;
    }

    StmtPtr
    parseStmt()
    {
        switch (cur().kind) {
          case TokKind::LBrace: {
            auto s = makeStmt(StmtKind::Block);
            s->body = parseBlock();
            return s;
          }
          case TokKind::KwIf: {
            auto s = makeStmt(StmtKind::If);
            ++pos;
            expect(TokKind::LParen, "'('");
            s->expr = parseExpr();
            expect(TokKind::RParen, "')'");
            s->body = parseBlock();
            if (accept(TokKind::KwElse)) {
                if (cur().kind == TokKind::KwIf) {
                    s->elseBody.push_back(parseStmt());
                } else {
                    s->elseBody = parseBlock();
                }
            }
            return s;
          }
          case TokKind::KwWhile: {
            auto s = makeStmt(StmtKind::While);
            ++pos;
            expect(TokKind::LParen, "'('");
            s->expr = parseExpr();
            expect(TokKind::RParen, "')'");
            s->body = parseBlock();
            return s;
          }
          case TokKind::KwFor: {
            auto s = makeStmt(StmtKind::For);
            ++pos;
            expect(TokKind::LParen, "'('");
            if (cur().kind != TokKind::Semicolon)
                s->forInit = parseSimpleStmt();
            expect(TokKind::Semicolon, "';'");
            if (cur().kind != TokKind::Semicolon)
                s->expr = parseExpr();
            expect(TokKind::Semicolon, "';'");
            if (cur().kind != TokKind::RParen)
                s->forStep = parseSimpleStmt();
            expect(TokKind::RParen, "')'");
            s->body = parseBlock();
            return s;
          }
          case TokKind::KwReturn: {
            auto s = makeStmt(StmtKind::Return);
            ++pos;
            if (cur().kind != TokKind::Semicolon)
                s->expr = parseExpr();
            expect(TokKind::Semicolon, "';'");
            return s;
          }
          case TokKind::KwBreak: {
            auto s = makeStmt(StmtKind::Break);
            ++pos;
            expect(TokKind::Semicolon, "';'");
            return s;
          }
          case TokKind::KwContinue: {
            auto s = makeStmt(StmtKind::Continue);
            ++pos;
            expect(TokKind::Semicolon, "';'");
            return s;
          }
          default: {
            auto s = parseSimpleStmt();
            expect(TokKind::Semicolon, "';'");
            return s;
          }
        }
    }

    // ---- expressions -------------------------------------------------

    static int
    precedence(TokKind k)
    {
        switch (k) {
          case TokKind::PipePipe: return 1;
          case TokKind::AmpAmp: return 2;
          case TokKind::Pipe: return 3;
          case TokKind::Caret: return 4;
          case TokKind::Amp: return 5;
          case TokKind::EqEq:
          case TokKind::NotEq: return 6;
          case TokKind::Lt:
          case TokKind::Le:
          case TokKind::Gt:
          case TokKind::Ge: return 7;
          case TokKind::Shl:
          case TokKind::Shr: return 8;
          case TokKind::Plus:
          case TokKind::Minus: return 9;
          case TokKind::Star:
          case TokKind::Slash:
          case TokKind::Percent: return 10;
          default: return 0;
        }
    }

    ExprPtr
    makeExpr(ExprKind k)
    {
        auto e = std::make_unique<Expr>();
        e->kind = k;
        e->line = cur().line;
        return e;
    }

    ExprPtr
    parseExpr()
    {
        return parseBinary(1);
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        for (;;) {
            const TokKind op = cur().kind;
            const int prec = precedence(op);
            if (prec < min_prec || prec == 0)
                return lhs;
            ++pos;
            ExprPtr rhs = parseBinary(prec + 1);
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::Binary;
            e->line = lhs->line;
            e->op = op;
            e->children.push_back(std::move(lhs));
            e->children.push_back(std::move(rhs));
            lhs = std::move(e);
        }
    }

    ExprPtr
    parseUnary()
    {
        const TokKind k = cur().kind;
        if (k == TokKind::Minus || k == TokKind::Bang ||
            k == TokKind::Tilde) {
            auto e = makeExpr(ExprKind::Unary);
            e->op = k;
            ++pos;
            e->children.push_back(parseUnary());
            return e;
        }
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        switch (cur().kind) {
          case TokKind::IntLit: {
            auto e = makeExpr(ExprKind::IntLit);
            e->intValue = cur().intValue;
            ++pos;
            return e;
          }
          case TokKind::FloatLit: {
            auto e = makeExpr(ExprKind::FloatLit);
            e->floatValue = cur().floatValue;
            ++pos;
            return e;
          }
          case TokKind::KwTrue:
          case TokKind::KwFalse: {
            auto e = makeExpr(ExprKind::BoolLit);
            e->boolValue = cur().kind == TokKind::KwTrue;
            ++pos;
            return e;
          }
          case TokKind::LParen: {
            ++pos;
            ExprPtr e = parseExpr();
            expect(TokKind::RParen, "')'");
            return e;
          }
          case TokKind::Ident: {
            const std::string name = cur().text;
            // Cast: typeName '(' expr ')'
            Type scalar;
            if (scalarTypeFor(name, scalar) &&
                peek().kind == TokKind::LParen) {
                auto e = makeExpr(ExprKind::Cast);
                e->castType.scalar = scalar;
                pos += 2;
                e->children.push_back(parseExpr());
                expect(TokKind::RParen, "')'");
                return e;
            }
            if (peek().kind == TokKind::LParen) {
                auto e = makeExpr(ExprKind::Call);
                e->name = name;
                pos += 2;
                while (cur().kind != TokKind::RParen) {
                    e->children.push_back(parseExpr());
                    if (!accept(TokKind::Comma))
                        break;
                }
                expect(TokKind::RParen, "')'");
                return e;
            }
            if (peek().kind == TokKind::LBracket) {
                auto e = makeExpr(ExprKind::Index);
                e->name = name;
                pos += 2;
                e->children.push_back(parseExpr());
                expect(TokKind::RBracket, "']'");
                return e;
            }
            auto e = makeExpr(ExprKind::VarRef);
            e->name = name;
            ++pos;
            return e;
          }
          default:
            err("expected expression");
        }
    }

    std::vector<Token> toks;
    std::size_t pos = 0;
};

} // namespace

ast::Program
parseProgram(const std::string &source)
{
    return Parser(source).run();
}

} // namespace softcheck
