/**
 * @file
 * ProfileSink implementation: one OnlineHistogram per profiling site.
 * Sites are assigned to eligible instructions by assignProfileSites();
 * the interpreter feeds produced values through record() during the
 * train-input run (the paper's one-time off-line profiling phase).
 */

#ifndef SOFTCHECK_PROFILE_VALUE_PROFILER_HH
#define SOFTCHECK_PROFILE_VALUE_PROFILER_HH

#include <vector>

#include "interp/interpreter.hh"
#include "profile/online_histogram.hh"

namespace softcheck
{

/**
 * Mark every check-eligible instruction of @p m with a profiling site
 * id (Instruction::setProfileId). Eligible: value-producing, pure-ish
 * instructions whose result is an integer of width >= 8 or a float —
 * arithmetic, loads, selects, casts, and math intrinsics. Pointers,
 * booleans, phis, calls and duplicated instructions are excluded.
 *
 * @return number of sites assigned
 */
unsigned assignProfileSites(Module &m);

/** True if @p inst qualifies for a profiling site / value check. */
bool isProfileEligible(const Instruction &inst);

class ValueProfiler : public ProfileSink
{
  public:
    /** @param num_sites from assignProfileSites() /
     * ExecModule::numProfileSites(). */
    explicit ValueProfiler(unsigned num_sites, unsigned bins = 5);

    void record(int site, double value) override;

    const OnlineHistogram &site(unsigned idx) const { return hists[idx]; }
    unsigned numSites() const
    {
        return static_cast<unsigned>(hists.size());
    }

  private:
    std::vector<OnlineHistogram> hists;
};

} // namespace softcheck

#endif // SOFTCHECK_PROFILE_VALUE_PROFILER_HH
