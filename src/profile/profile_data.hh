/**
 * @file
 * Summarized per-site profile used by the hardening passes: for every
 * profiling site, which of the paper's three check shapes (Fig. 6)
 * applies, with the constants to embed in the check. Serializable so a
 * profile can be collected once (per benchmark, per the paper) and
 * reused.
 */

#ifndef SOFTCHECK_PROFILE_PROFILE_DATA_HH
#define SOFTCHECK_PROFILE_PROFILE_DATA_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "profile/value_profiler.hh"

namespace softcheck
{

/** Which expected-value check (paper Fig. 6) fits an instruction. */
enum class CheckShape : uint8_t
{
    None,  //!< values too spread out; not amenable
    One,   //!< single frequent value (Fig. 6a)
    Two,   //!< two frequent values (Fig. 6b)
    Range, //!< compact range (Fig. 6c)
};

const char *checkShapeName(CheckShape s);

struct SiteSummary
{
    CheckShape shape = CheckShape::None;
    uint64_t samples = 0;
    double v0 = 0;       //!< One: the value; Two: first value; Range: lo
    double v1 = 0;       //!< Two: second value; Range: hi
    double coverage = 0; //!< fraction of profiled samples inside check
};

/** Knobs for turning histograms into check decisions. */
struct CheckPolicy
{
    /** Histogram bin budget B for Algorithm 1 (the paper uses 5). */
    unsigned histogramBins = 5;
    /** Minimum profiled samples before a site is considered. */
    uint64_t minSamples = 16;
    /** Minimum in-check sample fraction for a range check. */
    double coverageThreshold = 0.99;
    /** Algorithm 2 range threshold for integer-valued sites. */
    double intRangeThreshold = 65536.0;
    /** Algorithm 2 range threshold for float-valued sites. */
    double floatRangeThreshold = 1.0e6;
    /** Relative slack added on each side of a range check to lower the
     * false-positive rate on unseen inputs. */
    double rangeSlack = 0.25;
};

class ProfileData
{
  public:
    ProfileData() = default;

    /** Summarize a finished profiling run. @p is_float_site tells which
     * threshold applies per site (indexed by site id). */
    ProfileData(const ValueProfiler &prof,
                const std::vector<bool> &is_float_site,
                const CheckPolicy &policy = {});

    const SiteSummary &site(unsigned idx) const { return sites[idx]; }
    unsigned numSites() const
    {
        return static_cast<unsigned>(sites.size());
    }

    /** True if the site's values are regular enough for a check. */
    bool
    amenable(unsigned idx) const
    {
        return idx < sites.size() &&
               sites[idx].shape != CheckShape::None;
    }

    unsigned numAmenable() const;

    // Text (de)serialization: one "site shape samples v0 v1 cov" line
    // per site.
    void save(std::ostream &os) const;
    static ProfileData load(std::istream &is);

  private:
    std::vector<SiteSummary> sites;
};

/** Per-site float/int flags for a module with assigned profile ids. */
std::vector<bool> floatSiteFlags(const Module &m, unsigned num_sites);

} // namespace softcheck

#endif // SOFTCHECK_PROFILE_PROFILE_DATA_HH
