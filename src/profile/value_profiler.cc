#include "profile/value_profiler.hh"

#include "support/error.hh"

namespace softcheck
{

bool
isProfileEligible(const Instruction &inst)
{
    if (inst.isDuplicate())
        return false;
    const Type t = inst.type();
    const bool good_type =
        (t.isInteger() && t.bitWidth() >= 8) || t.isFloat();
    if (!good_type)
        return false;
    const Opcode op = inst.opcode();
    return isIntBinary(op) || isFloatBinary(op) || isCast(op) ||
           isMathIntrinsic(op) || op == Opcode::Load ||
           op == Opcode::Select;
}

unsigned
assignProfileSites(Module &m)
{
    int next = 0;
    for (Function *fn : m.functions()) {
        for (auto &bb : *fn) {
            for (auto &inst : *bb) {
                if (isProfileEligible(*inst))
                    inst->setProfileId(next++);
                else
                    inst->setProfileId(-1);
            }
        }
    }
    return static_cast<unsigned>(next);
}

ValueProfiler::ValueProfiler(unsigned num_sites, unsigned bins)
{
    hists.reserve(num_sites);
    for (unsigned i = 0; i < num_sites; ++i)
        hists.emplace_back(bins);
}

void
ValueProfiler::record(int site, double value)
{
    scAssert(site >= 0 && static_cast<unsigned>(site) < hists.size(),
             "profile site out of range");
    hists[static_cast<unsigned>(site)].insert(value);
}

} // namespace softcheck
