/**
 * @file
 * On-line histogram of the values produced by one instruction —
 * the paper's Algorithm 1 (adapted from Ben-Haim & Tom-Tov's streaming
 * histogram). A fixed budget of B bins is maintained; inserting a value
 * outside all bins adds a singleton bin and then merges the two
 * adjacent bins with the smallest gap.
 *
 * In addition to the binned summary, a small exact-value table (up to
 * four distinct values) is kept so the check-shape decision can prefer
 * the paper's single-value and two-value checks (Fig. 6 a/b) when an
 * instruction is that regular.
 */

#ifndef SOFTCHECK_PROFILE_ONLINE_HISTOGRAM_HH
#define SOFTCHECK_PROFILE_ONLINE_HISTOGRAM_HH

#include <cstdint>
#include <map>
#include <vector>

namespace softcheck
{

class OnlineHistogram
{
  public:
    struct Bin
    {
        double lb;
        double rb;
        uint64_t count;
    };

    /** @param num_bins bin budget B (the paper uses 5). */
    explicit OnlineHistogram(unsigned num_bins = 5);

    /** Algorithm 1: account one produced value. */
    void insert(double v);

    const std::vector<Bin> &bins() const { return binList; }
    uint64_t totalCount() const { return total; }

    double minSeen() const { return mn; }
    double maxSeen() const { return mx; }

    /** Exact distinct-value table; meaningful only when
     * !exactOverflowed(). */
    const std::map<double, uint64_t> &exactValues() const
    {
        return exact;
    }
    bool exactOverflowed() const { return exactOverflow; }

    unsigned binBudget() const { return budget; }

  private:
    unsigned budget;
    std::vector<Bin> binList;  //!< kept sorted by lb, non-overlapping
    uint64_t total = 0;
    double mn = 0, mx = 0;
    std::map<double, uint64_t> exact;
    bool exactOverflow = false;

    static constexpr unsigned kMaxExactValues = 4;
};

/**
 * The paper's Algorithm 2: greedy compact-range extraction. Starting
 * from the most populated bin, repeatedly absorb the more populated
 * neighbour while the resulting range width stays within @p range_thr.
 *
 * @return (lo, hi, mass) — mass is the sample count covered
 */
struct FrequentRange
{
    double lo = 0;
    double hi = 0;
    uint64_t mass = 0;
};

FrequentRange extractFrequentRange(const OnlineHistogram &h,
                                   double range_thr);

} // namespace softcheck

#endif // SOFTCHECK_PROFILE_ONLINE_HISTOGRAM_HH
