#include "profile/online_histogram.hh"

#include <algorithm>
#include <limits>

#include "support/error.hh"

namespace softcheck
{

OnlineHistogram::OnlineHistogram(unsigned num_bins) : budget(num_bins)
{
    scAssert(budget >= 2, "histogram needs at least 2 bins");
    binList.reserve(budget + 1);
}

void
OnlineHistogram::insert(double v)
{
    if (total == 0) {
        mn = mx = v;
    } else {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
    }
    ++total;

    if (!exactOverflow) {
        auto it = exact.find(v);
        if (it != exact.end()) {
            ++it->second;
        } else if (exact.size() < kMaxExactValues) {
            exact.emplace(v, 1);
        } else {
            exactOverflow = true;
            exact.clear();
        }
    }

    // Algorithm 1, step 1-3: bump a containing bin if one exists.
    for (Bin &b : binList) {
        if (v >= b.lb && v <= b.rb) {
            ++b.count;
            return;
        }
    }

    // Step 5-6: add singleton bin, keep bins sorted.
    auto pos = std::upper_bound(
        binList.begin(), binList.end(), v,
        [](double x, const Bin &b) { return x < b.lb; });
    binList.insert(pos, {v, v, 1});
    if (binList.size() <= budget)
        return;

    // Step 7-8: merge the adjacent pair with the smallest gap.
    std::size_t best = 0;
    double best_gap = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i + 1 < binList.size(); ++i) {
        const double gap = binList[i + 1].lb - binList[i].rb;
        if (gap < best_gap) {
            best_gap = gap;
            best = i;
        }
    }
    binList[best].rb = binList[best + 1].rb;
    binList[best].count += binList[best + 1].count;
    binList.erase(binList.begin() + static_cast<std::ptrdiff_t>(best + 1));
}

FrequentRange
extractFrequentRange(const OnlineHistogram &h, double range_thr)
{
    const auto &bins = h.bins();
    if (bins.empty())
        return {};

    // Step 1-2: start from the most populated bin.
    std::size_t seed = 0;
    for (std::size_t i = 1; i < bins.size(); ++i) {
        if (bins[i].count > bins[seed].count)
            seed = i;
    }
    FrequentRange ret{bins[seed].lb, bins[seed].rb, bins[seed].count};

    // Step 5-14: greedily absorb the heavier neighbour while the width
    // stays within the threshold.
    std::size_t left = seed;   // next candidate: left-1
    std::size_t right = seed;  // next candidate: right+1
    for (;;) {
        const bool has_left = left > 0;
        const bool has_right = right + 1 < bins.size();
        if (!has_left && !has_right)
            break;
        const uint64_t lcount = has_left ? bins[left - 1].count : 0;
        const uint64_t rcount = has_right ? bins[right + 1].count : 0;

        if (has_left && (!has_right || lcount >= rcount)) {
            if (ret.hi - bins[left - 1].lb > range_thr)
                break;
            --left;
            ret.lo = bins[left].lb;
            ret.mass += bins[left].count;
        } else {
            if (bins[right + 1].rb - ret.lo > range_thr)
                break;
            ++right;
            ret.hi = bins[right].rb;
            ret.mass += bins[right].count;
        }
    }
    return ret;
}

} // namespace softcheck
