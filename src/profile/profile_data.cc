#include "profile/profile_data.hh"

#include <bit>
#include <cmath>
#include <istream>
#include <ostream>

#include "support/error.hh"

namespace softcheck
{

const char *
checkShapeName(CheckShape s)
{
    switch (s) {
      case CheckShape::None: return "none";
      case CheckShape::One: return "one";
      case CheckShape::Two: return "two";
      case CheckShape::Range: return "range";
    }
    return "?";
}

namespace
{

SiteSummary
summarize(const OnlineHistogram &h, bool is_float,
          const CheckPolicy &policy)
{
    SiteSummary s;
    s.samples = h.totalCount();
    if (s.samples < policy.minSamples)
        return s;

    // Prefer the exact single-/two-value shapes (Fig. 6 a/b).
    if (!h.exactOverflowed()) {
        const auto &exact = h.exactValues();
        if (exact.size() == 1) {
            s.shape = CheckShape::One;
            s.v0 = exact.begin()->first;
            s.coverage = 1.0;
            return s;
        }
        if (exact.size() == 2) {
            auto it = exact.begin();
            s.shape = CheckShape::Two;
            s.v0 = it->first;
            s.v1 = std::next(it)->first;
            s.coverage = 1.0;
            return s;
        }
    }

    // Otherwise try a compact range (Fig. 6c) via Algorithm 2.
    const double thr = is_float ? policy.floatRangeThreshold
                                : policy.intRangeThreshold;
    const FrequentRange fr = extractFrequentRange(h, thr);
    if (fr.mass == 0)
        return s;
    const double coverage =
        static_cast<double>(fr.mass) / static_cast<double>(s.samples);
    const double width = fr.hi - fr.lo;
    if (coverage < policy.coverageThreshold || width > thr)
        return s;

    double slack = width * policy.rangeSlack;
    if (!is_float) {
        slack = std::max(slack, 1.0);
    } else {
        // Float accumulators shift with input statistics; widen by a
        // fraction of the magnitude as well as of the width.
        const double mag =
            std::max(std::fabs(fr.lo), std::fabs(fr.hi));
        slack = std::max(slack, 0.10 * mag);
    }
    s.shape = CheckShape::Range;
    s.v0 = fr.lo - slack;
    s.v1 = fr.hi + slack;
    if (!is_float) {
        s.v0 = std::floor(s.v0);
        s.v1 = std::ceil(s.v1);
    }
    s.coverage = coverage;
    return s;
}

} // namespace

ProfileData::ProfileData(const ValueProfiler &prof,
                         const std::vector<bool> &is_float_site,
                         const CheckPolicy &policy)
{
    scAssert(is_float_site.size() >= prof.numSites(),
             "float-site flags shorter than site count");
    sites.resize(prof.numSites());
    for (unsigned i = 0; i < prof.numSites(); ++i)
        sites[i] = summarize(prof.site(i), is_float_site[i], policy);
}

unsigned
ProfileData::numAmenable() const
{
    unsigned n = 0;
    for (const SiteSummary &s : sites) {
        if (s.shape != CheckShape::None)
            ++n;
    }
    return n;
}

namespace
{

// Doubles are serialized as raw bit patterns: exact round-trip without
// relying on stream hexfloat support.
uint64_t
doubleBits(double v)
{
    return std::bit_cast<uint64_t>(v);
}

double
bitsDouble(uint64_t v)
{
    return std::bit_cast<double>(v);
}

} // namespace

void
ProfileData::save(std::ostream &os) const
{
    os << sites.size() << "\n";
    for (const SiteSummary &s : sites) {
        os << static_cast<int>(s.shape) << " " << s.samples << " "
           << doubleBits(s.v0) << " " << doubleBits(s.v1) << " "
           << doubleBits(s.coverage) << "\n";
    }
}

ProfileData
ProfileData::load(std::istream &is)
{
    ProfileData pd;
    std::size_t n = 0;
    is >> n;
    pd.sites.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        int shape;
        uint64_t v0, v1, cov;
        is >> shape >> pd.sites[i].samples >> v0 >> v1 >> cov;
        pd.sites[i].shape = static_cast<CheckShape>(shape);
        pd.sites[i].v0 = bitsDouble(v0);
        pd.sites[i].v1 = bitsDouble(v1);
        pd.sites[i].coverage = bitsDouble(cov);
    }
    if (!is)
        scFatal("malformed profile data");
    return pd;
}

std::vector<bool>
floatSiteFlags(const Module &m, unsigned num_sites)
{
    std::vector<bool> flags(num_sites, false);
    for (const Function *fn : m.functions()) {
        for (const auto &bb : *fn) {
            for (const auto &inst : *bb) {
                const int id = inst->profileId();
                if (id >= 0 && static_cast<unsigned>(id) < num_sites)
                    flags[static_cast<unsigned>(id)] =
                        inst->type().isFloat();
            }
        }
    }
    return flags;
}

} // namespace softcheck
