#include "interp/interpreter.hh"

#include <cmath>
#include <limits>

#include "interp/fp_util.hh"
#include "support/bits.hh"
#include "support/error.hh"

namespace softcheck
{

using namespace fp_util;

namespace
{

/** Frame equality for golden-convergence pruning; the recent-write ring
 * is excluded (it only feeds fault-site selection, which is over by the
 * time convergence is tested). */
bool
framesConverged(const ExecFrame &a, const ExecFrame &b)
{
    return a.fn == b.fn && a.ip == b.ip && a.curBlock == b.curBlock &&
           a.retDst == b.retDst && a.regs == b.regs &&
           a.allocaBases == b.allocaBases;
}

} // namespace

const char *
execTierName(ExecTier t)
{
    switch (t) {
      case ExecTier::Threaded: return "threaded";
      case ExecTier::Lockstep: return "lockstep";
      default: return "interp";
    }
}

void
pushExecFrame(std::vector<ExecFrame> &stack, FrameArena &arena,
              const ExecFunction &fn, int32_t ret_dst)
{
    if (arena.spare.empty()) {
        stack.emplace_back();
    } else {
        stack.push_back(std::move(arena.spare.back()));
        arena.spare.pop_back();
    }
    ExecFrame &fr = stack.back();
    fr.fn = &fn;
    // assign() reuses a recycled frame's register storage in place.
    fr.regs.assign(fn.numSlots, 0);
    fr.allocaBases.clear();
    fr.recentCount = 0;
    fr.recentPos = 0;
    fr.retDst = ret_dst;
    fr.curBlock = 0;
    fr.ip = fn.blocks.empty() ? 0 : fn.blocks[0].first;
}

void
popExecFrame(std::vector<ExecFrame> &stack, FrameArena &arena)
{
    arena.spare.push_back(std::move(stack.back()));
    stack.pop_back();
}

void
beginExec(const ExecModule &em, Memory &mem, ExecState &st,
          std::size_t fn_index, const std::vector<uint64_t> &args,
          const CostConfig &cost_cfg, FrameArena &arena)
{
    while (!st.stack.empty())
        popExecFrame(st.stack, arena);
    st.globalBases.clear();
    st.dynCount = 0;
    st.cost = CostModel(cost_cfg);

    const ExecFunction &entry = em.function(fn_index);
    scAssert(args.size() == entry.numArgs,
             "argument count mismatch for entry function");
    pushExecFrame(st.stack, arena, entry, -1);
    ExecFrame &fr = st.stack.back();
    for (std::size_t i = 0; i < args.size(); ++i) {
        fr.regs[i] = args[i];
        fr.noteWrite(static_cast<int32_t>(i));
    }

    // Materialize module globals (constant tables) for this run.
    st.globalBases.reserve(em.globals().size());
    for (const GlobalVariable *g : em.globals()) {
        const unsigned esz = g->elementType().storeSize();
        const uint64_t base = mem.alloc(g->count() * esz, g->name());
        for (uint64_t i = 0; i < g->count(); ++i) {
            const bool ok = mem.write(base + i * esz, esz, g->init()[i]);
            scAssert(ok, "global init write failed");
        }
        st.globalBases.push_back(base);
    }
}

Snapshot
Snapshot::save(const ExecState &st, const Memory &m)
{
    Snapshot s;
    s.state = st;
    // Memory copy-assignment shares pages copy-on-write: @p m keeps
    // executing, cloning a page the first time it writes one, while
    // the snapshot's view stays frozen. Successive snapshots of one
    // run therefore share every page the run didn't touch in between.
    s.mem = m;
    return s;
}

void
Snapshot::restore(ExecState &st, Memory &m) const
{
    st = state;
    m.restoreFrom(mem);
}

bool
Snapshot::convergedWith(const ExecState &st, const Memory &m) const
{
    if (st.dynCount != state.dynCount ||
        st.stack.size() != state.stack.size() ||
        st.globalBases != state.globalBases ||
        !st.cost.sameState(state.cost))
        return false;
    for (std::size_t i = 0; i < st.stack.size(); ++i)
        if (!framesConverged(st.stack[i], state.stack[i]))
            return false;
    return m.contentsEqual(mem);
}

Interpreter::Interpreter(const ExecModule &exec_module, Memory &memory)
    : em(exec_module), mem(memory)
{}

void
Interpreter::begin(ExecState &st, std::size_t fn_index,
                   const std::vector<uint64_t> &args,
                   const CostConfig &cost_cfg)
{
    beginExec(em, mem, st, fn_index, args, cost_cfg, arena);
}

RunResult
Interpreter::run(std::size_t fn_index, const std::vector<uint64_t> &args,
                 const ExecOptions &opts)
{
    ExecState st;
    begin(st, fn_index, args, opts.cost);
    return resume(st, opts);
}

RunResult
Interpreter::resume(ExecState &st, const ExecOptions &opts)
{
    std::vector<ExecFrame> &stack = st.stack;
    CostModel &cost = st.cost;
    uint64_t &dyn_count = st.dynCount;
    const std::vector<uint64_t> &global_bases = st.globalBases;

    uint64_t fault_at =
        opts.faultAtDynInstr ? *opts.faultAtDynInstr : ~0ULL;
    FaultOutcome fault;
    uint64_t check_evals = 0;

    // Next dynamic instruction at which to record a checkpoint: the
    // next entry of the explicit schedule, or the next multiple of the
    // periodic stride.
    uint64_t next_checkpoint = ~0ULL;
    std::size_t sched_idx = 0;
    if (opts.checkpointSchedule) {
        scAssert(opts.checkpointSink,
                 "checkpoint schedule without a sink");
        scAssert(!opts.checkpointEvery,
                 "checkpointEvery and checkpointSchedule are exclusive");
        const std::vector<uint64_t> &sched = *opts.checkpointSchedule;
        std::size_t lo = 0, hi = sched.size();
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (sched[mid] > dyn_count)
                hi = mid;
            else
                lo = mid + 1;
        }
        sched_idx = lo;
        if (sched_idx < sched.size())
            next_checkpoint = sched[sched_idx];
    } else if (opts.checkpointEvery) {
        scAssert(opts.checkpointSink, "checkpointEvery without a sink");
        next_checkpoint =
            (dyn_count / opts.checkpointEvery + 1) * opts.checkpointEvery;
    }

    // Next boundary at which to test golden convergence; armed only
    // once the fault has been injected (before that the run *is* the
    // golden prefix). Compare points are the golden snapshots' own
    // dynamic-instruction indices.
    uint64_t next_golden_cmp = ~0ULL;
    std::size_t golden_idx = 0;
    auto arm_golden_cmp = [&]() {
        if (!opts.goldenSnapshots || opts.goldenSnapshots->empty())
            return;
        golden_idx = firstSnapshotAfter(*opts.goldenSnapshots, dyn_count);
        next_golden_cmp =
            golden_idx < opts.goldenSnapshots->size()
                ? (*opts.goldenSnapshots)[golden_idx].dynInstr()
                : ~0ULL;
    };

    auto finish = [&](Termination t, TrapKind trap, int check_id,
                      uint64_t ret) {
        RunResult r;
        r.term = t;
        r.trap = trap;
        r.failedCheckId = check_id;
        r.retValue = ret;
        r.dynInstrs = dyn_count;
        r.cycles = cost.cycles();
        r.endCycle = cost.cycles();
        r.cacheMisses = cost.cacheMisses();
        r.branchMispredicts = cost.branchMispredicts();
        r.checkEvals = check_evals;
        r.fault = fault;
        return r;
    };

    std::vector<uint64_t> phi_tmp;

    for (;;) {
        if (dyn_count >= next_checkpoint) {
            opts.checkpointSink->push_back(Snapshot::save(st, mem));
            if (opts.checkpointSchedule) {
                ++sched_idx;
                next_checkpoint =
                    sched_idx < opts.checkpointSchedule->size()
                        ? (*opts.checkpointSchedule)[sched_idx]
                        : ~0ULL;
            } else {
                next_checkpoint += opts.checkpointEvery;
            }
        }

        // Observer loop-top event at the exact injection/checkpoint
        // boundary: dyn_count instructions have retired, the one at
        // stack.back().ip is about to execute as dynamic index
        // dyn_count.
        if (opts.siteObserver)
            opts.siteObserver->atLoopTop(st);

        if (dyn_count >= fault_at) {
            // Inject a single bit flip into a random live register of
            // the active frame (the paper's register-file fault model).
            fault_at = ~0ULL;
            ExecFrame &fr = stack.back();
            if (fr.recentCount > 0 && opts.faultRng) {
                Rng &rng = *opts.faultRng;
                const int32_t slot = fr.recent[static_cast<size_t>(
                    rng.nextBelow(fr.recentCount))];
                const TypeKind ty =
                    fr.fn->slotTypes[static_cast<size_t>(slot)];
                const unsigned width = typeBits(ty) ? typeBits(ty) : 64;
                const unsigned bit =
                    static_cast<unsigned>(rng.nextBelow(width));
                fault.injected = true;
                fault.slot = slot;
                fault.slotType = ty;
                fault.bit = bit;
                fault.before = fr.regs[static_cast<size_t>(slot)];
                fault.after =
                    flipBit(fault.before, bit) & lowBitMask(width);
                fault.atDynInstr = dyn_count;
                fault.atCycle = cost.cycles();
                fr.regs[static_cast<size_t>(slot)] = fault.after;
            }
            arm_golden_cmp();
        }

        if (dyn_count >= next_golden_cmp) {
            // Reached exactly: arming picked the first snapshot past
            // the arm point, and dyn_count advances one at a time.
            const Snapshot &gold = (*opts.goldenSnapshots)[golden_idx];
            if (gold.convergedWith(st, mem)) {
                scAssert(opts.goldenResult,
                         "goldenSnapshots without goldenResult");
                RunResult r = *opts.goldenResult;
                r.prunedToGolden = true;
                r.fault = fault;
                return r;
            }
            ++golden_idx;
            next_golden_cmp =
                golden_idx < opts.goldenSnapshots->size()
                    ? (*opts.goldenSnapshots)[golden_idx].dynInstr()
                    : ~0ULL;
        }

        ExecFrame &fr = stack.back();
        const ExecInst &inst = fr.fn->code[fr.ip];

        if (dyn_count >= opts.maxDynInstrs)
            return finish(Termination::Timeout, TrapKind::None, -1, 0);
        ++dyn_count;
        cost.onInstr(inst.op);
        if (opts.dynMix)
            opts.dynMix->note(fr.fn, fr.ip, inst.op);

        auto read_op = [&](const OpRef &r) {
            if (r.slot < 0)
                return r.imm;
            if (opts.siteObserver)
                opts.siteObserver->onRead(st, r.slot);
            return fr.regs[static_cast<size_t>(r.slot)];
        };

        auto write_dst = [&](uint64_t v) {
            const auto d = static_cast<size_t>(inst.dst);
            if (opts.siteObserver)
                opts.siteObserver->onWrite(st, inst.dst);
            fr.regs[d] = v;
            fr.noteWrite(inst.dst);
            if (inst.profileId >= 0 && opts.profiler)
                opts.profiler->record(inst.profileId,
                                      profileValue(inst.ty, v));
            ++fr.ip;
        };

        auto take_edge = [&](uint32_t target) {
            const ExecBlock &tb = fr.fn->blocks[target];
            for (const auto &[pred, moves] : tb.phiIn) {
                if (pred != fr.curBlock)
                    continue;
                phi_tmp.clear();
                for (const PhiMove &mv : moves)
                    phi_tmp.push_back(read_op(mv.src));
                for (std::size_t i = 0; i < moves.size(); ++i) {
                    if (opts.siteObserver)
                        opts.siteObserver->onWrite(st, moves[i].dst);
                    fr.regs[static_cast<size_t>(moves[i].dst)] =
                        phi_tmp[i];
                    fr.noteWrite(moves[i].dst);
                }
                break;
            }
            fr.curBlock = target;
            fr.ip = tb.first;
        };

        /** Shared check-failure policy; returns true to keep running. */
        auto check_passed = [&](bool ok) {
            if (ok)
                return true;
            if (opts.disabledChecks && inst.checkId >= 0 &&
                static_cast<size_t>(inst.checkId) <
                    opts.disabledChecks->size() &&
                (*opts.disabledChecks)[static_cast<size_t>(inst.checkId)])
                return true;
            if (opts.checkMode == CheckMode::Record) {
                if (opts.checkFailCounts)
                    (*opts.checkFailCounts)[static_cast<size_t>(
                        inst.checkId)]++;
                return true;
            }
            return false;
        };

        const unsigned width = typeBits(inst.ty);

        switch (inst.op) {
          // ---- integer arithmetic ------------------------------------
          case Opcode::Add:
            write_dst(truncBits(read_op(inst.a) + read_op(inst.b), width));
            break;
          case Opcode::Sub:
            write_dst(truncBits(read_op(inst.a) - read_op(inst.b), width));
            break;
          case Opcode::Mul:
            write_dst(truncBits(read_op(inst.a) * read_op(inst.b), width));
            break;
          case Opcode::SDiv:
          case Opcode::SRem: {
            const int64_t a = signExtend(read_op(inst.a), width);
            const int64_t b = signExtend(read_op(inst.b), width);
            if (b == 0)
                return finish(Termination::Trap, TrapKind::DivByZero, -1,
                              0);
            int64_t res;
            if (a == std::numeric_limits<int64_t>::min() && b == -1) {
                res = (inst.op == Opcode::SDiv) ? a : 0;
            } else {
                res = (inst.op == Opcode::SDiv) ? a / b : a % b;
            }
            write_dst(truncBits(static_cast<uint64_t>(res), width));
            break;
          }
          case Opcode::UDiv:
          case Opcode::URem: {
            const uint64_t a = read_op(inst.a);
            const uint64_t b = read_op(inst.b);
            if (b == 0)
                return finish(Termination::Trap, TrapKind::DivByZero, -1,
                              0);
            write_dst(truncBits(
                inst.op == Opcode::UDiv ? a / b : a % b, width));
            break;
          }
          case Opcode::And:
            write_dst(read_op(inst.a) & read_op(inst.b));
            break;
          case Opcode::Or:
            write_dst(read_op(inst.a) | read_op(inst.b));
            break;
          case Opcode::Xor:
            write_dst(read_op(inst.a) ^ read_op(inst.b));
            break;
          case Opcode::Shl: {
            const unsigned sh =
                static_cast<unsigned>(read_op(inst.b)) & (width - 1);
            write_dst(truncBits(read_op(inst.a) << sh, width));
            break;
          }
          case Opcode::LShr: {
            const unsigned sh =
                static_cast<unsigned>(read_op(inst.b)) & (width - 1);
            write_dst(read_op(inst.a) >> sh);
            break;
          }
          case Opcode::AShr: {
            const unsigned sh =
                static_cast<unsigned>(read_op(inst.b)) & (width - 1);
            const int64_t a = signExtend(read_op(inst.a), width);
            write_dst(truncBits(static_cast<uint64_t>(a >> sh), width));
            break;
          }

          // ---- floating-point arithmetic ------------------------------
          case Opcode::FAdd:
          case Opcode::FSub:
          case Opcode::FMul:
          case Opcode::FDiv: {
            if (inst.ty == TypeKind::F64) {
                const double a = asF64(read_op(inst.a));
                const double b = asF64(read_op(inst.b));
                double r = 0;
                switch (inst.op) {
                  case Opcode::FAdd: r = a + b; break;
                  case Opcode::FSub: r = a - b; break;
                  case Opcode::FMul: r = a * b; break;
                  default: r = a / b; break;
                }
                write_dst(fromF64(r));
            } else {
                const float a = asF32(read_op(inst.a));
                const float b = asF32(read_op(inst.b));
                float r = 0;
                switch (inst.op) {
                  case Opcode::FAdd: r = a + b; break;
                  case Opcode::FSub: r = a - b; break;
                  case Opcode::FMul: r = a * b; break;
                  default: r = a / b; break;
                }
                write_dst(fromF32(r));
            }
            break;
          }

          // ---- comparisons ---------------------------------------------
          case Opcode::ICmp: {
            const uint64_t ua = read_op(inst.a);
            const uint64_t ub = read_op(inst.b);
            const int64_t sa = signExtend(ua, width);
            const int64_t sb = signExtend(ub, width);
            bool r = false;
            switch (inst.pred) {
              case Predicate::Eq: r = ua == ub; break;
              case Predicate::Ne: r = ua != ub; break;
              case Predicate::Slt: r = sa < sb; break;
              case Predicate::Sle: r = sa <= sb; break;
              case Predicate::Sgt: r = sa > sb; break;
              case Predicate::Sge: r = sa >= sb; break;
              case Predicate::Ult: r = ua < ub; break;
              case Predicate::Ule: r = ua <= ub; break;
              case Predicate::Ugt: r = ua > ub; break;
              case Predicate::Uge: r = ua >= ub; break;
              default: scPanic("bad icmp predicate");
            }
            write_dst(r ? 1 : 0);
            break;
          }
          case Opcode::FCmp: {
            double a, b;
            if (inst.ty == TypeKind::F64) {
                a = asF64(read_op(inst.a));
                b = asF64(read_op(inst.b));
            } else {
                a = asF32(read_op(inst.a));
                b = asF32(read_op(inst.b));
            }
            bool r = false;
            switch (inst.pred) {
              case Predicate::OEq: r = a == b; break;
              case Predicate::ONe:
                // Ordered: false when either operand is NaN (plain
                // C++ != is the *unordered* inequality).
                r = a == a && b == b && a != b;
                break;
              case Predicate::OLt: r = a < b; break;
              case Predicate::OLe: r = a <= b; break;
              case Predicate::OGt: r = a > b; break;
              case Predicate::OGe: r = a >= b; break;
              default: scPanic("bad fcmp predicate");
            }
            write_dst(r ? 1 : 0);
            break;
          }

          // ---- casts ---------------------------------------------------
          case Opcode::Trunc:
            write_dst(truncBits(read_op(inst.a), width));
            break;
          case Opcode::ZExt:
          case Opcode::IntToPtr:
            write_dst(read_op(inst.a));
            break;
          case Opcode::PtrToInt:
            write_dst(truncBits(read_op(inst.a), width));
            break;
          case Opcode::SExt: {
            const auto src_kind = static_cast<TypeKind>(inst.elemSize);
            const int64_t v =
                signExtend(read_op(inst.a), typeBits(src_kind));
            write_dst(truncBits(static_cast<uint64_t>(v), width));
            break;
          }
          case Opcode::FPToSI: {
            const auto src_kind = static_cast<TypeKind>(inst.elemSize);
            const double v = (src_kind == TypeKind::F64)
                                 ? asF64(read_op(inst.a))
                                 : asF32(read_op(inst.a));
            write_dst(truncBits(
                static_cast<uint64_t>(fpToSiSat(v, width)), width));
            break;
          }
          case Opcode::SIToFP: {
            const auto src_kind = static_cast<TypeKind>(inst.elemSize);
            const int64_t v =
                signExtend(read_op(inst.a), typeBits(src_kind));
            if (inst.ty == TypeKind::F64)
                write_dst(fromF64(static_cast<double>(v)));
            else
                write_dst(fromF32(static_cast<float>(v)));
            break;
          }
          case Opcode::FPTrunc:
            write_dst(fromF32(static_cast<float>(asF64(read_op(inst.a)))));
            break;
          case Opcode::FPExt:
            write_dst(fromF64(static_cast<double>(asF32(read_op(inst.a)))));
            break;

          // ---- memory ---------------------------------------------------
          case Opcode::Load: {
            const uint64_t addr = read_op(inst.a);
            cost.onMemAccess(addr);
            uint64_t v = 0;
            if (!mem.read(addr, inst.elemSize, v))
                return finish(Termination::Trap, TrapKind::OutOfBounds,
                              -1, 0);
            write_dst(v);
            break;
          }
          case Opcode::Store: {
            const uint64_t v = read_op(inst.a);
            const uint64_t addr = read_op(inst.b);
            cost.onMemAccess(addr);
            if (!mem.write(addr, inst.elemSize, v))
                return finish(Termination::Trap, TrapKind::OutOfBounds,
                              -1, 0);
            ++fr.ip;
            break;
          }
          case Opcode::Gep: {
            const uint64_t base = read_op(inst.a);
            const int64_t idx =
                static_cast<int64_t>(read_op(inst.b));
            write_dst(base + static_cast<uint64_t>(idx) * inst.elemSize);
            break;
          }
          case Opcode::Alloca: {
            const uint64_t count = read_op(inst.a);
            const uint64_t bytes = count * inst.elemSize;
            if (bytes == 0 || bytes > (1ULL << 30))
                return finish(Termination::Trap, TrapKind::OutOfBounds,
                              -1, 0);
            const uint64_t base = mem.alloc(bytes);
            fr.allocaBases.push_back(base);
            write_dst(base);
            break;
          }

          // ---- control ---------------------------------------------------
          case Opcode::GlobalAddr:
            write_dst(global_bases[static_cast<size_t>(inst.a.imm)]);
            break;
          case Opcode::Br:
            take_edge(inst.t0);
            break;
          case Opcode::CondBr: {
            const bool taken = (read_op(inst.a) & 1) != 0;
            cost.onBranch(inst.branchSite, taken);
            take_edge(taken ? inst.t0 : inst.t1);
            break;
          }
          case Opcode::Select:
            write_dst((read_op(inst.a) & 1) ? read_op(inst.b)
                                            : read_op(inst.c));
            break;
          case Opcode::Call: {
            if (stack.size() >= opts.maxCallDepth)
                return finish(Termination::Trap,
                              TrapKind::StackOverflow, -1, 0);
            const ExecFunction &callee =
                em.function(static_cast<size_t>(inst.calleeIdx));
            // Evaluate args before the push invalidates 'fr'.
            phi_tmp.clear();
            for (const OpRef &arg : inst.callArgs)
                phi_tmp.push_back(read_op(arg));
            ++fr.ip; // return continuation
            pushExecFrame(stack, arena, callee, inst.dst);
            ExecFrame &nf = stack.back();
            for (std::size_t i = 0; i < phi_tmp.size(); ++i) {
                if (opts.siteObserver)
                    opts.siteObserver->onWrite(
                        st, static_cast<int32_t>(i));
                nf.regs[i] = phi_tmp[i];
                nf.noteWrite(static_cast<int32_t>(i));
            }
            break;
          }
          case Opcode::Ret: {
            const bool has_val = fr.fn->retTy != TypeKind::Void;
            const uint64_t v = has_val ? read_op(inst.a) : 0;
            for (uint64_t base : fr.allocaBases)
                mem.free(base);
            const int32_t ret_dst = fr.retDst;
            popExecFrame(stack, arena);
            if (stack.empty())
                return finish(Termination::Ok, TrapKind::None, -1, v);
            if (ret_dst >= 0) {
                ExecFrame &caller = stack.back();
                if (opts.siteObserver)
                    opts.siteObserver->onWrite(st, ret_dst);
                caller.regs[static_cast<size_t>(ret_dst)] = v;
                caller.noteWrite(ret_dst);
            }
            break;
          }

          // ---- math intrinsics -------------------------------------------
          case Opcode::Sqrt:
          case Opcode::FAbs:
          case Opcode::Exp:
          case Opcode::Log:
          case Opcode::Sin:
          case Opcode::Cos: {
            auto apply = [&](double v) {
                switch (inst.op) {
                  case Opcode::Sqrt: return std::sqrt(v);
                  case Opcode::FAbs: return std::fabs(v);
                  case Opcode::Exp: return std::exp(v);
                  case Opcode::Log: return std::log(v);
                  case Opcode::Sin: return std::sin(v);
                  default: return std::cos(v);
                }
            };
            if (inst.ty == TypeKind::F64)
                write_dst(fromF64(apply(asF64(read_op(inst.a)))));
            else
                write_dst(fromF32(static_cast<float>(
                    apply(asF32(read_op(inst.a))))));
            break;
          }
          case Opcode::FMin:
          case Opcode::FMax: {
            if (inst.ty == TypeKind::F64) {
                const double a = asF64(read_op(inst.a));
                const double b = asF64(read_op(inst.b));
                write_dst(fromF64(inst.op == Opcode::FMin
                                      ? std::fmin(a, b)
                                      : std::fmax(a, b)));
            } else {
                const float a = asF32(read_op(inst.a));
                const float b = asF32(read_op(inst.b));
                write_dst(fromF32(inst.op == Opcode::FMin
                                      ? std::fminf(a, b)
                                      : std::fmaxf(a, b)));
            }
            break;
          }

          // ---- hardening checks ------------------------------------------
          case Opcode::CheckEq: {
            if (inst.elided) {
                ++fr.ip;
                break;
            }
            ++check_evals;
            if (!check_passed(read_op(inst.a) == read_op(inst.b)))
                return finish(Termination::CheckFailed, TrapKind::None,
                              inst.checkId, 0);
            ++fr.ip;
            break;
          }
          case Opcode::CheckOne: {
            if (inst.elided) {
                ++fr.ip;
                break;
            }
            ++check_evals;
            if (!check_passed(read_op(inst.a) == read_op(inst.b)))
                return finish(Termination::CheckFailed, TrapKind::None,
                              inst.checkId, 0);
            ++fr.ip;
            break;
          }
          case Opcode::CheckTwo: {
            if (inst.elided) {
                ++fr.ip;
                break;
            }
            ++check_evals;
            const uint64_t v = read_op(inst.a);
            if (!check_passed(v == read_op(inst.b) ||
                              v == read_op(inst.c)))
                return finish(Termination::CheckFailed, TrapKind::None,
                              inst.checkId, 0);
            ++fr.ip;
            break;
          }
          case Opcode::CheckRange: {
            if (inst.elided) {
                ++fr.ip;
                break;
            }
            ++check_evals;
            bool ok;
            if (inst.ty == TypeKind::F64) {
                const double v = asF64(read_op(inst.a));
                ok = v >= asF64(read_op(inst.b)) &&
                     v <= asF64(read_op(inst.c));
            } else if (inst.ty == TypeKind::F32) {
                const float v = asF32(read_op(inst.a));
                ok = v >= asF32(read_op(inst.b)) &&
                     v <= asF32(read_op(inst.c));
            } else {
                const int64_t v = signExtend(read_op(inst.a), width);
                ok = v >= signExtend(read_op(inst.b), width) &&
                     v <= signExtend(read_op(inst.c), width);
            }
            if (!check_passed(ok))
                return finish(Termination::CheckFailed, TrapKind::None,
                              inst.checkId, 0);
            ++fr.ip;
            break;
          }

          case Opcode::Phi:
            scPanic("phi reached execution (must be edge-applied)");
        }
    }
}

} // namespace softcheck
