/**
 * @file
 * "Compiled" executable form of a Module. The interpreter does not walk
 * IR lists at runtime; ExecModule flattens each function into a dense
 * instruction array with pre-resolved operand references (register slot
 * or immediate), pre-resolved branch targets, and per-edge phi move
 * batches. Building an ExecModule renumbers the module; the module must
 * not be mutated while an ExecModule built from it is in use.
 */

#ifndef SOFTCHECK_INTERP_EXEC_MODULE_HH
#define SOFTCHECK_INTERP_EXEC_MODULE_HH

#include <map>
#include <string>
#include <vector>

#include "ir/module.hh"

namespace softcheck
{

/** Operand reference: register slot (>= 0) or immediate (slot < 0). */
struct OpRef
{
    int32_t slot = -1;
    uint64_t imm = 0;
};

/** One phi-induced register move applied when an edge is taken. */
struct PhiMove
{
    int32_t dst;
    OpRef src;
};

/** Pre-resolved executable instruction. */
struct ExecInst
{
    Opcode op;
    Predicate pred = Predicate::None;
    TypeKind ty = TypeKind::Void;     //!< operative type (see build())
    uint32_t elemSize = 0;            //!< bytes for load/store/gep/alloca
    int32_t dst = -1;                 //!< result slot; -1 if void
    OpRef a, b, c;
    uint32_t t0 = 0, t1 = 0;          //!< successor block indices
    uint32_t branchSite = 0;          //!< global static id for predictor
    int32_t checkId = -1;
    int32_t profileId = -1;
    bool elided = false;              //!< vacuous check: fetch, skip compare
    int32_t calleeIdx = -1;           //!< ExecModule function index
    std::vector<OpRef> callArgs;
    const Instruction *srcInst = nullptr;
};

/** Executable block: an index range in ExecFunction::code plus the phi
 * moves to apply per incoming edge. */
struct ExecBlock
{
    uint32_t first = 0;   //!< index of first non-phi instruction
    /** (pred block index, moves) pairs; applied atomically. */
    std::vector<std::pair<uint32_t, std::vector<PhiMove>>> phiIn;
};

struct ExecFunction
{
    const Function *src = nullptr;
    std::vector<ExecInst> code;
    std::vector<ExecBlock> blocks;    //!< block 0 = entry
    uint32_t numSlots = 0;
    std::vector<TypeKind> slotTypes;  //!< per-slot value type
    uint32_t numArgs = 0;             //!< args occupy slots [0, numArgs)
    TypeKind retTy = TypeKind::Void;
};

class ExecModule
{
  public:
    /** Build from @p m; renumbers all functions. */
    explicit ExecModule(Module &m);

    const ExecFunction &function(std::size_t idx) const
    {
        return fns[idx];
    }
    std::size_t numFunctions() const { return fns.size(); }

    /** Function index by name; scFatal if absent. */
    std::size_t functionIndex(const std::string &nm) const;

    /** Module globals in index order (for per-run allocation). */
    const std::vector<const GlobalVariable *> &globals() const
    {
        return globalList;
    }

    /** Total number of distinct check ids in the module (max id + 1). */
    unsigned numCheckIds() const { return checkIdCount; }

    /** Total number of profiling sites (max profile id + 1). */
    unsigned numProfileSites() const { return profileSiteCount; }

  private:
    void buildFunction(Module &m, const Function &fn, ExecFunction &out);
    std::size_t functionIndexOf(const Module &m,
                                const Function *fn) const;

    std::vector<ExecFunction> fns;
    std::vector<const GlobalVariable *> globalList;
    std::map<std::string, std::size_t> indexByName;
    unsigned checkIdCount = 0;
    unsigned profileSiteCount = 0;
    uint32_t nextBranchSite = 0;
};

/** Bit width of a runtime value of kind @p k. */
constexpr unsigned
typeBits(TypeKind k)
{
    return Type(k).bitWidth();
}

} // namespace softcheck

#endif // SOFTCHECK_INTERP_EXEC_MODULE_HH
