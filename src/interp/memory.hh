/**
 * @file
 * Bounds-checked paged memory for the IR interpreter.
 *
 * Every allocation receives its own region with guard gaps between
 * regions, so any out-of-bounds access — the symptom class the paper's
 * HWDetect category relies on (page faults / out-of-bound accesses) —
 * is detected exactly.
 *
 * Region data lives in fixed-size pages held by shared immutable
 * blocks (std::shared_ptr<const Page>) with a per-region dirty bitmap.
 * Copying a Memory (Snapshot::save, pristine trial images) shares the
 * pages instead of duplicating the bytes; the first write to a shared
 * page clones it (copy-on-first-touch) and sets its dirty bit. The
 * invariant that makes in-place writes safe without reference-count
 * inspection:
 *
 *   dirty bit set  ==>  this Memory holds the only reference to that
 *                       page (it was cloned into this Memory after the
 *                       last share point and never shared since).
 *
 * Every operation that shares pages (copy construction/assignment,
 * restoreFrom) clears the dirty bits on both sides, so a snapshot's
 * pages are immutable from then on and can be read concurrently by any
 * number of trial worker threads. Consequently Snapshot save/restore
 * and golden-convergence comparison cost O(pages that diverged), not
 * O(memory footprint).
 */

#ifndef SOFTCHECK_INTERP_MEMORY_HH
#define SOFTCHECK_INTERP_MEMORY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace softcheck
{

class ByteReader;
class ByteWriter;

class Memory
{
  public:
    /** Bytes per page. Granularity of copy-on-write, dirty tracking,
     * and incremental comparison. */
    static constexpr uint64_t kPageSize = 256;

    Memory() = default;

    /**
     * Copies share the source's pages; both sides drop to the clean
     * (copy-on-write) state, so the first write to any page on either
     * side clones it. Not safe to copy the same source concurrently
     * from multiple threads (the share point rewrites its bitmap).
     */
    Memory(const Memory &other);
    Memory &operator=(const Memory &other);
    Memory(Memory &&other) noexcept;
    Memory &operator=(Memory &&other) noexcept;

    /**
     * Allocate @p size bytes (zero-initialized); returns the base
     * address. Regions are 64-byte aligned with a guard gap after each.
     * Fresh pages all alias the shared zero page until first write.
     */
    uint64_t alloc(uint64_t size, std::string nm = {});

    /** Release a region previously returned by alloc(). */
    void free(uint64_t base);

    /**
     * Read @p size bytes (1/2/4/8) at @p addr into @p out
     * (zero-extended). Page-straddling spans are handled.
     * @return false when any touched byte is outside a live region
     */
    bool read(uint64_t addr, unsigned size, uint64_t &out) const;

    /** Write the low @p size bytes of @p value at @p addr, cloning any
     * shared page first (copy-on-first-touch). */
    bool write(uint64_t addr, unsigned size, uint64_t value);

    /**
     * Host pointer to @p size bytes at @p addr for bulk harness I/O;
     * null when out of bounds, straddling regions, or straddling a
     * page boundary (pages are not contiguous in host memory). The
     * non-const overload privatizes the page, since the caller may
     * write through the pointer.
     */
    uint8_t *hostPtr(uint64_t addr, uint64_t size);
    const uint8_t *hostPtr(uint64_t addr, uint64_t size) const;

    std::size_t numRegions() const { return regions.size(); }
    uint64_t bytesAllocated() const;

    /** Total pages referenced across all live regions. */
    uint64_t pageCount() const;

    /** Pages privately owned by this Memory (dirtied since the last
     * share point) — the incremental cost the next snapshot pays. */
    uint64_t dirtyPageCount() const;

    /**
     * Account this Memory's pages against @p seen (by block address)
     * and return the bytes added by pages not seen before. Summing over
     * a set of snapshots yields their true resident footprint, with
     * shared pages (and the zero page) counted once.
     */
    uint64_t accountPages(std::unordered_set<const void *> &seen) const;

    /**
     * Make this memory identical to @p snapshot by sharing its pages —
     * only page references that differ are touched, so a trial reset
     * costs O(pages dirtied since the fork), not O(footprint).
     * @p snapshot must be in the clean shared state (true for any
     * Memory produced by copy construction/assignment, i.e. every
     * Snapshot and pristine image), which also makes concurrent
     * restores from one shared snapshot thread-safe.
     */
    void restoreFrom(const Memory &snapshot);

    /**
     * True when both memories hold the same live regions (base, size,
     * contents) and allocation cursor; region names are ignored.
     * Pages shared between the two sides compare by pointer identity,
     * so the byte-level work is O(pages where either side diverged) —
     * this is what makes per-boundary golden-convergence checks cheap.
     */
    bool contentsEqual(const Memory &other) const;

  private:
    struct Page
    {
        std::array<uint8_t, kPageSize> bytes;
    };
    using PageRef = std::shared_ptr<const Page>;

    struct Region
    {
        uint64_t base = 0;
        uint64_t size = 0;
        std::string name;
        std::vector<PageRef> pages; //!< ceil(size/kPageSize), the last
                                    //!< page zero-padded past size
        /** One bit per page; see the class-level ownership invariant.
         * Mutable: clearing it (sharing pages) never changes observable
         * contents, and share points on const sources need it. */
        mutable std::vector<uint64_t> dirty;
    };

    /** The all-zeroes page every fresh allocation aliases. */
    static const PageRef &zeroPage();

    /** Pointer to page @p pg of @p r, cloned first unless already
     * privately owned (dirty). */
    uint8_t *writablePage(Region &r, std::size_t pg);

    /** Drop every region to the clean shared state (clear bitmaps). */
    void markAllShared() const;

    /** Index of the region containing [addr, addr+size); -1 if none. */
    int findRegion(uint64_t addr, uint64_t size) const;

    std::vector<Region> regions;   //!< sorted by base
    uint64_t nextBase = 0x10000;
    /** Lookup cache (high locality). Atomic so concurrent const reads
     * of a shared Memory (e.g. golden snapshots read by trial worker
     * threads) stay race-free. */
    mutable std::atomic<int> lastHit{-1};

  public:
    /**
     * Serialization page pool, the cross-Memory dedup that preserves
     * COW sharing on disk: one pool spans every Memory of a bundle
     * (e.g. a whole golden snapshot chain), page *blocks* are written
     * once under a small id, and later memories sharing the block emit
     * only the id. The reader-side pool hands the same shared block to
     * every reference, so identity sharing — what makes restoreFrom
     * and contentsEqual O(diverged pages) — survives the round trip,
     * and the serialized chain costs its COW-resident bytes, not K
     * full copies.
     */
    class PagePoolWriter
    {
        friend class Memory;
        /** Block address -> id. Id 0 is the global zero page; ids > 0
         * number first-seen blocks in stream order. */
        std::unordered_map<const void *, uint32_t> ids;
    };

    class PagePoolReader
    {
        friend class Memory;
        std::vector<PageRef> pages; //!< [0] = zero page, then by id
    };

    /** Append this memory to @p w, deduplicating page blocks through
     * @p pool. Dirty state is not serialized: a deserialized Memory is
     * in the clean shared state, exactly like a fresh snapshot. */
    void serialize(ByteWriter &w, PagePoolWriter &pool) const;

    /** Inverse of serialize(); @p pool must be the same instance (in
     * the same order) used across the bundle being read. */
    static Memory deserialize(ByteReader &r, PagePoolReader &pool);
};

} // namespace softcheck

#endif // SOFTCHECK_INTERP_MEMORY_HH
