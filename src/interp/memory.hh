/**
 * @file
 * Bounds-checked flat memory for the IR interpreter.
 *
 * Every allocation receives its own region with guard gaps between
 * regions, so any out-of-bounds access — the symptom class the paper's
 * HWDetect category relies on (page faults / out-of-bound accesses) —
 * is detected exactly.
 */

#ifndef SOFTCHECK_INTERP_MEMORY_HH
#define SOFTCHECK_INTERP_MEMORY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace softcheck
{

class Memory
{
  public:
    Memory() = default;

    /**
     * Allocate @p size bytes (zero-initialized); returns the base
     * address. Regions are 64-byte aligned with a guard gap after each.
     */
    uint64_t alloc(uint64_t size, std::string nm = {});

    /** Release a region previously returned by alloc(). */
    void free(uint64_t base);

    /**
     * Read @p size bytes (1/2/4/8) at @p addr into @p out
     * (zero-extended).
     * @return false when any touched byte is outside a live region
     */
    bool read(uint64_t addr, unsigned size, uint64_t &out) const;

    /** Write the low @p size bytes of @p value at @p addr. */
    bool write(uint64_t addr, unsigned size, uint64_t value);

    /**
     * Host pointer to @p size bytes at @p addr for bulk harness I/O;
     * null when out of bounds or straddling regions.
     */
    uint8_t *hostPtr(uint64_t addr, uint64_t size);
    const uint8_t *hostPtr(uint64_t addr, uint64_t size) const;

    std::size_t numRegions() const { return regions.size(); }
    uint64_t bytesAllocated() const;

    /**
     * Make this memory identical to @p snapshot, reusing the existing
     * region buffers where sizes allow — the cheap per-trial reset path
     * for campaign workers (no allocation churn after the first trial).
     */
    void restoreFrom(const Memory &snapshot);

    /** True when both memories hold the same live regions (base, size,
     * contents) and allocation cursor; region names are ignored. */
    bool contentsEqual(const Memory &other) const;

  private:
    struct Region
    {
        uint64_t base;
        uint64_t size;
        std::string name;
        std::vector<uint8_t> data;
    };

    /** Index of the region containing [addr, addr+size); -1 if none. */
    int findRegion(uint64_t addr, uint64_t size) const;

    std::vector<Region> regions;   //!< sorted by base
    uint64_t nextBase = 0x10000;
    mutable int lastHit = -1;      //!< lookup cache (high locality)
};

} // namespace softcheck

#endif // SOFTCHECK_INTERP_MEMORY_HH
