#include "interp/cost_model.hh"

#include "support/error.hh"
#include "support/text.hh"

namespace softcheck
{

std::string
CostConfig::str() const
{
    return strformat(
        "out-of-order core, issue width %u; L1-D %uKB %u-way %uB lines "
        "(%u-cycle miss); bimodal predictor %u entries "
        "(%u-cycle mispredict); div +%u, math +%u",
        issueWidth, l1dSizeKB, l1dAssoc, lineBytes, l1dMissPenalty,
        predictorEntries, branchMispredictPenalty, divExtraCycles,
        mathExtraCycles);
}

CostModel::CostModel(const CostConfig &cfg) : conf(cfg)
{
    scAssert(conf.issueWidth > 0, "issue width must be positive");
    numSets = conf.l1dSizeKB * 1024 / (conf.lineBytes * conf.l1dAssoc);
    scAssert((numSets & (numSets - 1)) == 0, "sets must be a power of 2");
    scAssert((conf.predictorEntries & (conf.predictorEntries - 1)) == 0,
             "predictor entries must be a power of 2");
    tags.assign(static_cast<std::size_t>(numSets) * conf.l1dAssoc, 0);
    counters.assign(conf.predictorEntries, 1); // weakly not-taken
}

} // namespace softcheck
