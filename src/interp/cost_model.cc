#include "interp/cost_model.hh"

#include "support/byte_io.hh"
#include "support/error.hh"
#include "support/text.hh"

namespace softcheck
{

std::string
CostConfig::str() const
{
    return strformat(
        "out-of-order core, issue width %u; L1-D %uKB %u-way %uB lines "
        "(%u-cycle miss); bimodal predictor %u entries "
        "(%u-cycle mispredict); div +%u, math +%u",
        issueWidth, l1dSizeKB, l1dAssoc, lineBytes, l1dMissPenalty,
        predictorEntries, branchMispredictPenalty, divExtraCycles,
        mathExtraCycles);
}

CostModel::CostModel(const CostConfig &cfg) : conf(cfg)
{
    scAssert(conf.issueWidth > 0, "issue width must be positive");
    numSets = conf.l1dSizeKB * 1024 / (conf.lineBytes * conf.l1dAssoc);
    scAssert((numSets & (numSets - 1)) == 0, "sets must be a power of 2");
    scAssert((conf.predictorEntries & (conf.predictorEntries - 1)) == 0,
             "predictor entries must be a power of 2");
    tags.assign(static_cast<std::size_t>(numSets) * conf.l1dAssoc, 0);
    counters.assign(conf.predictorEntries, 1); // weakly not-taken
}

void
CostModel::serialize(ByteWriter &w) const
{
    w.u32(conf.issueWidth);
    w.u32(conf.l1dSizeKB);
    w.u32(conf.l1dAssoc);
    w.u32(conf.lineBytes);
    w.u32(conf.l1dMissPenalty);
    w.u32(conf.branchMispredictPenalty);
    w.u32(conf.divExtraCycles);
    w.u32(conf.mathExtraCycles);
    w.u32(conf.predictorEntries);
    w.u64(instrs);
    w.u64(stalls);
    w.u64(misses);
    w.u64(mispredicts);
    w.vecU64(tags);
    w.vecU8(counters);
}

CostModel
CostModel::deserialize(ByteReader &r)
{
    CostConfig cfg;
    cfg.issueWidth = r.u32();
    cfg.l1dSizeKB = r.u32();
    cfg.l1dAssoc = r.u32();
    cfg.lineBytes = r.u32();
    cfg.l1dMissPenalty = r.u32();
    cfg.branchMispredictPenalty = r.u32();
    cfg.divExtraCycles = r.u32();
    cfg.mathExtraCycles = r.u32();
    cfg.predictorEntries = r.u32();
    if (cfg.issueWidth == 0 || cfg.lineBytes == 0 || cfg.l1dAssoc == 0)
        scFatal("cost-model config with zero field");
    CostModel m(cfg); // recomputes + revalidates numSets
    m.instrs = r.u64();
    m.stalls = r.u64();
    m.misses = r.u64();
    m.mispredicts = r.u64();
    m.tags = r.vecU64();
    m.counters = r.vecU8();
    // Reader-side checks throw (scFatal) so corrupt bundles degrade
    // to a cache miss instead of aborting.
    if (m.tags.size() !=
        static_cast<std::size_t>(m.numSets) * cfg.l1dAssoc)
        scFatal("cost-model tag array size mismatch");
    if (m.counters.size() != cfg.predictorEntries)
        scFatal("cost-model predictor size mismatch");
    return m;
}

} // namespace softcheck
