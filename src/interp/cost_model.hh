/**
 * @file
 * Deterministic timing model standing in for the paper's gem5 ARMv7-a
 * out-of-order configuration (Table II). The model charges
 * 1/issueWidth cycles of base cost per dynamic instruction and adds
 * stall cycles for events an out-of-order core cannot hide: data-cache
 * misses, branch mispredictions, and long unpipelined operations
 * (divides, transcendental math).
 *
 * Absolute cycle counts are not meant to match silicon; the paper's
 * overhead results are ratios, which a consistent model preserves.
 */

#ifndef SOFTCHECK_INTERP_COST_MODEL_HH
#define SOFTCHECK_INTERP_COST_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instruction.hh"

namespace softcheck
{

class ByteReader;
class ByteWriter;

/** Parameters mirroring the paper's Table II where applicable. */
struct CostConfig
{
    unsigned issueWidth = 2;           //!< Table II: issue width 2
    unsigned l1dSizeKB = 32;           //!< Table II: 32KB L1-D
    unsigned l1dAssoc = 2;             //!< Table II: 2-way
    unsigned lineBytes = 64;
    unsigned l1dMissPenalty = 20;      //!< cycles, L2+memory combined
    unsigned branchMispredictPenalty = 10;
    unsigned divExtraCycles = 11;      //!< unpipelined divide
    unsigned mathExtraCycles = 18;     //!< sqrt/exp/log/sin/cos
    unsigned predictorEntries = 4096;  //!< bimodal 2-bit counters

    std::string str() const;
};

class CostModel
{
  public:
    explicit CostModel(const CostConfig &cfg = {});

    /** Charge the base cost (and div/math stalls) for one instruction. */
    void
    onInstr(Opcode op)
    {
        ++instrs;
        switch (op) {
          case Opcode::SDiv:
          case Opcode::UDiv:
          case Opcode::SRem:
          case Opcode::URem:
          case Opcode::FDiv:
            stalls += conf.divExtraCycles;
            break;
          case Opcode::Sqrt:
          case Opcode::Exp:
          case Opcode::Log:
          case Opcode::Sin:
          case Opcode::Cos:
            stalls += conf.mathExtraCycles;
            break;
          default:
            break;
        }
    }

    /**
     * Batched base charge: equivalent to @p n onInstr() calls for
     * opcodes with no div/math stall. The threaded tier counts
     * instructions in a register inside its unchecked inner loop and
     * settles here at event horizons; its div/math handlers charge
     * their stalls separately via addStalls().
     */
    void addInstrs(uint64_t n) { instrs += n; }

    /** Charge @p n extra stall cycles (threaded-tier div/math). */
    void addStalls(uint64_t n) { stalls += n; }

    /**
     * Pure index/tag computation for an L1-D access. Depends only on
     * the configuration, never on mutable state, so one probe computed
     * on any model applies to every model sharing that configuration —
     * the lockstep tier computes it once per instruction and feeds it
     * to each lane's updateMemAccess().
     */
    struct MemAccessProbe
    {
        uint64_t line = 0;
        uint64_t set = 0;
    };

    MemAccessProbe
    probeMemAccess(uint64_t addr) const
    {
        const uint64_t line = addr / conf.lineBytes;
        return {line, line & (numSets - 1)};
    }

    /** Resolve hit/miss and rotate the LRU stack for a probed access. */
    void
    updateMemAccess(const MemAccessProbe &p)
    {
        uint64_t *ways = &tags[p.set * conf.l1dAssoc];
        for (unsigned w = 0; w < conf.l1dAssoc; ++w) {
            if (ways[w] == p.line + 1) {
                // Move to MRU position (way 0).
                for (unsigned v = w; v > 0; --v)
                    ways[v] = ways[v - 1];
                ways[0] = p.line + 1;
                return;
            }
        }
        ++misses;
        stalls += conf.l1dMissPenalty;
        for (unsigned v = conf.l1dAssoc - 1; v > 0; --v)
            ways[v] = ways[v - 1];
        ways[0] = p.line + 1;
    }

    /** Simulate an L1-D access (loads and stores). */
    void onMemAccess(uint64_t addr) { updateMemAccess(probeMemAccess(addr)); }

    /** Pure predictor-table index for a conditional branch site;
     * shareable across models exactly like MemAccessProbe. */
    struct BranchProbe
    {
        uint64_t index = 0;
    };

    BranchProbe
    probeBranch(uint64_t site) const
    {
        return {site & (conf.predictorEntries - 1)};
    }

    /** Predict, charge a mispredict if wrong, and update the counter. */
    void
    updateBranch(const BranchProbe &p, bool taken)
    {
        uint8_t &ctr = counters[p.index];
        const bool predict_taken = ctr >= 2;
        if (predict_taken != taken) {
            ++mispredicts;
            stalls += conf.branchMispredictPenalty;
        }
        if (taken) {
            if (ctr < 3)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
    }

    /** Predict + update the bimodal predictor for a conditional branch
     * identified by @p site (a stable static id). */
    void
    onBranch(uint64_t site, bool taken)
    {
        updateBranch(probeBranch(site), taken);
    }

    uint64_t instructions() const { return instrs; }
    uint64_t stallCycles() const { return stalls; }
    uint64_t cacheMisses() const { return misses; }
    uint64_t branchMispredicts() const { return mispredicts; }

    /** Total simulated cycles so far. */
    uint64_t
    cycles() const
    {
        return instrs / conf.issueWidth + stalls;
    }

    const CostConfig &config() const { return conf; }

    /** Full dynamic-state equality (counters, cache tags, predictor
     * state); both models must share a configuration. Used by the
     * campaign engine's golden-convergence pruning. */
    bool
    sameState(const CostModel &o) const
    {
        return instrs == o.instrs && stalls == o.stalls &&
               misses == o.misses && mispredicts == o.mispredicts &&
               tags == o.tags && counters == o.counters;
    }

    /** Append configuration + full dynamic state (counters, cache
     * tags, predictor counters) to @p w; deserialize() restores a
     * model for which sameState(original) holds. Part of the campaign
     * service's Snapshot serialization (see src/service). */
    void serialize(ByteWriter &w) const;
    static CostModel deserialize(ByteReader &r);

  private:
    CostConfig conf;
    uint64_t instrs = 0;
    uint64_t stalls = 0;
    uint64_t misses = 0;
    uint64_t mispredicts = 0;
    unsigned numSets;
    std::vector<uint64_t> tags;     //!< 0 = invalid, else line+1
    std::vector<uint8_t> counters;  //!< 2-bit saturating
};

} // namespace softcheck

#endif // SOFTCHECK_INTERP_COST_MODEL_HH
