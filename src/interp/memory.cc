#include "interp/memory.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "support/byte_io.hh"
#include "support/error.hh"

namespace softcheck
{

namespace
{
constexpr uint64_t kAlign = 64;
constexpr uint64_t kGuardGap = 64;
constexpr uint64_t kPageMask = Memory::kPageSize - 1;
static_assert((Memory::kPageSize & kPageMask) == 0,
              "page size must be a power of two");

std::size_t
pagesFor(uint64_t size)
{
    return static_cast<std::size_t>(
        (size + Memory::kPageSize - 1) / Memory::kPageSize);
}

std::size_t
dirtyWordsFor(std::size_t pages)
{
    return (pages + 63) / 64;
}
} // namespace

const Memory::PageRef &
Memory::zeroPage()
{
    // Created as a non-const Page like every clone, but never written:
    // its dirty bit is never set in any region.
    static const PageRef zp = std::make_shared<Page>(Page{});
    return zp;
}

Memory::Memory(const Memory &other)
    : regions(other.regions), nextBase(other.nextBase)
{
    // Pages are now shared: force copy-on-write on both sides.
    other.markAllShared();
    markAllShared();
}

Memory &
Memory::operator=(const Memory &other)
{
    if (this == &other)
        return *this;
    regions = other.regions;
    nextBase = other.nextBase;
    other.markAllShared();
    markAllShared();
    lastHit.store(-1, std::memory_order_relaxed);
    return *this;
}

Memory::Memory(Memory &&other) noexcept
    : regions(std::move(other.regions)), nextBase(other.nextBase)
{
    // Ownership moves wholesale, so dirty (privately owned) pages stay
    // privately owned by the destination; no bitmap reset needed.
    other.regions.clear();
    other.lastHit.store(-1, std::memory_order_relaxed);
}

Memory &
Memory::operator=(Memory &&other) noexcept
{
    if (this == &other)
        return *this;
    regions = std::move(other.regions);
    nextBase = other.nextBase;
    other.regions.clear();
    other.lastHit.store(-1, std::memory_order_relaxed);
    lastHit.store(-1, std::memory_order_relaxed);
    return *this;
}

void
Memory::markAllShared() const
{
    for (const Region &r : regions)
        std::fill(r.dirty.begin(), r.dirty.end(), 0);
}

uint64_t
Memory::alloc(uint64_t size, std::string nm)
{
    scAssert(size > 0, "zero-sized allocation");
    const uint64_t base = nextBase;
    nextBase = (base + size + kGuardGap + kAlign - 1) & ~(kAlign - 1);
    Region r;
    r.base = base;
    r.size = size;
    r.name = std::move(nm);
    const std::size_t np = pagesFor(size);
    r.pages.assign(np, zeroPage());
    r.dirty.assign(dirtyWordsFor(np), 0);
    regions.push_back(std::move(r));
    lastHit.store(static_cast<int>(regions.size()) - 1,
                  std::memory_order_relaxed);
    return base;
}

void
Memory::free(uint64_t base)
{
    for (std::size_t i = 0; i < regions.size(); ++i) {
        if (regions[i].base == base) {
            regions.erase(regions.begin() +
                          static_cast<std::ptrdiff_t>(i));
            lastHit.store(-1, std::memory_order_relaxed);
            return;
        }
    }
    scPanic("free of unknown region base");
}

int
Memory::findRegion(uint64_t addr, uint64_t size) const
{
    auto fits = [&](const Region &r) {
        return addr >= r.base && addr + size <= r.base + r.size &&
               addr + size >= addr;
    };
    const int cached = lastHit.load(std::memory_order_relaxed);
    if (cached >= 0 &&
        static_cast<std::size_t>(cached) < regions.size() &&
        fits(regions[static_cast<std::size_t>(cached)]))
        return cached;
    // Regions are appended with increasing bases; free() keeps order.
    auto it = std::upper_bound(
        regions.begin(), regions.end(), addr,
        [](uint64_t a, const Region &r) { return a < r.base; });
    if (it == regions.begin())
        return -1;
    --it;
    if (!fits(*it))
        return -1;
    const int found = static_cast<int>(it - regions.begin());
    lastHit.store(found, std::memory_order_relaxed);
    return found;
}

uint8_t *
Memory::writablePage(Region &r, std::size_t pg)
{
    uint64_t &word = r.dirty[pg >> 6];
    const uint64_t bit = 1ULL << (pg & 63);
    if (!(word & bit)) {
        r.pages[pg] = std::make_shared<Page>(*r.pages[pg]);
        word |= bit;
    }
    // Safe: a dirty page was created non-const by the clone above and
    // is uniquely owned by this Memory (class invariant).
    return const_cast<Page &>(*r.pages[pg]).bytes.data();
}

bool
Memory::read(uint64_t addr, unsigned size, uint64_t &out) const
{
    const int idx = findRegion(addr, size);
    if (idx < 0)
        return false;
    const Region &r = regions[static_cast<std::size_t>(idx)];
    uint64_t off = addr - r.base;
    uint64_t v = 0;
    auto *dst = reinterpret_cast<uint8_t *>(&v);
    while (size > 0) {
        const std::size_t pg = static_cast<std::size_t>(off / kPageSize);
        const uint64_t in = off & kPageMask;
        const unsigned n = static_cast<unsigned>(
            std::min<uint64_t>(size, kPageSize - in));
        std::memcpy(dst, r.pages[pg]->bytes.data() + in, n);
        dst += n;
        off += n;
        size -= n;
    }
    out = v;
    return true;
}

bool
Memory::write(uint64_t addr, unsigned size, uint64_t value)
{
    const int idx = findRegion(addr, size);
    if (idx < 0)
        return false;
    Region &r = regions[static_cast<std::size_t>(idx)];
    uint64_t off = addr - r.base;
    const auto *src = reinterpret_cast<const uint8_t *>(&value);
    while (size > 0) {
        const std::size_t pg = static_cast<std::size_t>(off / kPageSize);
        const uint64_t in = off & kPageMask;
        const unsigned n = static_cast<unsigned>(
            std::min<uint64_t>(size, kPageSize - in));
        std::memcpy(writablePage(r, pg) + in, src, n);
        src += n;
        off += n;
        size -= n;
    }
    return true;
}

uint8_t *
Memory::hostPtr(uint64_t addr, uint64_t size)
{
    const int idx = findRegion(addr, size);
    if (idx < 0 || size == 0)
        return nullptr;
    Region &r = regions[static_cast<std::size_t>(idx)];
    const uint64_t off = addr - r.base;
    if ((off & kPageMask) + size > kPageSize)
        return nullptr; // straddles a page boundary
    return writablePage(r, static_cast<std::size_t>(off / kPageSize)) +
           (off & kPageMask);
}

const uint8_t *
Memory::hostPtr(uint64_t addr, uint64_t size) const
{
    const int idx = findRegion(addr, size);
    if (idx < 0 || size == 0)
        return nullptr;
    const Region &r = regions[static_cast<std::size_t>(idx)];
    const uint64_t off = addr - r.base;
    if ((off & kPageMask) + size > kPageSize)
        return nullptr;
    return r.pages[static_cast<std::size_t>(off / kPageSize)]
               ->bytes.data() +
           (off & kPageMask);
}

void
Memory::restoreFrom(const Memory &snapshot)
{
    nextBase = snapshot.nextBase;
    lastHit.store(-1, std::memory_order_relaxed);
    const std::size_t n = snapshot.regions.size();
    regions.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        Region &d = regions[i];
        const Region &s = snapshot.regions[i];
        if (d.base == s.base && d.size == s.size &&
            d.pages.size() == s.pages.size()) {
            // Matching layout (the steady-state trial reset): adopt
            // only page references that diverged, then discard this
            // side's dirt. No page bytes are copied.
            for (std::size_t p = 0; p < s.pages.size(); ++p)
                if (d.pages[p] != s.pages[p])
                    d.pages[p] = s.pages[p];
            std::fill(d.dirty.begin(), d.dirty.end(), 0);
            if (d.name != s.name)
                d.name = s.name;
        } else {
            d = s; // shares all pages
            std::fill(d.dirty.begin(), d.dirty.end(), 0);
        }
    }
}

bool
Memory::contentsEqual(const Memory &other) const
{
    if (nextBase != other.nextBase ||
        regions.size() != other.regions.size())
        return false;
    for (std::size_t i = 0; i < regions.size(); ++i) {
        const Region &a = regions[i];
        const Region &b = other.regions[i];
        if (a.base != b.base || a.size != b.size)
            return false;
        // Page counts match because the sizes do. Padding past 'size'
        // in the last page is zero on both sides (never writable), so
        // whole-page compares are exact.
        for (std::size_t p = 0; p < a.pages.size(); ++p) {
            if (a.pages[p] == b.pages[p])
                continue; // shared block: equal by identity
            if (std::memcmp(a.pages[p]->bytes.data(),
                            b.pages[p]->bytes.data(), kPageSize) != 0)
                return false;
        }
    }
    return true;
}

uint64_t
Memory::bytesAllocated() const
{
    uint64_t total = 0;
    for (const Region &r : regions)
        total += r.size;
    return total;
}

uint64_t
Memory::pageCount() const
{
    uint64_t total = 0;
    for (const Region &r : regions)
        total += r.pages.size();
    return total;
}

uint64_t
Memory::dirtyPageCount() const
{
    uint64_t total = 0;
    for (const Region &r : regions)
        for (const uint64_t w : r.dirty)
            total += static_cast<uint64_t>(std::popcount(w));
    return total;
}

namespace
{
/** Page token with this bit set introduces a new block: its id is the
 * low bits and kPageSize raw bytes follow. */
constexpr uint32_t kNewPageFlag = 0x80000000u;
} // namespace

void
Memory::serialize(ByteWriter &w, PagePoolWriter &pool) const
{
    // The zero page is process-global, never written through, and
    // reconstructible on any reader — always id 0, never raw bytes.
    pool.ids.emplace(zeroPage().get(), 0);
    w.u64(nextBase);
    w.u32(static_cast<uint32_t>(regions.size()));
    for (const Region &r : regions) {
        w.u64(r.base);
        w.u64(r.size);
        w.str(r.name);
        for (const PageRef &p : r.pages) {
            const auto it = pool.ids.find(p.get());
            if (it != pool.ids.end()) {
                w.u32(it->second);
                continue;
            }
            const auto id = static_cast<uint32_t>(pool.ids.size());
            scAssert(id < kNewPageFlag, "page pool id overflow");
            pool.ids.emplace(p.get(), id);
            w.u32(id | kNewPageFlag);
            w.bytes(p->bytes.data(), kPageSize);
        }
    }
}

Memory
Memory::deserialize(ByteReader &r, PagePoolReader &pool)
{
    if (pool.pages.empty())
        pool.pages.push_back(zeroPage());
    Memory m;
    m.nextBase = r.u64();
    const uint32_t nregions = r.u32();
    m.regions.reserve(nregions);
    for (uint32_t i = 0; i < nregions; ++i) {
        Region reg;
        reg.base = r.u64();
        reg.size = r.u64();
        reg.name = r.str();
        const std::size_t np = pagesFor(reg.size);
        reg.pages.reserve(np);
        for (std::size_t p = 0; p < np; ++p) {
            const uint32_t token = r.u32();
            if (token & kNewPageFlag) {
                // Reader-side format checks are scFatal, not scAssert:
                // a corrupt bundle is the input's fault and callers
                // (the artifact cache) catch FatalError and fall back
                // to recomputing.
                if ((token & ~kNewPageFlag) != pool.pages.size())
                    scFatal("page pool ids must arrive in order");
                auto page = std::make_shared<Page>();
                r.bytes(page->bytes.data(), kPageSize);
                pool.pages.push_back(std::move(page));
                reg.pages.push_back(pool.pages.back());
            } else {
                if (token >= pool.pages.size())
                    scFatal("page pool id out of range");
                reg.pages.push_back(pool.pages[token]);
            }
        }
        // Clean shared state: every page is (potentially) shared with
        // the pool and with other memories of the bundle, so the first
        // write clones — the same contract as a freshly saved snapshot.
        reg.dirty.assign(dirtyWordsFor(np), 0);
        m.regions.push_back(std::move(reg));
    }
    return m;
}

uint64_t
Memory::accountPages(std::unordered_set<const void *> &seen) const
{
    uint64_t added = 0;
    for (const Region &r : regions)
        for (const PageRef &p : r.pages)
            if (seen.insert(p.get()).second)
                added += kPageSize;
    return added;
}

} // namespace softcheck
