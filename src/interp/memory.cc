#include "interp/memory.hh"

#include <algorithm>
#include <cstring>

#include "support/error.hh"

namespace softcheck
{

namespace
{
constexpr uint64_t kAlign = 64;
constexpr uint64_t kGuardGap = 64;
} // namespace

uint64_t
Memory::alloc(uint64_t size, std::string nm)
{
    scAssert(size > 0, "zero-sized allocation");
    const uint64_t base = nextBase;
    nextBase = (base + size + kGuardGap + kAlign - 1) & ~(kAlign - 1);
    regions.push_back(
        {base, size, std::move(nm), std::vector<uint8_t>(size, 0)});
    lastHit = static_cast<int>(regions.size()) - 1;
    return base;
}

void
Memory::free(uint64_t base)
{
    for (std::size_t i = 0; i < regions.size(); ++i) {
        if (regions[i].base == base) {
            regions.erase(regions.begin() +
                          static_cast<std::ptrdiff_t>(i));
            lastHit = -1;
            return;
        }
    }
    scPanic("free of unknown region base");
}

int
Memory::findRegion(uint64_t addr, uint64_t size) const
{
    auto fits = [&](const Region &r) {
        return addr >= r.base && addr + size <= r.base + r.size &&
               addr + size >= addr;
    };
    if (lastHit >= 0 &&
        static_cast<std::size_t>(lastHit) < regions.size() &&
        fits(regions[static_cast<std::size_t>(lastHit)]))
        return lastHit;
    // Regions are appended with increasing bases; free() keeps order.
    auto it = std::upper_bound(
        regions.begin(), regions.end(), addr,
        [](uint64_t a, const Region &r) { return a < r.base; });
    if (it == regions.begin())
        return -1;
    --it;
    if (!fits(*it))
        return -1;
    lastHit = static_cast<int>(it - regions.begin());
    return lastHit;
}

bool
Memory::read(uint64_t addr, unsigned size, uint64_t &out) const
{
    const int idx = findRegion(addr, size);
    if (idx < 0)
        return false;
    const Region &r = regions[static_cast<std::size_t>(idx)];
    uint64_t v = 0;
    std::memcpy(&v, r.data.data() + (addr - r.base), size);
    out = v;
    return true;
}

bool
Memory::write(uint64_t addr, unsigned size, uint64_t value)
{
    const int idx = findRegion(addr, size);
    if (idx < 0)
        return false;
    Region &r = regions[static_cast<std::size_t>(idx)];
    std::memcpy(r.data.data() + (addr - r.base), &value, size);
    return true;
}

uint8_t *
Memory::hostPtr(uint64_t addr, uint64_t size)
{
    const int idx = findRegion(addr, size);
    if (idx < 0)
        return nullptr;
    Region &r = regions[static_cast<std::size_t>(idx)];
    return r.data.data() + (addr - r.base);
}

const uint8_t *
Memory::hostPtr(uint64_t addr, uint64_t size) const
{
    const int idx = findRegion(addr, size);
    if (idx < 0)
        return nullptr;
    const Region &r = regions[static_cast<std::size_t>(idx)];
    return r.data.data() + (addr - r.base);
}

void
Memory::restoreFrom(const Memory &snapshot)
{
    // Element-wise vector copy assignment reuses each region's data
    // buffer when its capacity suffices, so steady-state restores are
    // pure memcpy.
    regions = snapshot.regions;
    nextBase = snapshot.nextBase;
    lastHit = -1;
}

bool
Memory::contentsEqual(const Memory &other) const
{
    if (nextBase != other.nextBase ||
        regions.size() != other.regions.size())
        return false;
    for (std::size_t i = 0; i < regions.size(); ++i) {
        const Region &a = regions[i];
        const Region &b = other.regions[i];
        if (a.base != b.base || a.size != b.size || a.data != b.data)
            return false;
    }
    return true;
}

uint64_t
Memory::bytesAllocated() const
{
    uint64_t total = 0;
    for (const Region &r : regions)
        total += r.size;
    return total;
}

} // namespace softcheck
