/**
 * @file
 * Implementation of the direct-threaded tier (see threaded_exec.hh).
 *
 * Bit-identity with the interpreter is the invariant every line here
 * serves. The load-bearing details:
 *
 *  - A trapping or check-failing instruction is still counted (the
 *    interpreter increments dynCount and charges onInstr before
 *    executing), and ip is left pointing at it.
 *  - Every register write — including phi moves, call argument copies
 *    and return-value writes — goes through ExecFrame::noteWrite, so
 *    the recent-write ring matches the interpreter's at fault time.
 *  - Div/math stalls are charged before the div-by-zero test, like
 *    CostModel::onInstr running before the handler body.
 *  - cycles() is only observed at event boundaries, where the batched
 *    addInstrs() settlement has already run, so the deferred base
 *    charge is unobservable.
 *  - Fused handlers only run when the horizon is at least two
 *    instructions away (`remaining >= 2`); otherwise TInst::alt runs
 *    the unfused first half, the boundary event fires between the two
 *    halves exactly as the interpreter would interleave it, and the
 *    fully-decoded second TInst serves as the landing pad.
 */

#include "interp/threaded_exec.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "interp/fp_util.hh"
#include "support/bits.hh"
#include "support/error.hh"

/* Computed-goto dispatch needs GNU address-of-label; define
 * SOFTCHECK_CGOTO=0 on the command line to force the portable
 * switch fallback (CI builds it to keep both paths honest). */
#ifndef SOFTCHECK_CGOTO
#if defined(__GNUC__) || defined(__clang__)
#define SOFTCHECK_CGOTO 1
#else
#define SOFTCHECK_CGOTO 0
#endif
#endif

namespace softcheck
{

using namespace fp_util;

// ---------------------------------------------------------------------
// Translation
// ---------------------------------------------------------------------

namespace
{

constexpr uint8_t
hid(THandler h)
{
    return static_cast<uint8_t>(h);
}

THandler
icmpHandler(Predicate p)
{
    switch (p) {
      case Predicate::Eq: return THandler::ICmpEq;
      case Predicate::Ne: return THandler::ICmpNe;
      case Predicate::Slt: return THandler::ICmpSlt;
      case Predicate::Sle: return THandler::ICmpSle;
      case Predicate::Sgt: return THandler::ICmpSgt;
      case Predicate::Sge: return THandler::ICmpSge;
      case Predicate::Ult: return THandler::ICmpUlt;
      case Predicate::Ule: return THandler::ICmpUle;
      case Predicate::Ugt: return THandler::ICmpUgt;
      case Predicate::Uge: return THandler::ICmpUge;
      default: scPanic("bad icmp predicate");
    }
}

THandler
cmpBrHandler(Predicate p)
{
    switch (p) {
      case Predicate::Eq: return THandler::CmpBrEq;
      case Predicate::Ne: return THandler::CmpBrNe;
      case Predicate::Slt: return THandler::CmpBrSlt;
      case Predicate::Sle: return THandler::CmpBrSle;
      case Predicate::Sgt: return THandler::CmpBrSgt;
      case Predicate::Sge: return THandler::CmpBrSge;
      case Predicate::Ult: return THandler::CmpBrUlt;
      case Predicate::Ule: return THandler::CmpBrUle;
      case Predicate::Ugt: return THandler::CmpBrUgt;
      case Predicate::Uge: return THandler::CmpBrUge;
      default: scPanic("bad icmp predicate");
    }
}

THandler
fcmpHandler(Predicate p, bool f64)
{
    switch (p) {
      case Predicate::OEq:
        return f64 ? THandler::FCmpDOEq : THandler::FCmpSOEq;
      case Predicate::ONe:
        return f64 ? THandler::FCmpDONe : THandler::FCmpSONe;
      case Predicate::OLt:
        return f64 ? THandler::FCmpDOLt : THandler::FCmpSOLt;
      case Predicate::OLe:
        return f64 ? THandler::FCmpDOLe : THandler::FCmpSOLe;
      case Predicate::OGt:
        return f64 ? THandler::FCmpDOGt : THandler::FCmpSOGt;
      case Predicate::OGe:
        return f64 ? THandler::FCmpDOGe : THandler::FCmpSOGe;
      default: scPanic("bad fcmp predicate");
    }
}

} // namespace

ThreadedModule::ThreadedModule(const ExecModule &exec_module)
    : src(&exec_module)
{
    fns.resize(exec_module.numFunctions());
    for (std::size_t i = 0; i < exec_module.numFunctions(); ++i)
        translate(exec_module.function(i), fns[i]);
}

void
ThreadedModule::translate(const ExecFunction &fn, ThreadedFunction &out)
{
    out.src = &fn;
    const std::size_t n = fn.code.size();
    out.code.resize(n);

    // Block index of each instruction. Blocks are emitted contiguously
    // in layout order, so block b spans [blocks[b].first, next first).
    std::vector<uint32_t> block_of(n, 0);
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        const std::size_t first = fn.blocks[b].first;
        const std::size_t end =
            b + 1 < fn.blocks.size() ? fn.blocks[b + 1].first : n;
        scAssert(first <= end && end <= n, "non-contiguous block layout");
        for (std::size_t i = first; i < end; ++i)
            block_of[i] = static_cast<uint32_t>(b);
    }

    std::map<uint64_t, int32_t> const_idx;
    auto operand = [&](const OpRef &r) -> int32_t {
        if (r.slot >= 0)
            return r.slot;
        auto [it, inserted] = const_idx.try_emplace(
            r.imm, static_cast<int32_t>(out.consts.size()));
        if (inserted)
            out.consts.push_back(r.imm);
        return ~it->second;
    };

    auto add_edge = [&](uint32_t from_block, uint32_t target) {
        TEdge e;
        e.targetBlock = target;
        e.targetIp = fn.blocks[target].first;
        e.movesBegin = static_cast<uint32_t>(out.phiMoves.size());
        for (const auto &[pred, moves] : fn.blocks[target].phiIn) {
            if (pred != from_block)
                continue;
            for (const PhiMove &mv : moves)
                out.phiMoves.push_back({mv.dst, operand(mv.src)});
            break;
        }
        e.movesEnd = static_cast<uint32_t>(out.phiMoves.size());
        maxMoves = std::max<std::size_t>(maxMoves,
                                         e.movesEnd - e.movesBegin);
        out.edges.push_back(e);
        return static_cast<uint32_t>(out.edges.size() - 1);
    };

    for (std::size_t i = 0; i < n; ++i) {
        const ExecInst &inst = fn.code[i];
        TInst &t = out.code[i];
        t.pred = inst.pred;
        t.ty = inst.ty;
        t.srcOp = inst.op;
        t.width = static_cast<uint8_t>(typeBits(inst.ty));
        t.elemSize = inst.elemSize;
        t.dst = inst.dst;
        t.a = operand(inst.a);
        t.b = operand(inst.b);
        t.c = operand(inst.c);
        t.branchSite = inst.branchSite;
        t.checkId = inst.checkId;
        t.calleeIdx = inst.calleeIdx;

        const bool f64 = inst.ty == TypeKind::F64;
        THandler h;
        switch (inst.op) {
          case Opcode::Add: h = THandler::Add; break;
          case Opcode::Sub: h = THandler::Sub; break;
          case Opcode::Mul: h = THandler::Mul; break;
          case Opcode::SDiv: h = THandler::SDiv; break;
          case Opcode::SRem: h = THandler::SRem; break;
          case Opcode::UDiv: h = THandler::UDiv; break;
          case Opcode::URem: h = THandler::URem; break;
          case Opcode::And: h = THandler::And; break;
          case Opcode::Or: h = THandler::Or; break;
          case Opcode::Xor: h = THandler::Xor; break;
          case Opcode::Shl: h = THandler::Shl; break;
          case Opcode::LShr: h = THandler::LShr; break;
          case Opcode::AShr: h = THandler::AShr; break;
          case Opcode::FAdd:
            h = f64 ? THandler::FAddD : THandler::FAddS;
            break;
          case Opcode::FSub:
            h = f64 ? THandler::FSubD : THandler::FSubS;
            break;
          case Opcode::FMul:
            h = f64 ? THandler::FMulD : THandler::FMulS;
            break;
          case Opcode::FDiv:
            h = f64 ? THandler::FDivD : THandler::FDivS;
            break;
          case Opcode::ICmp: h = icmpHandler(inst.pred); break;
          case Opcode::FCmp: h = fcmpHandler(inst.pred, f64); break;
          case Opcode::Trunc:
          case Opcode::PtrToInt:
            h = THandler::Trunc;
            break;
          case Opcode::ZExt:
          case Opcode::IntToPtr:
            h = THandler::Move;
            break;
          case Opcode::SExt:
            t.srcBits = static_cast<uint8_t>(
                typeBits(static_cast<TypeKind>(inst.elemSize)));
            h = THandler::SExt;
            break;
          case Opcode::FPToSI:
            h = static_cast<TypeKind>(inst.elemSize) == TypeKind::F64
                    ? THandler::FPToSiD
                    : THandler::FPToSiS;
            break;
          case Opcode::SIToFP:
            t.srcBits = static_cast<uint8_t>(
                typeBits(static_cast<TypeKind>(inst.elemSize)));
            h = f64 ? THandler::SIToFPD : THandler::SIToFPS;
            break;
          case Opcode::FPTrunc: h = THandler::FPTrunc; break;
          case Opcode::FPExt: h = THandler::FPExt; break;
          case Opcode::Load: h = THandler::Load; break;
          case Opcode::Store: h = THandler::Store; break;
          case Opcode::Gep: h = THandler::Gep; break;
          case Opcode::Alloca: h = THandler::Alloca; break;
          case Opcode::GlobalAddr:
            t.e0 = static_cast<uint32_t>(inst.a.imm);
            h = THandler::GlobalAddr;
            break;
          case Opcode::Br:
            t.e0 = add_edge(block_of[i], inst.t0);
            h = THandler::Br;
            break;
          case Opcode::CondBr:
            t.e0 = add_edge(block_of[i], inst.t0);
            t.e1 = add_edge(block_of[i], inst.t1);
            h = THandler::CondBr;
            break;
          case Opcode::Select: h = THandler::Select; break;
          case Opcode::Call: {
            t.argsBegin = static_cast<uint32_t>(out.callArgs.size());
            for (const OpRef &arg : inst.callArgs)
                out.callArgs.push_back(operand(arg));
            t.e0 = static_cast<uint32_t>(inst.callArgs.size());
            maxArgs = std::max<std::size_t>(maxArgs,
                                            inst.callArgs.size());
            h = THandler::Call;
            break;
          }
          case Opcode::Ret:
            t.e0 = fn.retTy != TypeKind::Void ? 1 : 0;
            h = THandler::Ret;
            break;
          case Opcode::Sqrt:
          case Opcode::FAbs:
          case Opcode::Exp:
          case Opcode::Log:
          case Opcode::Sin:
          case Opcode::Cos:
            h = f64 ? THandler::MathD : THandler::MathS;
            break;
          case Opcode::FMin:
            h = f64 ? THandler::FMinD : THandler::FMinS;
            break;
          case Opcode::FMax:
            h = f64 ? THandler::FMaxD : THandler::FMaxS;
            break;
          case Opcode::CheckEq:
          case Opcode::CheckOne:
            h = inst.elided ? THandler::CheckElided
                            : THandler::CheckEq2;
            break;
          case Opcode::CheckTwo:
            h = inst.elided ? THandler::CheckElided : THandler::CheckTwo;
            break;
          case Opcode::CheckRange:
            h = inst.elided          ? THandler::CheckElided
                : f64                ? THandler::CheckRangeD
                : inst.ty == TypeKind::F32 ? THandler::CheckRangeS
                                           : THandler::CheckRangeI;
            break;
          case Opcode::Phi:
            scPanic("phi reached translation (must be edge-applied)");
          default:
            scPanic("unhandled opcode in threaded translation");
        }
        t.h = hid(h);
        t.alt = t.h;
    }

    // Superinstruction fusion. The second TInst of a pair stays fully
    // decoded: it is the landing pad when an event horizon splits the
    // pair (alt runs the unfused first half) and the fused handler
    // reads the second half's fields from it.
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const ExecInst &ei = fn.code[i];
        const ExecInst &ej = fn.code[i + 1];
        if (block_of[i] != block_of[i + 1] || ei.dst < 0)
            continue;
        TInst &t = out.code[i];
        if (ei.op == Opcode::ICmp && ej.op == Opcode::CondBr &&
            ej.a.slot == ei.dst) {
            t.h = hid(cmpBrHandler(ei.pred));
        } else if (ei.op == Opcode::Gep && ej.op == Opcode::Load &&
                   ej.a.slot == ei.dst) {
            t.h = hid(THandler::GepLoad);
        } else if (ei.op == Opcode::Gep && ej.op == Opcode::Store &&
                   ej.b.slot == ei.dst) {
            t.h = hid(THandler::GepStore);
        } else {
            continue;
        }
        t.fused = 1;
        ++fused;
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

ThreadedExec::ThreadedExec(const ThreadedModule &tmod, Memory &memory)
    : tm(tmod), em(tmod.execModule()), mem(memory)
{
    phiTmp.resize(std::max<std::size_t>(tm.maxPhiMoves(), 1));
    callTmp.resize(std::max<std::size_t>(tm.maxCallArgs(), 1));
}

void
ThreadedExec::begin(ExecState &st, std::size_t fn_index,
                    const std::vector<uint64_t> &args,
                    const CostConfig &cost_cfg)
{
    beginExec(em, mem, st, fn_index, args, cost_cfg, arena);
}

RunResult
ThreadedExec::run(std::size_t fn_index,
                  const std::vector<uint64_t> &args,
                  const ExecOptions &opts)
{
    ExecState st;
    begin(st, fn_index, args, opts.cost);
    return resume(st, opts);
}

// Operand read: register slot (>= 0) or constant pool (~index).
#define RD(x) ((x) >= 0 ? regs[(x)] : consts[~(x)])

// Result write: always pairs the register store with the ring note.
#define WR(v)                                                           \
    do {                                                                \
        regs[t->dst] = (v);                                             \
        fr->noteWrite(t->dst);                                          \
    } while (0)

#define SYNC_FRAME()                                                    \
    do {                                                                \
        fr->ip = ip;                                                    \
        fr->curBlock = cur_block;                                       \
    } while (0)

// Settle the batched instruction count into ExecState/CostModel.
#define SETTLE_COUNTS()                                                 \
    do {                                                                \
        st.dynCount += budget - remaining;                              \
        cost.addInstrs(budget - remaining);                             \
    } while (0)

#define TRAP_EXIT(kind)                                                 \
    do {                                                                \
        SYNC_FRAME();                                                   \
        SETTLE_COUNTS();                                                \
        return finish(Termination::Trap, (kind), -1, 0);                \
    } while (0)

#define CHECK_FAIL_EXIT(id)                                             \
    do {                                                                \
        if (!check_fail_allowed(id)) {                                  \
            SYNC_FRAME();                                               \
            SETTLE_COUNTS();                                            \
            return finish(Termination::CheckFailed, TrapKind::None,     \
                          (id), 0);                                     \
        }                                                               \
    } while (0)

// Refresh the cached per-frame pointers after a push/pop/begin.
#define LOAD_FRAME_CONTEXT()                                            \
    do {                                                                \
        fr = &stack.back();                                             \
        tf = tf_base + static_cast<std::size_t>(fr->fn - fn_base);      \
        code = tf->code.data();                                         \
        consts = tf->consts.data();                                     \
        regs = fr->regs.data();                                         \
        ip = fr->ip;                                                    \
        cur_block = fr->curBlock;                                       \
    } while (0)

// Take a pre-resolved edge: parallel phi-move copy, then jump.
#define APPLY_EDGE(eidx)                                                \
    do {                                                                \
        const TEdge &e_ = tf->edges[(eidx)];                            \
        if (e_.movesBegin != e_.movesEnd) {                             \
            const TPhiMove *mv_ = tf->phiMoves.data();                  \
            for (uint32_t k_ = e_.movesBegin; k_ < e_.movesEnd; ++k_)   \
                phi_buf[k_ - e_.movesBegin] = RD(mv_[k_].src);          \
            for (uint32_t k_ = e_.movesBegin; k_ < e_.movesEnd; ++k_) { \
                regs[mv_[k_].dst] = phi_buf[k_ - e_.movesBegin];        \
                fr->noteWrite(mv_[k_].dst);                             \
            }                                                           \
        }                                                               \
        cur_block = e_.targetBlock;                                     \
        ip = e_.targetIp;                                               \
    } while (0)

#if SOFTCHECK_CGOTO
#define DISPATCH()                                                      \
    do {                                                                \
        if (remaining == 0)                                             \
            goto L_horizon;                                             \
        t = code + ip;                                                  \
        goto *kLabels[remaining >= 2 ? t->h : t->alt];                  \
    } while (0)
#define HCASE(n) L_##n:
#define NEXT() DISPATCH()
#else
#define HCASE(n) case THandler::n:
#define NEXT() break
#endif

#define SC_ICMP_BODY(EXPR)                                              \
    {                                                                   \
        --remaining;                                                    \
        const uint64_t ua = RD(t->a);                                   \
        const uint64_t ub = RD(t->b);                                   \
        const int64_t sa = signExtend(ua, t->width);                    \
        const int64_t sb = signExtend(ub, t->width);                    \
        (void)ua; (void)ub; (void)sa; (void)sb;                         \
        WR((EXPR) ? 1 : 0);                                             \
        ++ip;                                                           \
    }

#define SC_FCMPD_BODY(EXPR)                                             \
    {                                                                   \
        --remaining;                                                    \
        const double a = asF64(RD(t->a));                               \
        const double b = asF64(RD(t->b));                               \
        WR((EXPR) ? 1 : 0);                                             \
        ++ip;                                                           \
    }

#define SC_FCMPS_BODY(EXPR)                                             \
    {                                                                   \
        --remaining;                                                    \
        const float a = asF32(RD(t->a));                                \
        const float b = asF32(RD(t->b));                                \
        WR((EXPR) ? 1 : 0);                                             \
        ++ip;                                                           \
    }

// Fused ICmp+CondBr: compare, write the compare result (its register
// stays architecturally live), then branch on it using the second
// half's predictor site and edges.
#define SC_CMPBR_BODY(EXPR)                                             \
    {                                                                   \
        remaining -= 2;                                                 \
        const uint64_t ua = RD(t->a);                                   \
        const uint64_t ub = RD(t->b);                                   \
        const int64_t sa = signExtend(ua, t->width);                    \
        const int64_t sb = signExtend(ub, t->width);                    \
        (void)ua; (void)ub; (void)sa; (void)sb;                         \
        const bool r = (EXPR);                                          \
        WR(r ? 1 : 0);                                                  \
        const TInst *u = t + 1;                                         \
        cost.onBranch(u->branchSite, r);                                \
        APPLY_EDGE(r ? u->e0 : u->e1);                                  \
    }

RunResult
ThreadedExec::resume(ExecState &st, const ExecOptions &opts)
{
    scAssert(!opts.profiler,
             "profiling runs must use the interpreter tier");
    scAssert(!opts.siteObserver,
             "fault-site observation runs must use the interpreter tier");

    std::vector<ExecFrame> &stack = st.stack;
    CostModel &cost = st.cost;

    uint64_t fault_at =
        opts.faultAtDynInstr ? *opts.faultAtDynInstr : ~0ULL;
    FaultOutcome fault;
    uint64_t check_evals = 0;

    // Same event-arming as the interpreter loop top: explicit schedule
    // or periodic stride for checkpoints, snapshot-indexed boundaries
    // for golden compares.
    uint64_t next_checkpoint = ~0ULL;
    std::size_t sched_idx = 0;
    if (opts.checkpointSchedule) {
        scAssert(opts.checkpointSink,
                 "checkpoint schedule without a sink");
        scAssert(!opts.checkpointEvery,
                 "checkpointEvery and checkpointSchedule are exclusive");
        const std::vector<uint64_t> &sched = *opts.checkpointSchedule;
        std::size_t lo = 0, hi = sched.size();
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (sched[mid] > st.dynCount)
                hi = mid;
            else
                lo = mid + 1;
        }
        sched_idx = lo;
        if (sched_idx < sched.size())
            next_checkpoint = sched[sched_idx];
    } else if (opts.checkpointEvery) {
        scAssert(opts.checkpointSink, "checkpointEvery without a sink");
        next_checkpoint = (st.dynCount / opts.checkpointEvery + 1) *
                          opts.checkpointEvery;
    }

    uint64_t next_golden_cmp = ~0ULL;
    std::size_t golden_idx = 0;
    auto arm_golden_cmp = [&]() {
        if (!opts.goldenSnapshots || opts.goldenSnapshots->empty())
            return;
        golden_idx =
            firstSnapshotAfter(*opts.goldenSnapshots, st.dynCount);
        next_golden_cmp =
            golden_idx < opts.goldenSnapshots->size()
                ? (*opts.goldenSnapshots)[golden_idx].dynInstr()
                : ~0ULL;
    };

    auto finish = [&](Termination term, TrapKind trap, int check_id,
                      uint64_t ret) {
        RunResult r;
        r.term = term;
        r.trap = trap;
        r.failedCheckId = check_id;
        r.retValue = ret;
        r.dynInstrs = st.dynCount;
        r.cycles = cost.cycles();
        r.endCycle = cost.cycles();
        r.cacheMisses = cost.cacheMisses();
        r.branchMispredicts = cost.branchMispredicts();
        r.checkEvals = check_evals;
        r.fault = fault;
        return r;
    };

    // Mirrors the interpreter's check_passed failure path.
    auto check_fail_allowed = [&](int32_t id) {
        if (opts.disabledChecks && id >= 0 &&
            static_cast<std::size_t>(id) < opts.disabledChecks->size() &&
            (*opts.disabledChecks)[static_cast<std::size_t>(id)])
            return true;
        if (opts.checkMode == CheckMode::Record) {
            if (opts.checkFailCounts)
                (*opts.checkFailCounts)[static_cast<std::size_t>(id)]++;
            return true;
        }
        return false;
    };

    const uint64_t div_stall = cost.config().divExtraCycles;
    const uint64_t math_stall = cost.config().mathExtraCycles;

    const ExecFunction *fn_base = &em.function(0);
    const ThreadedFunction *tf_base = &tm.function(0);
    const uint64_t *globals = st.globalBases.data();
    uint64_t *phi_buf = phiTmp.data();
    uint64_t *call_buf = callTmp.data();

    // Inner-loop state, hoisted so no dispatch jump crosses an
    // initialization.
    ExecFrame *fr = nullptr;
    const ThreadedFunction *tf = nullptr;
    const TInst *code = nullptr;
    const TInst *t = nullptr;
    const uint64_t *consts = nullptr;
    uint64_t *regs = nullptr;
    uint32_t ip = 0;
    uint32_t cur_block = 0;
    uint64_t budget = 0;
    uint64_t remaining = 0;

    for (;;) {
        // --- event boundary: same order as the interpreter loop top ---
        if (st.dynCount >= next_checkpoint) {
            opts.checkpointSink->push_back(Snapshot::save(st, mem));
            if (opts.checkpointSchedule) {
                ++sched_idx;
                next_checkpoint =
                    sched_idx < opts.checkpointSchedule->size()
                        ? (*opts.checkpointSchedule)[sched_idx]
                        : ~0ULL;
            } else {
                next_checkpoint += opts.checkpointEvery;
            }
        }

        if (st.dynCount >= fault_at) {
            fault_at = ~0ULL;
            ExecFrame &ff = stack.back();
            if (ff.recentCount > 0 && opts.faultRng) {
                Rng &rng = *opts.faultRng;
                const int32_t slot = ff.recent[static_cast<std::size_t>(
                    rng.nextBelow(ff.recentCount))];
                const TypeKind ty =
                    ff.fn->slotTypes[static_cast<std::size_t>(slot)];
                const unsigned width = typeBits(ty) ? typeBits(ty) : 64;
                const unsigned bit =
                    static_cast<unsigned>(rng.nextBelow(width));
                fault.injected = true;
                fault.slot = slot;
                fault.slotType = ty;
                fault.bit = bit;
                fault.before = ff.regs[static_cast<std::size_t>(slot)];
                fault.after =
                    flipBit(fault.before, bit) & lowBitMask(width);
                fault.atDynInstr = st.dynCount;
                fault.atCycle = cost.cycles();
                ff.regs[static_cast<std::size_t>(slot)] = fault.after;
            }
            arm_golden_cmp();
        }

        if (st.dynCount >= next_golden_cmp) {
            // Reached exactly: the event horizon stops the inner loop
            // on this boundary, and arming picked a strictly later
            // snapshot.
            const Snapshot &gold = (*opts.goldenSnapshots)[golden_idx];
            if (gold.convergedWith(st, mem)) {
                scAssert(opts.goldenResult,
                         "goldenSnapshots without goldenResult");
                RunResult r = *opts.goldenResult;
                r.prunedToGolden = true;
                r.fault = fault;
                return r;
            }
            ++golden_idx;
            next_golden_cmp =
                golden_idx < opts.goldenSnapshots->size()
                    ? (*opts.goldenSnapshots)[golden_idx].dynInstr()
                    : ~0ULL;
        }

        if (st.dynCount >= opts.maxDynInstrs)
            return finish(Termination::Timeout, TrapKind::None, -1, 0);

        // --- event horizon: run unchecked exactly to the next event ---
        uint64_t horizon = opts.maxDynInstrs;
        if (next_checkpoint < horizon)
            horizon = next_checkpoint;
        if (fault_at < horizon)
            horizon = fault_at;
        if (next_golden_cmp < horizon)
            horizon = next_golden_cmp;
        budget = horizon - st.dynCount;
        remaining = budget;

        LOAD_FRAME_CONTEXT();

#if SOFTCHECK_CGOTO
        static const void *kLabels[] = {
#define SOFTCHECK_THANDLER_LABEL(n) &&L_##n,
            SOFTCHECK_THANDLERS(SOFTCHECK_THANDLER_LABEL)
#undef SOFTCHECK_THANDLER_LABEL
        };
        DISPATCH();
#else
        for (;;) {
            if (remaining == 0)
                goto L_horizon;
            t = code + ip;
            switch (static_cast<THandler>(remaining >= 2 ? t->h
                                                         : t->alt)) {
#endif

        // ---- integer arithmetic ------------------------------------
        HCASE(Add)
        {
            --remaining;
            WR(truncBits(RD(t->a) + RD(t->b), t->width));
            ++ip;
        }
        NEXT();
        HCASE(Sub)
        {
            --remaining;
            WR(truncBits(RD(t->a) - RD(t->b), t->width));
            ++ip;
        }
        NEXT();
        HCASE(Mul)
        {
            --remaining;
            WR(truncBits(RD(t->a) * RD(t->b), t->width));
            ++ip;
        }
        NEXT();
        HCASE(SDiv)
        {
            --remaining;
            cost.addStalls(div_stall);
            const int64_t a = signExtend(RD(t->a), t->width);
            const int64_t b = signExtend(RD(t->b), t->width);
            if (b == 0)
                TRAP_EXIT(TrapKind::DivByZero);
            const int64_t res =
                (a == std::numeric_limits<int64_t>::min() && b == -1)
                    ? a
                    : a / b;
            WR(truncBits(static_cast<uint64_t>(res), t->width));
            ++ip;
        }
        NEXT();
        HCASE(SRem)
        {
            --remaining;
            cost.addStalls(div_stall);
            const int64_t a = signExtend(RD(t->a), t->width);
            const int64_t b = signExtend(RD(t->b), t->width);
            if (b == 0)
                TRAP_EXIT(TrapKind::DivByZero);
            const int64_t res =
                (a == std::numeric_limits<int64_t>::min() && b == -1)
                    ? 0
                    : a % b;
            WR(truncBits(static_cast<uint64_t>(res), t->width));
            ++ip;
        }
        NEXT();
        HCASE(UDiv)
        {
            --remaining;
            cost.addStalls(div_stall);
            const uint64_t a = RD(t->a);
            const uint64_t b = RD(t->b);
            if (b == 0)
                TRAP_EXIT(TrapKind::DivByZero);
            WR(truncBits(a / b, t->width));
            ++ip;
        }
        NEXT();
        HCASE(URem)
        {
            --remaining;
            cost.addStalls(div_stall);
            const uint64_t a = RD(t->a);
            const uint64_t b = RD(t->b);
            if (b == 0)
                TRAP_EXIT(TrapKind::DivByZero);
            WR(truncBits(a % b, t->width));
            ++ip;
        }
        NEXT();
        HCASE(And)
        {
            --remaining;
            WR(RD(t->a) & RD(t->b));
            ++ip;
        }
        NEXT();
        HCASE(Or)
        {
            --remaining;
            WR(RD(t->a) | RD(t->b));
            ++ip;
        }
        NEXT();
        HCASE(Xor)
        {
            --remaining;
            WR(RD(t->a) ^ RD(t->b));
            ++ip;
        }
        NEXT();
        HCASE(Shl)
        {
            --remaining;
            const unsigned sh =
                static_cast<unsigned>(RD(t->b)) & (t->width - 1);
            WR(truncBits(RD(t->a) << sh, t->width));
            ++ip;
        }
        NEXT();
        HCASE(LShr)
        {
            --remaining;
            const unsigned sh =
                static_cast<unsigned>(RD(t->b)) & (t->width - 1);
            WR(RD(t->a) >> sh);
            ++ip;
        }
        NEXT();
        HCASE(AShr)
        {
            --remaining;
            const unsigned sh =
                static_cast<unsigned>(RD(t->b)) & (t->width - 1);
            const int64_t a = signExtend(RD(t->a), t->width);
            WR(truncBits(static_cast<uint64_t>(a >> sh), t->width));
            ++ip;
        }
        NEXT();

        // ---- floating-point arithmetic -----------------------------
        HCASE(FAddD)
        {
            --remaining;
            WR(fromF64(asF64(RD(t->a)) + asF64(RD(t->b))));
            ++ip;
        }
        NEXT();
        HCASE(FSubD)
        {
            --remaining;
            WR(fromF64(asF64(RD(t->a)) - asF64(RD(t->b))));
            ++ip;
        }
        NEXT();
        HCASE(FMulD)
        {
            --remaining;
            WR(fromF64(asF64(RD(t->a)) * asF64(RD(t->b))));
            ++ip;
        }
        NEXT();
        HCASE(FDivD)
        {
            --remaining;
            cost.addStalls(div_stall);
            WR(fromF64(asF64(RD(t->a)) / asF64(RD(t->b))));
            ++ip;
        }
        NEXT();
        HCASE(FAddS)
        {
            --remaining;
            WR(fromF32(asF32(RD(t->a)) + asF32(RD(t->b))));
            ++ip;
        }
        NEXT();
        HCASE(FSubS)
        {
            --remaining;
            WR(fromF32(asF32(RD(t->a)) - asF32(RD(t->b))));
            ++ip;
        }
        NEXT();
        HCASE(FMulS)
        {
            --remaining;
            WR(fromF32(asF32(RD(t->a)) * asF32(RD(t->b))));
            ++ip;
        }
        NEXT();
        HCASE(FDivS)
        {
            --remaining;
            cost.addStalls(div_stall);
            WR(fromF32(asF32(RD(t->a)) / asF32(RD(t->b))));
            ++ip;
        }
        NEXT();

        // ---- comparisons -------------------------------------------
        HCASE(ICmpEq) SC_ICMP_BODY(ua == ub) NEXT();
        HCASE(ICmpNe) SC_ICMP_BODY(ua != ub) NEXT();
        HCASE(ICmpSlt) SC_ICMP_BODY(sa < sb) NEXT();
        HCASE(ICmpSle) SC_ICMP_BODY(sa <= sb) NEXT();
        HCASE(ICmpSgt) SC_ICMP_BODY(sa > sb) NEXT();
        HCASE(ICmpSge) SC_ICMP_BODY(sa >= sb) NEXT();
        HCASE(ICmpUlt) SC_ICMP_BODY(ua < ub) NEXT();
        HCASE(ICmpUle) SC_ICMP_BODY(ua <= ub) NEXT();
        HCASE(ICmpUgt) SC_ICMP_BODY(ua > ub) NEXT();
        HCASE(ICmpUge) SC_ICMP_BODY(ua >= ub) NEXT();

        // Ordered inequality: false when either operand is NaN (plain
        // C++ != is the *unordered* inequality).
        HCASE(FCmpDOEq) SC_FCMPD_BODY(a == b) NEXT();
        HCASE(FCmpDONe) SC_FCMPD_BODY(a == a && b == b && a != b) NEXT();
        HCASE(FCmpDOLt) SC_FCMPD_BODY(a < b) NEXT();
        HCASE(FCmpDOLe) SC_FCMPD_BODY(a <= b) NEXT();
        HCASE(FCmpDOGt) SC_FCMPD_BODY(a > b) NEXT();
        HCASE(FCmpDOGe) SC_FCMPD_BODY(a >= b) NEXT();
        HCASE(FCmpSOEq) SC_FCMPS_BODY(a == b) NEXT();
        HCASE(FCmpSONe) SC_FCMPS_BODY(a == a && b == b && a != b) NEXT();
        HCASE(FCmpSOLt) SC_FCMPS_BODY(a < b) NEXT();
        HCASE(FCmpSOLe) SC_FCMPS_BODY(a <= b) NEXT();
        HCASE(FCmpSOGt) SC_FCMPS_BODY(a > b) NEXT();
        HCASE(FCmpSOGe) SC_FCMPS_BODY(a >= b) NEXT();

        // ---- casts -------------------------------------------------
        HCASE(Trunc)
        {
            --remaining;
            WR(truncBits(RD(t->a), t->width));
            ++ip;
        }
        NEXT();
        HCASE(Move)
        {
            --remaining;
            WR(RD(t->a));
            ++ip;
        }
        NEXT();
        HCASE(SExt)
        {
            --remaining;
            const int64_t v = signExtend(RD(t->a), t->srcBits);
            WR(truncBits(static_cast<uint64_t>(v), t->width));
            ++ip;
        }
        NEXT();
        HCASE(FPToSiD)
        {
            --remaining;
            WR(truncBits(static_cast<uint64_t>(
                             fpToSiSat(asF64(RD(t->a)), t->width)),
                         t->width));
            ++ip;
        }
        NEXT();
        HCASE(FPToSiS)
        {
            --remaining;
            WR(truncBits(static_cast<uint64_t>(
                             fpToSiSat(asF32(RD(t->a)), t->width)),
                         t->width));
            ++ip;
        }
        NEXT();
        HCASE(SIToFPD)
        {
            --remaining;
            WR(fromF64(static_cast<double>(
                signExtend(RD(t->a), t->srcBits))));
            ++ip;
        }
        NEXT();
        HCASE(SIToFPS)
        {
            --remaining;
            WR(fromF32(static_cast<float>(
                signExtend(RD(t->a), t->srcBits))));
            ++ip;
        }
        NEXT();
        HCASE(FPTrunc)
        {
            --remaining;
            WR(fromF32(static_cast<float>(asF64(RD(t->a)))));
            ++ip;
        }
        NEXT();
        HCASE(FPExt)
        {
            --remaining;
            WR(fromF64(static_cast<double>(asF32(RD(t->a)))));
            ++ip;
        }
        NEXT();

        // ---- memory ------------------------------------------------
        HCASE(Load)
        {
            --remaining;
            const uint64_t addr = RD(t->a);
            cost.onMemAccess(addr);
            uint64_t v = 0;
            if (!mem.read(addr, t->elemSize, v))
                TRAP_EXIT(TrapKind::OutOfBounds);
            WR(v);
            ++ip;
        }
        NEXT();
        HCASE(Store)
        {
            --remaining;
            const uint64_t v = RD(t->a);
            const uint64_t addr = RD(t->b);
            cost.onMemAccess(addr);
            if (!mem.write(addr, t->elemSize, v))
                TRAP_EXIT(TrapKind::OutOfBounds);
            ++ip;
        }
        NEXT();
        HCASE(Gep)
        {
            --remaining;
            const uint64_t base = RD(t->a);
            const int64_t idx = static_cast<int64_t>(RD(t->b));
            WR(base + static_cast<uint64_t>(idx) * t->elemSize);
            ++ip;
        }
        NEXT();
        HCASE(Alloca)
        {
            --remaining;
            const uint64_t count = RD(t->a);
            const uint64_t bytes = count * t->elemSize;
            if (bytes == 0 || bytes > (1ULL << 30))
                TRAP_EXIT(TrapKind::OutOfBounds);
            const uint64_t base = mem.alloc(bytes);
            fr->allocaBases.push_back(base);
            WR(base);
            ++ip;
        }
        NEXT();
        HCASE(GlobalAddr)
        {
            --remaining;
            WR(globals[t->e0]);
            ++ip;
        }
        NEXT();

        // ---- control -----------------------------------------------
        HCASE(Br)
        {
            --remaining;
            APPLY_EDGE(t->e0);
        }
        NEXT();
        HCASE(CondBr)
        {
            --remaining;
            const bool taken = (RD(t->a) & 1) != 0;
            cost.onBranch(t->branchSite, taken);
            APPLY_EDGE(taken ? t->e0 : t->e1);
        }
        NEXT();
        HCASE(Select)
        {
            --remaining;
            WR((RD(t->a) & 1) ? RD(t->b) : RD(t->c));
            ++ip;
        }
        NEXT();
        HCASE(Call)
        {
            --remaining;
            if (stack.size() >= opts.maxCallDepth)
                TRAP_EXIT(TrapKind::StackOverflow);
            const uint32_t argc = t->e0;
            const int32_t *ap = tf->callArgs.data() + t->argsBegin;
            for (uint32_t k = 0; k < argc; ++k)
                call_buf[k] = RD(ap[k]);
            const int32_t call_dst = t->dst;
            const std::size_t callee =
                static_cast<std::size_t>(t->calleeIdx);
            fr->ip = ip + 1; // return continuation
            fr->curBlock = cur_block;
            pushExecFrame(stack, arena, em.function(callee), call_dst);
            LOAD_FRAME_CONTEXT();
            for (uint32_t k = 0; k < argc; ++k) {
                regs[k] = call_buf[k];
                fr->noteWrite(static_cast<int32_t>(k));
            }
        }
        NEXT();
        HCASE(Ret)
        {
            --remaining;
            const uint64_t v = t->e0 ? RD(t->a) : 0;
            for (uint64_t base : fr->allocaBases)
                mem.free(base);
            const int32_t ret_dst = fr->retDst;
            popExecFrame(stack, arena);
            if (stack.empty()) {
                SETTLE_COUNTS();
                return finish(Termination::Ok, TrapKind::None, -1, v);
            }
            LOAD_FRAME_CONTEXT();
            if (ret_dst >= 0) {
                regs[ret_dst] = v;
                fr->noteWrite(ret_dst);
            }
        }
        NEXT();

        // ---- math intrinsics ---------------------------------------
        HCASE(MathD)
        {
            --remaining;
            if (t->srcOp != Opcode::FAbs)
                cost.addStalls(math_stall);
            const double v = asF64(RD(t->a));
            double r;
            switch (t->srcOp) {
              case Opcode::Sqrt: r = std::sqrt(v); break;
              case Opcode::FAbs: r = std::fabs(v); break;
              case Opcode::Exp: r = std::exp(v); break;
              case Opcode::Log: r = std::log(v); break;
              case Opcode::Sin: r = std::sin(v); break;
              default: r = std::cos(v); break;
            }
            WR(fromF64(r));
            ++ip;
        }
        NEXT();
        HCASE(MathS)
        {
            --remaining;
            if (t->srcOp != Opcode::FAbs)
                cost.addStalls(math_stall);
            // Math in double on the promoted f32, then narrow — the
            // interpreter's apply() takes double.
            const double v = asF32(RD(t->a));
            double r;
            switch (t->srcOp) {
              case Opcode::Sqrt: r = std::sqrt(v); break;
              case Opcode::FAbs: r = std::fabs(v); break;
              case Opcode::Exp: r = std::exp(v); break;
              case Opcode::Log: r = std::log(v); break;
              case Opcode::Sin: r = std::sin(v); break;
              default: r = std::cos(v); break;
            }
            WR(fromF32(static_cast<float>(r)));
            ++ip;
        }
        NEXT();
        HCASE(FMinD)
        {
            --remaining;
            WR(fromF64(std::fmin(asF64(RD(t->a)), asF64(RD(t->b)))));
            ++ip;
        }
        NEXT();
        HCASE(FMaxD)
        {
            --remaining;
            WR(fromF64(std::fmax(asF64(RD(t->a)), asF64(RD(t->b)))));
            ++ip;
        }
        NEXT();
        HCASE(FMinS)
        {
            --remaining;
            WR(fromF32(std::fminf(asF32(RD(t->a)), asF32(RD(t->b)))));
            ++ip;
        }
        NEXT();
        HCASE(FMaxS)
        {
            --remaining;
            WR(fromF32(std::fmaxf(asF32(RD(t->a)), asF32(RD(t->b)))));
            ++ip;
        }
        NEXT();

        // ---- hardening checks --------------------------------------
        HCASE(CheckElided)
        {
            --remaining;
            ++ip;
        }
        NEXT();
        HCASE(CheckEq2)
        {
            --remaining;
            ++check_evals;
            if (RD(t->a) != RD(t->b))
                CHECK_FAIL_EXIT(t->checkId);
            ++ip;
        }
        NEXT();
        HCASE(CheckTwo)
        {
            --remaining;
            ++check_evals;
            const uint64_t v = RD(t->a);
            if (v != RD(t->b) && v != RD(t->c))
                CHECK_FAIL_EXIT(t->checkId);
            ++ip;
        }
        NEXT();
        HCASE(CheckRangeD)
        {
            --remaining;
            ++check_evals;
            const double v = asF64(RD(t->a));
            if (!(v >= asF64(RD(t->b)) && v <= asF64(RD(t->c))))
                CHECK_FAIL_EXIT(t->checkId);
            ++ip;
        }
        NEXT();
        HCASE(CheckRangeS)
        {
            --remaining;
            ++check_evals;
            const float v = asF32(RD(t->a));
            if (!(v >= asF32(RD(t->b)) && v <= asF32(RD(t->c))))
                CHECK_FAIL_EXIT(t->checkId);
            ++ip;
        }
        NEXT();
        HCASE(CheckRangeI)
        {
            --remaining;
            ++check_evals;
            const int64_t v = signExtend(RD(t->a), t->width);
            if (!(v >= signExtend(RD(t->b), t->width) &&
                  v <= signExtend(RD(t->c), t->width)))
                CHECK_FAIL_EXIT(t->checkId);
            ++ip;
        }
        NEXT();

        // ---- superinstructions -------------------------------------
        HCASE(CmpBrEq) SC_CMPBR_BODY(ua == ub) NEXT();
        HCASE(CmpBrNe) SC_CMPBR_BODY(ua != ub) NEXT();
        HCASE(CmpBrSlt) SC_CMPBR_BODY(sa < sb) NEXT();
        HCASE(CmpBrSle) SC_CMPBR_BODY(sa <= sb) NEXT();
        HCASE(CmpBrSgt) SC_CMPBR_BODY(sa > sb) NEXT();
        HCASE(CmpBrSge) SC_CMPBR_BODY(sa >= sb) NEXT();
        HCASE(CmpBrUlt) SC_CMPBR_BODY(ua < ub) NEXT();
        HCASE(CmpBrUle) SC_CMPBR_BODY(ua <= ub) NEXT();
        HCASE(CmpBrUgt) SC_CMPBR_BODY(ua > ub) NEXT();
        HCASE(CmpBrUge) SC_CMPBR_BODY(ua >= ub) NEXT();

        HCASE(GepLoad)
        {
            remaining -= 2;
            const TInst *u = t + 1;
            const uint64_t addr =
                RD(t->a) +
                static_cast<uint64_t>(static_cast<int64_t>(RD(t->b))) *
                    t->elemSize;
            WR(addr);
            cost.onMemAccess(addr);
            uint64_t v = 0;
            if (!mem.read(addr, u->elemSize, v)) {
                ++ip; // the load half is the trapping instruction
                TRAP_EXIT(TrapKind::OutOfBounds);
            }
            regs[u->dst] = v;
            fr->noteWrite(u->dst);
            ip += 2;
        }
        NEXT();
        HCASE(GepStore)
        {
            remaining -= 2;
            const TInst *u = t + 1;
            const uint64_t addr =
                RD(t->a) +
                static_cast<uint64_t>(static_cast<int64_t>(RD(t->b))) *
                    t->elemSize;
            WR(addr);
            const uint64_t v = RD(u->a);
            cost.onMemAccess(addr);
            if (!mem.write(addr, u->elemSize, v)) {
                ++ip; // the store half is the trapping instruction
                TRAP_EXIT(TrapKind::OutOfBounds);
            }
            ip += 2;
        }
        NEXT();

#if !SOFTCHECK_CGOTO
            }
        }
#endif

    L_horizon:
        SYNC_FRAME();
        SETTLE_COUNTS();
    }
}

#undef RD
#undef WR
#undef SYNC_FRAME
#undef SETTLE_COUNTS
#undef TRAP_EXIT
#undef CHECK_FAIL_EXIT
#undef LOAD_FRAME_CONTEXT
#undef APPLY_EDGE
#undef HCASE
#undef NEXT
#if SOFTCHECK_CGOTO
#undef DISPATCH
#endif
#undef SC_ICMP_BODY
#undef SC_FCMPD_BODY
#undef SC_FCMPS_BODY
#undef SC_CMPBR_BODY

} // namespace softcheck
