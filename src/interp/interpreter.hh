/**
 * @file
 * The IR interpreter: SoftCheck's stand-in for the paper's gem5
 * simulation substrate. Executes an ExecModule against a Memory with
 * - a deterministic cost model (CostModel, Table II parameters),
 * - value-profiling hooks (ProfileSink),
 * - single-bit-flip fault injection into live virtual registers, and
 * - runtime-check semantics for the hardening passes' check intrinsics.
 */

#ifndef SOFTCHECK_INTERP_INTERPRETER_HH
#define SOFTCHECK_INTERP_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "interp/cost_model.hh"
#include "interp/exec_module.hh"
#include "interp/memory.hh"
#include "support/rng.hh"

namespace softcheck
{

/** Receiver of value-profiling samples (implemented in src/profile). */
class ProfileSink
{
  public:
    virtual ~ProfileSink() = default;
    /** @param site profiling site id, @param value sample (ints are
     * sign-extended to double; floats pass through). */
    virtual void record(int site, double value) = 0;
};

/** Why a run stopped. */
enum class Termination : uint8_t
{
    Ok,          //!< returned from the entry function
    Trap,        //!< hardware-visible symptom (see TrapKind)
    CheckFailed, //!< a software check fired (CheckMode::Halt)
    Timeout,     //!< dynamic-instruction budget exhausted
};

enum class TrapKind : uint8_t
{
    None,
    OutOfBounds, //!< load/store outside any live region
    DivByZero,
    StackOverflow,
};

/** What to do when a check intrinsic fails. */
enum class CheckMode : uint8_t
{
    Halt,   //!< stop the run (fault-detection semantics)
    Record, //!< count per-check failures and continue (calibration)
};

/** Description of a single injected bit flip. */
struct FaultOutcome
{
    bool injected = false;
    int32_t slot = -1;
    TypeKind slotType = TypeKind::Void;
    unsigned bit = 0;
    uint64_t before = 0;
    uint64_t after = 0;
    uint64_t atDynInstr = 0;
    uint64_t atCycle = 0;
};

struct RunResult
{
    Termination term = Termination::Ok;
    TrapKind trap = TrapKind::None;
    int failedCheckId = -1;
    uint64_t retValue = 0;
    uint64_t dynInstrs = 0;
    uint64_t cycles = 0;
    uint64_t endCycle = 0;      //!< cycle count at termination
    uint64_t cacheMisses = 0;
    uint64_t branchMispredicts = 0;
    FaultOutcome fault;

    bool ok() const { return term == Termination::Ok; }
};

/** Per-run execution options. */
struct ExecOptions
{
    /** Stop after this many dynamic instructions (Failure/infinite-loop
     * model). */
    uint64_t maxDynInstrs = 400'000'000;

    /** Cost-model parameters (Table II). */
    CostConfig cost;

    /** Check semantics. */
    CheckMode checkMode = CheckMode::Halt;

    /** Checks to ignore (indexed by check id); may be null. The paper's
     * recover-once-then-ignore rule for persistent false positives. */
    const std::vector<uint8_t> *disabledChecks = nullptr;

    /** When in CheckMode::Record, failure counts per check id are
     * accumulated here (must be pre-sized); may be null. */
    std::vector<uint64_t> *checkFailCounts = nullptr;

    /** Value-profiling sink; may be null. */
    ProfileSink *profiler = nullptr;

    /** Inject a bit flip just before this dynamic instruction index
     * (disabled when nullopt). */
    std::optional<uint64_t> faultAtDynInstr;

    /** RNG for the register/bit choice; required when injecting. */
    Rng *faultRng = nullptr;

    /** Maximum call depth before StackOverflow. */
    unsigned maxCallDepth = 256;
};

class Interpreter
{
  public:
    Interpreter(const ExecModule &em, Memory &mem);

    /**
     * Run @p fn_index with the given raw argument values (one per
     * formal; floats as bit patterns).
     */
    RunResult run(std::size_t fn_index,
                  const std::vector<uint64_t> &args,
                  const ExecOptions &opts);

  private:
    struct Frame
    {
        const ExecFunction *fn;
        std::vector<uint64_t> regs;
        /**
         * Ring of recently written register slots (with repetition).
         * Fault injection draws its target from here: a random recent
         * destination approximates picking a live physical register,
         * and repetition weights hot registers the way an in-flight
         * window does.
         */
        static constexpr unsigned kRecentRing = 64;
        std::array<int32_t, kRecentRing> recent;
        uint32_t recentCount = 0;
        uint32_t recentPos = 0;
        std::vector<uint64_t> allocaBases;
        uint32_t ip = 0;
        uint32_t curBlock = 0;
        int32_t retDst = -1;

        void
        noteWrite(int32_t slot)
        {
            recent[recentPos] = slot;
            recentPos = (recentPos + 1) % kRecentRing;
            if (recentCount < kRecentRing)
                ++recentCount;
        }
    };

    const ExecModule &em;
    Memory &mem;
};

} // namespace softcheck

#endif // SOFTCHECK_INTERP_INTERPRETER_HH
