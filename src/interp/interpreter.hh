/**
 * @file
 * The IR interpreter: SoftCheck's stand-in for the paper's gem5
 * simulation substrate. Executes an ExecModule against a Memory with
 * - a deterministic cost model (CostModel, Table II parameters),
 * - value-profiling hooks (ProfileSink),
 * - single-bit-flip fault injection into live virtual registers,
 * - runtime-check semantics for the hardening passes' check intrinsics,
 * - and snapshotable execution state (ExecState/Snapshot) so SFI
 *   campaigns can fast-forward trials from checkpoints instead of
 *   replaying the fault-free prefix from dynamic instruction 0.
 */

#ifndef SOFTCHECK_INTERP_INTERPRETER_HH
#define SOFTCHECK_INTERP_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "interp/cost_model.hh"
#include "interp/exec_module.hh"
#include "interp/memory.hh"
#include "support/rng.hh"

namespace softcheck
{

/** Receiver of value-profiling samples (implemented in src/profile). */
class ProfileSink
{
  public:
    virtual ~ProfileSink() = default;
    /** @param site profiling site id, @param value sample (ints are
     * sign-extended to double; floats pass through). */
    virtual void record(int site, double value) = 0;
};

/** Why a run stopped. */
enum class Termination : uint8_t
{
    Ok,          //!< returned from the entry function
    Trap,        //!< hardware-visible symptom (see TrapKind)
    CheckFailed, //!< a software check fired (CheckMode::Halt)
    Timeout,     //!< dynamic-instruction budget exhausted
};

enum class TrapKind : uint8_t
{
    None,
    OutOfBounds, //!< load/store outside any live region
    DivByZero,
    StackOverflow,
};

/** What to do when a check intrinsic fails. */
enum class CheckMode : uint8_t
{
    Halt,   //!< stop the run (fault-detection semantics)
    Record, //!< count per-check failures and continue (calibration)
};

/** Description of a single injected bit flip. */
struct FaultOutcome
{
    bool injected = false;
    int32_t slot = -1;
    TypeKind slotType = TypeKind::Void;
    unsigned bit = 0;
    uint64_t before = 0;
    uint64_t after = 0;
    uint64_t atDynInstr = 0;
    uint64_t atCycle = 0;
};

struct RunResult
{
    Termination term = Termination::Ok;
    TrapKind trap = TrapKind::None;
    int failedCheckId = -1;
    uint64_t retValue = 0;
    uint64_t dynInstrs = 0;
    uint64_t cycles = 0;
    uint64_t endCycle = 0;      //!< cycle count at termination
    uint64_t cacheMisses = 0;
    uint64_t branchMispredicts = 0;
    /** Check comparisons actually evaluated during this resume();
     * elided (vacuous) checks are fetched and costed but not counted
     * here. A run() from the entry covers the whole execution. */
    uint64_t checkEvals = 0;
    /** True when the run was cut short because its entire execution
     * state re-converged with the fault-free golden run at a snapshot
     * boundary (see ExecOptions::goldenSnapshots). All other fields are
     * the golden run's final values, which determinism guarantees the
     * full replay would have reproduced bit-for-bit. */
    bool prunedToGolden = false;
    FaultOutcome fault;

    bool ok() const { return term == Termination::Ok; }
};

/** One call frame of interpreter state. */
struct ExecFrame
{
    const ExecFunction *fn = nullptr;
    std::vector<uint64_t> regs;
    /**
     * Ring of recently written register slots (with repetition).
     * Fault injection draws its target from here: a random recent
     * destination approximates picking a live physical register,
     * and repetition weights hot registers the way an in-flight
     * window does.
     */
    static constexpr unsigned kRecentRing = 64;
    std::array<int32_t, kRecentRing> recent{};
    uint32_t recentCount = 0;
    uint32_t recentPos = 0;
    std::vector<uint64_t> allocaBases;
    uint32_t ip = 0;
    uint32_t curBlock = 0;
    int32_t retDst = -1;

    void
    noteWrite(int32_t slot)
    {
        static_assert((kRecentRing & (kRecentRing - 1)) == 0,
                      "ring index reduction relies on a power of two");
        recent[recentPos] = slot;
        recentPos = (recentPos + 1) & (kRecentRing - 1);
        if (recentCount < kRecentRing)
            ++recentCount;
    }
};

/**
 * Pool of retired ExecFrames. Pushing a frame through an arena reuses a
 * retired frame's register and alloca storage instead of allocating
 * fresh vectors per call. Deliberately not part of ExecState: snapshots
 * must not deep-copy a recycling pool, and the pool's contents never
 * influence execution (every recycled field is reset on push; ring
 * entries beyond recentCount are never read).
 */
struct FrameArena
{
    std::vector<ExecFrame> spare;
};

/** Push a frame for @p fn onto @p stack, recycling storage from
 * @p arena. Registers are zeroed, the recent-write ring is emptied, and
 * ip/curBlock point at the function entry. */
void pushExecFrame(std::vector<ExecFrame> &stack, FrameArena &arena,
                   const ExecFunction &fn, int32_t ret_dst);

/** Pop the top frame of @p stack into @p arena for reuse. */
void popExecFrame(std::vector<ExecFrame> &stack, FrameArena &arena);

/**
 * Everything Interpreter::resume mutates except the bound Memory: the
 * call stack (register files, recent-write rings, alloca bases),
 * materialized global bases, the dynamic-instruction count, and the
 * full cost-model state (cycles, cache tags, branch counters).
 * Copyable; a copy plus a Memory copy is a complete checkpoint.
 */
struct ExecState
{
    std::vector<ExecFrame> stack;
    std::vector<uint64_t> globalBases;
    uint64_t dynCount = 0;
    CostModel cost;
};

/**
 * A resumable point of a deterministic run: execution state plus the
 * bound Memory's contents at that dynamic instruction.
 *
 * Saving shares the Memory's pages copy-on-write (see memory.hh), so a
 * snapshot's incremental footprint is only the pages dirtied since the
 * previous share point — K can grow into the hundreds without the
 * campaign becoming memory-bound.
 */
struct Snapshot
{
    ExecState state;
    Memory mem;

    uint64_t dynInstr() const { return state.dynCount; }

    /** Capture @p st and @p m. The ExecState is a deep copy; the
     * Memory shares pages copy-on-write (O(pages), no byte copies). */
    static Snapshot save(const ExecState &st, const Memory &m);

    /** Restore this snapshot into @p st and @p m, reusing their
     * existing buffers where possible; the Memory side re-shares this
     * snapshot's pages, touching only references that diverged
     * (O(pages dirtied since the fork)). */
    void restore(ExecState &st, Memory &m) const;

    /**
     * Account this snapshot's memory pages against @p seen and return
     * the bytes contributed by pages no earlier-accounted snapshot
     * already holds — the true resident cost of keeping it.
     */
    uint64_t
    residentPageBytes(std::unordered_set<const void *> &seen) const
    {
        return mem.accountPages(seen);
    }

    /**
     * True when a trial's state matches this (golden) snapshot in every
     * observable that can influence the rest of the run or its final
     * classification: frames (function, ip, block, registers, alloca
     * bases, return slot), global bases, dynamic-instruction count,
     * complete cost-model state, and memory contents. Pages the trial
     * still shares with the golden run compare by identity, so the
     * memory part costs O(pages dirtied since the trial forked), not
     * O(footprint) — cheap enough to test at every boundary even with
     * hundreds of checkpoints. The recent-write
     * rings are deliberately excluded — they only feed fault-site
     * selection, and convergence is only tested after the trial's
     * single fault has already been injected.
     */
    bool convergedWith(const ExecState &st, const Memory &m) const;
};

/**
 * Index of the first snapshot of @p snaps (sorted by strictly
 * increasing dynInstr()) past dynamic instruction @p dyn — snaps.size()
 * when none is. The shared schedule lookup of every engine's
 * golden-compare arming and of trial fast-forwarding: the snapshot a
 * trial resumes from is the one *before* this index.
 */
inline std::size_t
firstSnapshotAfter(const std::vector<Snapshot> &snaps, uint64_t dyn)
{
    std::size_t lo = 0, hi = snaps.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (snaps[mid].dynInstr() > dyn)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

/**
 * Which execution engine runs dynamic instructions. The interpreter is
 * the reference tier; the direct-threaded tier (threaded_exec.hh) is a
 * bit-identical fast path for campaign trials. Profiling runs always
 * use the interpreter (the threaded tier has no profiling hooks).
 */
enum class ExecTier : uint8_t
{
    Interp,   //!< reference switch-dispatch interpreter
    Threaded, //!< direct-threaded decoded-stream tier
    Lockstep, //!< SoA lane groups over the decoded stream
              //!< (lockstep_exec.hh); scalar tiers finish peeled lanes
};

const char *execTierName(ExecTier t);

/**
 * Dynamic opcode-mix histogram (ExecOptions::dynMix, interpreter only):
 * per-opcode dynamic counts plus counts of adjacent same-function
 * fetch pairs (instruction at ip followed by ip+1 — the only shape a
 * superinstruction can fuse). Feeds `softcheck-lint --dyn-opcode-mix`,
 * which justifies and tunes the threaded tier's fusion set.
 */
struct DynMixSink
{
    std::array<uint64_t, kNumIrOpcodes> opcodeCounts{};
    /** pairCounts[prev * kNumIrOpcodes + cur], fallthrough pairs only. */
    std::vector<uint64_t> pairCounts =
        std::vector<uint64_t>(std::size_t{kNumIrOpcodes} * kNumIrOpcodes,
                              0);
    uint64_t total = 0;

    void
    note(const void *fn, uint32_t ip, Opcode op)
    {
        ++total;
        ++opcodeCounts[static_cast<unsigned>(op)];
        if (fn == prevFn && ip == prevIp + 1)
            ++pairCounts[static_cast<unsigned>(prevOp) * kNumIrOpcodes +
                         static_cast<unsigned>(op)];
        prevFn = fn;
        prevIp = ip;
        prevOp = op;
    }

  private:
    const void *prevFn = nullptr;
    uint32_t prevIp = ~0u - 1;
    Opcode prevOp = Opcode::Ret;
};

/**
 * Observer of the interpreter's fault-site-relevant events
 * (ExecOptions::siteObserver, interpreter only). The stratified
 * campaign planner replays the golden run once under this hook set to
 * resolve injection draws without executing trials: atLoopTop fires at
 * the top of the dispatch loop with st.dynCount = the dynamic index of
 * the instruction about to execute (the exact point faults inject and
 * checkpoints capture); onRead/onWrite fire for every register-slot
 * access of the executing instruction, before the frame's
 * recent-write ring advances (st.dynCount is then already past the
 * instruction). Frame pushes/pops are not separate events — observers
 * resynchronise against st.stack inside each hook.
 */
class FaultSiteObserver
{
  public:
    virtual ~FaultSiteObserver() = default;
    virtual void atLoopTop(const ExecState &st) = 0;
    virtual void onRead(const ExecState &st, int32_t slot) = 0;
    virtual void onWrite(const ExecState &st, int32_t slot) = 0;
};

/** Per-run execution options. */
struct ExecOptions
{
    /** Stop after this many dynamic instructions (Failure/infinite-loop
     * model). */
    uint64_t maxDynInstrs = 400'000'000;

    /** Cost-model parameters (Table II). */
    CostConfig cost;

    /** Check semantics. */
    CheckMode checkMode = CheckMode::Halt;

    /** Checks to ignore (indexed by check id); may be null. The paper's
     * recover-once-then-ignore rule for persistent false positives. */
    const std::vector<uint8_t> *disabledChecks = nullptr;

    /** When in CheckMode::Record, failure counts per check id are
     * accumulated here (must be pre-sized); may be null. */
    std::vector<uint64_t> *checkFailCounts = nullptr;

    /** Value-profiling sink; may be null. */
    ProfileSink *profiler = nullptr;

    /** Inject a bit flip just before this dynamic instruction index
     * (disabled when nullopt). */
    std::optional<uint64_t> faultAtDynInstr;

    /** RNG for the register/bit choice; required when injecting. */
    Rng *faultRng = nullptr;

    /** Maximum call depth before StackOverflow. */
    unsigned maxCallDepth = 256;

    /** Record a Snapshot into @p checkpointSink every @p
     * checkpointEvery dynamic instructions (0 = off). Recording is
     * open-ended — it follows the run however long it gets, which is
     * what lets a campaign profile candidate points past the baseline
     * length estimate. Snapshots are taken at the top of the dispatch
     * loop, before the instruction at that dynamic index executes.
     * Mutually exclusive with @p checkpointSchedule. */
    uint64_t checkpointEvery = 0;

    /** Record a Snapshot at exactly these dynamic instructions
     * (sorted, strictly increasing; entries at or before the resumed
     * state's dynCount are skipped). Same loop-top capture point as
     * checkpointEvery; null = off. */
    const std::vector<uint64_t> *checkpointSchedule = nullptr;
    std::vector<Snapshot> *checkpointSink = nullptr;

    /**
     * Golden-convergence pruning: snapshots of the fault-free run,
     * sorted by strictly increasing dynInstr() — the schedule of
     * compare points is the snapshots' own dynamic-instruction
     * indices, so any placement (uniform stride or cost-aware) works
     * unchanged. After the fault is injected, the run is compared
     * against each snapshot past the injection point as it reaches
     * that boundary; on full state convergence it terminates early
     * with @p goldenResult (plus this trial's FaultOutcome) and
     * RunResult::prunedToGolden set. Both fields must be set together;
     * determinism makes the early result bit-identical to a full
     * replay.
     */
    const std::vector<Snapshot> *goldenSnapshots = nullptr;
    const RunResult *goldenResult = nullptr;

    /**
     * Requested execution tier. Engines don't dispatch on this
     * themselves — tier-aware callers (the campaign engine, benches)
     * pick the engine and pass the options through; both tiers honor
     * every other field identically.
     */
    ExecTier tier = ExecTier::Interp;

    /** Dynamic opcode-mix sink (interpreter only); null = off. */
    DynMixSink *dynMix = nullptr;

    /** Fault-site event observer (interpreter only); null = off. */
    FaultSiteObserver *siteObserver = nullptr;
};

class Interpreter
{
  public:
    Interpreter(const ExecModule &em, Memory &mem);

    /**
     * Run @p fn_index with the given raw argument values (one per
     * formal; floats as bit patterns). Equivalent to begin() + resume().
     */
    RunResult run(std::size_t fn_index,
                  const std::vector<uint64_t> &args,
                  const ExecOptions &opts);

    /**
     * Reset @p st to the entry state for @p fn_index: pushes the entry
     * frame, copies the arguments, and materializes module globals into
     * the bound Memory (which must not already hold them).
     */
    void begin(ExecState &st, std::size_t fn_index,
               const std::vector<uint64_t> &args,
               const CostConfig &cost_cfg);

    /**
     * Execute from @p st (fresh from begin() or restored from a
     * Snapshot) until termination. @p st is mutated in place and holds
     * the final state afterwards.
     */
    RunResult resume(ExecState &st, const ExecOptions &opts);

  private:
    const ExecModule &em;
    Memory &mem;
    FrameArena arena;
};

/**
 * Shared begin() used by both execution tiers: reset @p st to the entry
 * state of @p fn_index (entry frame pushed through @p arena, arguments
 * copied with recent-write notes) and materialize module globals into
 * @p mem (which must not already hold them).
 */
void beginExec(const ExecModule &em, Memory &mem, ExecState &st,
               std::size_t fn_index, const std::vector<uint64_t> &args,
               const CostConfig &cost_cfg, FrameArena &arena);

} // namespace softcheck

#endif // SOFTCHECK_INTERP_INTERPRETER_HH
