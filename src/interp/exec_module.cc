#include "interp/exec_module.hh"

#include <bit>

#include "support/error.hh"

namespace softcheck
{

namespace
{

OpRef
makeOpRef(const Value *v)
{
    switch (v->kind()) {
      case Value::Kind::ConstantInt: {
        const auto *c = static_cast<const ConstantInt *>(v);
        return {-1, c->rawValue()};
      }
      case Value::Kind::ConstantFloat: {
        const auto *c = static_cast<const ConstantFloat *>(v);
        if (c->type().kind() == TypeKind::F32) {
            const float f = static_cast<float>(c->value());
            return {-1, std::bit_cast<uint32_t>(f)};
        }
        return {-1, std::bit_cast<uint64_t>(c->value())};
      }
      default:
        scAssert(v->slot() >= 0, "operand without register slot");
        return {v->slot(), 0};
    }
}

} // namespace

ExecModule::ExecModule(Module &m)
{
    m.renumberAll();
    for (const GlobalVariable *g : m.globals())
        globalList.push_back(g);
    fns.resize(m.functions().size());
    for (std::size_t i = 0; i < m.functions().size(); ++i)
        indexByName[m.functions()[i]->name()] = i;
    for (std::size_t i = 0; i < m.functions().size(); ++i)
        buildFunction(m, *m.functions()[i], fns[i]);
}

std::size_t
ExecModule::functionIndex(const std::string &nm) const
{
    auto it = indexByName.find(nm);
    if (it == indexByName.end())
        scFatal("no function named '", nm, "'");
    return it->second;
}

void
ExecModule::buildFunction(Module &m, const Function &fn, ExecFunction &out)
{
    out.src = &fn;
    out.numSlots = fn.numSlots();
    out.numArgs = static_cast<uint32_t>(fn.numArgs());
    out.retTy = fn.returnType().kind();

    out.slotTypes.assign(out.numSlots, TypeKind::Void);
    for (std::size_t i = 0; i < fn.numArgs(); ++i)
        out.slotTypes[static_cast<std::size_t>(fn.arg(i)->slot())] =
            fn.arg(i)->type().kind();

    // Block numbering in layout order.
    std::map<const BasicBlock *, uint32_t> blockIdx;
    uint32_t bi = 0;
    for (const auto &bb : fn)
        blockIdx[bb.get()] = bi++;
    out.blocks.resize(bi);

    // First pass: emit non-phi instructions and record slot types.
    bi = 0;
    for (const auto &bb : fn) {
        ExecBlock &eb = out.blocks[bi];
        bool in_phi_prefix = true;
        eb.first = static_cast<uint32_t>(out.code.size());
        for (const auto &inst_ptr : *bb) {
            const Instruction *inst = inst_ptr.get();
            if (inst->slot() >= 0)
                out.slotTypes[static_cast<std::size_t>(inst->slot())] =
                    inst->type().kind();
            if (inst->opcode() == Opcode::Phi) {
                scAssert(in_phi_prefix, "phi after non-phi");
                continue;
            }
            in_phi_prefix = false;

            ExecInst ei;
            ei.op = inst->opcode();
            ei.pred = inst->predicate();
            ei.dst = inst->slot();
            ei.checkId = inst->checkId();
            ei.profileId = inst->profileId();
            ei.elided = inst->isElided();
            ei.srcInst = inst;

            if (ei.checkId >= 0)
                checkIdCount = std::max(checkIdCount,
                                        unsigned(ei.checkId) + 1);
            if (ei.profileId >= 0)
                profileSiteCount = std::max(profileSiteCount,
                                            unsigned(ei.profileId) + 1);

            // Operative type: operand type for compares / stores /
            // checks / ret; result type otherwise. Casts carry their
            // source kind in elemSize (the field is unused for them).
            if (inst->numOperands() > 0 &&
                (ei.op == Opcode::ICmp || ei.op == Opcode::FCmp ||
                 ei.op == Opcode::Store || isCheck(ei.op) ||
                 ei.op == Opcode::Ret)) {
                ei.ty = inst->operand(0)->type().kind();
            } else {
                ei.ty = inst->type().kind();
            }
            if (isCast(ei.op)) {
                ei.elemSize =
                    static_cast<uint32_t>(inst->operand(0)->type().kind());
            }

            if (ei.op == Opcode::Load || ei.op == Opcode::Store ||
                ei.op == Opcode::Gep || ei.op == Opcode::Alloca) {
                ei.elemSize = inst->elementType().storeSize();
                if (ei.op == Opcode::Load)
                    ei.ty = inst->elementType().kind();
                if (ei.op == Opcode::Store)
                    ei.ty = inst->operand(0)->type().kind();
            }

            if (ei.op == Opcode::GlobalAddr) {
                scAssert(inst->globalRef(), "globaladdr without global");
                ei.a = {-1, inst->globalRef()->index()};
            }

            const std::size_t n_ops = inst->numOperands();
            if (ei.op == Opcode::Call) {
                ei.calleeIdx = static_cast<int32_t>(
                    functionIndexOf(m, inst->callee()));
                ei.callArgs.reserve(n_ops);
                for (std::size_t i = 0; i < n_ops; ++i)
                    ei.callArgs.push_back(makeOpRef(inst->operand(i)));
            } else {
                if (n_ops > 0)
                    ei.a = makeOpRef(inst->operand(0));
                if (n_ops > 1)
                    ei.b = makeOpRef(inst->operand(1));
                if (n_ops > 2)
                    ei.c = makeOpRef(inst->operand(2));
                scAssert(n_ops <= 3, "instruction with >3 operands");
            }

            if (ei.op == Opcode::Br) {
                ei.t0 = blockIdx.at(inst->blockOperand(0));
            } else if (ei.op == Opcode::CondBr) {
                ei.t0 = blockIdx.at(inst->blockOperand(0));
                ei.t1 = blockIdx.at(inst->blockOperand(1));
                ei.branchSite = nextBranchSite++;
            }

            out.code.push_back(std::move(ei));
        }
        ++bi;
    }

    // Second pass: phi move batches per incoming edge.
    bi = 0;
    for (const auto &bb : fn) {
        ExecBlock &eb = out.blocks[bi];
        auto phis = bb->phis();
        if (!phis.empty()) {
            std::map<uint32_t, std::vector<PhiMove>> by_pred;
            for (const Instruction *phi : phis) {
                for (std::size_t i = 0; i < phi->numOperands(); ++i) {
                    const uint32_t pred_idx =
                        blockIdx.at(phi->incomingBlock(i));
                    by_pred[pred_idx].push_back(
                        {phi->slot(), makeOpRef(phi->operand(i))});
                }
            }
            for (auto &[pred_idx, moves] : by_pred)
                eb.phiIn.emplace_back(pred_idx, std::move(moves));
        }
        ++bi;
    }
}

std::size_t
ExecModule::functionIndexOf(const Module &m, const Function *fn) const
{
    for (std::size_t i = 0; i < m.functions().size(); ++i) {
        if (m.functions()[i] == fn)
            return i;
    }
    scPanic("callee not in module");
}

} // namespace softcheck
