/**
 * @file
 * Tier-3 lockstep-batched execution engine.
 *
 * The threaded tier (threaded_exec.hh) removed dispatch overhead; what
 * dominates a fault-injection trial now is the bit-exact
 * microarchitectural bookkeeping — L1-D tag LRU per memory access,
 * bimodal predictor per branch, recent-write ring per register write.
 * This tier amortizes the *fetch and decode of that bookkeeping*
 * across N trials: a lane group advances N faulted trials together
 * through one decoded ThreadedModule stream with structure-of-arrays
 * register files (`regs[slot * numCols + lane]`), per-lane CostModel
 * state side by side (the pure set/site index computation — see
 * CostModel::probeMemAccess/probeBranch — is shared, hit/miss and
 * predictor resolution stay per lane), and an active-lane set.
 *
 * Group life cycle:
 *
 *  - All lanes start identical at a shared checkpoint. A *stem* lane
 *    runs directly on the bound Memory and replays the shared
 *    fault-free prefix once for everybody; each trial lane forks off
 *    the stem at its injection point (column copy + COW memory fork +
 *    fault flip), at which point it starts paying per-lane cost. The
 *    stem is retired after the last fork. Whenever the stem is the
 *    only live column (before the first fork, and between fork
 *    clusters once every forked lane has retired), the group hands the
 *    stem to an embedded scalar ThreadedExec up to the next fork —
 *    width-1 lockstep would pay the SoA machinery for no sharing, and
 *    tier equivalence makes the scalar stretch bit-identical.
 *  - The group follows its leader's control path (the stem while it
 *    lives, else the lowest-index surviving lane). A lane whose
 *    conditional branch departs the leader's direction is *peeled*:
 *    its column is transposed back into a scalar ExecState + Memory
 *    and the caller finishes it on the scalar threaded tier. Lockstep
 *    is a pure fast path — peeling preserves bit-identity by
 *    construction.
 *  - Per-lane terminations (trap, check failure, golden-convergence
 *    pruning, entry return, timeout) retire just that lane; when one
 *    trial lane remains with no stem, it too is peeled (scalar
 *    execution is strictly cheaper than width-1 lockstep).
 *
 * Event boundaries (fault forks, golden compares, timeout) fire at
 * exactly the same dynamic instructions as the scalar tiers, in the
 * interpreter's loop-top order; the recent-write ring is maintained
 * once per group (lockstep lanes write the same destination sequence
 * by construction) and each lane's single fault has already been
 * injected by the time it can diverge, so a peeled lane's ring is
 * never consumed again.
 */

#ifndef SOFTCHECK_INTERP_LOCKSTEP_EXEC_HH
#define SOFTCHECK_INTERP_LOCKSTEP_EXEC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "interp/threaded_exec.hh"

namespace softcheck
{

/** Where a lane trial stands after LockstepExec::runGroup returns. */
enum class LaneStatus : uint8_t
{
    Pending, //!< not yet resolved (only observable mid-run)
    Done,    //!< result is final and bit-identical to a scalar trial
    Peeled,  //!< left the group; finish by resuming state/mem on a
             //!< scalar tier with faultAt re-armed and no fault RNG
};

/**
 * One trial of a lane group. The caller fills faultAt and rng (the
 * trial's private stream, already past its fault-site draw); the
 * engine fills the rest.
 */
struct LaneTrial
{
    // --- inputs ---
    uint64_t faultAt = 0; //!< inject before this dynamic instruction
    Rng rng{0};           //!< draws the slot and bit at injection

    // --- outputs ---
    LaneStatus status = LaneStatus::Pending;
    /** Done: the final scalar-identical result. */
    RunResult result;
    /** The injected fault (also in result.fault when Done). A peeled
     * lane's scalar result must adopt this fault verbatim. */
    FaultOutcome fault;
    /** Check comparisons evaluated up to the peel point; add to the
     * scalar resume's checkEvals unless it pruned to golden. */
    uint64_t checkEvalsAtPeel = 0;
    /** Peeled: scalar resume point (state + the lane's memory). The
     * memory is also valid for Done lanes that forked (signal
     * extraction after Termination::Ok); lanes resolved before their
     * fork (group timeout) never owned one. */
    ExecState state;
    Memory mem;
};

/**
 * The lane-group executor. Stateless between runGroup calls except for
 * recycled scratch storage and the cumulative occupancy counters, so
 * one engine per trial worker serves any number of groups.
 */
class LockstepExec
{
  public:
    /** Binds the decoded module and the stem memory (the campaign
     * worker's trial Memory, holding the restored checkpoint). */
    LockstepExec(const ThreadedModule &tmod, Memory &memory);

    /**
     * Advance every trial in @p trials from the shared state @p st /
     * bound Memory (a restored checkpoint at or before the earliest
     * faultAt, or a fresh begin()). Trials must be sorted by
     * (faultAt, index); @p st and the bound Memory are consumed.
     *
     * @p opts must carry trial-shape options only: no profiler, no
     * checkpointing, no dyn-mix sink, CheckMode::Halt, and no
     * faultAtDynInstr/faultRng (injection is per lane).
     *
     * When @p stemOut is non-null and the stem survives to the last
     * fork, the stem is exported there (the bound Memory is then the
     * stem's memory, untouched from that point on — forked lanes run
     * on their own COW forks) and runGroup returns true. Together they
     * form an exact fault-free resume point at the last injection
     * point: a caller working through faultAt-sorted groups can chain
     * the next group from it instead of rewinding to a checkpoint,
     * amortizing one golden replay over the whole sequence — provided
     * it defers anything that writes the bound Memory (peel resumes,
     * signal extraction) until the chain ends. @p stemOut may alias
     * @p st. Returns false (and leaves @p stemOut unspecified) when
     * the group times out before its last fork.
     */
    bool runGroup(ExecState &st, std::vector<LaneTrial> &trials,
                  const ExecOptions &opts, ExecState *stemOut = nullptr);

    /** Group instructions dispatched across all runGroup calls. */
    uint64_t fetches() const { return fetchCount; }

    /**
     * Trial-lanes' worth of useful work across all fetches: per group
     * instruction, the forked lanes still active plus the trials still
     * pending behind the stem (the stem's one execution serves all of
     * them). laneInstrsServed() / (fetches() * configured width) is
     * the honest lane occupancy.
     */
    uint64_t laneInstrsServed() const { return servedLanes; }

  private:
    /** One stack frame of the group: shared shape (fn/ip/block/ring),
     * SoA registers and per-column alloca bases. */
    struct SkFrame
    {
        const ExecFunction *fn = nullptr;
        const ThreadedFunction *tf = nullptr;
        uint32_t ip = 0;
        uint32_t curBlock = 0;
        int32_t retDst = -1;
        std::vector<uint64_t> regs; //!< numSlots x numCols, SoA
        std::array<int32_t, ExecFrame::kRecentRing> recent{};
        uint32_t recentCount = 0;
        uint32_t recentPos = 0;
        /** Per-column alloca bases (faulted lanes can diverge in
         * allocation history before they diverge in control flow). */
        std::vector<std::vector<uint64_t>> allocaBases;
    };

    /** One live column: the stem (trial == -1, memory == the bound
     * Memory) or a forked trial lane (its LaneTrial's memory). */
    struct LaneCtx
    {
        unsigned col = 0;
        int trial = -1;
        Memory *mem = nullptr;
        uint64_t checkEvals = 0;
        bool dead = false;
        CostModel cost;
        FaultOutcome fault;
    };

    const ThreadedModule &tm;
    const ExecModule &em;
    Memory &mem;
    /** Scalar engine over the same translation and memory, for
     * stem-only stretches (see the class comment). */
    ThreadedExec stemExec;
    ExecState stemScratch; //!< stem transpose target for the handoff

    std::vector<SkFrame> sk;      //!< group call stack
    std::vector<SkFrame> skSpare; //!< retired frames for reuse
    std::vector<LaneCtx> act;     //!< active columns, leader first
    std::vector<uint64_t> phiTmp;
    std::vector<uint64_t> callTmp;
    std::vector<uint64_t> laneVal;
    std::vector<uint8_t> laneOk;

    uint64_t fetchCount = 0;
    uint64_t servedLanes = 0;
};

} // namespace softcheck

#endif // SOFTCHECK_INTERP_LOCKSTEP_EXEC_HH
