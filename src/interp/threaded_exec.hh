/**
 * @file
 * Tier-2 direct-threaded execution engine.
 *
 * The interpreter (interpreter.cc) re-decodes every ExecInst on every
 * dynamic execution and tests every event condition (checkpoint, fault
 * injection, golden compare, timeout) per instruction. This tier
 * removes both costs while staying bit-identical:
 *
 *  - **Translation**: each ExecFunction is translated once into a
 *    ThreadedFunction — a TInst stream index-aligned 1:1 with
 *    ExecFunction::code (so frame ip values mean the same thing in
 *    both tiers and snapshots transfer unchanged). A TInst carries a
 *    pre-selected handler id, pre-resolved operands (register slot or
 *    per-function constant-pool index), pre-resolved branch edges with
 *    flattened phi-move spans, and flattened call argument lists.
 *
 *  - **Dispatch**: computed-goto direct threading where the compiler
 *    supports GNU address-of-label (`SOFTCHECK_CGOTO`), with a
 *    portable switch-in-loop fallback sharing the same handler bodies.
 *
 *  - **Superinstructions**: adjacent pairs that dominate the dynamic
 *    mix (see `softcheck-lint --dyn-opcode-mix`) fuse into one
 *    handler: ICmp+CondBr, Gep+Load, Gep+Store. The second TInst of a
 *    fused pair stays fully decoded — it is both the landing pad when
 *    an event horizon splits the pair (TInst::alt runs the unfused
 *    first half) and the source of the second half's fields.
 *
 *  - **Event-horizon batching**: the resume loop computes the next
 *    event's dynamic-instruction index (checkpoint, fault injection,
 *    golden compare, timeout) and runs an unchecked inner loop exactly
 *    to that horizon, counting instructions in a register and settling
 *    into ExecState::dynCount / CostModel at the boundary. Events
 *    therefore fire at exactly the same dynamic instructions as the
 *    interpreter, and ExecState / Snapshot / Memory are shared
 *    unchanged between tiers.
 *
 * The interpreter remains the reference tier and the only tier with
 * value-profiling hooks; ThreadedExec rejects options with a profiler.
 */

#ifndef SOFTCHECK_INTERP_THREADED_EXEC_HH
#define SOFTCHECK_INTERP_THREADED_EXEC_HH

#include <cstdint>
#include <vector>

#include "interp/interpreter.hh"

namespace softcheck
{

/**
 * Handler selectors for the decoded stream. X-macro so the enum, the
 * computed-goto label table, and the switch fallback stay in lockstep.
 * Predicate-specialized compare handlers avoid a per-execution
 * predicate switch; D/S suffixes split f64/f32 so handlers do no
 * per-execution type test.
 */
// clang-format off
#define SOFTCHECK_THANDLERS(X) \
    X(Add) X(Sub) X(Mul) X(SDiv) X(SRem) X(UDiv) X(URem) \
    X(And) X(Or) X(Xor) X(Shl) X(LShr) X(AShr) \
    X(FAddD) X(FSubD) X(FMulD) X(FDivD) \
    X(FAddS) X(FSubS) X(FMulS) X(FDivS) \
    X(ICmpEq) X(ICmpNe) X(ICmpSlt) X(ICmpSle) X(ICmpSgt) X(ICmpSge) \
    X(ICmpUlt) X(ICmpUle) X(ICmpUgt) X(ICmpUge) \
    X(FCmpDOEq) X(FCmpDONe) X(FCmpDOLt) X(FCmpDOLe) X(FCmpDOGt) \
    X(FCmpDOGe) \
    X(FCmpSOEq) X(FCmpSONe) X(FCmpSOLt) X(FCmpSOLe) X(FCmpSOGt) \
    X(FCmpSOGe) \
    X(Trunc) X(Move) X(SExt) X(FPToSiD) X(FPToSiS) \
    X(SIToFPD) X(SIToFPS) X(FPTrunc) X(FPExt) \
    X(Load) X(Store) X(Gep) X(Alloca) X(GlobalAddr) \
    X(Br) X(CondBr) X(Select) X(Call) X(Ret) \
    X(MathD) X(MathS) X(FMinD) X(FMaxD) X(FMinS) X(FMaxS) \
    X(CheckElided) X(CheckEq2) X(CheckTwo) \
    X(CheckRangeD) X(CheckRangeS) X(CheckRangeI) \
    X(CmpBrEq) X(CmpBrNe) X(CmpBrSlt) X(CmpBrSle) X(CmpBrSgt) \
    X(CmpBrSge) X(CmpBrUlt) X(CmpBrUle) X(CmpBrUgt) X(CmpBrUge) \
    X(GepLoad) X(GepStore)
// clang-format on

enum class THandler : uint8_t
{
#define SOFTCHECK_THANDLER_ENUM(n) n,
    SOFTCHECK_THANDLERS(SOFTCHECK_THANDLER_ENUM)
#undef SOFTCHECK_THANDLER_ENUM
};

/** One pre-resolved branch edge: target + its flattened phi moves
 * (span into ThreadedFunction::phiMoves). */
struct TEdge
{
    uint32_t targetBlock = 0;
    uint32_t targetIp = 0;
    uint32_t movesBegin = 0;
    uint32_t movesEnd = 0;
};

/** One phi-induced move; src uses TInst operand encoding. */
struct TPhiMove
{
    int32_t dst = 0;
    int32_t src = 0;
};

/**
 * Decoded instruction. Operands a/b/c (and TPhiMove::src,
 * ThreadedFunction::callArgs entries): value >= 0 is a register slot,
 * value < 0 is ~index into ThreadedFunction::consts.
 */
struct TInst
{
    uint8_t h = 0;       //!< THandler, possibly a fused pair handler
    uint8_t alt = 0;     //!< unfused handler, run when the event
                         //!< horizon leaves budget for only this instr
    uint8_t width = 0;   //!< result bit width
    uint8_t srcBits = 0; //!< cast source bit width
    Predicate pred = Predicate::None;
    TypeKind ty = TypeKind::Void;
    Opcode srcOp = Opcode::Ret; //!< original opcode (math sub-op, stats)
    uint8_t fused = 0;          //!< h consumes code[i + 1] too
    uint32_t elemSize = 0;
    int32_t dst = -1;
    int32_t a = 0, b = 0, c = 0;
    uint32_t e0 = 0, e1 = 0; //!< edge indices (Br/CondBr); global index
                             //!< (GlobalAddr); argc (Call); has-value
                             //!< flag (Ret)
    uint32_t branchSite = 0;
    int32_t checkId = -1;
    int32_t calleeIdx = -1;
    uint32_t argsBegin = 0; //!< span start in ThreadedFunction::callArgs
};

/** Translated form of one ExecFunction; code is index-aligned 1:1 with
 * src->code so ExecFrame::ip is tier-independent. */
struct ThreadedFunction
{
    const ExecFunction *src = nullptr;
    std::vector<TInst> code;
    std::vector<TEdge> edges;
    std::vector<TPhiMove> phiMoves;
    std::vector<uint64_t> consts;  //!< deduped operand constant pool
    std::vector<int32_t> callArgs; //!< flattened Call argument lists
};

/**
 * Translation of a whole ExecModule. Immutable after construction and
 * stateless at run time, so one ThreadedModule serves any number of
 * concurrent ThreadedExec engines (the campaign engine builds one per
 * PreparedModule and shares it across trial workers).
 */
class ThreadedModule
{
  public:
    explicit ThreadedModule(const ExecModule &em);

    const ThreadedFunction &
    function(std::size_t idx) const
    {
        return fns[idx];
    }

    const ExecModule &execModule() const { return *src; }

    /** Static superinstruction sites fused during translation. */
    uint64_t fusedPairs() const { return fused; }

    /** Largest phi-move span / call argument list in the module
     * (sizing for the executor's scratch buffers). */
    std::size_t maxPhiMoves() const { return maxMoves; }
    std::size_t maxCallArgs() const { return maxArgs; }

  private:
    void translate(const ExecFunction &fn, ThreadedFunction &out);

    const ExecModule *src;
    std::vector<ThreadedFunction> fns;
    uint64_t fused = 0;
    std::size_t maxMoves = 0;
    std::size_t maxArgs = 0;
};

/**
 * The executor. Same run/begin/resume surface as Interpreter and
 * honors every ExecOptions field except profiler (asserted null) —
 * campaign code dispatches on ExecOptions::tier and treats the two
 * engines interchangeably.
 */
class ThreadedExec
{
  public:
    ThreadedExec(const ThreadedModule &tmod, Memory &memory);

    RunResult run(std::size_t fn_index,
                  const std::vector<uint64_t> &args,
                  const ExecOptions &opts);

    void begin(ExecState &st, std::size_t fn_index,
               const std::vector<uint64_t> &args,
               const CostConfig &cost_cfg);

    RunResult resume(ExecState &st, const ExecOptions &opts);

  private:
    const ThreadedModule &tm;
    const ExecModule &em;
    Memory &mem;
    FrameArena arena;
    std::vector<uint64_t> phiTmp;
    std::vector<uint64_t> callTmp;
};

} // namespace softcheck

#endif // SOFTCHECK_INTERP_THREADED_EXEC_HH
