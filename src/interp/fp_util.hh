/**
 * @file
 * Floating-point bit-pattern helpers shared by the two execution tiers
 * (interpreter.cc and threaded_exec.cc). Registers hold canonical
 * uint64_t bit patterns: f64 occupies all 64 bits, f32 the low 32.
 * Both tiers must produce bit-identical results, so they must share
 * these definitions rather than re-derive them.
 */

#ifndef SOFTCHECK_INTERP_FP_UTIL_HH
#define SOFTCHECK_INTERP_FP_UTIL_HH

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "interp/exec_module.hh"
#include "support/bits.hh"

namespace softcheck::fp_util
{

inline double
asF64(uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

inline uint64_t
fromF64(double v)
{
    return std::bit_cast<uint64_t>(v);
}

inline float
asF32(uint64_t bits)
{
    return std::bit_cast<float>(static_cast<uint32_t>(bits));
}

inline uint64_t
fromF32(float v)
{
    return std::bit_cast<uint32_t>(v);
}

/** Saturating float -> signed int conversion (deterministic; NaN -> 0),
 * matching llvm.fptosi.sat semantics. */
inline int64_t
fpToSiSat(double v, unsigned width)
{
    if (std::isnan(v))
        return 0;
    const double lo = -std::ldexp(1.0, static_cast<int>(width) - 1);
    const double hi = std::ldexp(1.0, static_cast<int>(width) - 1) - 1.0;
    if (v <= lo)
        return static_cast<int64_t>(
            std::numeric_limits<int64_t>::min() >> (64 - width));
    if (v >= hi) {
        const uint64_t max =
            (width >= 64) ? std::numeric_limits<int64_t>::max()
                          : ((1ULL << (width - 1)) - 1);
        return static_cast<int64_t>(max);
    }
    return static_cast<int64_t>(v);
}

/** Convert a canonical register value to double for profiling. */
inline double
profileValue(TypeKind k, uint64_t raw)
{
    switch (k) {
      case TypeKind::F64:
        return asF64(raw);
      case TypeKind::F32:
        return static_cast<double>(asF32(raw));
      default:
        return static_cast<double>(signExtend(raw, typeBits(k)));
    }
}

} // namespace softcheck::fp_util

#endif // SOFTCHECK_INTERP_FP_UTIL_HH
