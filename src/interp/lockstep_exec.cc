/**
 * @file
 * Implementation of the lockstep-batched tier (see lockstep_exec.hh).
 *
 * Bit-identity with the scalar tiers is the invariant every line here
 * serves; the handler bodies transcribe threaded_exec.cc one lane loop
 * at a time. The load-bearing details beyond the scalar tier's:
 *
 *  - The group always dispatches TInst::alt (the unfused handler).
 *    Superinstruction fusion changes neither counts nor cost-model
 *    state, and dispatch is already amortized across lanes, so the
 *    unfused stream is bit-identical and divergence handling only has
 *    to reason about one instruction at a time.
 *  - A trapping or check-failing instruction is still counted for
 *    every lane (the batched instruction count settles before any lane
 *    retires), and div/math stalls are charged to every lane before
 *    the per-lane zero test, exactly like the scalar tiers.
 *  - The recent-write ring is maintained once per group: lockstep
 *    lanes execute the same destination sequence by construction, and
 *    every fork happens at the group's shared loop top, so the ring a
 *    fork samples is bit-identical to the scalar trial's. After its
 *    fork a lane's ring is never consumed again (scalar resumes of
 *    peeled lanes run with faultRng == nullptr), so divergent phi
 *    moves applied to a peeling lane's column are deliberately not
 *    noted in its transposed-out ring.
 *  - Event order at a shared loop top follows the interpreter: golden
 *    compares (only lanes forked at an earlier instruction can have
 *    one armed) before fault forks (a lane forking here arms its
 *    first compare strictly later, like scalar injection), then the
 *    timeout check.
 *  - cycles() is only observed at settled points: lane forks, golden
 *    compares, and retirements all settle the batched count first.
 */

#include "interp/lockstep_exec.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "interp/fp_util.hh"
#include "support/bits.hh"
#include "support/error.hh"

namespace softcheck
{

using namespace fp_util;

LockstepExec::LockstepExec(const ThreadedModule &tmod, Memory &memory)
    : tm(tmod), em(tmod.execModule()), mem(memory),
      stemExec(tmod, memory)
{
    phiTmp.resize(std::max<std::size_t>(tm.maxPhiMoves(), 1));
}

namespace
{
/** Minimum stem-only stretch (dynamic instructions) worth the two
 * transposes of a scalar handoff. Any threshold is correct — both
 * engines are bit-identical — so this only trades transpose cost
 * against width-1 lockstep overhead. */
constexpr uint64_t kStemHandoffMin = 256;
} // namespace

// Per-lane operand read/write against the cached top frame. `lc` is
// the loop variable of the surrounding lane loop.
#define LRD(x)                                                          \
    ((x) >= 0 ? fr->regs[static_cast<std::size_t>(x) * ncols + lc.col]  \
              : consts[~(x)])
#define LWRS(slot, v)                                                   \
    (fr->regs[static_cast<std::size_t>(slot) * ncols + lc.col] = (v))
#define LWR(v) LWRS(t->dst, v)

#define LANES for (LaneCtx &lc : act)

// Simple handlers: one value per lane, one shared ring note.
#define LS_SIMPLE(EXPR)                                                 \
    {                                                                   \
        LANES LWR(EXPR);                                                \
        note(t->dst);                                                   \
        ++ip;                                                           \
    }                                                                   \
    break;

#define LS_ICMP(EXPR)                                                   \
    {                                                                   \
        LANES {                                                         \
            const uint64_t ua = LRD(t->a);                              \
            const uint64_t ub = LRD(t->b);                              \
            const int64_t sa = signExtend(ua, t->width);                \
            const int64_t sb = signExtend(ub, t->width);                \
            (void)ua; (void)ub; (void)sa; (void)sb;                     \
            LWR((EXPR) ? 1 : 0);                                        \
        }                                                               \
        note(t->dst);                                                   \
        ++ip;                                                           \
    }                                                                   \
    break;

#define LS_FCMPD(EXPR)                                                  \
    {                                                                   \
        LANES {                                                         \
            const double a = asF64(LRD(t->a));                          \
            const double b = asF64(LRD(t->b));                          \
            LWR((EXPR) ? 1 : 0);                                        \
        }                                                               \
        note(t->dst);                                                   \
        ++ip;                                                           \
    }                                                                   \
    break;

#define LS_FCMPS(EXPR)                                                  \
    {                                                                   \
        LANES {                                                         \
            const float a = asF32(LRD(t->a));                           \
            const float b = asF32(LRD(t->b));                           \
            LWR((EXPR) ? 1 : 0);                                        \
        }                                                               \
        note(t->dst);                                                   \
        ++ip;                                                           \
    }                                                                   \
    break;

// Signed/unsigned divide and remainder: stall every lane first (the
// scalar tiers charge before the zero test), then resolve per lane.
#define LS_DIVREM(PREP, OKEXPR, RESEXPR)                                \
    {                                                                   \
        LANES lc.cost.addStalls(div_stall);                             \
        bool any_trap = false;                                          \
        unsigned i = 0;                                                 \
        LANES {                                                         \
            PREP;                                                       \
            laneOk[i] = (OKEXPR) ? 1 : 0;                               \
            if (laneOk[i])                                              \
                laneVal[i] = (RESEXPR);                                 \
            else                                                        \
                any_trap = true;                                        \
            ++i;                                                        \
        }                                                               \
        if (any_trap) {                                                 \
            sync();                                                     \
            settle();                                                   \
        }                                                               \
        i = 0;                                                          \
        LANES {                                                         \
            if (laneOk[i])                                              \
                LWR(laneVal[i]);                                        \
            else                                                        \
                finish_lane(lc, Termination::Trap,                      \
                            TrapKind::DivByZero, -1, 0);                \
            ++i;                                                        \
        }                                                               \
        if (any_trap)                                                   \
            sweep();                                                    \
        if (!act.empty())                                               \
            note(t->dst);                                               \
        ++ip;                                                           \
    }                                                                   \
    break;

// Value checks: evaluate per lane, retire failing lanes unless the
// check is disabled.
#define LS_CHECK(PREP, PASSEXPR)                                        \
    {                                                                   \
        bool any_fail = false;                                          \
        unsigned i = 0;                                                 \
        LANES {                                                         \
            ++lc.checkEvals;                                            \
            PREP;                                                       \
            laneOk[i] = (PASSEXPR) ? 1 : 0;                             \
            any_fail |= !laneOk[i];                                     \
            ++i;                                                        \
        }                                                               \
        if (any_fail && !check_disabled(t->checkId)) {                  \
            sync();                                                     \
            settle();                                                   \
            i = 0;                                                      \
            LANES {                                                     \
                if (!laneOk[i])                                         \
                    finish_lane(lc, Termination::CheckFailed,           \
                                TrapKind::None, t->checkId, 0);         \
                ++i;                                                    \
            }                                                           \
            sweep();                                                    \
        }                                                               \
        ++ip;                                                           \
    }                                                                   \
    break;

bool
LockstepExec::runGroup(ExecState &st, std::vector<LaneTrial> &trials,
                       const ExecOptions &opts, ExecState *stemOut)
{
    bool stem_exported = false;
    scAssert(!opts.profiler, "lockstep groups cannot profile");
    scAssert(!opts.dynMix, "lockstep groups cannot record a dyn mix");
    scAssert(!opts.siteObserver,
             "lockstep groups cannot observe fault sites");
    scAssert(!opts.checkpointEvery && !opts.checkpointSchedule,
             "lockstep groups cannot record checkpoints");
    scAssert(opts.checkMode == CheckMode::Halt,
             "lockstep groups require CheckMode::Halt");
    scAssert(!opts.faultAtDynInstr && !opts.faultRng,
             "lockstep injection is per lane, not via ExecOptions");
    scAssert(!trials.empty(), "empty lane group");

    const unsigned ntr = static_cast<unsigned>(trials.size());
    const unsigned ncols = ntr + 1;
    const unsigned stem_col = ntr;
    for (unsigned i = 1; i < ntr; ++i)
        scAssert(trials[i - 1].faultAt <= trials[i].faultAt,
                 "lane trials must be sorted by faultAt");
    unsigned fork_next = 0;

    const ExecFunction *fn_base = &em.function(0);
    const ThreadedFunction *tf_base = &tm.function(0);
    const uint64_t div_stall = opts.cost.divExtraCycles;
    const uint64_t math_stall = opts.cost.mathExtraCycles;

    uint64_t dyn_count = 0;
    std::vector<uint64_t> global_bases;

    // Transpose a scalar state into the SoA skeleton's stem column
    // (group entry, and re-entry after a scalar-stem handoff). When
    // the skeleton already has the same frame sequence at this group
    // width — every handoff re-entry, since a scalar stretch cannot
    // change which engine decoded it — only the shared shape and the
    // stem column are refreshed; stale trial columns are dead (their
    // lanes retired) and every fork rewrites its column in full.
    auto transpose_in = [&](const ExecState &s) {
        bool same_shape = sk.size() == s.stack.size();
        for (std::size_t j = 0; same_shape && j < sk.size(); ++j)
            same_shape =
                sk[j].fn == s.stack[j].fn &&
                sk[j].regs.size() ==
                    static_cast<std::size_t>(s.stack[j].fn->numSlots) *
                        ncols;
        if (same_shape) {
            for (std::size_t j = 0; j < sk.size(); ++j) {
                SkFrame &f = sk[j];
                const ExecFrame &fe = s.stack[j];
                f.ip = fe.ip;
                f.curBlock = fe.curBlock;
                f.retDst = fe.retDst;
                for (std::size_t s2 = 0; s2 < fe.regs.size(); ++s2)
                    f.regs[s2 * ncols + stem_col] = fe.regs[s2];
                f.recent = fe.recent;
                f.recentCount = fe.recentCount;
                f.recentPos = fe.recentPos;
                f.allocaBases[stem_col] = fe.allocaBases;
            }
        } else {
            while (!sk.empty()) {
                skSpare.push_back(std::move(sk.back()));
                sk.pop_back();
            }
            for (const ExecFrame &fe : s.stack) {
                if (skSpare.empty()) {
                    sk.emplace_back();
                } else {
                    sk.push_back(std::move(skSpare.back()));
                    skSpare.pop_back();
                }
                SkFrame &f = sk.back();
                f.fn = fe.fn;
                f.tf =
                    tf_base + static_cast<std::size_t>(fe.fn - fn_base);
                f.ip = fe.ip;
                f.curBlock = fe.curBlock;
                f.retDst = fe.retDst;
                f.regs.assign(
                    static_cast<std::size_t>(fe.fn->numSlots) * ncols,
                    0);
                for (std::size_t s2 = 0; s2 < fe.regs.size(); ++s2)
                    f.regs[s2 * ncols + stem_col] = fe.regs[s2];
                f.recent = fe.recent;
                f.recentCount = fe.recentCount;
                f.recentPos = fe.recentPos;
                f.allocaBases.resize(ncols);
                for (auto &v : f.allocaBases)
                    v.clear();
                f.allocaBases[stem_col] = fe.allocaBases;
            }
        }
        scAssert(!sk.empty(), "lane group needs a live call stack");
        dyn_count = s.dynCount;
        global_bases = s.globalBases;
    };
    transpose_in(st);

    act.clear();
    {
        LaneCtx stem;
        stem.col = stem_col;
        stem.trial = -1;
        stem.mem = &mem;
        stem.cost = std::move(st.cost); // st is consumed by contract
        act.push_back(std::move(stem));
    }
    bool stem_alive = true;

    callTmp.resize(std::max<std::size_t>(tm.maxCallArgs(), 1) * ncols);
    laneVal.resize(ncols);
    laneOk.resize(ncols);

    // --- cached top-frame context ---
    SkFrame *fr = nullptr;
    const TInst *code = nullptr;
    const uint64_t *consts = nullptr;
    uint32_t ip = 0;
    uint32_t cur_block = 0;
    uint64_t unsettled = 0;

    auto load_ctx = [&] {
        fr = &sk.back();
        code = fr->tf->code.data();
        consts = fr->tf->consts.data();
        ip = fr->ip;
        cur_block = fr->curBlock;
    };
    auto sync = [&] {
        fr->ip = ip;
        fr->curBlock = cur_block;
    };
    auto settle = [&] {
        if (!unsettled)
            return;
        for (LaneCtx &lc : act)
            lc.cost.addInstrs(unsettled);
        unsettled = 0;
    };
    auto note = [&](int32_t slot) {
        fr->recent[fr->recentPos] = slot;
        fr->recentPos = (fr->recentPos + 1) & (ExecFrame::kRecentRing - 1);
        if (fr->recentCount < ExecFrame::kRecentRing)
            ++fr->recentCount;
    };
    auto check_disabled = [&](int32_t id) {
        return opts.disabledChecks && id >= 0 &&
               static_cast<std::size_t>(id) < opts.disabledChecks->size() &&
               (*opts.disabledChecks)[static_cast<std::size_t>(id)];
    };
    auto sweep = [&] {
        act.erase(std::remove_if(act.begin(), act.end(),
                                 [](const LaneCtx &l) { return l.dead; }),
                  act.end());
    };

    // Retire one lane with a final scalar-identical result. The batched
    // count must be settled first.
    auto finish_lane = [&](LaneCtx &lc, Termination term, TrapKind trap,
                           int check_id, uint64_t ret) {
        scAssert(lc.trial >= 0, "the stem lane cannot retire");
        RunResult r;
        r.term = term;
        r.trap = trap;
        r.failedCheckId = check_id;
        r.retValue = ret;
        r.dynInstrs = dyn_count;
        r.cycles = lc.cost.cycles();
        r.endCycle = r.cycles;
        r.cacheMisses = lc.cost.cacheMisses();
        r.branchMispredicts = lc.cost.branchMispredicts();
        r.checkEvals = lc.checkEvals;
        r.fault = lc.fault;
        LaneTrial &tr = trials[static_cast<std::size_t>(lc.trial)];
        tr.result = r;
        tr.fault = lc.fault;
        tr.status = LaneStatus::Done;
        lc.dead = true;
    };

    // Transpose one column out as a scalar resume point at
    // (pip, pblock). Requires sync() + settle() first. Consumes the
    // column's CostModel (the column is dead, or — for a stem handoff
    // — about to be refreshed from the scalar run) so the tag and
    // predictor arrays move instead of copying. Frames already in
    // @p out are reused in place when they line up, which makes the
    // steady-state handoff transpose allocation-free.
    auto transpose_out = [&](unsigned col, CostModel &cm,
                             ExecState &out, uint32_t pip,
                             uint32_t pblock) {
        out.dynCount = dyn_count;
        out.cost = std::move(cm);
        out.globalBases = global_bases;
        if (out.stack.size() > sk.size())
            out.stack.resize(sk.size());
        out.stack.reserve(sk.size());
        while (out.stack.size() < sk.size())
            out.stack.emplace_back();
        for (std::size_t j = 0; j < sk.size(); ++j) {
            const SkFrame &f = sk[j];
            ExecFrame &fe = out.stack[j];
            fe.fn = f.fn;
            const std::size_t nslots = f.fn->numSlots;
            fe.regs.resize(nslots);
            for (std::size_t s = 0; s < nslots; ++s)
                fe.regs[s] = f.regs[s * ncols + col];
            fe.allocaBases = f.allocaBases[col];
            fe.recent = f.recent;
            fe.recentCount = f.recentCount;
            fe.recentPos = f.recentPos;
            fe.retDst = f.retDst;
            const bool top = j + 1 == sk.size();
            fe.ip = top ? pip : f.ip;
            fe.curBlock = top ? pblock : f.curBlock;
        }
    };

    auto peel_lane = [&](LaneCtx &lc, uint32_t pip, uint32_t pblock) {
        scAssert(lc.trial >= 0, "the stem lane cannot peel");
        LaneTrial &tr = trials[static_cast<std::size_t>(lc.trial)];
        transpose_out(lc.col, lc.cost, tr.state, pip, pblock);
        tr.checkEvalsAtPeel = lc.checkEvals;
        tr.fault = lc.fault;
        tr.status = LaneStatus::Peeled;
        lc.dead = true;
    };

    // Parallel phi-move copy for one column, no ring notes (used only
    // when that column is about to peel; its ring is dead post-fault).
    auto apply_edge_col = [&](const TEdge &e, unsigned col) {
        if (e.movesBegin == e.movesEnd)
            return;
        const TPhiMove *mv = fr->tf->phiMoves.data();
        const uint32_t nmv = e.movesEnd - e.movesBegin;
        for (uint32_t k = 0; k < nmv; ++k) {
            const int32_t s = mv[e.movesBegin + k].src;
            phiTmp[k] =
                s >= 0 ? fr->regs[static_cast<std::size_t>(s) * ncols + col]
                       : consts[~s];
        }
        for (uint32_t k = 0; k < nmv; ++k)
            fr->regs[static_cast<std::size_t>(mv[e.movesBegin + k].dst) *
                         ncols +
                     col] = phiTmp[k];
    };

    // The group takes an edge: per-lane parallel phi copies, shared
    // ring notes in move order, then the jump.
    auto apply_edge_group = [&](uint32_t eidx) {
        const TEdge &e = fr->tf->edges[eidx];
        if (e.movesBegin != e.movesEnd) {
            const TPhiMove *mv = fr->tf->phiMoves.data();
            const uint32_t nmv = e.movesEnd - e.movesBegin;
            for (LaneCtx &lc : act) {
                for (uint32_t k = 0; k < nmv; ++k) {
                    const int32_t s = mv[e.movesBegin + k].src;
                    phiTmp[k] = s >= 0 ? fr->regs[static_cast<std::size_t>(
                                                      s) *
                                                      ncols +
                                                  lc.col]
                                       : consts[~s];
                }
                for (uint32_t k = 0; k < nmv; ++k)
                    LWRS(mv[e.movesBegin + k].dst, phiTmp[k]);
            }
            for (uint32_t k = 0; k < nmv; ++k)
                note(mv[e.movesBegin + k].dst);
        }
        cur_block = e.targetBlock;
        ip = e.targetIp;
    };

    // Golden compare points are the snapshots' own dynInstr values;
    // arming finds the first one strictly past the fork point, which
    // is the same index for every lane armed at or before the current
    // dynamic instruction (so the shared next_golden_cmp stays valid).
    uint64_t next_golden_cmp = ~0ULL;
    std::size_t golden_idx = 0;
    auto arm_golden_cmp = [&] {
        if (!opts.goldenSnapshots || opts.goldenSnapshots->empty())
            return;
        golden_idx = firstSnapshotAfter(*opts.goldenSnapshots, dyn_count);
        next_golden_cmp =
            golden_idx < opts.goldenSnapshots->size()
                ? (*opts.goldenSnapshots)[golden_idx].dynInstr()
                : ~0ULL;
    };

    // Snapshot::convergedWith against one column of the skeleton.
    auto lane_converged = [&](const Snapshot &gold, const LaneCtx &lc) {
        const ExecState &gs = gold.state;
        if (gs.dynCount != dyn_count || gs.stack.size() != sk.size() ||
            gs.globalBases != global_bases ||
            !lc.cost.sameState(gs.cost))
            return false;
        for (std::size_t j = 0; j < sk.size(); ++j) {
            const ExecFrame &gf = gs.stack[j];
            const SkFrame &f = sk[j];
            if (gf.fn != f.fn || gf.ip != f.ip ||
                gf.curBlock != f.curBlock || gf.retDst != f.retDst ||
                gf.allocaBases != f.allocaBases[lc.col])
                return false;
            for (std::size_t s = 0; s < gf.regs.size(); ++s)
                if (gf.regs[s] != f.regs[s * ncols + lc.col])
                    return false;
        }
        return lc.mem->contentsEqual(gold.mem);
    };

    load_ctx();

    for (;;) {
        // --- shared loop top: settle, then events in scalar order ---
        sync();
        settle();

        // Golden compares. Only lanes forked strictly earlier can have
        // one armed at this dynamic instruction (a lane forking *here*
        // arms its first compare strictly later), so running compares
        // before forks matches the interpreter's fault-then-compare
        // order lane by lane.
        if (dyn_count >= next_golden_cmp) {
            // Reached exactly: the group event horizon stops on this
            // boundary, and arming picked a strictly later snapshot.
            const Snapshot &gold = (*opts.goldenSnapshots)[golden_idx];
            bool any = false;
            for (LaneCtx &lc : act) {
                if (lc.trial < 0)
                    continue;
                if (lane_converged(gold, lc)) {
                    scAssert(opts.goldenResult,
                             "goldenSnapshots without goldenResult");
                    RunResult r = *opts.goldenResult;
                    r.prunedToGolden = true;
                    r.fault = lc.fault;
                    LaneTrial &tr =
                        trials[static_cast<std::size_t>(lc.trial)];
                    tr.result = r;
                    tr.fault = lc.fault;
                    tr.status = LaneStatus::Done;
                    lc.dead = true;
                    any = true;
                }
            }
            if (any)
                sweep();
            ++golden_idx;
            next_golden_cmp =
                golden_idx < opts.goldenSnapshots->size()
                    ? (*opts.goldenSnapshots)[golden_idx].dynInstr()
                    : ~0ULL;
        }

        // Fault forks: trial lanes leave the stem at their injection
        // point. Mirrors the interpreter's injection block bit for bit
        // (ring draw, slot-width draw, masked flip, post-settle cycle
        // stamp), then arms the lane's golden compares — which lands
        // on the shared next_golden_cmp without moving it, since every
        // armed lane shares the same "next multiple" value.
        while (fork_next < ntr &&
               trials[fork_next].faultAt <= dyn_count) {
            scAssert(stem_alive, "pending fork without a stem lane");
            const unsigned ti = fork_next++;
            LaneTrial &tr = trials[ti];
            LaneCtx lane;
            lane.col = ti;
            lane.trial = static_cast<int>(ti);
            tr.mem = mem; // COW fork of the stem memory
            lane.mem = &tr.mem;
            lane.cost = act.front().cost;
            lane.checkEvals = act.front().checkEvals;
            for (SkFrame &f : sk) {
                const std::size_t nslots = f.fn->numSlots;
                for (std::size_t s = 0; s < nslots; ++s)
                    f.regs[s * ncols + ti] = f.regs[s * ncols + stem_col];
                f.allocaBases[ti] = f.allocaBases[stem_col];
            }
            SkFrame &ff = sk.back();
            if (ff.recentCount > 0) {
                Rng &rng = tr.rng;
                const int32_t slot =
                    ff.recent[static_cast<std::size_t>(
                        rng.nextBelow(ff.recentCount))];
                const TypeKind ty =
                    ff.fn->slotTypes[static_cast<std::size_t>(slot)];
                const unsigned width = typeBits(ty) ? typeBits(ty) : 64;
                const unsigned bit =
                    static_cast<unsigned>(rng.nextBelow(width));
                lane.fault.injected = true;
                lane.fault.slot = slot;
                lane.fault.slotType = ty;
                lane.fault.bit = bit;
                lane.fault.before =
                    ff.regs[static_cast<std::size_t>(slot) * ncols + ti];
                lane.fault.after =
                    flipBit(lane.fault.before, bit) & lowBitMask(width);
                lane.fault.atDynInstr = dyn_count;
                lane.fault.atCycle = lane.cost.cycles();
                ff.regs[static_cast<std::size_t>(slot) * ncols + ti] =
                    lane.fault.after;
            }
            act.push_back(std::move(lane));
            arm_golden_cmp();
        }
        if (fork_next == ntr && stem_alive) {
            scAssert(act.front().trial < 0, "leader is not the stem");
            // The stem's job is done; export it as a resume point
            // before retiring it. The bound Memory is the stem's and
            // nothing touches it once the last lane has forked off, so
            // (stemOut, bound Memory) is a complete scalar state at
            // the last injection point — the caller can chain the next
            // sorted group from here instead of rewinding.
            if (stemOut) {
                transpose_out(stem_col, act.front().cost, *stemOut, ip,
                              cur_block);
                stem_exported = true;
            }
            act.erase(act.begin());
            stem_alive = false;
        }

        // Timeout retires every live lane; trials still pending behind
        // the stem never reached their injection point, so they time
        // out with the stem's (shared-prefix) state and no fault —
        // exactly what their scalar replay would record.
        if (dyn_count >= opts.maxDynInstrs) {
            for (LaneCtx &lc : act)
                if (lc.trial >= 0)
                    finish_lane(lc, Termination::Timeout, TrapKind::None,
                                -1, 0);
            if (fork_next < ntr) {
                scAssert(stem_alive, "pending trials without a stem");
                const LaneCtx &stem = act.front();
                while (fork_next < ntr) {
                    LaneTrial &tr = trials[fork_next++];
                    RunResult r;
                    r.term = Termination::Timeout;
                    r.dynInstrs = dyn_count;
                    r.cycles = stem.cost.cycles();
                    r.endCycle = r.cycles;
                    r.cacheMisses = stem.cost.cacheMisses();
                    r.branchMispredicts = stem.cost.branchMispredicts();
                    r.checkEvals = stem.checkEvals;
                    tr.result = r;
                    tr.status = LaneStatus::Done;
                }
            }
            act.clear();
            return stem_exported;
        }

        // Group termination / last-lane peel.
        const unsigned live =
            static_cast<unsigned>(act.size()) - (stem_alive ? 1u : 0u);
        if (live == 0 && fork_next == ntr) {
            act.clear();
            return stem_exported;
        }
        if (!stem_alive && live == 1) {
            // Width-1 lockstep is pure overhead; hand the survivor to
            // the scalar tier from this settled boundary.
            peel_lane(act.front(), ip, cur_block);
            act.clear();
            return stem_exported;
        }

        // Scalar-stem handoff: with no forked lanes live the group is
        // one lane of straight prefix replay, and width-1 lockstep
        // (switch dispatch, unfused stream, strided SoA operands)
        // costs about twice the scalar tier. Transpose the stem out,
        // run it on the fused computed-goto engine up to the next fork
        // (tier equivalence makes the resulting state bit-identical,
        // including the recent-write ring the fork will sample), and
        // re-enter lockstep there. With the fault event disarmed the
        // scalar stretch can only stop on its instruction bound, so
        // anything else is a broken invariant. The stretch still
        // serves every pending trial and counts toward occupancy like
        // any other stem fetch.
        if (stem_alive && live == 0 && fork_next < ntr) {
            const uint64_t until =
                std::min(trials[fork_next].faultAt, opts.maxDynInstrs);
            if (until - dyn_count >= kStemHandoffMin) {
                LaneCtx &stem = act.front();
                transpose_out(stem_col, stem.cost, stemScratch, ip,
                              cur_block);
                ExecOptions sopts = opts;
                sopts.maxDynInstrs = until;
                const RunResult r = stemExec.resume(stemScratch, sopts);
                scAssert(r.term == Termination::Timeout &&
                             stemScratch.dynCount == until,
                         "stem handoff must stop at the next event");
                const uint64_t window = until - dyn_count;
                fetchCount += window;
                servedLanes += window * (ntr - fork_next);
                stem.cost = std::move(stemScratch.cost);
                stem.checkEvals += r.checkEvals;
                transpose_in(stemScratch);
                load_ctx();
                next_golden_cmp = ~0ULL; // no forked lanes are live
                continue;
            }
        }

        // --- event horizon for the whole group ---
        uint64_t next_event = opts.maxDynInstrs;
        if (fork_next < ntr && trials[fork_next].faultAt < next_event)
            next_event = trials[fork_next].faultAt;
        if (next_golden_cmp < next_event)
            next_event = next_golden_cmp;

        bool to_boundary = false;
        while (!to_boundary && dyn_count < next_event) {
            const TInst *t = code + ip;
            ++dyn_count;
            ++unsettled;
            ++fetchCount;
            servedLanes += (act.size() - (stem_alive ? 1u : 0u)) +
                           (ntr - fork_next);

            switch (static_cast<THandler>(t->alt)) {
              // ---- integer arithmetic --------------------------------
              case THandler::Add:
                LS_SIMPLE(truncBits(LRD(t->a) + LRD(t->b), t->width))
              case THandler::Sub:
                LS_SIMPLE(truncBits(LRD(t->a) - LRD(t->b), t->width))
              case THandler::Mul:
                LS_SIMPLE(truncBits(LRD(t->a) * LRD(t->b), t->width))
              case THandler::SDiv:
                LS_DIVREM(const int64_t a = signExtend(LRD(t->a), t->width);
                          const int64_t b = signExtend(LRD(t->b), t->width),
                          b != 0,
                          truncBits(static_cast<uint64_t>(
                                        (a == std::numeric_limits<
                                                  int64_t>::min() &&
                                         b == -1)
                                            ? a
                                            : a / b),
                                    t->width))
              case THandler::SRem:
                LS_DIVREM(const int64_t a = signExtend(LRD(t->a), t->width);
                          const int64_t b = signExtend(LRD(t->b), t->width),
                          b != 0,
                          truncBits(static_cast<uint64_t>(
                                        (a == std::numeric_limits<
                                                  int64_t>::min() &&
                                         b == -1)
                                            ? 0
                                            : a % b),
                                    t->width))
              case THandler::UDiv:
                LS_DIVREM(const uint64_t a = LRD(t->a);
                          const uint64_t b = LRD(t->b),
                          b != 0, truncBits(a / b, t->width))
              case THandler::URem:
                LS_DIVREM(const uint64_t a = LRD(t->a);
                          const uint64_t b = LRD(t->b),
                          b != 0, truncBits(a % b, t->width))
              case THandler::And:
                LS_SIMPLE(LRD(t->a) & LRD(t->b))
              case THandler::Or:
                LS_SIMPLE(LRD(t->a) | LRD(t->b))
              case THandler::Xor:
                LS_SIMPLE(LRD(t->a) ^ LRD(t->b))
              case THandler::Shl: {
                LANES {
                    const unsigned sh = static_cast<unsigned>(LRD(t->b)) &
                                        (t->width - 1);
                    LWR(truncBits(LRD(t->a) << sh, t->width));
                }
                note(t->dst);
                ++ip;
              } break;
              case THandler::LShr: {
                LANES {
                    const unsigned sh = static_cast<unsigned>(LRD(t->b)) &
                                        (t->width - 1);
                    LWR(LRD(t->a) >> sh);
                }
                note(t->dst);
                ++ip;
              } break;
              case THandler::AShr: {
                LANES {
                    const unsigned sh = static_cast<unsigned>(LRD(t->b)) &
                                        (t->width - 1);
                    const int64_t a = signExtend(LRD(t->a), t->width);
                    LWR(truncBits(static_cast<uint64_t>(a >> sh),
                                  t->width));
                }
                note(t->dst);
                ++ip;
              } break;

              // ---- floating-point arithmetic -------------------------
              case THandler::FAddD:
                LS_SIMPLE(fromF64(asF64(LRD(t->a)) + asF64(LRD(t->b))))
              case THandler::FSubD:
                LS_SIMPLE(fromF64(asF64(LRD(t->a)) - asF64(LRD(t->b))))
              case THandler::FMulD:
                LS_SIMPLE(fromF64(asF64(LRD(t->a)) * asF64(LRD(t->b))))
              case THandler::FDivD: {
                LANES lc.cost.addStalls(div_stall);
                LANES LWR(fromF64(asF64(LRD(t->a)) / asF64(LRD(t->b))));
                note(t->dst);
                ++ip;
              } break;
              case THandler::FAddS:
                LS_SIMPLE(fromF32(asF32(LRD(t->a)) + asF32(LRD(t->b))))
              case THandler::FSubS:
                LS_SIMPLE(fromF32(asF32(LRD(t->a)) - asF32(LRD(t->b))))
              case THandler::FMulS:
                LS_SIMPLE(fromF32(asF32(LRD(t->a)) * asF32(LRD(t->b))))
              case THandler::FDivS: {
                LANES lc.cost.addStalls(div_stall);
                LANES LWR(fromF32(asF32(LRD(t->a)) / asF32(LRD(t->b))));
                note(t->dst);
                ++ip;
              } break;

              // ---- comparisons ---------------------------------------
              case THandler::ICmpEq: LS_ICMP(ua == ub)
              case THandler::ICmpNe: LS_ICMP(ua != ub)
              case THandler::ICmpSlt: LS_ICMP(sa < sb)
              case THandler::ICmpSle: LS_ICMP(sa <= sb)
              case THandler::ICmpSgt: LS_ICMP(sa > sb)
              case THandler::ICmpSge: LS_ICMP(sa >= sb)
              case THandler::ICmpUlt: LS_ICMP(ua < ub)
              case THandler::ICmpUle: LS_ICMP(ua <= ub)
              case THandler::ICmpUgt: LS_ICMP(ua > ub)
              case THandler::ICmpUge: LS_ICMP(ua >= ub)
              case THandler::FCmpDOEq: LS_FCMPD(a == b)
              case THandler::FCmpDONe:
                LS_FCMPD(a == a && b == b && a != b)
              case THandler::FCmpDOLt: LS_FCMPD(a < b)
              case THandler::FCmpDOLe: LS_FCMPD(a <= b)
              case THandler::FCmpDOGt: LS_FCMPD(a > b)
              case THandler::FCmpDOGe: LS_FCMPD(a >= b)
              case THandler::FCmpSOEq: LS_FCMPS(a == b)
              case THandler::FCmpSONe:
                LS_FCMPS(a == a && b == b && a != b)
              case THandler::FCmpSOLt: LS_FCMPS(a < b)
              case THandler::FCmpSOLe: LS_FCMPS(a <= b)
              case THandler::FCmpSOGt: LS_FCMPS(a > b)
              case THandler::FCmpSOGe: LS_FCMPS(a >= b)

              // ---- casts ---------------------------------------------
              case THandler::Trunc:
                LS_SIMPLE(truncBits(LRD(t->a), t->width))
              case THandler::Move:
                LS_SIMPLE(LRD(t->a))
              case THandler::SExt:
                LS_SIMPLE(truncBits(
                    static_cast<uint64_t>(signExtend(LRD(t->a),
                                                     t->srcBits)),
                    t->width))
              case THandler::FPToSiD:
                LS_SIMPLE(truncBits(static_cast<uint64_t>(fpToSiSat(
                                        asF64(LRD(t->a)), t->width)),
                                    t->width))
              case THandler::FPToSiS:
                LS_SIMPLE(truncBits(static_cast<uint64_t>(fpToSiSat(
                                        asF32(LRD(t->a)), t->width)),
                                    t->width))
              case THandler::SIToFPD:
                LS_SIMPLE(fromF64(static_cast<double>(
                    signExtend(LRD(t->a), t->srcBits))))
              case THandler::SIToFPS:
                LS_SIMPLE(fromF32(static_cast<float>(
                    signExtend(LRD(t->a), t->srcBits))))
              case THandler::FPTrunc:
                LS_SIMPLE(fromF32(static_cast<float>(asF64(LRD(t->a)))))
              case THandler::FPExt:
                LS_SIMPLE(fromF64(static_cast<double>(asF32(LRD(t->a)))))

              // ---- memory --------------------------------------------
              case THandler::Load: {
                bool any_trap = false;
                bool have_probe = false;
                uint64_t prev_addr = 0;
                CostModel::MemAccessProbe pr{};
                unsigned i = 0;
                LANES {
                    const uint64_t addr = LRD(t->a);
                    if (!have_probe || addr != prev_addr) {
                        pr = lc.cost.probeMemAccess(addr);
                        prev_addr = addr;
                        have_probe = true;
                    }
                    lc.cost.updateMemAccess(pr);
                    uint64_t v = 0;
                    laneOk[i] = lc.mem->read(addr, t->elemSize, v) ? 1 : 0;
                    laneVal[i] = v;
                    any_trap |= !laneOk[i];
                    ++i;
                }
                if (any_trap) {
                    sync();
                    settle();
                }
                i = 0;
                LANES {
                    if (laneOk[i])
                        LWR(laneVal[i]);
                    else
                        finish_lane(lc, Termination::Trap,
                                    TrapKind::OutOfBounds, -1, 0);
                    ++i;
                }
                if (any_trap)
                    sweep();
                if (!act.empty())
                    note(t->dst);
                ++ip;
              } break;
              case THandler::Store: {
                bool any_trap = false;
                bool have_probe = false;
                uint64_t prev_addr = 0;
                CostModel::MemAccessProbe pr{};
                unsigned i = 0;
                LANES {
                    const uint64_t v = LRD(t->a);
                    const uint64_t addr = LRD(t->b);
                    if (!have_probe || addr != prev_addr) {
                        pr = lc.cost.probeMemAccess(addr);
                        prev_addr = addr;
                        have_probe = true;
                    }
                    lc.cost.updateMemAccess(pr);
                    laneOk[i] =
                        lc.mem->write(addr, t->elemSize, v) ? 1 : 0;
                    any_trap |= !laneOk[i];
                    ++i;
                }
                if (any_trap) {
                    sync();
                    settle();
                    i = 0;
                    LANES {
                        if (!laneOk[i])
                            finish_lane(lc, Termination::Trap,
                                        TrapKind::OutOfBounds, -1, 0);
                        ++i;
                    }
                    sweep();
                }
                ++ip;
              } break;
              case THandler::Gep:
                LS_SIMPLE(LRD(t->a) +
                          static_cast<uint64_t>(
                              static_cast<int64_t>(LRD(t->b))) *
                              t->elemSize)
              case THandler::Alloca: {
                bool any_trap = false;
                unsigned i = 0;
                LANES {
                    const uint64_t bytes = LRD(t->a) * t->elemSize;
                    laneVal[i] = bytes;
                    laneOk[i] =
                        (bytes != 0 && bytes <= (1ULL << 30)) ? 1 : 0;
                    any_trap |= !laneOk[i];
                    ++i;
                }
                if (any_trap) {
                    sync();
                    settle();
                }
                i = 0;
                LANES {
                    if (laneOk[i]) {
                        const uint64_t base = lc.mem->alloc(laneVal[i]);
                        fr->allocaBases[lc.col].push_back(base);
                        LWR(base);
                    } else {
                        finish_lane(lc, Termination::Trap,
                                    TrapKind::OutOfBounds, -1, 0);
                    }
                    ++i;
                }
                if (any_trap)
                    sweep();
                if (!act.empty())
                    note(t->dst);
                ++ip;
              } break;
              case THandler::GlobalAddr:
                LS_SIMPLE(global_bases[t->e0])

              // ---- control -------------------------------------------
              case THandler::Br:
                apply_edge_group(t->e0);
                break;
              case THandler::CondBr: {
                const CostModel::BranchProbe bp =
                    act.front().cost.probeBranch(t->branchSite);
                unsigned i = 0;
                LANES {
                    laneOk[i] = (LRD(t->a) & 1) != 0 ? 1 : 0;
                    lc.cost.updateBranch(bp, laneOk[i] != 0);
                    ++i;
                }
                const uint8_t lead = laneOk[0];
                bool any_div = false;
                for (unsigned k = 1; k < act.size(); ++k)
                    any_div |= laneOk[k] != lead;
                if (any_div) {
                    sync();
                    settle();
                    unsigned k = 0;
                    for (LaneCtx &lc : act) {
                        if (laneOk[k] != lead) {
                            // The lane leaves on its own edge; its ring
                            // copy predates these phi moves, which is
                            // fine — it is never sampled again.
                            const TEdge &e =
                                fr->tf->edges[laneOk[k] ? t->e0 : t->e1];
                            apply_edge_col(e, lc.col);
                            peel_lane(lc, e.targetIp, e.targetBlock);
                        }
                        ++k;
                    }
                    sweep();
                }
                apply_edge_group(lead ? t->e0 : t->e1);
              } break;
              case THandler::Select:
                LS_SIMPLE((LRD(t->a) & 1) ? LRD(t->b) : LRD(t->c))
              case THandler::Call: {
                if (sk.size() >= opts.maxCallDepth) {
                    sync();
                    settle();
                    scAssert(!stem_alive,
                             "stem lane overflowed the call stack");
                    for (LaneCtx &lc : act)
                        finish_lane(lc, Termination::Trap,
                                    TrapKind::StackOverflow, -1, 0);
                    act.clear();
                    return stem_exported;
                }
                const uint32_t argc = t->e0;
                const int32_t *ap =
                    fr->tf->callArgs.data() + t->argsBegin;
                uint64_t *cb = callTmp.data();
                LANES {
                    for (uint32_t k = 0; k < argc; ++k)
                        cb[k * ncols + lc.col] = LRD(ap[k]);
                }
                const int32_t call_dst = t->dst;
                const ExecFunction &callee =
                    em.function(static_cast<std::size_t>(t->calleeIdx));
                fr->ip = ip + 1; // return continuation
                fr->curBlock = cur_block;
                if (skSpare.empty()) {
                    sk.emplace_back();
                } else {
                    sk.push_back(std::move(skSpare.back()));
                    skSpare.pop_back();
                }
                SkFrame &nf = sk.back();
                nf.fn = &callee;
                nf.tf = tf_base +
                        static_cast<std::size_t>(nf.fn - fn_base);
                nf.regs.assign(
                    static_cast<std::size_t>(callee.numSlots) * ncols,
                    0);
                nf.allocaBases.resize(ncols);
                for (auto &v : nf.allocaBases)
                    v.clear();
                nf.recentCount = 0;
                nf.recentPos = 0;
                nf.retDst = call_dst;
                nf.curBlock = 0;
                nf.ip =
                    callee.blocks.empty() ? 0 : callee.blocks[0].first;
                load_ctx();
                for (uint32_t k = 0; k < argc; ++k) {
                    LANES LWRS(static_cast<int32_t>(k),
                               cb[k * ncols + lc.col]);
                    note(static_cast<int32_t>(k));
                }
              } break;
              case THandler::Ret: {
                unsigned i = 0;
                LANES {
                    laneVal[i] = t->e0 ? LRD(t->a) : 0;
                    ++i;
                }
                LANES {
                    for (uint64_t base : fr->allocaBases[lc.col])
                        lc.mem->free(base);
                }
                if (sk.size() == 1) {
                    sync();
                    settle();
                    scAssert(!stem_alive && fork_next == ntr,
                             "stem reached the entry return with "
                             "pending trials");
                    i = 0;
                    for (LaneCtx &lc : act)
                        finish_lane(lc, Termination::Ok, TrapKind::None,
                                    -1, laneVal[i++]);
                    act.clear();
                    return stem_exported;
                }
                const int32_t ret_dst = fr->retDst;
                skSpare.push_back(std::move(sk.back()));
                sk.pop_back();
                load_ctx();
                if (ret_dst >= 0) {
                    i = 0;
                    LANES LWRS(ret_dst, laneVal[i++]);
                    note(ret_dst);
                }
              } break;

              // ---- math intrinsics -----------------------------------
              case THandler::MathD: {
                if (t->srcOp != Opcode::FAbs)
                    LANES lc.cost.addStalls(math_stall);
                LANES {
                    const double v = asF64(LRD(t->a));
                    double r;
                    switch (t->srcOp) {
                      case Opcode::Sqrt: r = std::sqrt(v); break;
                      case Opcode::FAbs: r = std::fabs(v); break;
                      case Opcode::Exp: r = std::exp(v); break;
                      case Opcode::Log: r = std::log(v); break;
                      case Opcode::Sin: r = std::sin(v); break;
                      default: r = std::cos(v); break;
                    }
                    LWR(fromF64(r));
                }
                note(t->dst);
                ++ip;
              } break;
              case THandler::MathS: {
                if (t->srcOp != Opcode::FAbs)
                    LANES lc.cost.addStalls(math_stall);
                LANES {
                    // Math in double on the promoted f32, then narrow —
                    // shared with the scalar tiers' semantics.
                    const double v = asF32(LRD(t->a));
                    double r;
                    switch (t->srcOp) {
                      case Opcode::Sqrt: r = std::sqrt(v); break;
                      case Opcode::FAbs: r = std::fabs(v); break;
                      case Opcode::Exp: r = std::exp(v); break;
                      case Opcode::Log: r = std::log(v); break;
                      case Opcode::Sin: r = std::sin(v); break;
                      default: r = std::cos(v); break;
                    }
                    LWR(fromF32(static_cast<float>(r)));
                }
                note(t->dst);
                ++ip;
              } break;
              case THandler::FMinD:
                LS_SIMPLE(fromF64(
                    std::fmin(asF64(LRD(t->a)), asF64(LRD(t->b)))))
              case THandler::FMaxD:
                LS_SIMPLE(fromF64(
                    std::fmax(asF64(LRD(t->a)), asF64(LRD(t->b)))))
              case THandler::FMinS:
                LS_SIMPLE(fromF32(
                    std::fminf(asF32(LRD(t->a)), asF32(LRD(t->b)))))
              case THandler::FMaxS:
                LS_SIMPLE(fromF32(
                    std::fmaxf(asF32(LRD(t->a)), asF32(LRD(t->b)))))

              // ---- hardening checks ----------------------------------
              case THandler::CheckElided:
                ++ip;
                break;
              case THandler::CheckEq2:
                LS_CHECK(, LRD(t->a) == LRD(t->b))
              case THandler::CheckTwo:
                LS_CHECK(const uint64_t v = LRD(t->a),
                         v == LRD(t->b) || v == LRD(t->c))
              case THandler::CheckRangeD:
                LS_CHECK(const double v = asF64(LRD(t->a)),
                         v >= asF64(LRD(t->b)) && v <= asF64(LRD(t->c)))
              case THandler::CheckRangeS:
                LS_CHECK(const float v = asF32(LRD(t->a)),
                         v >= asF32(LRD(t->b)) && v <= asF32(LRD(t->c)))
              case THandler::CheckRangeI:
                LS_CHECK(const int64_t v = signExtend(LRD(t->a), t->width),
                         v >= signExtend(LRD(t->b), t->width) &&
                             v <= signExtend(LRD(t->c), t->width))

              default:
                scPanic("fused handler reached lockstep dispatch");
            }

            // A handler retired or peeled lanes: re-evaluate the group
            // shape at the shared loop top.
            if (act.empty() || (!stem_alive && act.size() <= 1))
                to_boundary = true;
        }
    }
}

#undef LRD
#undef LWRS
#undef LWR
#undef LANES
#undef LS_SIMPLE
#undef LS_ICMP
#undef LS_FCMPD
#undef LS_FCMPS
#undef LS_DIVREM
#undef LS_CHECK

} // namespace softcheck
