#include "core/value_checks.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "analysis/producer_chain.hh"
#include "ir/irbuilder.hh"
#include "support/error.hh"

namespace softcheck
{

namespace
{

/**
 * Constant for a check bound, in the instruction's own type.
 *
 * Integer profile values are sign-extended doubles (profileValue), so
 * a w-bit site's domain is [-2^(w-1), 2^(w-1)-1]; a bound from a
 * loaded/merged profile can lie outside it — beyond even long long,
 * where llround is undefined. Clamp into the domain first: operand
 * values themselves cannot leave it, so a clamped bound checks the
 * same predicate.
 */
Value *
boundConstant(Module &m, Type t, double v)
{
    if (t.isFloat())
        return m.getConstFloat(t, v);
    const int w = static_cast<int>(t.bitWidth());
    const uint64_t min_raw = uint64_t{1} << (w - 1);
    const uint64_t max_raw = min_raw - 1;
    const double lo = -std::ldexp(1.0, w - 1); // domain min, exact
    const double hi = std::ldexp(1.0, w - 1);  // one past domain max
    if (!(v > lo)) // v <= lo, or NaN
        return m.getConstInt(t, min_raw);
    if (v >= hi)
        return m.getConstInt(t, max_raw);
    // |v| < 2^63 here, so llround is defined; for w < 64 rounding can
    // still step just past the domain edge.
    long long r = std::llround(v);
    if (w < 64) {
        const long long smax = static_cast<long long>(max_raw);
        r = std::clamp(r, -smax - 1, smax);
    }
    return m.getConstInt(t, static_cast<uint64_t>(r));
}

class CheckInserter
{
  public:
    CheckInserter(Function &fn, const ProfileData &profile,
                  const ValueCheckOptions &opts, int &next_check_id)
        : func(fn), prof(profile), opts(opts),
          nextCheckId(next_check_id), builder(*fn.parent())
    {}

    ValueCheckResult
    run()
    {
        collectAmenable();
        for (Instruction *inst : amenable) {
            const bool forced = opts.forced.count(inst) != 0;
            if (opts.enableOpt1 && !forced && feedsAmenable(inst)) {
                ++result.suppressedByOpt1;
                continue;
            }
            insertCheck(inst);
        }
        // Forced sites that are not amenable by profile cannot be
        // checked meaningfully; the duplication pass only reports
        // amenable ones, so nothing to do here.
        return result;
    }

  private:
    void
    collectAmenable()
    {
        for (auto &bb : func) {
            for (auto &inst : *bb) {
                if (inst->isDuplicate())
                    continue;
                const int id = inst->profileId();
                if (id >= 0 &&
                    prof.amenable(static_cast<unsigned>(id)))
                    amenable.push_back(inst.get());
            }
        }
        amenableSet.insert(amenable.begin(), amenable.end());
    }

    /**
     * Optimization 1 reachability: does a def-use path of pure
     * (chainable) instructions lead from @p inst to another amenable
     * instruction? Memoized DFS; cycles (through selects in loops
     * cannot occur since phis terminate chains) are guarded anyway.
     */
    bool
    feedsAmenable(Instruction *inst)
    {
        auto it = feedsMemo.find(inst);
        if (it != feedsMemo.end())
            return it->second;
        feedsMemo[inst] = false; // cycle guard
        bool feeds = false;
        for (Instruction *user : inst->users()) {
            if (user->isDuplicate() || isCheck(user->opcode()))
                continue;
            if (amenableSet.count(user)) {
                feeds = true;
                break;
            }
            if (chainDisposition(*user) == ChainDisposition::Include &&
                feedsAmenable(user)) {
                feeds = true;
                break;
            }
        }
        feedsMemo[inst] = feeds;
        return feeds;
    }

    void
    insertCheck(Instruction *inst)
    {
        const SiteSummary &s =
            prof.site(static_cast<unsigned>(inst->profileId()));
        Module &m = *func.parent();
        const Type t = inst->type();
        // A range spanning the whole type domain can never fire; skip.
        if (s.shape == CheckShape::Range && t.isInteger() &&
            s.v1 - s.v0 >= std::ldexp(1.0, static_cast<int>(
                                               t.bitWidth())) - 1.0) {
            ++result.suppressedUseless;
            result.uselessSuppressedSites.insert(inst);
            return;
        }
        builder.setInsertAfter(inst);
        switch (s.shape) {
          case CheckShape::One:
            builder.createCheckOne(inst, boundConstant(m, t, s.v0),
                                   nextCheckId++);
            ++result.checkOne;
            break;
          case CheckShape::Two:
            builder.createCheckTwo(inst, boundConstant(m, t, s.v0),
                                   boundConstant(m, t, s.v1),
                                   nextCheckId++);
            ++result.checkTwo;
            break;
          case CheckShape::Range:
            builder.createCheckRange(inst, boundConstant(m, t, s.v0),
                                     boundConstant(m, t, s.v1),
                                     nextCheckId++);
            ++result.checkRange;
            break;
          case CheckShape::None:
            scPanic("insertCheck on non-amenable site");
        }
        ++result.checksInserted;
    }

    Function &func;
    const ProfileData &prof;
    const ValueCheckOptions &opts;
    int &nextCheckId;
    IRBuilder builder;
    std::vector<Instruction *> amenable;
    std::set<Instruction *> amenableSet;
    std::map<Instruction *, bool> feedsMemo;
    ValueCheckResult result;
};

} // namespace

ValueCheckResult
insertValueChecks(Function &fn, const ProfileData &profile,
                  const ValueCheckOptions &opts, int &next_check_id)
{
    if (!fn.entry())
        return {};
    return CheckInserter(fn, profile, opts, next_check_id).run();
}

} // namespace softcheck
