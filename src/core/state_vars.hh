/**
 * @file
 * State-variable identification (paper Sec. III / IV-A): a state
 * variable is a variable that depends on its own value from a previous
 * loop iteration. In SSA form these are exactly the phi nodes in loop
 * headers with an incoming value defined inside the loop — loop
 * induction variables, accumulators like Fig. 3's `crc`, etc.
 */

#ifndef SOFTCHECK_CORE_STATE_VARS_HH
#define SOFTCHECK_CORE_STATE_VARS_HH

#include <vector>

#include "analysis/loop_info.hh"

namespace softcheck
{

struct StateVar
{
    Instruction *phi = nullptr; //!< the header phi node
    Loop *loop = nullptr;       //!< its loop
    /** Indices of the phi's incoming entries whose source block lies
     * inside the loop (the update edges). */
    std::vector<std::size_t> updateEdges;
};

/**
 * Find all state variables of @p fn.
 *
 * @param li loop info for @p fn (built by the caller so passes can
 *           share it)
 */
std::vector<StateVar> findStateVariables(const Function &fn,
                                         const LoopInfo &li);

} // namespace softcheck

#endif // SOFTCHECK_CORE_STATE_VARS_HH
