/**
 * @file
 * Producer-chain duplication for state variables — the paper's core
 * transformation (Sec. III-B, Figs. 4 and 7).
 *
 * For every state variable phi P a shadow phi P' is created. Each
 * in-loop incoming value V of P has its producer chain duplicated (the
 * duplicated chain reads P' where the original reads P, giving the
 * shadow computation its own state); the duplicate feeds P' and a
 * CheckEq(V, V') is inserted before the latch's terminator.
 *
 * Chains terminate at loads (memory-traffic rule), calls, allocas, and
 * foreign phis. With Optimization 2 enabled (Fig. 9), chains also
 * terminate at check-amenable instructions; those are reported back so
 * the value-check pass can insert the replacement check.
 */

#ifndef SOFTCHECK_CORE_DUPLICATION_HH
#define SOFTCHECK_CORE_DUPLICATION_HH

#include <set>

#include "core/state_vars.hh"
#include "profile/profile_data.hh"

namespace softcheck
{

struct DuplicationOptions
{
    /** Profile for Optimization 2; null disables Opt 2. */
    const ProfileData *profile = nullptr;
    /** Master switch for Optimization 2 (requires profile). */
    bool enableOpt2 = true;
};

struct DuplicationResult
{
    unsigned stateVars = 0;
    unsigned shadowPhis = 0;
    unsigned duplicatedInstrs = 0;
    unsigned eqChecks = 0;
    /** Instructions where Opt 2 cut a chain; the value-check pass must
     * insert a check on each. */
    std::set<Instruction *> opt2CheckSites;
};

/**
 * Run the duplication transformation on @p fn.
 *
 * @param next_check_id module-wide check-id counter (in/out)
 */
DuplicationResult duplicateStateVariables(Function &fn,
                                          const DuplicationOptions &opts,
                                          int &next_check_id);

} // namespace softcheck

#endif // SOFTCHECK_CORE_DUPLICATION_HH
