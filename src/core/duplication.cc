#include "core/duplication.hh"

#include <map>

#include "analysis/producer_chain.hh"
#include "ir/irbuilder.hh"
#include "support/error.hh"

namespace softcheck
{

namespace
{

class Duplicator
{
  public:
    Duplicator(Function &fn, const DuplicationOptions &opts,
               int &next_check_id)
        : func(fn), opts(opts), nextCheckId(next_check_id),
          builder(*fn.parent())
    {}

    DuplicationResult
    run()
    {
        DominatorTree dt(func);
        LoopInfo li(func, dt);
        auto state_vars = findStateVariables(func, li);
        result.stateVars = static_cast<unsigned>(state_vars.size());

        // Phase 1: create all shadow phis first, so chains of one state
        // variable that read another state variable use its shadow.
        for (const StateVar &sv : state_vars) {
            auto shadow = cloneForDuplication(*sv.phi);
            shadow->dropAllOperands(); // incomings are filled in phase 2
            Instruction *raw =
                sv.phi->parent()->insertAfter(sv.phi, std::move(shadow));
            valueMap[sv.phi] = raw;
            ++result.shadowPhis;
        }

        // Phase 2: duplicate update-edge chains and wire the shadows.
        for (const StateVar &sv : state_vars) {
            auto *shadow = static_cast<Instruction *>(valueMap.at(sv.phi));
            std::set<std::size_t> update_set(sv.updateEdges.begin(),
                                             sv.updateEdges.end());
            for (std::size_t i = 0; i < sv.phi->numOperands(); ++i) {
                Value *incoming = sv.phi->incomingValue(i);
                BasicBlock *from = sv.phi->incomingBlock(i);
                if (!update_set.count(i)) {
                    // Init edge: reuse the original init value.
                    shadow->addIncoming(incoming, from);
                    continue;
                }
                Value *dup = duplicate(incoming, /*is_root=*/true);
                shadow->addIncoming(dup, from);
                if (dup != incoming)
                    insertEqCheck(incoming, dup, from);
            }
        }
        return std::move(result);
    }

  private:
    /**
     * Recursively duplicate the producer chain of @p v.
     *
     * @param is_root true for the state variable's direct update value;
     *        Optimization 2 never cuts at the root (Fig. 9 cuts inside
     *        long chains), otherwise the shadow phi would merely mirror
     *        the original value and the CheckEq could never fire.
     */
    Value *
    duplicate(Value *v, bool is_root = false)
    {
        auto it = valueMap.find(v);
        if (it != valueMap.end())
            return it->second;

        auto *inst = dynamic_cast<Instruction *>(v);
        if (!inst) {
            // Arguments and constants are their own duplicates.
            return v;
        }

        // Optimization 2 (Fig. 9): cut the chain at a check-amenable
        // instruction; the value-check pass will cover it.
        if (!is_root && opts.profile && opts.enableOpt2 &&
            inst->profileId() >= 0 &&
            opts.profile->amenable(
                static_cast<unsigned>(inst->profileId()))) {
            result.opt2CheckSites.insert(inst);
            valueMap[v] = v;
            return v;
        }

        if (chainDisposition(*inst) == ChainDisposition::Terminate) {
            // Loads, calls, allocas, foreign phis: chain boundary.
            valueMap[v] = v;
            return v;
        }

        auto clone = cloneForDuplication(*inst);
        for (std::size_t i = 0; i < clone->numOperands(); ++i) {
            Value *dup_op = duplicate(clone->operand(i));
            if (dup_op != clone->operand(i))
                clone->setOperand(i, dup_op);
        }
        Instruction *raw =
            inst->parent()->insertAfter(inst, std::move(clone));
        valueMap[v] = raw;
        ++result.duplicatedInstrs;
        return raw;
    }

    /** CheckEq(orig, dup) before @p latch's terminator (deduplicated
     * per (value, block) pair). */
    void
    insertEqCheck(Value *orig, Value *dup, BasicBlock *latch)
    {
        if (!checkedPairs.insert({orig, latch}).second)
            return;
        Instruction *term = latch->terminator();
        scAssert(term, "latch without terminator");
        builder.setInsertBefore(term);
        builder.createCheckEq(orig, dup, nextCheckId++);
        ++result.eqChecks;
    }

    Function &func;
    const DuplicationOptions &opts;
    int &nextCheckId;
    IRBuilder builder;
    std::map<Value *, Value *> valueMap;
    std::set<std::pair<Value *, BasicBlock *>> checkedPairs;
    DuplicationResult result;
};

} // namespace

DuplicationResult
duplicateStateVariables(Function &fn, const DuplicationOptions &opts,
                        int &next_check_id)
{
    if (!fn.entry())
        return {};
    return Duplicator(fn, opts, next_check_id).run();
}

} // namespace softcheck
