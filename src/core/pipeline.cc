#include "core/pipeline.hh"

#include "analysis/dominance_verify.hh"
#include "core/full_duplication.hh"
#include "ir/verifier.hh"
#include "support/error.hh"
#include "support/text.hh"

namespace softcheck
{

const char *
hardeningModeName(HardeningMode m)
{
    switch (m) {
      case HardeningMode::Original: return "Original";
      case HardeningMode::DupOnly: return "Dup only";
      case HardeningMode::DupValChks: return "Dup + val chks";
      case HardeningMode::FullDup: return "Full duplication";
    }
    return "?";
}

std::string
HardeningReport::str() const
{
    return strformat(
        "%s: state_vars=%u shadow_phis=%u dup=%u eq_chks=%u "
        "val_chks=%u [one=%u two=%u range=%u] opt1_suppressed=%u "
        "opt2_stops=%u | %s",
        hardeningModeName(mode), stateVars, shadowPhis,
        duplicatedInstrs, eqChecks, valueChecks, checkOne, checkTwo,
        checkRange, suppressedByOpt1, opt2Stops, stats.str().c_str());
}

HardeningReport
hardenModule(Module &m, const HardeningOptions &opts,
             const ProfileData *profile)
{
    HardeningReport report;
    report.mode = opts.mode;
    int next_check_id = 0;

    switch (opts.mode) {
      case HardeningMode::Original:
        break;

      case HardeningMode::DupOnly: {
        DuplicationOptions dopts;
        dopts.profile = nullptr; // no Opt 2 without value checks
        for (Function *fn : m.functions()) {
            auto r = duplicateStateVariables(*fn, dopts, next_check_id);
            report.stateVars += r.stateVars;
            report.shadowPhis += r.shadowPhis;
            report.duplicatedInstrs += r.duplicatedInstrs;
            report.eqChecks += r.eqChecks;
        }
        break;
      }

      case HardeningMode::DupValChks: {
        if (!profile)
            scFatal("DupValChks requires profile data");
        DuplicationOptions dopts;
        dopts.profile = opts.enableOpt2 ? profile : nullptr;
        dopts.enableOpt2 = opts.enableOpt2;
        for (Function *fn : m.functions()) {
            auto dr = duplicateStateVariables(*fn, dopts, next_check_id);
            report.stateVars += dr.stateVars;
            report.shadowPhis += dr.shadowPhis;
            report.duplicatedInstrs += dr.duplicatedInstrs;
            report.eqChecks += dr.eqChecks;
            report.opt2Stops +=
                static_cast<unsigned>(dr.opt2CheckSites.size());

            ValueCheckOptions vopts;
            vopts.enableOpt1 = opts.enableOpt1;
            vopts.forced = std::move(dr.opt2CheckSites);
            auto vr = insertValueChecks(*fn, *profile, vopts,
                                        next_check_id);
            report.valueChecks += vr.checksInserted;
            report.checkOne += vr.checkOne;
            report.checkTwo += vr.checkTwo;
            report.checkRange += vr.checkRange;
            report.suppressedByOpt1 += vr.suppressedByOpt1;
        }
        break;
      }

      case HardeningMode::FullDup: {
        for (Function *fn : m.functions()) {
            auto r = fullyDuplicate(*fn, next_check_id);
            report.shadowPhis += r.shadowPhis;
            report.duplicatedInstrs += r.duplicatedInstrs;
            report.eqChecks += r.eqChecks;
        }
        break;
      }
    }

    report.numCheckIds = static_cast<unsigned>(next_check_id);

    verifyModuleOrDie(m);
    for (Function *fn : m.functions()) {
        auto probs = verifyDominance(*fn);
        if (!probs.empty())
            scFatal("dominance verification failed after hardening: ",
                    probs.front());
    }
    m.renumberAll();
    report.stats = collectStaticStats(m);
    return report;
}

} // namespace softcheck
