#include "core/pipeline.hh"

#include "analysis/dominance_verify.hh"
#include "analysis/protection_audit.hh"
#include "analysis/range_analysis.hh"
#include "core/full_duplication.hh"
#include "ir/verifier.hh"
#include "support/error.hh"
#include "support/text.hh"

namespace softcheck
{

const char *
hardeningModeName(HardeningMode m)
{
    switch (m) {
      case HardeningMode::Original: return "Original";
      case HardeningMode::DupOnly: return "Dup only";
      case HardeningMode::DupValChks: return "Dup + val chks";
      case HardeningMode::FullDup: return "Full duplication";
    }
    return "?";
}

std::string
HardeningReport::str() const
{
    return strformat(
        "%s: state_vars=%u shadow_phis=%u dup=%u eq_chks=%u "
        "val_chks=%u [one=%u two=%u range=%u] opt1_suppressed=%u "
        "opt2_stops=%u vacuous=%u elided=%u fp_risk=%u | %s | %s",
        hardeningModeName(mode), stateVars, shadowPhis,
        duplicatedInstrs, eqChecks, valueChecks, checkOne, checkTwo,
        checkRange, suppressedByOpt1, opt2Stops, vacuousChecks,
        elidedChecks, fpRiskChecks, protection.str().c_str(),
        stats.str().c_str());
}

namespace
{

/**
 * Debug-build safety net: structurally verify the function and its SSA
 * dominance right after a hardening stage touched it, failing loudly
 * with the stage name. Compiled out of Release builds, where the
 * end-of-pipeline verification still runs.
 */
void
debugVerifyStage([[maybe_unused]] Function &fn,
                 [[maybe_unused]] const char *stage)
{
#ifndef NDEBUG
    auto probs = verifyFunction(fn);
    if (!probs.empty())
        scFatal("IR verification failed after ", stage, " of ",
                fn.name(), ": ", probs.front());
    probs = verifyDominance(fn);
    if (!probs.empty())
        scFatal("dominance verification failed after ", stage, " of ",
                fn.name(), ": ", probs.front());
#endif
}

} // namespace

HardeningReport
hardenModule(Module &m, const HardeningOptions &opts,
             const ProfileData *profile)
{
    HardeningReport report;
    report.mode = opts.mode;
    int next_check_id = 0;
    AuditOptions audit_opts;

    switch (opts.mode) {
      case HardeningMode::Original:
        break;

      case HardeningMode::DupOnly: {
        DuplicationOptions dopts;
        dopts.profile = nullptr; // no Opt 2 without value checks
        for (Function *fn : m.functions()) {
            auto r = duplicateStateVariables(*fn, dopts, next_check_id);
            report.stateVars += r.stateVars;
            report.shadowPhis += r.shadowPhis;
            report.duplicatedInstrs += r.duplicatedInstrs;
            report.eqChecks += r.eqChecks;
            debugVerifyStage(*fn, "duplication");
        }
        break;
      }

      case HardeningMode::DupValChks: {
        if (!profile)
            scFatal("DupValChks requires profile data");
        DuplicationOptions dopts;
        dopts.profile = opts.enableOpt2 ? profile : nullptr;
        dopts.enableOpt2 = opts.enableOpt2;
        for (Function *fn : m.functions()) {
            auto dr = duplicateStateVariables(*fn, dopts, next_check_id);
            report.stateVars += dr.stateVars;
            report.shadowPhis += dr.shadowPhis;
            report.duplicatedInstrs += dr.duplicatedInstrs;
            report.eqChecks += dr.eqChecks;
            report.opt2Stops +=
                static_cast<unsigned>(dr.opt2CheckSites.size());
            debugVerifyStage(*fn, "duplication");

            ValueCheckOptions vopts;
            vopts.enableOpt1 = opts.enableOpt1;
            vopts.forced = std::move(dr.opt2CheckSites);
            auto vr = insertValueChecks(*fn, *profile, vopts,
                                        next_check_id);
            report.valueChecks += vr.checksInserted;
            report.checkOne += vr.checkOne;
            report.checkTwo += vr.checkTwo;
            report.checkRange += vr.checkRange;
            report.suppressedByOpt1 += vr.suppressedByOpt1;
            report.suppressedUseless += vr.suppressedUseless;
            audit_opts.allowUncheckedCuts.insert(
                vr.uselessSuppressedSites.begin(),
                vr.uselessSuppressedSites.end());
            debugVerifyStage(*fn, "value checks");
        }
        break;
      }

      case HardeningMode::FullDup: {
        for (Function *fn : m.functions()) {
            auto r = fullyDuplicate(*fn, next_check_id);
            report.shadowPhis += r.shadowPhis;
            report.duplicatedInstrs += r.duplicatedInstrs;
            report.eqChecks += r.eqChecks;
            debugVerifyStage(*fn, "full duplication");
        }
        break;
      }
    }

    report.numCheckIds = static_cast<unsigned>(next_check_id);

    verifyModuleOrDie(m);
    for (Function *fn : m.functions()) {
        auto probs = verifyDominance(*fn);
        if (!probs.empty())
            scFatal("dominance verification failed after hardening: ",
                    probs.front());
    }
    m.renumberAll();

    // Static protection audit: verify the structural contract the
    // hardening passes guarantee, classify coverage, and classify each
    // value check against the static value ranges. Optionally elide
    // checks proven vacuous — the interpreter keeps fetching (and
    // costing) them, so campaigns stay bit-identical, but the
    // comparisons disappear from the dynamic check count.
    for (Function *fn : m.functions()) {
        RangeAnalysis ranges(*fn);
        AuditResult ar = auditProtection(*fn, ranges, audit_opts);
        if (!ar.violations.empty())
            scFatal("protection audit failed for ", fn->name(), ": [",
                    auditViolationKindName(ar.violations.front().kind),
                    "] ", ar.violations.front().message);
        report.protection.merge(ar.counts);
        for (const CheckReport &cr : ar.checks) {
            if (cr.vacuous) {
                ++report.vacuousChecks;
                if (opts.elideVacuousChecks) {
                    const_cast<Instruction *>(cr.check)
                        ->setElided(true);
                    ++report.elidedChecks;
                }
            }
            if (cr.fpRisk)
                ++report.fpRiskChecks;
        }
    }
    m.renumberAll(); // the audit renumbers per function; restore

    report.uncheckedCutSites = std::move(audit_opts.allowUncheckedCuts);
    report.stats = collectStaticStats(m, &report.protection);
    return report;
}

} // namespace softcheck
