/**
 * @file
 * Full-duplication baseline (SWIFT-style; the paper's "full
 * duplication" comparison point with 57% overhead and 1.4% USDC).
 * Every pure value-producing instruction is duplicated in the same
 * thread of execution; loads and stores are NOT duplicated, matching
 * the paper's statement that full duplication is the maximum
 * duplication possible without duplicating loads/stores. Comparisons
 * are inserted at synchronization points: store value and address,
 * conditional-branch conditions, call arguments, and return values.
 */

#ifndef SOFTCHECK_CORE_FULL_DUPLICATION_HH
#define SOFTCHECK_CORE_FULL_DUPLICATION_HH

#include "ir/function.hh"

namespace softcheck
{

struct FullDuplicationResult
{
    unsigned duplicatedInstrs = 0;
    unsigned shadowPhis = 0;
    unsigned eqChecks = 0;
};

/** Apply full duplication to @p fn. */
FullDuplicationResult fullyDuplicate(Function &fn, int &next_check_id);

} // namespace softcheck

#endif // SOFTCHECK_CORE_FULL_DUPLICATION_HH
