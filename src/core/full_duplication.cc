#include "core/full_duplication.hh"

#include <map>
#include <vector>

#include "analysis/producer_chain.hh"
#include "ir/irbuilder.hh"
#include "support/error.hh"

namespace softcheck
{

FullDuplicationResult
fullyDuplicate(Function &fn, int &next_check_id)
{
    FullDuplicationResult result;
    if (!fn.entry())
        return result;

    IRBuilder builder(*fn.parent());
    std::map<Value *, Value *> value_map;

    const auto rpo = fn.reversePostOrder();

    // Phase 1: shadow phi for every phi (empty; wired in phase 3).
    for (BasicBlock *bb : rpo) {
        for (Instruction *phi : bb->phis()) {
            auto shadow = cloneForDuplication(*phi);
            shadow->dropAllOperands();
            Instruction *raw = bb->insertAfter(phi, std::move(shadow));
            value_map[phi] = raw;
            ++result.shadowPhis;
        }
    }

    auto mapped = [&](Value *v) {
        auto it = value_map.find(v);
        return it == value_map.end() ? v : it->second;
    };

    // Phase 2: duplicate every pure value-producing instruction. RPO
    // order guarantees operand duplicates exist before their users
    // (back edges only feed phis, which were pre-created).
    for (BasicBlock *bb : rpo) {
        // Snapshot: we insert while walking.
        std::vector<Instruction *> originals;
        for (auto &inst : *bb) {
            if (!inst->isDuplicate() &&
                chainDisposition(*inst) == ChainDisposition::Include)
                originals.push_back(inst.get());
        }
        for (Instruction *inst : originals) {
            auto clone = cloneForDuplication(*inst);
            for (std::size_t i = 0; i < clone->numOperands(); ++i) {
                Value *dup_op = mapped(clone->operand(i));
                if (dup_op != clone->operand(i))
                    clone->setOperand(i, dup_op);
            }
            Instruction *raw = bb->insertAfter(inst, std::move(clone));
            value_map[inst] = raw;
            ++result.duplicatedInstrs;
        }
    }

    // Phase 3: wire shadow phi incomings with mapped values.
    for (BasicBlock *bb : rpo) {
        for (Instruction *phi : bb->phis()) {
            if (phi->isDuplicate())
                continue;
            auto *shadow = static_cast<Instruction *>(value_map.at(phi));
            for (std::size_t i = 0; i < phi->numOperands(); ++i)
                shadow->addIncoming(mapped(phi->operand(i)),
                                    phi->incomingBlock(i));
        }
    }

    // Phase 4: comparison checks at synchronization points.
    auto check_operand = [&](Instruction *before, Value *v) {
        Value *dup = mapped(v);
        if (dup == v)
            return;
        builder.setInsertBefore(before);
        builder.createCheckEq(v, dup, next_check_id++);
        ++result.eqChecks;
    };

    for (BasicBlock *bb : rpo) {
        std::vector<Instruction *> sync_points;
        for (auto &inst : *bb) {
            switch (inst->opcode()) {
              case Opcode::Store:
              case Opcode::CondBr:
              case Opcode::Ret:
              case Opcode::Call:
                if (!inst->isDuplicate())
                    sync_points.push_back(inst.get());
                break;
              default:
                break;
            }
        }
        for (Instruction *sp : sync_points) {
            for (std::size_t i = 0; i < sp->numOperands(); ++i)
                check_operand(sp, sp->operand(i));
        }
    }

    return result;
}

} // namespace softcheck
