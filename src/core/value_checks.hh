/**
 * @file
 * Expected-value check insertion (paper Sec. III-C, Fig. 6), including
 * Optimization 1 (Fig. 8): when several check-amenable instructions are
 * connected in a producer chain, only the deepest one — the one whose
 * value no other amenable instruction consumes through pure
 * operations — receives a check.
 *
 * Optimization 2 termination points reported by the duplication pass
 * are forced: they always receive a check, because the duplicated
 * chain's integrity depends on them.
 */

#ifndef SOFTCHECK_CORE_VALUE_CHECKS_HH
#define SOFTCHECK_CORE_VALUE_CHECKS_HH

#include <set>

#include "ir/function.hh"
#include "profile/profile_data.hh"

namespace softcheck
{

struct ValueCheckOptions
{
    /** Apply Optimization 1 (deepest-point checks). */
    bool enableOpt1 = true;
    /** Sites forced by Optimization 2 (may be empty). */
    std::set<Instruction *> forced;
};

struct ValueCheckResult
{
    unsigned checksInserted = 0;
    unsigned checkOne = 0;
    unsigned checkTwo = 0;
    unsigned checkRange = 0;
    unsigned suppressedByOpt1 = 0;
    /** Range checks skipped because they span the whole type domain. */
    unsigned suppressedUseless = 0;
    /** The sites those suppressed checks would have guarded. A forced
     * (Opt-2) site in this set is a legitimately unchecked chain cut. */
    std::set<const Instruction *> uselessSuppressedSites;
};

/**
 * Insert expected-value checks into @p fn according to @p profile.
 *
 * @param next_check_id module-wide check-id counter (in/out)
 */
ValueCheckResult insertValueChecks(Function &fn,
                                   const ProfileData &profile,
                                   const ValueCheckOptions &opts,
                                   int &next_check_id);

} // namespace softcheck

#endif // SOFTCHECK_CORE_VALUE_CHECKS_HH
