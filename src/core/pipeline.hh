/**
 * @file
 * HardeningPipeline — the library's top-level entry point. Applies one
 * of the paper's configurations to a module:
 *
 *  - Original:    no transformation (baseline)
 *  - DupOnly:     state-variable producer-chain duplication (Fig. 12's
 *                 "Dup only")
 *  - DupValChks:  duplication + expected-value checks with both
 *                 optimizations ("Dup + val chks")
 *  - FullDup:     SWIFT-style full duplication (comparison baseline)
 *
 * The pipeline verifies the transformed IR (structure + SSA dominance)
 * and renumbers it, leaving the module ready for ExecModule.
 */

#ifndef SOFTCHECK_CORE_PIPELINE_HH
#define SOFTCHECK_CORE_PIPELINE_HH

#include <string>

#include "analysis/protection_audit.hh"
#include "analysis/static_stats.hh"
#include "core/duplication.hh"
#include "core/value_checks.hh"
#include "profile/profile_data.hh"

namespace softcheck
{

enum class HardeningMode : uint8_t
{
    Original,
    DupOnly,
    DupValChks,
    FullDup,
};

const char *hardeningModeName(HardeningMode m);

struct HardeningOptions
{
    HardeningMode mode = HardeningMode::DupValChks;
    bool enableOpt1 = true; //!< deepest-point value checks (Fig. 8)
    bool enableOpt2 = true; //!< cut duplication at amenable values (Fig. 9)
    /**
     * Elide checks the protection audit proves vacuous (the pass set
     * covers everything corrupted operands can produce). Elided checks
     * stay in the instruction stream with their full fetch/cycle cost,
     * so campaign outcomes are bit-identical; only the comparison is
     * skipped.
     */
    bool elideVacuousChecks = false;
};

struct HardeningReport
{
    HardeningMode mode = HardeningMode::Original;
    unsigned stateVars = 0;
    unsigned shadowPhis = 0;
    unsigned duplicatedInstrs = 0;
    unsigned eqChecks = 0;
    unsigned valueChecks = 0;
    unsigned checkOne = 0;
    unsigned checkTwo = 0;
    unsigned checkRange = 0;
    unsigned suppressedByOpt1 = 0;
    unsigned opt2Stops = 0;
    /** Range checks skipped at insertion (full type-domain bound). */
    unsigned suppressedUseless = 0;
    unsigned numCheckIds = 0;   //!< total check ids allocated
    unsigned vacuousChecks = 0; //!< checks the audit proved can't fire
    unsigned elidedChecks = 0;  //!< vacuous checks actually elided
    unsigned fpRiskChecks = 0;  //!< static range escapes the pass set
    ProtectionCounts protection; //!< audit coverage classification
    StaticStats stats;           //!< post-transform static statistics
    /** Opt-2 cut sites whose replacement check was suppressed as
     * useless (full-domain bound). Feed to
     * AuditOptions::allowUncheckedCuts when re-auditing the module. */
    std::set<const Instruction *> uncheckedCutSites;

    std::string str() const;
};

/**
 * Transform @p m in place.
 *
 * @param profile required for DupValChks (value checks and Opt 2);
 *                ignored by the other modes (may be null)
 */
HardeningReport hardenModule(Module &m, const HardeningOptions &opts,
                             const ProfileData *profile = nullptr);

} // namespace softcheck

#endif // SOFTCHECK_CORE_PIPELINE_HH
