#include "core/state_vars.hh"

namespace softcheck
{

std::vector<StateVar>
findStateVariables(const Function &fn, const LoopInfo &li)
{
    std::vector<StateVar> out;
    (void)fn;
    for (const auto &loop : li.loops()) {
        for (Instruction *phi : loop->header->phis()) {
            StateVar sv;
            sv.phi = phi;
            sv.loop = loop.get();
            for (std::size_t i = 0; i < phi->numBlockOperands(); ++i) {
                if (loop->contains(phi->incomingBlock(i)))
                    sv.updateEdges.push_back(i);
            }
            if (!sv.updateEdges.empty())
                out.push_back(std::move(sv));
        }
    }
    return out;
}

} // namespace softcheck
