/**
 * @file
 * Application-dependent output-quality (fidelity) metrics from the
 * paper's Table I: PSNR for image/video/mp3 audio, segmental SNR for
 * G.721 audio, output-matrix mismatch for vision kernels, and
 * classification-error deviation for the ML kernels.
 *
 * A metric compares the output of a (possibly faulty) run against the
 * fault-free golden output of the same program; acceptable() applies
 * the paper's thresholds (30 dB PSNR, 80 dB segmental SNR, 10 %
 * mismatch/deviation).
 */

#ifndef SOFTCHECK_FIDELITY_FIDELITY_HH
#define SOFTCHECK_FIDELITY_FIDELITY_HH

#include <string>
#include <vector>

namespace softcheck
{

enum class FidelityKind : uint8_t
{
    Psnr,           //!< peak signal-to-noise ratio (dB), higher better
    SegmentalSnr,   //!< frame-averaged SNR (dB), higher better
    Mismatch,       //!< fraction of differing elements, lower better
    ClassErrorDelta //!< fraction of differing labels, lower better
};

const char *fidelityKindName(FidelityKind k);

/** PSNR in dB between two signals. Identical signals => +infinity. */
double psnr(const std::vector<double> &golden,
            const std::vector<double> &test, double peak = 255.0);

/**
 * Segmental SNR: SNR computed per frame of @p frame_len samples and
 * averaged (each frame's SNR clamped into [0, 120] dB, standard
 * practice so silent frames do not dominate). All-silent frames
 * (zero signal and zero noise, e.g. padding) carry no information and
 * are excluded from the average; if every frame is silent the
 * no-frames sentinel (-inf) is returned.
 */
double segmentalSnr(const std::vector<double> &golden,
                    const std::vector<double> &test,
                    std::size_t frame_len = 256);

/** Fraction of positions where the two outputs differ (exact). */
double mismatchFraction(const std::vector<double> &golden,
                        const std::vector<double> &test);

/** Evaluate a metric. Length mismatch yields the worst score. */
double fidelityScore(FidelityKind kind,
                     const std::vector<double> &golden,
                     const std::vector<double> &test);

/** Apply the paper's per-metric threshold direction. */
bool fidelityAcceptable(FidelityKind kind, double score,
                        double threshold);

} // namespace softcheck

#endif // SOFTCHECK_FIDELITY_FIDELITY_HH
