#include "fidelity/fidelity.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace softcheck
{

const char *
fidelityKindName(FidelityKind k)
{
    switch (k) {
      case FidelityKind::Psnr: return "PSNR";
      case FidelityKind::SegmentalSnr: return "segSNR";
      case FidelityKind::Mismatch: return "mismatch";
      case FidelityKind::ClassErrorDelta: return "class-error";
    }
    return "?";
}

double
psnr(const std::vector<double> &golden, const std::vector<double> &test,
     double peak)
{
    if (golden.size() != test.size() || golden.empty())
        return -std::numeric_limits<double>::infinity();
    double mse = 0.0;
    for (std::size_t i = 0; i < golden.size(); ++i) {
        const double d = golden[i] - test[i];
        mse += d * d;
    }
    mse /= static_cast<double>(golden.size());
    if (mse == 0.0)
        return std::numeric_limits<double>::infinity();
    if (!std::isfinite(mse))
        return -std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(peak * peak / mse);
}

double
segmentalSnr(const std::vector<double> &golden,
             const std::vector<double> &test, std::size_t frame_len)
{
    if (golden.size() != test.size() || golden.empty() || frame_len == 0)
        return -std::numeric_limits<double>::infinity();
    double total = 0.0;
    std::size_t frames = 0;
    for (std::size_t start = 0; start < golden.size();
         start += frame_len) {
        const std::size_t end =
            std::min(golden.size(), start + frame_len);
        double sig = 0.0, noise = 0.0;
        for (std::size_t i = start; i < end; ++i) {
            sig += golden[i] * golden[i];
            const double d = golden[i] - test[i];
            noise += d * d;
        }
        // All-silent frames (no signal, no corruption — e.g. padding)
        // carry no information; counting them at the 120 dB cap would
        // inflate the average.
        if (sig == 0.0 && noise == 0.0)
            continue;
        double snr_db;
        if (noise == 0.0)
            snr_db = 120.0;
        else if (sig == 0.0 || !std::isfinite(noise))
            snr_db = 0.0;
        else
            snr_db = std::clamp(10.0 * std::log10(sig / noise), 0.0,
                                120.0);
        total += snr_db;
        ++frames;
    }
    if (frames == 0)
        return -std::numeric_limits<double>::infinity();
    return total / static_cast<double>(frames);
}

double
mismatchFraction(const std::vector<double> &golden,
                 const std::vector<double> &test)
{
    if (golden.size() != test.size() || golden.empty())
        return 1.0;
    std::size_t diff = 0;
    for (std::size_t i = 0; i < golden.size(); ++i) {
        if (golden[i] != test[i])
            ++diff;
    }
    return static_cast<double>(diff) /
           static_cast<double>(golden.size());
}

double
fidelityScore(FidelityKind kind, const std::vector<double> &golden,
              const std::vector<double> &test)
{
    switch (kind) {
      case FidelityKind::Psnr:
        return psnr(golden, test);
      case FidelityKind::SegmentalSnr:
        return segmentalSnr(golden, test);
      case FidelityKind::Mismatch:
      case FidelityKind::ClassErrorDelta:
        return mismatchFraction(golden, test);
    }
    return 0.0;
}

bool
fidelityAcceptable(FidelityKind kind, double score, double threshold)
{
    switch (kind) {
      case FidelityKind::Psnr:
      case FidelityKind::SegmentalSnr:
        return score >= threshold;
      case FidelityKind::Mismatch:
      case FidelityKind::ClassErrorDelta:
        return score <= threshold;
    }
    return false;
}

} // namespace softcheck
