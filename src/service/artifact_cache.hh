/**
 * @file
 * Content-hash keyed artifact cache for campaign characterizations.
 *
 * A characterization — hardened module, false-positive calibration,
 * golden run, checkpoint snapshot chain — is a deterministic function
 * of (workload source, hardening knobs, cost model, checkpoint knobs).
 * This cache serializes finished CellCharacterizations into bundle
 * files named by a 128-bit FNV-1a hash of a canonical key string over
 * exactly those inputs, so a repeated campaign or suite request skips
 * the compile / profile / baseline / golden phases entirely and goes
 * straight to injection trials.
 *
 * Deliberately NOT part of the key (and why reuse stays bit-identical):
 *  - seed, trials count (beyond trials > 0), sampling: the
 *    characterization is seed-independent; the stratified planner's
 *    ModuleFaultSpace is a pure module analysis rebuilt on load.
 *  - tier, lanes, threads: the execution tiers are bit-identical by
 *    construction (tests/fault/test_tier_campaign.cc), and the
 *    threaded translation is rebuilt on load for the requesting tier.
 *  - timeoutFactor, hwDetectWindowCycles: trial-phase knobs.
 *
 * Collisions: the full key string is stored inside the bundle and
 * verified on load — a 128-bit filename collision degrades to a cache
 * miss, never to a wrong characterization.
 *
 * Stores are atomic (temp file + rename into place), so concurrent
 * writers of the same key — two daemon jobs, a suite and a standalone
 * campaign — race benignly: both produce identical bytes and the
 * loser's rename simply replaces them.
 */

#ifndef SOFTCHECK_SERVICE_ARTIFACT_CACHE_HH
#define SOFTCHECK_SERVICE_ARTIFACT_CACHE_HH

#include <string>

#include "fault/campaign_internal.hh"

namespace softcheck::service
{

/** Canonical, human-readable cache key text for @p config's
 * characterization (see file comment for what is included). */
std::string cellCacheKey(const CampaignConfig &config);

/** Full path of @p config's bundle file inside
 * config.artifactCacheDir (which must be non-empty). */
std::string cellCachePath(const CampaignConfig &config);

/**
 * Serialize @p cell into a self-contained bundle: key text, printed
 * IR of the hardened module, hardening report, characterization
 * scalars, calibration, golden run, and the snapshot chain through one
 * shared page pool (COW sharing survives the round trip — see
 * serialize.hh), closed by a whole-payload content checksum so any
 * flipped bit in a stored bundle is a detectable miss, never a
 * silently different characterization.
 */
std::string serializeCell(const campaign_detail::CellCharacterization &cell,
                          const CampaignConfig &config);

/**
 * Rebuild a CellCharacterization from @p bytes: reparse the IR,
 * rebuild ExecModule / threaded translation / fault space for
 * @p config's tier and sampling plan, and deserialize the rest.
 * scFatal (FatalError) on corrupt or truncated bundles; when
 * @p expected_key is non-empty, also on key mismatch.
 */
campaign_detail::CellCharacterization
deserializeCell(std::string_view bytes, const CampaignConfig &config,
                const std::string &expected_key);

/** Load @p config's characterization from the cache. Returns false on
 * miss, corrupt bundle, or key (hash-collision) mismatch — never
 * throws for those; the caller falls back to characterizing. On hit,
 * @p out has servedFromCache set and phase times zeroed except
 * cacheLoadSeconds. */
bool loadCachedCell(const CampaignConfig &config,
                    campaign_detail::CellCharacterization &out);

/** Serialize @p cell and store it atomically under @p config's key.
 * Returns the bundle path. Creates the cache directory as needed;
 * scFatal on I/O failure. */
std::string
storeCachedCell(const CampaignConfig &config,
                const campaign_detail::CellCharacterization &cell);

/** Cheap existence probe (no deserialization; a later load may still
 * miss on corruption). Used by the suite to decide its task graph. */
bool probeCachedCell(const CampaignConfig &config);

/** Write @p bytes to a fresh temp file (for shard bundles when no
 * cache directory is configured). Returns the path; caller unlinks. */
std::string writeTempBundle(const std::string &bytes);

/** Read a whole file; scFatal when unreadable. */
std::string readFileBytes(const std::string &path);

/**
 * One characterization, however it was obtained, plus where its
 * serialized bundle lives when the caller asked for one (shard workers
 * deserialize the bundle file — the same bytes a cache hit would read
 * — so sharding exercises the serialization path end to end).
 */
struct ObtainedCell
{
    campaign_detail::CellCharacterization cell;
    bool cacheHit = false;
    std::string bundlePath; //!< "" when not needed
    bool bundleIsTemp = false;

    /** Unlink a temp bundle (no-op otherwise). */
    void cleanup();
};

/**
 * The one entry point both runCampaign and the suite use: load from
 * the cache when configured (falling back to characterizing on any
 * miss), characterize otherwise (forwarding @p shared /
 * @p suite_pages exactly like characterizeCell), store fresh results
 * back, and materialize a bundle file when @p need_bundle (shards).
 * Cache-hit snapshots are accounted against @p suite_pages like
 * computed ones.
 */
ObtainedCell
obtainCharacterization(const CampaignConfig &config,
                       const campaign_detail::SharedArtifacts *shared,
                       campaign_detail::SnapshotAccounting *suite_pages,
                       bool need_bundle);

} // namespace softcheck::service

#endif // SOFTCHECK_SERVICE_ARTIFACT_CACHE_HH
