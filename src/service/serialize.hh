/**
 * @file
 * Byte-stream serializers for execution state: ExecState, Snapshot,
 * PreparedRun, RunResult, and HardeningReport. The foundation both
 * halves of the campaign service stand on — the artifact cache
 * persists characterizations (golden run + snapshot chain) across
 * processes and requests, and trial sharding ships the same bundle
 * into fresh worker address spaces.
 *
 * Two non-obvious contracts:
 *
 * - Function pointers inside ExecFrames travel as ExecModule function
 *   indices. The reader resolves them against *its* ExecModule, so a
 *   shard worker that re-built the module from printed IR gets frames
 *   pointing into its own translation. ExecModule construction is a
 *   deterministic function of the (printed/reparsed) module, so slot
 *   numbering, branch-site ids, and check ids all line up.
 *
 * - Memories serialize through a shared page pool (Memory::serialize),
 *   so a snapshot chain's COW page sharing survives the round trip:
 *   the serialized chain costs its resident bytes, not K full copies,
 *   and deserialized snapshots still compare/restore by page identity.
 *
 * The recent-write rings are serialized in full: they feed fault-site
 * selection, so a trial resumed from a deserialized snapshot must draw
 * the same injection target as an in-process trial.
 */

#ifndef SOFTCHECK_SERVICE_SERIALIZE_HH
#define SOFTCHECK_SERVICE_SERIALIZE_HH

#include "core/pipeline.hh"
#include "interp/interpreter.hh"
#include "support/byte_io.hh"
#include "workloads/workload.hh"

namespace softcheck::service
{

/** Index of @p fn within @p em; scAssert when @p fn is not one of
 * em's functions. */
uint32_t execFunctionIndex(const ExecModule &em, const ExecFunction *fn);

void writeExecState(ByteWriter &w, const ExecState &st,
                    const ExecModule &em);
ExecState readExecState(ByteReader &r, const ExecModule &em);

void writeSnapshot(ByteWriter &w, const Snapshot &s, const ExecModule &em,
                   Memory::PagePoolWriter &pool);
Snapshot readSnapshot(ByteReader &r, const ExecModule &em,
                      Memory::PagePoolReader &pool);

void writeRunResult(ByteWriter &w, const RunResult &res);
RunResult readRunResult(ByteReader &r);

/** uncheckedCutSites (live Instruction pointers, only consumed by
 * re-audit tooling) is deliberately dropped; everything else round
 * trips. */
void writeHardeningReport(ByteWriter &w, const HardeningReport &rep);
HardeningReport readHardeningReport(ByteReader &r);

void writePreparedRun(ByteWriter &w, const PreparedRun &pr,
                      Memory::PagePoolWriter &pool);
PreparedRun readPreparedRun(ByteReader &r, Memory::PagePoolReader &pool);

} // namespace softcheck::service

#endif // SOFTCHECK_SERVICE_SERIALIZE_HH
