#include "service/artifact_cache.hh"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "ir/parser.hh"
#include "ir/printer.hh"
#include "service/serialize.hh"
#include "support/error.hh"
#include "support/text.hh"

namespace softcheck::service
{

using campaign_detail::CellCharacterization;
using campaign_detail::SharedArtifacts;
using campaign_detail::SnapshotAccounting;
using campaign_detail::Stopwatch;
using campaign_detail::characterizeCell;

namespace
{

constexpr uint64_t kBundleMagic = 0x534343454C4C3176ull;   // "SCCELL1v"
constexpr uint64_t kBundleTrailer = 0x454E44434C4C3176ull; // "ENDCLL1v"
/** Second FNV-1a basis: with the default basis it forms the 128-bit
 * filename hash and the whole-bundle content checksum. */
constexpr uint64_t kFnvBasis2 = 0x6c62272e07bb0142ull;

/** Canonical bit-exact text for a double (hexfloat-equivalent). */
std::string
bitsOf(double v)
{
    uint64_t b = 0;
    static_assert(sizeof(b) == sizeof(v));
    std::memcpy(&b, &v, sizeof(b));
    return strformat("%016llx", static_cast<unsigned long long>(b));
}

} // namespace

std::string
cellCacheKey(const CampaignConfig &c)
{
    const Workload &w = getWorkload(c.workload);
    std::string k = "softcheck-cell-v1\n";
    k += "workload=" + w.name + "\n";
    k += strformat("source_fnv=%016llx\n",
                   static_cast<unsigned long long>(fnv1a64(w.source)));
    k += "entry=" + w.entry + "\n";
    k += strformat("mode=%d\n", static_cast<int>(c.mode));
    k += strformat("opt1=%d opt2=%d elide=%d swap=%d\n", c.enableOpt1,
                   c.enableOpt2, c.elideVacuousChecks, c.swapTrainTest);
    k += strformat("policy=%u,%llu,%s,%s,%s,%s\n", c.policy.histogramBins,
                   static_cast<unsigned long long>(c.policy.minSamples),
                   bitsOf(c.policy.coverageThreshold).c_str(),
                   bitsOf(c.policy.intRangeThreshold).c_str(),
                   bitsOf(c.policy.floatRangeThreshold).c_str(),
                   bitsOf(c.policy.rangeSlack).c_str());
    k += strformat("cost=%u,%u,%u,%u,%u,%u,%u,%u,%u\n",
                   c.cost.issueWidth, c.cost.l1dSizeKB, c.cost.l1dAssoc,
                   c.cost.lineBytes, c.cost.l1dMissPenalty,
                   c.cost.branchMispredictPenalty, c.cost.divExtraCycles,
                   c.cost.mathExtraCycles, c.cost.predictorEntries);
    // The snapshot chain is recorded only when a trial phase will run,
    // and its schedule depends on every checkpoint knob; trial count
    // and seed do not touch the characterization beyond that.
    k += strformat("checkpoints=%u placement=%d budget=%llu restore=%s "
                   "trials=%d\n",
                   c.checkpoints, static_cast<int>(c.placement),
                   static_cast<unsigned long long>(c.snapshotBudgetBytes),
                   bitsOf(c.restoreInstrsPerPage).c_str(), c.trials > 0);
    return k;
}

std::string
cellCachePath(const CampaignConfig &c)
{
    scAssert(!c.artifactCacheDir.empty(),
             "cellCachePath without a cache directory");
    const std::string key = cellCacheKey(c);
    // Two independent 64-bit FNV streams (distinct bases) make a
    // 128-bit name; the stored key string still backstops collisions.
    const uint64_t lo = fnv1a64(key);
    const uint64_t hi = fnv1a64(key, kFnvBasis2);
    return c.artifactCacheDir +
           strformat("/%016llx%016llx.cell",
                     static_cast<unsigned long long>(hi),
                     static_cast<unsigned long long>(lo));
}

std::string
serializeCell(const CellCharacterization &cell, const CampaignConfig &c)
{
    const CampaignResult &p = cell.proto;
    ByteWriter w;
    w.u64(kBundleMagic);
    w.str(cellCacheKey(c));
    w.str(moduleToString(*cell.module().mod));
    writeHardeningReport(w, p.report);
    w.u64(p.baselineCycles);
    w.u64(p.goldenDynInstrs);
    w.u64(p.goldenCycles);
    w.u64(p.goldenCheckEvals);
    w.u64(p.calibrationCheckFails);
    w.u32(p.disabledCheckCount);
    w.u32(p.totalCheckCount);
    w.u32(p.snapshotCount);
    w.u64(p.snapshotBytes);
    w.u64(p.snapshotBytesFullCopy);
    w.vecU64(p.snapshotDynInstrs);
    w.f64(p.expectedFastForwardInstrs);
    w.vecU8(cell.disabled);
    w.vecF64(cell.goldenSignal);
    writeRunResult(w, cell.goldenRun);
    w.vecU64(cell.snapDyn);
    w.vecU64(cell.snapNewBytes);
    w.u32(static_cast<uint32_t>(cell.snapshots.size()));
    Memory::PagePoolWriter pool;
    for (const Snapshot &s : cell.snapshots)
        writeSnapshot(w, s, *cell.module().em, pool);
    w.u64(kBundleTrailer);
    // Whole-payload content checksum (both FNV streams): structural
    // validation alone cannot catch a flipped bit inside a memory page
    // or register value, which would deserialize cleanly and silently
    // change trial outcomes. The digest makes any corruption a
    // detectable miss.
    const std::string payload = std::move(w).take();
    ByteWriter d;
    d.u64(fnv1a64(payload));
    d.u64(fnv1a64(payload, kFnvBasis2));
    return payload + d.data();
}

CellCharacterization
deserializeCell(std::string_view bytes, const CampaignConfig &config,
                const std::string &expected_key)
{
    if (bytes.size() < 16)
        scFatal("bundle too small");
    const std::string_view payload = bytes.substr(0, bytes.size() - 16);
    ByteReader digest(bytes.substr(bytes.size() - 16));
    if (digest.u64() != fnv1a64(payload) ||
        digest.u64() != fnv1a64(payload, kFnvBasis2))
        scFatal("bundle checksum mismatch");

    ByteReader r(payload);
    if (r.u64() != kBundleMagic)
        scFatal("not a characterization bundle");
    const std::string key = r.str();
    if (!expected_key.empty() && key != expected_key)
        scFatal("bundle key mismatch (hash collision or stale file)");
    const std::string ir = r.str();

    const Workload &w = getWorkload(config.workload);
    CellCharacterization cell;
    cell.proto.config = config;

    // Rebuild the executable program from the printed IR. ExecModule
    // construction is deterministic, so slot numbering, branch sites,
    // and check/profile ids match the serializing process and the
    // snapshots below resume correctly.
    cell.localModule.mod = parseIR(ir, w.name);
    cell.localModule.em = std::make_unique<ExecModule>(*cell.localModule.mod);
    if (config.tier != ExecTier::Interp)
        cell.localModule.tm =
            std::make_unique<ThreadedModule>(*cell.localModule.em);
    cell.localModule.entryIdx =
        cell.localModule.em->functionIndex(w.entry);

    CampaignResult &p = cell.proto;
    p.report = readHardeningReport(r);
    p.baselineCycles = r.u64();
    p.goldenDynInstrs = r.u64();
    p.goldenCycles = r.u64();
    p.goldenCheckEvals = r.u64();
    p.calibrationCheckFails = r.u64();
    p.disabledCheckCount = r.u32();
    p.totalCheckCount = r.u32();
    p.snapshotCount = r.u32();
    p.snapshotBytes = r.u64();
    p.snapshotBytesFullCopy = r.u64();
    p.snapshotDynInstrs = r.vecU64();
    p.expectedFastForwardInstrs = r.f64();
    cell.disabled = r.vecU8();
    cell.goldenSignal = r.vecF64();
    cell.goldenRun = readRunResult(r);
    cell.snapDyn = r.vecU64();
    cell.snapNewBytes = r.vecU64();

    const uint32_t nsnap = r.u32();
    if (nsnap != p.snapshotCount || cell.snapDyn.size() != nsnap ||
        cell.snapNewBytes.size() != nsnap)
        scFatal("bundle snapshot count mismatch");
    Memory::PagePoolReader pool;
    cell.snapshots.reserve(nsnap);
    for (uint32_t i = 0; i < nsnap; ++i)
        cell.snapshots.push_back(
            readSnapshot(r, *cell.localModule.em, pool));
    if (r.u64() != kBundleTrailer || !r.atEnd())
        scFatal("bundle trailer mismatch");

    // Per-process state the bundle deliberately omits: the test input
    // spec (closures) and the stratified planner's fault space (pure
    // module analysis, cheap next to the golden run it replaces).
    cell.localSpec = w.makeInput(config.swapTrainTest);
    if (config.sampling == SamplingPlan::Stratified && config.trials > 0)
        cell.faultSpace =
            std::make_unique<ModuleFaultSpace>(*cell.localModule.mod);
    return cell;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        scFatal("cannot read ", path);
    std::string bytes((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

namespace
{

/** Atomic write: temp file in the target directory + rename. */
void
atomicWrite(const std::string &path, const std::string &bytes)
{
    static std::atomic<unsigned> counter{0};
    const std::string tmp =
        path + strformat(".tmp.%d.%u", static_cast<int>(::getpid()),
                         counter.fetch_add(1));
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            scFatal("cannot write ", tmp);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
        if (!f)
            scFatal("short write to ", tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        scFatal("cannot rename bundle into place: ", path);
    }
}

} // namespace

bool
loadCachedCell(const CampaignConfig &config, CellCharacterization &out)
{
    const std::string path = cellCachePath(config);
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::string bytes((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
    try {
        out = deserializeCell(bytes, config, cellCacheKey(config));
    } catch (const FatalError &) {
        return false; // corrupt or colliding bundle = miss
    }
    out.proto.servedFromCache = true;
    out.proto.phase = {};
    return true;
}

std::string
storeCachedCell(const CampaignConfig &config,
                const CellCharacterization &cell)
{
    std::error_code ec;
    std::filesystem::create_directories(config.artifactCacheDir, ec);
    if (ec)
        scFatal("cannot create cache directory ",
                config.artifactCacheDir);
    const std::string path = cellCachePath(config);
    atomicWrite(path, serializeCell(cell, config));
    return path;
}

bool
probeCachedCell(const CampaignConfig &config)
{
    if (config.artifactCacheDir.empty())
        return false;
    std::error_code ec;
    return std::filesystem::exists(cellCachePath(config), ec);
}

std::string
writeTempBundle(const std::string &bytes)
{
    const char *tmpdir = std::getenv("TMPDIR");
    static std::atomic<unsigned> counter{0};
    const std::string path =
        std::string(tmpdir && *tmpdir ? tmpdir : "/tmp") +
        strformat("/softcheck-bundle-%d-%u.cell",
                  static_cast<int>(::getpid()), counter.fetch_add(1));
    atomicWrite(path, bytes);
    return path;
}

void
ObtainedCell::cleanup()
{
    if (bundleIsTemp && !bundlePath.empty()) {
        std::error_code ec;
        std::filesystem::remove(bundlePath, ec);
        bundlePath.clear();
        bundleIsTemp = false;
    }
}

ObtainedCell
obtainCharacterization(const CampaignConfig &config,
                       const SharedArtifacts *shared,
                       SnapshotAccounting *suite_pages, bool need_bundle)
{
    ObtainedCell oc;
    const bool cache_on = !config.artifactCacheDir.empty();
    if (cache_on) {
        const Stopwatch sw;
        if (loadCachedCell(config, oc.cell)) {
            oc.cacheHit = true;
            oc.cell.proto.phase.cacheLoadSeconds = sw.seconds();
            if (suite_pages) {
                std::lock_guard lock(suite_pages->mu);
                for (const Snapshot &s : oc.cell.snapshots)
                    suite_pages->bytes +=
                        s.residentPageBytes(suite_pages->seen);
            }
            if (need_bundle)
                oc.bundlePath = cellCachePath(config);
            return oc;
        }
    }
    oc.cell = characterizeCell(config, shared, suite_pages);
    if (cache_on) {
        storeCachedCell(config, oc.cell);
        if (need_bundle)
            oc.bundlePath = cellCachePath(config);
    } else if (need_bundle) {
        oc.bundlePath = writeTempBundle(serializeCell(oc.cell, config));
        oc.bundleIsTemp = true;
    }
    return oc;
}

} // namespace softcheck::service
