#include "service/daemon.hh"

#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/concurrency.hh"
#include "support/error.hh"
#include "support/task_pool.hh"
#include "support/text.hh"

namespace softcheck::service
{

namespace
{

/** MSG_NOSIGNAL on every send: a client that hung up must surface as
 * an error return, not a process-wide SIGPIPE. */
void
sendAll(int fd, std::string_view bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // client gone; nothing to clean up
        }
        off += static_cast<std::size_t>(n);
    }
}

/** Read up to the first newline (or EOF); caps runaway requests. */
std::string
recvLine(int fd)
{
    std::string line;
    char c;
    while (line.size() < 1 << 20) {
        const ssize_t n = ::recv(fd, &c, 1, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0 || c == '\n')
            break;
        line.push_back(c);
    }
    return line;
}

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == sep) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

HardeningMode
parseMode(const std::string &tok)
{
    if (tok == "original")
        return HardeningMode::Original;
    if (tok == "duponly")
        return HardeningMode::DupOnly;
    if (tok == "dupvalchks")
        return HardeningMode::DupValChks;
    if (tok == "fulldup")
        return HardeningMode::FullDup;
    scFatal("unknown hardening mode '", tok, "'");
}

uint64_t
parseU64(const std::string &tok)
{
    try {
        return std::stoull(tok);
    } catch (const std::exception &) {
        scFatal("expected a number, got '", tok, "'");
    }
}

} // namespace

SuiteRequest
parseSuiteRequest(const std::string &line)
{
    SuiteRequest req;
    std::istringstream is(line);
    std::string tok;
    is >> tok; // "SUITE"
    while (is >> tok) {
        const auto eq = tok.find('=');
        if (eq == std::string::npos)
            scFatal("malformed SUITE token '", tok, "'");
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        if (key == "workloads") {
            req.suite.workloads = splitOn(val, ',');
        } else if (key == "modes") {
            for (const std::string &m : splitOn(val, ','))
                req.suite.modes.push_back(parseMode(m));
        } else if (key == "seeds") {
            for (const std::string &s : splitOn(val, ','))
                req.suite.seeds.push_back(parseU64(s));
        } else if (key == "trials") {
            req.suite.base.trials =
                static_cast<unsigned>(parseU64(val));
        } else if (key == "seed") {
            req.suite.base.seed = parseU64(val);
        } else if (key == "tier") {
            if (val == "interp")
                req.suite.base.tier = ExecTier::Interp;
            else if (val == "threaded")
                req.suite.base.tier = ExecTier::Threaded;
            else if (val == "lockstep")
                req.suite.base.tier = ExecTier::Lockstep;
            else
                scFatal("unknown tier '", val, "'");
        } else if (key == "lanes") {
            req.suite.base.lanes = static_cast<unsigned>(parseU64(val));
        } else if (key == "checkpoints") {
            req.suite.base.checkpoints =
                static_cast<unsigned>(parseU64(val));
        } else if (key == "placement") {
            if (val == "uniform")
                req.suite.base.placement = CheckpointPlacement::Uniform;
            else if (val == "adaptive")
                req.suite.base.placement =
                    CheckpointPlacement::Adaptive;
            else
                scFatal("unknown placement '", val, "'");
        } else if (key == "budget") {
            req.suite.base.snapshotBudgetBytes = parseU64(val);
        } else if (key == "shards") {
            req.suite.base.shards = static_cast<unsigned>(parseU64(val));
        } else if (key == "swap") {
            req.suite.base.swapTrainTest = parseU64(val) != 0;
        } else if (key == "elide") {
            req.suite.base.elideVacuousChecks = parseU64(val) != 0;
        } else if (key == "sampling") {
            if (val == "blind")
                req.suite.base.sampling = SamplingPlan::Blind;
            else if (val == "stratified")
                req.suite.base.sampling = SamplingPlan::Stratified;
            else
                scFatal("unknown sampling plan '", val, "'");
        } else if (key == "cache") {
            if (val == "on")
                req.useCache = true;
            else if (val == "off")
                req.useCache = false;
            else
                scFatal("cache must be on or off");
        } else {
            scFatal("unknown SUITE key '", key, "'");
        }
    }
    if (req.suite.workloads.empty())
        scFatal("SUITE needs workloads=");
    if (req.suite.modes.empty())
        scFatal("SUITE needs modes=");
    return req;
}

std::string
formatSuiteResponse(const SuiteResult &r)
{
    std::string out;
    const std::size_t n_modes = r.config.modes.size();
    const std::size_t n_seeds = r.seeds.size();
    for (std::size_t wi = 0; wi < r.config.workloads.size(); ++wi) {
        for (std::size_t mi = 0; mi < n_modes; ++mi) {
            for (std::size_t si = 0; si < n_seeds; ++si) {
                const CampaignResult &c =
                    r.cells[(wi * n_modes + mi) * n_seeds + si];
                // Deterministic fields only: byte-diffing CELL lines
                // across runs (cold vs. warm cache, shard counts,
                // daemons) is the protocol-level bit-identity check.
                out += strformat(
                    "CELL workload=%s mode=%d seed=%llu counts=",
                    r.config.workloads[wi].c_str(),
                    static_cast<int>(r.config.modes[mi]),
                    static_cast<unsigned long long>(r.seeds[si]));
                for (unsigned o = 0; o < kNumOutcomes; ++o)
                    out += strformat(
                        "%s%llu", o ? "," : "",
                        static_cast<unsigned long long>(c.counts[o]));
                out += strformat(
                    " usdc=%llu/%llu snapshots=%u snapshotBytes=%llu "
                    "ffReplay=%llu ffRestorePages=%llu "
                    "goldenDynInstrs=%llu goldenCycles=%llu "
                    "checkEvals=%llu disabled=%u\n",
                    static_cast<unsigned long long>(c.usdcLargeChange),
                    static_cast<unsigned long long>(c.usdcSmallChange),
                    c.snapshotCount,
                    static_cast<unsigned long long>(c.snapshotBytes),
                    static_cast<unsigned long long>(c.ffReplayInstrs),
                    static_cast<unsigned long long>(c.ffRestorePages),
                    static_cast<unsigned long long>(c.goldenDynInstrs),
                    static_cast<unsigned long long>(c.goldenCycles),
                    static_cast<unsigned long long>(c.goldenCheckEvals),
                    c.disabledCheckCount);
            }
        }
    }
    unsigned cached = 0;
    for (const CampaignResult &c : r.cells)
        if (c.servedFromCache)
            ++cached;
    out += strformat(
        "PHASE compile=%.6f profile=%.6f baseline=%.6f golden=%.6f "
        "trials=%.6f cacheLoad=%.6f\n",
        r.phase.compileSeconds, r.phase.profileSeconds,
        r.phase.baselineSeconds, r.phase.goldenSeconds,
        r.phase.trialsSeconds, r.phase.cacheLoadSeconds);
    out += strformat("CACHE servedCells=%u totalCells=%zu\n", cached,
                     r.cells.size());
    out += strformat("DONE cells=%zu wall=%.3f\n", r.cells.size(),
                     r.wallSeconds);
    return out;
}

CampaignDaemon::CampaignDaemon(DaemonConfig c) : cfg(std::move(c))
{
    unsigned threads = cfg.threads;
    if (threads == 0)
        threads = hardwareThreads();
    pool = std::make_unique<TaskPool>(threads);
}

CampaignDaemon::~CampaignDaemon()
{
    if (listenFd >= 0) {
        ::close(listenFd);
        ::unlink(cfg.socketPath.c_str());
    }
}

void
CampaignDaemon::bind()
{
    scAssert(listenFd < 0, "daemon already bound");
    scAssert(!cfg.socketPath.empty(), "daemon needs a socket path");
    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        scFatal("cannot create unix socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg.socketPath.size() >= sizeof(addr.sun_path))
        scFatal("socket path too long: ", cfg.socketPath);
    std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(cfg.socketPath.c_str()); // stale socket from a dead daemon
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        scFatal("cannot bind ", cfg.socketPath);
    if (::listen(listenFd, 64) != 0)
        scFatal("cannot listen on ", cfg.socketPath);
}

void
CampaignDaemon::serve()
{
    scAssert(listenFd >= 0, "serve() before bind()");
    while (!stopping.load()) {
        pollfd pfd{listenFd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 200);
        if (pr <= 0)
            continue; // timeout or EINTR: re-check the stop flag
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard lock(handlersMu);
        handlers.emplace_back([this, fd] { handleClient(fd); });
    }
    std::lock_guard lock(handlersMu);
    for (std::thread &t : handlers)
        t.join();
    handlers.clear();
}

void
CampaignDaemon::requestStop()
{
    stopping.store(true);
}

void
CampaignDaemon::handleClient(int fd)
{
    const std::string line = recvLine(fd);
    std::string response;
    try {
        response = handleRequest(line);
    } catch (const std::exception &e) {
        response = strformat("ERR %s\n", e.what());
    }
    sendAll(fd, response);
    ::close(fd);
}

std::string
CampaignDaemon::handleRequest(const std::string &line)
{
    if (line == "PING")
        return "PONG\n";
    if (line == "SHUTDOWN") {
        requestStop();
        return "BYE\n";
    }
    if (line == "STATS") {
        std::lock_guard lock(jobMu);
        return strformat("STATS jobs=%llu active=%u\n",
                         static_cast<unsigned long long>(jobsServed),
                         activeJobs);
    }
    if (line.rfind("SUITE", 0) == 0) {
        SuiteRequest req = parseSuiteRequest(line);
        if (req.useCache)
            req.suite.base.artifactCacheDir = cfg.cacheDir;
        // Admission: at most maxJobs suites in flight. Tasks of
        // admitted jobs interleave on the one shared pool — that is
        // the point — but unbounded admission would stack every
        // client's characterization memory at once.
        {
            std::unique_lock lock(jobMu);
            jobCv.wait(lock, [this] {
                return activeJobs < std::max(1u, cfg.maxJobs);
            });
            ++activeJobs;
        }
        SuiteResult result;
        std::string response;
        try {
            result = runCampaignSuite(req.suite, *pool);
            response = formatSuiteResponse(result);
        } catch (...) {
            std::lock_guard lock(jobMu);
            --activeJobs;
            jobCv.notify_all();
            throw;
        }
        {
            std::lock_guard lock(jobMu);
            --activeJobs;
            ++jobsServed;
            jobCv.notify_all();
        }
        return response;
    }
    scFatal("unknown request '", line, "'");
}

std::string
daemonRequest(const std::string &socket_path,
              const std::string &request_line)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        scFatal("cannot create unix socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        scFatal("socket path too long: ", socket_path);
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        scFatal("cannot connect to daemon at ", socket_path);
    }
    sendAll(fd, request_line + "\n");
    ::shutdown(fd, SHUT_WR);
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

} // namespace softcheck::service
