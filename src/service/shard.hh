/**
 * @file
 * Multi-process trial sharding: fork worker processes that each run a
 * contiguous range of a campaign's trial indices against a
 * deserialized characterization bundle, and merge their commutative
 * accumulator deltas in the parent.
 *
 * Bit-identity: trial outcomes are a function of trialSeed(seed, i)
 * and the characterization alone, and the accumulator is commutative
 * sums, so any shard count produces byte-identical outcome totals to
 * the in-process trial phase. Workers deserialize the bundle *file*
 * (not the parent's in-memory cell), so every sharded campaign also
 * exercises the serialization path end to end.
 *
 * Fault tolerance: a worker that exits abnormally (crash, signal,
 * OOM kill) or writes a malformed result blob is detected at reap
 * time and its whole range is re-dispatched in a fresh worker, up to
 * kMaxAttempts per range; partial work from the dead worker is
 * discarded, so the merged totals stay exact.
 *
 * Not combinable with SamplingPlan::Stratified: the stratified
 * planner's class representatives are cross-trial state that cannot
 * be split along trial-index ranges (the entry points scFatal on the
 * combination).
 */

#ifndef SOFTCHECK_SERVICE_SHARD_HH
#define SOFTCHECK_SERVICE_SHARD_HH

#include <string>

#include "fault/campaign_internal.hh"

namespace softcheck::service
{

/**
 * Crash-recovery test hook: when this env var holds a shard index,
 * that shard's *first* dispatch runs half its range and then SIGKILLs
 * itself; the re-dispatched worker runs normally. Lets tests assert
 * bit-identical recovery without reaching into the implementation.
 */
constexpr const char *kKillShardEnv = "SOFTCHECK_TEST_KILL_SHARD";

/** Abnormal-exit re-dispatches per shard range before giving up. */
constexpr unsigned kMaxShardAttempts = 4;

/**
 * Split @p config's trials [0, trials) into config.shards contiguous
 * ranges, fork one worker per range (bundle file @p bundle_path),
 * and merge every worker's delta into @p accum. Blocks until all
 * ranges have completed; scFatal when a range keeps failing.
 */
void runShardedTrials(const std::string &bundle_path,
                      const CampaignConfig &config,
                      campaign_detail::TrialAccum &accum);

/** scFatal on unsupported knob combinations (shards + stratified). */
void validateServiceConfig(const CampaignConfig &config);

} // namespace softcheck::service

#endif // SOFTCHECK_SERVICE_SHARD_HH
