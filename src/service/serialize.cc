#include "service/serialize.hh"

#include "support/error.hh"

namespace softcheck::service
{

uint32_t
execFunctionIndex(const ExecModule &em, const ExecFunction *fn)
{
    for (std::size_t i = 0; i < em.numFunctions(); ++i)
        if (&em.function(i) == fn)
            return static_cast<uint32_t>(i);
    scPanic("ExecFrame function not part of the module");
}

namespace
{

void
writeFrame(ByteWriter &w, const ExecFrame &f, const ExecModule &em)
{
    w.u32(execFunctionIndex(em, f.fn));
    w.vecU64(f.regs);
    for (const int32_t slot : f.recent)
        w.i32(slot);
    w.u32(f.recentCount);
    w.u32(f.recentPos);
    w.vecU64(f.allocaBases);
    w.u32(f.ip);
    w.u32(f.curBlock);
    w.i32(f.retDst);
}

ExecFrame
readFrame(ByteReader &r, const ExecModule &em)
{
    ExecFrame f;
    const uint32_t fn_idx = r.u32();
    if (fn_idx >= em.numFunctions())
        scFatal("frame function index out of range");
    f.fn = &em.function(fn_idx);
    f.regs = r.vecU64();
    for (int32_t &slot : f.recent)
        slot = r.i32();
    f.recentCount = r.u32();
    f.recentPos = r.u32();
    f.allocaBases = r.vecU64();
    f.ip = r.u32();
    f.curBlock = r.u32();
    f.retDst = r.i32();
    return f;
}

} // namespace

void
writeExecState(ByteWriter &w, const ExecState &st, const ExecModule &em)
{
    w.u32(static_cast<uint32_t>(st.stack.size()));
    for (const ExecFrame &f : st.stack)
        writeFrame(w, f, em);
    w.vecU64(st.globalBases);
    w.u64(st.dynCount);
    st.cost.serialize(w);
}

ExecState
readExecState(ByteReader &r, const ExecModule &em)
{
    ExecState st;
    const uint32_t nframes = r.u32();
    st.stack.reserve(nframes);
    for (uint32_t i = 0; i < nframes; ++i)
        st.stack.push_back(readFrame(r, em));
    st.globalBases = r.vecU64();
    st.dynCount = r.u64();
    st.cost = CostModel::deserialize(r);
    return st;
}

void
writeSnapshot(ByteWriter &w, const Snapshot &s, const ExecModule &em,
              Memory::PagePoolWriter &pool)
{
    writeExecState(w, s.state, em);
    s.mem.serialize(w, pool);
}

Snapshot
readSnapshot(ByteReader &r, const ExecModule &em,
             Memory::PagePoolReader &pool)
{
    Snapshot s;
    s.state = readExecState(r, em);
    s.mem = Memory::deserialize(r, pool);
    return s;
}

void
writeRunResult(ByteWriter &w, const RunResult &res)
{
    w.u8(static_cast<uint8_t>(res.term));
    w.u8(static_cast<uint8_t>(res.trap));
    w.i32(res.failedCheckId);
    w.u64(res.retValue);
    w.u64(res.dynInstrs);
    w.u64(res.cycles);
    w.u64(res.endCycle);
    w.u64(res.cacheMisses);
    w.u64(res.branchMispredicts);
    w.u64(res.checkEvals);
    w.u8(res.prunedToGolden ? 1 : 0);
    w.u8(res.fault.injected ? 1 : 0);
    w.i32(res.fault.slot);
    w.u8(static_cast<uint8_t>(res.fault.slotType));
    w.u32(res.fault.bit);
    w.u64(res.fault.before);
    w.u64(res.fault.after);
    w.u64(res.fault.atDynInstr);
    w.u64(res.fault.atCycle);
}

RunResult
readRunResult(ByteReader &r)
{
    RunResult res;
    res.term = static_cast<Termination>(r.u8());
    res.trap = static_cast<TrapKind>(r.u8());
    res.failedCheckId = r.i32();
    res.retValue = r.u64();
    res.dynInstrs = r.u64();
    res.cycles = r.u64();
    res.endCycle = r.u64();
    res.cacheMisses = r.u64();
    res.branchMispredicts = r.u64();
    res.checkEvals = r.u64();
    res.prunedToGolden = r.u8() != 0;
    res.fault.injected = r.u8() != 0;
    res.fault.slot = r.i32();
    res.fault.slotType = static_cast<TypeKind>(r.u8());
    res.fault.bit = r.u32();
    res.fault.before = r.u64();
    res.fault.after = r.u64();
    res.fault.atDynInstr = r.u64();
    res.fault.atCycle = r.u64();
    return res;
}

namespace
{

void
writeProtection(ByteWriter &w, const ProtectionCounts &p)
{
    w.u32(p.originalInstructions);
    w.u32(p.duplicated);
    w.u32(p.checkProtected);
    w.u32(p.bothProtected);
    w.u32(p.unprotected);
    w.u32(p.duplicateInstructions);
    w.u32(p.checkInstructions);
}

ProtectionCounts
readProtection(ByteReader &r)
{
    ProtectionCounts p;
    p.originalInstructions = r.u32();
    p.duplicated = r.u32();
    p.checkProtected = r.u32();
    p.bothProtected = r.u32();
    p.unprotected = r.u32();
    p.duplicateInstructions = r.u32();
    p.checkInstructions = r.u32();
    return p;
}

} // namespace

void
writeHardeningReport(ByteWriter &w, const HardeningReport &rep)
{
    w.u8(static_cast<uint8_t>(rep.mode));
    w.u32(rep.stateVars);
    w.u32(rep.shadowPhis);
    w.u32(rep.duplicatedInstrs);
    w.u32(rep.eqChecks);
    w.u32(rep.valueChecks);
    w.u32(rep.checkOne);
    w.u32(rep.checkTwo);
    w.u32(rep.checkRange);
    w.u32(rep.suppressedByOpt1);
    w.u32(rep.opt2Stops);
    w.u32(rep.suppressedUseless);
    w.u32(rep.numCheckIds);
    w.u32(rep.vacuousChecks);
    w.u32(rep.elidedChecks);
    w.u32(rep.fpRiskChecks);
    writeProtection(w, rep.protection);
    w.u32(rep.stats.totalInstructions);
    w.u32(rep.stats.phiNodes);
    w.u32(rep.stats.duplicatedInstructions);
    w.u32(rep.stats.checkEq);
    w.u32(rep.stats.checkOne);
    w.u32(rep.stats.checkTwo);
    w.u32(rep.stats.checkRange);
    w.u32(rep.stats.loads);
    w.u32(rep.stats.stores);
    w.u32(rep.stats.elidedChecks);
    writeProtection(w, rep.stats.protection);
    w.u8(rep.stats.hasProtection ? 1 : 0);
}

HardeningReport
readHardeningReport(ByteReader &r)
{
    HardeningReport rep;
    rep.mode = static_cast<HardeningMode>(r.u8());
    rep.stateVars = r.u32();
    rep.shadowPhis = r.u32();
    rep.duplicatedInstrs = r.u32();
    rep.eqChecks = r.u32();
    rep.valueChecks = r.u32();
    rep.checkOne = r.u32();
    rep.checkTwo = r.u32();
    rep.checkRange = r.u32();
    rep.suppressedByOpt1 = r.u32();
    rep.opt2Stops = r.u32();
    rep.suppressedUseless = r.u32();
    rep.numCheckIds = r.u32();
    rep.vacuousChecks = r.u32();
    rep.elidedChecks = r.u32();
    rep.fpRiskChecks = r.u32();
    rep.protection = readProtection(r);
    rep.stats.totalInstructions = r.u32();
    rep.stats.phiNodes = r.u32();
    rep.stats.duplicatedInstructions = r.u32();
    rep.stats.checkEq = r.u32();
    rep.stats.checkOne = r.u32();
    rep.stats.checkTwo = r.u32();
    rep.stats.checkRange = r.u32();
    rep.stats.loads = r.u32();
    rep.stats.stores = r.u32();
    rep.stats.elidedChecks = r.u32();
    rep.stats.protection = readProtection(r);
    rep.stats.hasProtection = r.u8() != 0;
    return rep;
}

void
writePreparedRun(ByteWriter &w, const PreparedRun &pr,
                 Memory::PagePoolWriter &pool)
{
    scAssert(pr.mem, "PreparedRun without a Memory");
    pr.mem->serialize(w, pool);
    w.vecU64(pr.args);
    w.vecU64(pr.bufferAddr);
}

PreparedRun
readPreparedRun(ByteReader &r, Memory::PagePoolReader &pool)
{
    PreparedRun pr;
    pr.mem = std::make_unique<Memory>(Memory::deserialize(r, pool));
    pr.args = r.vecU64();
    pr.bufferAddr = r.vecU64();
    return pr;
}

} // namespace softcheck::service
