#include "service/shard.hh"

#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "service/artifact_cache.hh"
#include "support/byte_io.hh"
#include "support/error.hh"

namespace softcheck::service
{

using campaign_detail::CellCharacterization;
using campaign_detail::TrialAccum;
using campaign_detail::TrialWorkerCache;

namespace
{

constexpr uint64_t kBlobMagic = 0x5343534852443176ull; // "SCSHRD1v"

/**
 * Serializes pipe-creation + fork + parent-side write-end close into
 * one critical section. Several cells of a suite can shard at once on
 * different pool threads; without the lock, a worker forked for shard
 * A between B's pipe() and B's close(write end) would inherit B's
 * write end and keep B's pipe from reaching EOF until A's worker
 * exits. With the parent's write-end copy closed before the lock is
 * released, no later fork can ever inherit it.
 */
std::mutex g_forkMu;

/** Serialize @p accum's totals (all plain sums) into a result blob. */
std::string
packDelta(const TrialAccum &a)
{
    ByteWriter w;
    w.u64(kBlobMagic);
    for (const auto &c : a.counts)
        w.u64(c.load());
    w.u64(a.usdcLarge.load());
    w.u64(a.usdcSmall.load());
    w.u64(a.batchNanos.load());
    w.u64(a.laneSteps.load());
    w.u64(a.laneSlots.load());
    w.u64(a.ffReplay.load());
    w.u64(a.ffRestorePages.load());
    w.u64(kBlobMagic);
    return std::move(w).take();
}

/** Merge a worker's blob into @p accum; false on malformed bytes. */
bool
mergeDelta(const std::string &blob, TrialAccum &accum)
{
    try {
        ByteReader r(blob);
        if (r.u64() != kBlobMagic)
            return false;
        std::array<uint64_t, kNumOutcomes> counts;
        for (auto &c : counts)
            c = r.u64();
        const uint64_t usdc_large = r.u64();
        const uint64_t usdc_small = r.u64();
        const uint64_t batch_nanos = r.u64();
        const uint64_t lane_steps = r.u64();
        const uint64_t lane_slots = r.u64();
        const uint64_t ff_replay = r.u64();
        const uint64_t ff_restore = r.u64();
        if (r.u64() != kBlobMagic || !r.atEnd())
            return false;
        for (unsigned i = 0; i < kNumOutcomes; ++i)
            accum.counts[i].fetch_add(counts[i]);
        accum.usdcLarge.fetch_add(usdc_large);
        accum.usdcSmall.fetch_add(usdc_small);
        accum.batchNanos.fetch_add(batch_nanos);
        accum.laneSteps.fetch_add(lane_steps);
        accum.laneSlots.fetch_add(lane_slots);
        accum.ffReplay.fetch_add(ff_replay);
        accum.ffRestorePages.fetch_add(ff_restore);
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

void
writeAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::_exit(3); // parent vanished; nothing useful left to do
        }
        off += static_cast<std::size_t>(n);
    }
}

std::string
readAll(int fd)
{
    std::string out;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return out;
        }
        if (n == 0)
            return out;
        out.append(buf, static_cast<std::size_t>(n));
    }
}

/**
 * Worker body, executed in the forked child. Deserializes the bundle
 * into this fresh address space, runs trials [first, last)
 * single-threaded (parallelism comes from the shard count), and pipes
 * the delta back. Never returns.
 */
[[noreturn]] void
runWorker(int wfd, const std::string &bundle_path,
          const CampaignConfig &config, unsigned first, unsigned last,
          bool kill_mid)
{
    try {
        const CellCharacterization cell =
            deserializeCell(readFileBytes(bundle_path), config, "");
        TrialWorkerCache cache;
        TrialAccum accum;
        if (kill_mid) {
            // Crash-injection hook: do real work on half the range so
            // the parent must discard a *partial* accumulator, then
            // die the way an OOM-killed worker would.
            const unsigned mid = first + (last - first) / 2;
            campaign_detail::runTrialBatch(cell, config, first, mid,
                                           cache, accum);
            ::raise(SIGKILL);
        }
        campaign_detail::runTrialBatch(cell, config, first, last, cache,
                                       accum);
        writeAll(wfd, packDelta(accum));
        ::_exit(0);
    } catch (const std::exception &) {
        ::_exit(2); // parent re-dispatches the range
    }
}

} // namespace

void
runShardedTrials(const std::string &bundle_path,
                 const CampaignConfig &config, TrialAccum &accum)
{
    scAssert(config.sampling != SamplingPlan::Stratified,
             "sharding cannot split a stratified plan");
    const unsigned shards = std::max(1u, config.shards);
    const unsigned trials = config.trials;

    unsigned kill_shard = ~0u;
    if (const char *env = std::getenv(kKillShardEnv))
        kill_shard = static_cast<unsigned>(std::atoi(env));

    struct Range
    {
        unsigned first, last, attempts;
        bool killMid;
    };
    std::vector<Range> todo;
    for (unsigned s = 0; s < shards; ++s) {
        const unsigned first =
            static_cast<unsigned>(uint64_t(trials) * s / shards);
        const unsigned last =
            static_cast<unsigned>(uint64_t(trials) * (s + 1) / shards);
        if (first < last)
            todo.push_back({first, last, 0, s == kill_shard});
    }

    struct Live
    {
        Range range;
        pid_t pid;
        int rfd;
    };
    std::vector<Live> live;

    auto spawn = [&](const Range &range) {
        int fds[2];
        std::lock_guard lock(g_forkMu);
        if (::pipe(fds) != 0)
            scFatal("pipe failed for shard worker");
        const pid_t pid = ::fork();
        if (pid < 0)
            scFatal("fork failed for shard worker");
        if (pid == 0) {
            ::close(fds[0]);
            runWorker(fds[1], bundle_path, config, range.first,
                      range.last, range.killMid);
        }
        ::close(fds[1]);
        live.push_back({range, pid, fds[0]});
    };

    for (const Range &range : todo)
        spawn(range);

    // Reap in dispatch order. Pipe capacity far exceeds a delta blob,
    // so workers never block writing and the order costs nothing.
    for (std::size_t i = 0; i < live.size(); ++i) {
        const Live lw = live[i];
        const std::string blob = readAll(lw.rfd);
        ::close(lw.rfd);
        int status = 0;
        pid_t r;
        do {
            r = ::waitpid(lw.pid, &status, 0);
        } while (r < 0 && errno == EINTR);
        const bool exited_ok =
            r == lw.pid && WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (exited_ok && mergeDelta(blob, accum))
            continue;
        // Abnormal exit or malformed blob: discard and re-dispatch the
        // whole range (the crash hook only fires on attempt 0).
        Range retry = lw.range;
        retry.killMid = false;
        if (++retry.attempts >= kMaxShardAttempts)
            scFatal("shard range [", retry.first, ",", retry.last,
                    ") failed ", retry.attempts, " times");
        spawn(retry);
    }
}

} // namespace softcheck::service
