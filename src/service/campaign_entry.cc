/**
 * @file
 * The public campaign entry points — runCampaign / characterizeOnly
 * (declared in fault/campaign.hh) — live in the service library: the
 * entry points own the artifact-cache lookup and the shard dispatch,
 * which layer *above* the characterization / trial building blocks in
 * fault/campaign.cc.
 */

#include "fault/campaign.hh"

#include <algorithm>

#include "fault/campaign_internal.hh"
#include "service/artifact_cache.hh"
#include "service/shard.hh"
#include "support/concurrency.hh"
#include "support/task_pool.hh"

namespace softcheck
{

namespace service
{

void
validateServiceConfig(const CampaignConfig &config)
{
    if (config.shards >= 2 &&
        config.sampling == SamplingPlan::Stratified)
        scFatal("shards and stratified sampling cannot combine: the "
                "plan's class representatives are cross-trial state");
}

} // namespace service

CampaignResult
runCampaign(const CampaignConfig &config)
{
    service::validateServiceConfig(config);
    const bool shard = config.trials > 0 && config.shards >= 2;
    service::ObtainedCell oc = service::obtainCharacterization(
        config, nullptr, nullptr, shard);

    if (config.trials == 0) {
        CampaignResult result = oc.cell.proto;
        result.config = config;
        oc.cleanup();
        return result;
    }

    if (shard) {
        const campaign_detail::Stopwatch sw;
        campaign_detail::TrialAccum accum;
        service::runShardedTrials(oc.bundlePath, config, accum);
        oc.cleanup();
        CampaignResult result =
            campaign_detail::finalizeTrialResult(oc.cell, config, accum);
        // Like the in-process path: a standalone campaign's trial
        // phase is wall clock (finalize filled in the workers' summed
        // CPU nanoseconds, which the suite engine keeps instead).
        result.phase.trialsSeconds = sw.seconds();
        return result;
    }

    unsigned threads = config.threads;
    if (threads == 0)
        threads = hardwareThreads();
    threads = std::min(threads, config.trials);
    TaskPool pool(threads);
    return campaign_detail::runTrialPhase(oc.cell, config, pool);
}

CampaignResult
characterizeOnly(const CampaignConfig &config)
{
    CampaignConfig cfg = config;
    cfg.trials = 0;
    return runCampaign(cfg);
}

} // namespace softcheck
