/**
 * @file
 * Campaign-as-a-service: a persistent daemon that serves fault
 * campaign suites over a unix-domain socket, plus the thin client
 * helpers the CLI (tools/softcheck-serve) and the tests use.
 *
 * Why a daemon: the expensive half of a campaign — compile, profile,
 * baseline, golden run, snapshots — is deterministic and cacheable,
 * and the scheduler that overlaps cells is warm after the first
 * request. One resident process with one artifact cache and one
 * TaskPool lets N concurrent clients (figure benches, CI jobs, a
 * developer's shell) share both: a cell any client ever characterized
 * is a cache hit for every later request, and concurrent requests
 * interleave on the same scheduler instead of oversubscribing cores
 * with N private pools.
 *
 * Protocol (line-framed, one request per connection; the response is
 * everything until the server closes the socket):
 *
 *   PING                         -> "PONG"
 *   STATS                        -> "STATS jobs=<served> active=<n>"
 *   SHUTDOWN                     -> "BYE" (daemon exits after reply)
 *   SUITE key=value ...          -> per-cell "CELL ..." lines (grid
 *                                   order), one "PHASE ..." line, one
 *                                   "CACHE ..." line, final "DONE ..."
 *
 * SUITE keys: workloads= / modes= / seeds= (comma lists; modes from
 * {original,duponly,dupvalchks,fulldup}), trials=, seed=, tier=
 * ({interp,threaded,lockstep}), lanes=, checkpoints=, placement=
 * ({uniform,adaptive}), budget=, shards=, swap=, elide=, sampling=
 * ({blind,stratified}), cache= ({on,off}, default on).
 *
 * CELL lines carry only deterministic fields (outcome counts, USDC
 * split, snapshot schedule stats, golden counters) — never timings or
 * cache flags — so byte-diffing the CELL lines of two runs is the
 * cold-vs-warm bit-identity check CI performs.
 */

#ifndef SOFTCHECK_SERVICE_DAEMON_HH
#define SOFTCHECK_SERVICE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/suite.hh"

namespace softcheck::service
{

struct DaemonConfig
{
    std::string socketPath;
    /** Artifact cache served to every job ("" = caching off). */
    std::string cacheDir;
    /** Shared scheduler width (0 = hardware concurrency). */
    unsigned threads = 0;
    /** Suite jobs admitted concurrently; further requests queue. */
    unsigned maxJobs = 2;
};

class CampaignDaemon
{
  public:
    explicit CampaignDaemon(DaemonConfig cfg);
    ~CampaignDaemon();

    /** Create, bind, and listen on the socket (unlinking any stale
     * one). After bind() returns, clients may connect. scFatal on
     * failure. */
    void bind();

    /** Accept-and-serve until a SHUTDOWN request or requestStop().
     * Joins every handler thread before returning. */
    void serve();

    /** Ask a serve() running on another thread to wind down. */
    void requestStop();

  private:
    void handleClient(int fd);
    std::string handleRequest(const std::string &line);

    DaemonConfig cfg;
    int listenFd = -1;
    std::atomic<bool> stopping{false};
    std::unique_ptr<TaskPool> pool;
    std::mutex jobMu;
    std::condition_variable jobCv;
    unsigned activeJobs = 0;
    uint64_t jobsServed = 0;
    std::mutex handlersMu;
    std::vector<std::thread> handlers;
};

/** One-shot client: connect to @p socket_path, send @p request_line,
 * and return the full response (until the server closes). scFatal
 * when the daemon is unreachable. */
std::string daemonRequest(const std::string &socket_path,
                          const std::string &request_line);

/** Parsed SUITE request. */
struct SuiteRequest
{
    SuiteConfig suite;
    bool useCache = true;
};

/** Parse the key=value tokens after "SUITE". scFatal on bad input. */
SuiteRequest parseSuiteRequest(const std::string &line);

/** Render a finished suite as protocol lines (see file comment). */
std::string formatSuiteResponse(const SuiteResult &result);

} // namespace softcheck::service

#endif // SOFTCHECK_SERVICE_DAEMON_HH
