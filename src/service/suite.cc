/**
 * @file
 * Suite engine implementation (interface in fault/suite.hh). Lives in
 * the service library because the suite is where the artifact cache
 * and the shard dispatcher meet the DAG: cached cells skip their
 * workload's fault-free tasks entirely, and sharded trial phases
 * replace the per-seed batch fan-out with one fork-and-merge task.
 */

#include "fault/suite.hh"

#include <algorithm>
#include <deque>

#include "fault/campaign_internal.hh"
#include "service/artifact_cache.hh"
#include "service/shard.hh"
#include "support/concurrency.hh"
#include "support/error.hh"
#include "support/task_pool.hh"

namespace softcheck
{

using namespace campaign_detail;

namespace
{

/**
 * Per-(workload, mode) node state of the suite DAG. Lives in a deque
 * built completely before the first task is submitted, so tasks share
 * it by stable reference.
 */
struct CellCtx
{
    CampaignConfig cfg; //!< workload + mode set, seed = base seed
    std::vector<CampaignConfig> seedCfgs; //!< one per seed variant
    /** Characterization + (when sharding) its bundle file. */
    service::ObtainedCell oc;
    /** Cache probe result — decides the DAG shape: probe-hit cells
     * load with no workload-level dependencies. The load itself still
     * falls back to characterizing standalone if the file went away. */
    bool probedCached = false;
    TrialWorkerCache cache;
    /** One accumulator per seed (deque: atomics are immovable). */
    std::deque<TrialAccum> accums;
    /** Per-seed stratified plans + class-outcome tables (filled by a
     * dedicated plan task between characterization and the batches;
     * unused under blind sampling). */
    std::deque<StratifiedPlan> plans;
    std::deque<std::vector<ClassOutcome>> classOuts;
};

/** Per-workload node state: the shared-artifact storage plus the
 * timers of the phases every cell of the workload shares. */
struct WorkloadCtx
{
    const Workload *w = nullptr;
    CampaignConfig proto;
    SharedArtifacts sa;
    PreparedModule baselineModule;
    HardeningReport baselineReport;
    ProfileData profile;
    WorkloadRunSpec testSpec;
    PreparedRun pristine;
    SnapshotAccounting pages;
    double compileSeconds = 0;
    double profileSeconds = 0;
    double baselineSeconds = 0;
    std::deque<CellCtx> cells; //!< one per mode
};

} // namespace

SuiteResult
runCampaignSuite(const SuiteConfig &config)
{
    unsigned pool_threads = config.base.threads;
    if (pool_threads == 0)
        pool_threads = hardwareThreads();
    TaskPool pool(pool_threads);
    return runCampaignSuite(config, pool);
}

SuiteResult
runCampaignSuite(const SuiteConfig &config, TaskPool &pool)
{
    scAssert(!config.workloads.empty(), "suite needs workloads");
    scAssert(!config.modes.empty(), "suite needs modes");
    service::validateServiceConfig(config.base);
    const Stopwatch wall;

    SuiteResult result;
    result.config = config;
    result.seeds = config.seeds;
    if (result.seeds.empty())
        result.seeds = {config.base.seed};
    const std::size_t n_workloads = config.workloads.size();
    const std::size_t n_modes = config.modes.size();
    const std::size_t n_seeds = result.seeds.size();
    // Cells are written into their grid slot by per-cell finalize
    // tasks, so the workload-major order is deterministic no matter
    // how the scheduler interleaves them.
    result.cells.resize(n_workloads * n_modes * n_seeds);

    const bool train_role = !config.base.swapTrainTest;
    const bool shard =
        config.base.trials > 0 && config.base.shards >= 2;

    // Every task this suite submits, so the drain below can wait on
    // exactly its own work: the pool may be shared with other
    // concurrently running suites (the daemon's job queue), which
    // makes waitAll() someone else's business.
    std::vector<TaskPool::TaskId> own_tasks;
    auto submit = [&](std::function<void()> fn,
                      const std::vector<TaskPool::TaskId> &deps =
                          std::vector<TaskPool::TaskId>{}) {
        const auto id = pool.submit(std::move(fn), deps);
        own_tasks.push_back(id);
        return id;
    };

    // ---- build all node state up front --------------------------------
    // Also the keep-alive root: characterizations (and their snapshot
    // chains, which the per-workload page-dedup set indexes by block
    // address) stay owned here until the whole grid has drained.
    std::deque<WorkloadCtx> work;
    for (std::size_t wi = 0; wi < n_workloads; ++wi) {
        work.emplace_back();
        WorkloadCtx &wc = work.back();
        wc.w = &getWorkload(config.workloads[wi]);
        wc.proto = config.base;
        wc.proto.workload = config.workloads[wi];
        for (std::size_t mi = 0; mi < n_modes; ++mi) {
            wc.cells.emplace_back();
            CellCtx &cc = wc.cells.back();
            cc.cfg = wc.proto;
            cc.cfg.mode = config.modes[mi];
            // Cheap existence probe, before any task runs: probe-hit
            // cells need none of the workload's shared fault-free
            // artifacts, and a workload whose every cell hits skips
            // compile/profile/prepare/baseline entirely — that is the
            // warm-cache payoff.
            cc.probedCached = service::probeCachedCell(cc.cfg);
            for (const uint64_t seed : result.seeds) {
                cc.seedCfgs.push_back(cc.cfg);
                cc.seedCfgs.back().seed = seed;
                cc.accums.emplace_back();
                cc.plans.emplace_back();
                cc.classOuts.emplace_back();
            }
        }
    }

    // ---- submit the DAG -----------------------------------------------
    // Per workload: compile / profile / input-prep have no deps and run
    // concurrently (also across workloads); baseline needs the module
    // and the input; each mode's characterization needs the baseline
    // (and the profile for value-check cells); each seed's trial
    // batches need only their own cell's characterization. Shared
    // phases publish into wc.sa before their task completes, and the
    // pool's completion edge orders those writes before every
    // dependent's reads.
    for (std::size_t wi = 0; wi < n_workloads; ++wi) {
        WorkloadCtx &wc = work[wi];

        const bool any_miss = std::any_of(
            wc.cells.begin(), wc.cells.end(),
            [](const CellCtx &cc) { return !cc.probedCached; });
        const bool wants_profile = std::any_of(
            wc.cells.begin(), wc.cells.end(), [](const CellCtx &cc) {
                return !cc.probedCached &&
                       cc.cfg.mode == HardeningMode::DupValChks;
            });

        TaskPool::TaskId t_compile = 0;
        TaskPool::TaskId t_profile = 0;
        TaskPool::TaskId t_baseline = 0;
        if (any_miss) {
            t_compile = submit([&wc] {
                const Stopwatch sw;
                wc.baselineModule =
                    buildModule(*wc.w, HardeningMode::Original, wc.proto,
                                nullptr, &wc.baselineReport);
                wc.sa.baselineModule = &wc.baselineModule;
                wc.sa.baselineReport = &wc.baselineReport;
                wc.compileSeconds = sw.seconds();
            });

            if (wants_profile) {
                t_profile = submit([&wc, train_role] {
                    const Stopwatch sw;
                    wc.profile =
                        collectProfile(*wc.w, wc.proto, train_role);
                    wc.sa.profile = &wc.profile;
                    wc.profileSeconds = sw.seconds();
                });
            }

            const auto t_prepare = submit([&wc, train_role] {
                wc.testSpec = wc.w->makeInput(!train_role);
                wc.pristine = prepareRun(wc.testSpec);
                wc.sa.testSpec = &wc.testSpec;
                wc.sa.pristine = &wc.pristine;
            });

            t_baseline = submit(
                [&wc] {
                    const Stopwatch sw;
                    wc.sa.baseline = runBaseline(
                        *wc.w, wc.baselineModule, wc.testSpec, wc.proto);
                    wc.baselineSeconds = sw.seconds();
                },
                {t_compile, t_prepare});
        }

        for (std::size_t mi = 0; mi < n_modes; ++mi) {
            CellCtx &cc = wc.cells[mi];
            std::vector<TaskPool::TaskId> char_deps;
            if (!cc.probedCached) {
                char_deps.push_back(t_baseline);
                if (cc.cfg.mode == HardeningMode::DupValChks)
                    char_deps.push_back(t_profile);
            }
            const SharedArtifacts *sa =
                cc.probedCached ? nullptr : &wc.sa;
            const auto t_char = submit(
                [&wc, &cc, sa, shard] {
                    // One characterization per (workload, mode); the
                    // seed only steers injections, so every seed
                    // variant fans out of it. Cache hits load here
                    // (and account their snapshots into the suite's
                    // deduped page set exactly like computed ones);
                    // misses characterize and store.
                    cc.oc = service::obtainCharacterization(
                        cc.cfg, sa, &wc.pages, shard);
                },
                char_deps);

            for (std::size_t si = 0; si < n_seeds; ++si) {
                CampaignResult *slot =
                    &result.cells[(wi * n_modes + mi) * n_seeds + si];
                const CampaignConfig &scfg = cc.seedCfgs[si];

                if (config.base.trials == 0) {
                    submit(
                        [&cc, &scfg, slot] {
                            *slot = cc.oc.cell.proto;
                            slot->config = scfg;
                        },
                        {t_char});
                    continue;
                }

                TrialAccum &accum = cc.accums[si];

                if (shard) {
                    // One fork-and-merge task per seed: the shard
                    // dispatcher blocks this task until every worker
                    // range (including re-dispatched ones) has merged,
                    // so it subsumes the batch fan-out and its
                    // finalize edge. trialsSeconds stays the workers'
                    // summed CPU nanoseconds — same meaning as the
                    // in-process suite path.
                    submit(
                        [&cc, &scfg, &accum, slot] {
                            service::runShardedTrials(cc.oc.bundlePath,
                                                      scfg, accum);
                            *slot = finalizeTrialResult(cc.oc.cell,
                                                        scfg, accum);
                        },
                        {t_char});
                    continue;
                }

                // Stratified sampling inserts a per-(cell, seed) plan
                // task between characterization and the batches: one
                // observed golden replay resolves the seed's whole
                // trial budget. The batch tasks' dependency edge (and
                // the finalize task's, via the batches) orders the
                // plan and every representative's class-outcome write
                // before their readers.
                const bool stratified =
                    scfg.sampling == SamplingPlan::Stratified;
                StratifiedPlan *plan =
                    stratified ? &cc.plans[si] : nullptr;
                std::vector<ClassOutcome> *co =
                    stratified ? &cc.classOuts[si] : nullptr;
                std::vector<TaskPool::TaskId> batch_deps = {t_char};
                if (stratified) {
                    batch_deps = {submit(
                        [&cc, &scfg, plan, co] {
                            *plan = buildStratifiedPlan(cc.oc.cell, scfg);
                            co->resize(plan->classes.size());
                        },
                        {t_char})};
                }
                const unsigned batch = trialBatchSize(
                    config.base.trials, pool.threadCount(), scfg.tier);
                std::vector<TaskPool::TaskId> batch_ids;
                for (unsigned first = 0; first < config.base.trials;
                     first += batch) {
                    const unsigned last =
                        std::min(first + batch, config.base.trials);
                    batch_ids.push_back(submit(
                        [&cc, &scfg, first, last, &accum, plan, co] {
                            runTrialBatch(cc.oc.cell, scfg, first, last,
                                          cc.cache, accum, plan, co);
                        },
                        batch_deps));
                }
                submit(
                    [&cc, &scfg, &accum, slot, plan, co] {
                        *slot = finalizeTrialResult(cc.oc.cell, scfg,
                                                    accum, plan, co);
                    },
                    batch_ids);
            }
        }
    }

    // Drain exactly this suite's tasks. wait() rethrows a failed
    // task's exception; waiting in submission order still visits every
    // id (completed ids return immediately).
    for (const auto id : own_tasks)
        pool.wait(id);

    // ---- deterministic aggregation ------------------------------------
    // Sequential, in grid order, from per-task slots no two tasks
    // shared: the floating-point sums come out identical at any thread
    // count.
    for (std::size_t wi = 0; wi < n_workloads; ++wi) {
        WorkloadCtx &wc = work[wi];
        result.phase.compileSeconds += wc.compileSeconds;
        result.phase.profileSeconds += wc.profileSeconds;
        result.phase.baselineSeconds += wc.baselineSeconds;
        SuiteWorkloadStats stats;
        stats.workload = config.workloads[wi];
        for (std::size_t mi = 0; mi < n_modes; ++mi) {
            CellCtx &cc = wc.cells[mi];
            result.phase += cc.oc.cell.proto.phase; // trialsSeconds is 0
            stats.cellSnapshotBytesSum +=
                cc.oc.cell.proto.snapshotBytes;
            for (std::size_t si = 0; si < n_seeds; ++si)
                result.phase.trialsSeconds +=
                    result.cells[(wi * n_modes + mi) * n_seeds + si]
                        .phase.trialsSeconds;
            cc.oc.cleanup(); // shard bundles in temp files
        }
        // Suite-wide snapshot residency. NB a warm suite's total can
        // exceed the cold run's: each cell's bundle deserializes into
        // its own page pool, so cross-cell sharing via the common
        // pristine image is not reconstructed across bundles (each
        // cell's own chain keeps its internal COW sharing, and
        // per-cell snapshotBytes stays bit-identical).
        stats.suiteSnapshotBytes = wc.pages.bytes;
        result.workloadStats.push_back(std::move(stats));
    }

    result.cpuSeconds = result.phase.totalSeconds();
    result.wallSeconds = wall.seconds();
    return result;
}

} // namespace softcheck
