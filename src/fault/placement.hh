/**
 * @file
 * Checkpoint-placement optimization for SFI campaigns (the ICCAD'23
 * "Checkpoint Placement for Systematic Fault-Injection Campaigns"
 * formulation, adapted to SoftCheck's COW snapshots).
 *
 * The golden run records *candidate* snapshots on a fine periodic
 * grid; this unit then picks which K to keep so that the expected
 * per-trial fast-forward cost — replay instructions from the chosen
 * resume point to the injection point, plus a restore term
 * proportional to the pages a resume must re-adopt — is minimized
 * under the campaign's injection-point distribution. Uniform placement
 * (K evenly spaced points on the same grid) goes through the same
 * machinery so the two strategies differ only in the optimization,
 * never in the recording path.
 *
 * The injection distribution is pluggable (InjectionModel) so that
 * fault-space pruning can later skew mass away from already-classified
 * regions without touching the optimizer.
 */

#ifndef SOFTCHECK_FAULT_PLACEMENT_HH
#define SOFTCHECK_FAULT_PLACEMENT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace softcheck
{

/** How a campaign chooses its checkpoint schedule. */
enum class CheckpointPlacement : uint8_t
{
    Uniform,  //!< K evenly spaced points on the candidate grid
    Adaptive, //!< DP/greedy cost-aware placement (this unit)
};

const char *placementName(CheckpointPlacement p);

/**
 * One candidate resume point of the golden run: its dynamic
 * instruction index and the bytes of memory pages it holds that no
 * earlier candidate already holds (sequential seen-set accounting —
 * the incremental dirty footprint of the region ending here, which is
 * the model's proxy for how much a restore from here must re-adopt).
 */
struct PlacementCandidate
{
    uint64_t dynInstr = 0;
    uint64_t newBytes = 0;
};

/**
 * Injection-point distribution over dynamic instructions [0, L). The
 * optimizer only needs segment masses and truncated first moments, so
 * a skewed distribution (fault-space pruning) plugs in here without
 * changing the placement code.
 */
class InjectionModel
{
  public:
    virtual ~InjectionModel() = default;
    /** P[lo <= X < hi]. */
    virtual double mass(uint64_t lo, uint64_t hi) const = 0;
    /** E[(X - from) * 1{lo <= X < hi}] — expected replay instructions
     * for injections in [lo, hi) resumed from @p from (<= lo). */
    virtual double replayInstrs(uint64_t from, uint64_t lo,
                                uint64_t hi) const = 0;
};

/** Uniform over [0, L) — today's campaign trial draw. */
class UniformInjection : public InjectionModel
{
  public:
    explicit UniformInjection(uint64_t run_length);
    double mass(uint64_t lo, uint64_t hi) const override;
    double replayInstrs(uint64_t from, uint64_t lo,
                        uint64_t hi) const override;

  private:
    double len;
};

struct PlacementRequest
{
    /** Golden-run length L in dynamic instructions (> 0). */
    uint64_t runLength = 0;
    /** Keep at most this many candidates (effective K =
     * min(maxCheckpoints, #candidates)). */
    unsigned maxCheckpoints = 0;
    /** Restore-cost weight: instruction-equivalents per restored page
     * (converts a snapshot's newBytes/pageBytes into the same unit as
     * replay instructions). 0 reduces the objective to pure replay. */
    double restoreInstrsPerPage = 64.0;
    /** Page granularity of PlacementCandidate::newBytes. */
    uint64_t pageBytes = 256;
    /** Injection distribution; null = uniform over [0, runLength). */
    const InjectionModel *model = nullptr;
    CheckpointPlacement placement = CheckpointPlacement::Adaptive;
};

struct PlacementResult
{
    /** Ascending indices into the candidate vector. */
    std::vector<uint32_t> chosen;
    /** Model E[fast-forward cost per trial] of the chosen schedule, in
     * instruction-equivalents (replay + restore term). */
    double expectedFFInstrs = 0;
};

/**
 * Model cost of an arbitrary schedule @p chosen (ascending candidate
 * indices; may be empty = pristine-only). Exposed for tests and for
 * the byte-budget trimming loop.
 */
double placementCost(const std::vector<PlacementCandidate> &candidates,
                     const std::vector<uint32_t> &chosen,
                     const PlacementRequest &req);

/**
 * Position in @p chosen (not a candidate index) whose removal raises
 * placementCost the least. @pre !chosen.empty(). Used to trim a
 * schedule down to a snapshot-byte budget.
 */
std::size_t
cheapestRemoval(const std::vector<PlacementCandidate> &candidates,
                const std::vector<uint32_t> &chosen,
                const PlacementRequest &req);

/**
 * Choose up to req.maxCheckpoints candidates. Uniform placement picks
 * the candidates nearest the K evenly spaced points
 * i * L / (K+1), i = 1..K (deduplicated); adaptive placement solves
 * the expected-cost minimization exactly by DP when the instance is
 * small and by greedy insertion otherwise. Candidates must be sorted
 * by strictly increasing dynInstr, all < req.runLength.
 */
PlacementResult
placeCheckpoints(const std::vector<PlacementCandidate> &candidates,
                 const PlacementRequest &req);

} // namespace softcheck

#endif // SOFTCHECK_FAULT_PLACEMENT_HH
