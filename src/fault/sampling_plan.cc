#include "fault/sampling_plan.hh"

#include <algorithm>
#include <map>
#include <tuple>

#include "fault/campaign_internal.hh"
#include "support/error.hh"

namespace softcheck::campaign_detail
{

const char *
staticResolutionName(StaticResolution r)
{
    switch (r) {
      case StaticResolution::None: return "None";
      case StaticResolution::RingEmpty: return "RingEmpty";
      case StaticResolution::MaskedBit: return "MaskedBit";
      case StaticResolution::DeadReg: return "DeadReg";
      case StaticResolution::DynDead: return "DynDead";
    }
    return "?";
}

namespace
{

/** One trial's injection draw, in replay order. */
struct TrialDraw
{
    uint64_t faultAt;
    unsigned trial;
    Rng rng; //!< stream state just past the injection-point draw
};

/** A dormant flip awaiting its first read: trial + flipped bit. */
struct SlotWatch
{
    unsigned trial;
    unsigned bit;
};

/**
 * Resolver-side mirror of one interpreter call frame. The observer
 * has no frame push/pop events; it resynchronises this stack against
 * st.stack inside every hook. S is the sum of maskedSixtyFourths over
 * the frame's recent-write ring entries (with repetition), maintained
 * incrementally so the per-loop-top W term is O(1).
 */
struct MirrorFrame
{
    const ExecFunction *fn = nullptr;
    const FunctionFaultSpace *fs = nullptr;
    uint64_t S = 0;
    std::map<int32_t, std::vector<SlotWatch>> watches;
};

/**
 * FaultSiteObserver that resolves all trial draws against one golden
 * replay. See sampling_plan.hh for the resolution taxonomy and the
 * exactness argument.
 */
class PlanResolver final : public FaultSiteObserver
{
  public:
    PlanResolver(const ModuleFaultSpace &mfs,
                 std::vector<TrialDraw> draws, StratifiedPlan &plan)
        : mfs(mfs), draws(std::move(draws)), plan(plan)
    {
    }

    void
    atLoopTop(const ExecState &st) override
    {
        sync(st);
        MirrorFrame &mf = frames.back();
        const ExecFrame &fr = st.stack.back();
        // W term for this injection point: the probability that a
        // blind draw here resolves in the zero-variance stratum. An
        // empty ring means the engine injects nothing (certainty);
        // otherwise the slot draw is uniform over ring entries and
        // the bit draw uniform over the slot's width, so the masked
        // probability is S / (64 * ring size) — exact, since every
        // slot width divides 64.
        wSum += fr.recentCount == 0
                    ? 1.0
                    : static_cast<double>(mf.S) /
                          (64.0 * static_cast<double>(fr.recentCount));
        while (next < draws.size() &&
               draws[next].faultAt == st.dynCount) {
            resolveDraw(st, mf, fr, draws[next]);
            ++next;
        }
    }

    void
    onRead(const ExecState &st, int32_t slot) override
    {
        sync(st);
        MirrorFrame &mf = frames.back();
        const auto it = mf.watches.find(slot);
        if (it == mf.watches.end())
            return;
        // First read of the dormant flip: the reading instruction's
        // dynamic index (st.dynCount is already past it) keys the
        // equivalence class. One dynamic instruction executes in
        // exactly one frame, so (read index, slot, bit) is unique per
        // frame instance and needs no frame id in the key.
        const uint64_t read_dyn = st.dynCount - 1;
        for (const SlotWatch &w : it->second)
            classTrials[std::tuple(read_dyn, slot, w.bit)].push_back(
                w.trial);
        mf.watches.erase(it);
    }

    void
    onWrite(const ExecState &st, int32_t slot) override
    {
        sync(st);
        MirrorFrame &mf = frames.back();
        const ExecFrame &fr = st.stack.back();
        const auto it = mf.watches.find(slot);
        if (it != mf.watches.end()) {
            // Overwritten before any read: the flip never escapes the
            // register file.
            for (const SlotWatch &w : it->second)
                resolveMasked(w.trial, StaticResolution::DynDead);
            mf.watches.erase(it);
        }
        // Ring S update against the pre-noteWrite ring state (the
        // hook fires before the engine's noteWrite): the new entry
        // joins, and on a saturated ring the entry at recentPos is
        // evicted.
        if (mf.fs) {
            if (fr.recentCount == ExecFrame::kRecentRing)
                mf.S -= mf.fs->maskedSixtyFourths(static_cast<unsigned>(
                    fr.recent[fr.recentPos]));
            mf.S += mf.fs->maskedSixtyFourths(
                static_cast<unsigned>(slot));
        }
    }

    /** Run ended: pending watches never see a read. */
    void
    finishRun()
    {
        for (MirrorFrame &mf : frames)
            for (const auto &[slot, ws] : mf.watches)
                for (const SlotWatch &w : ws)
                    resolveMasked(w.trial, StaticResolution::DynDead);
        frames.clear();
        scAssert(next == draws.size(),
                 "stratified replay ended before all injection draws");
    }

    /**
     * Form the equivalence classes: unresolved trials sharing a
     * (first read, slot, bit) key. Singletons stay Execute.
     */
    void
    formClasses()
    {
        for (const auto &[key, trials] : classTrials) {
            if (trials.size() < 2)
                continue;
            const auto id =
                static_cast<uint32_t>(plan.classes.size());
            const unsigned rep =
                *std::min_element(trials.begin(), trials.end());
            plan.classes.push_back(FaultClass{
                rep, static_cast<uint32_t>(trials.size())});
            for (const unsigned t : trials) {
                plan.trials[t].classId = id;
                plan.trials[t].kind = t == rep ? TrialKind::ClassRep
                                               : TrialKind::ClassMember;
                if (t != rep)
                    ++plan.memberTrials;
            }
        }
    }

    double weightSum() const { return wSum; }

  private:
    void
    sync(const ExecState &st)
    {
        while (frames.size() > st.stack.size()) {
            // Frame exited with watches pending: the flipped slots die
            // with it, unread.
            for (const auto &[slot, ws] : frames.back().watches)
                for (const SlotWatch &w : ws)
                    resolveMasked(w.trial, StaticResolution::DynDead);
            frames.pop_back();
        }
        while (frames.size() < st.stack.size()) {
            const ExecFrame &fr = st.stack[frames.size()];
            MirrorFrame mf;
            mf.fn = fr.fn;
            mf.fs = fr.fn->src ? mfs.of(fr.fn->src) : nullptr;
            // Ring scan covers writes the observer did not see as
            // hooks (the entry frame's beginExec argument notes, and
            // call-argument notes before this push was detected).
            if (mf.fs)
                for (uint32_t i = 0; i < fr.recentCount; ++i)
                    mf.S += mf.fs->maskedSixtyFourths(
                        static_cast<unsigned>(fr.recent[i]));
            frames.push_back(std::move(mf));
        }
    }

    void
    resolveMasked(unsigned trial, StaticResolution why)
    {
        PlannedTrialInfo &pi = plan.trials[trial];
        pi.kind = TrialKind::Resolved;
        pi.why = why;
        ++plan.staticResolvedTrials;
        if (why == StaticResolution::RingEmpty ||
            why == StaticResolution::MaskedBit)
            ++plan.weightResolvedTrials;
    }

    void
    resolveDraw(const ExecState &st, MirrorFrame &mf,
                const ExecFrame &fr, const TrialDraw &d)
    {
        plan.trials[d.trial].atCycle = st.cost.cycles();
        if (fr.recentCount == 0) {
            // The engine skips injection on an empty ring (without
            // consuming RNG): the trial IS the golden run.
            resolveMasked(d.trial, StaticResolution::RingEmpty);
            return;
        }
        // Mirror the engine's site draw exactly (interpreter.cc
        // injection block): ring slot, then bit within the slot's
        // width.
        Rng rng = d.rng;
        const int32_t slot = fr.recent[static_cast<std::size_t>(
            rng.nextBelow(fr.recentCount))];
        const TypeKind ty =
            fr.fn->slotTypes[static_cast<std::size_t>(slot)];
        const unsigned width = typeBits(ty) ? typeBits(ty) : 64;
        const auto bit =
            static_cast<unsigned>(rng.nextBelow(width));
        if (mf.fs &&
            mf.fs->bitMasked(static_cast<unsigned>(slot), bit)) {
            resolveMasked(d.trial, StaticResolution::MaskedBit);
            return;
        }
        const ExecInst &inst = fr.fn->code[fr.ip];
        if (mf.fs && inst.srcInst &&
            !mf.fs->liveness().liveBefore(
                inst.srcInst, static_cast<unsigned>(slot))) {
            resolveMasked(d.trial, StaticResolution::DeadReg);
            return;
        }
        mf.watches[slot].push_back(SlotWatch{d.trial, bit});
    }

    const ModuleFaultSpace &mfs;
    std::vector<TrialDraw> draws;
    StratifiedPlan &plan;
    std::vector<MirrorFrame> frames;
    std::size_t next = 0;
    double wSum = 0;
    /** (first-read dyn index, slot, bit) -> unresolved member trials,
     * in ascending trial order (draws are processed sorted). */
    std::map<std::tuple<uint64_t, int32_t, unsigned>,
             std::vector<unsigned>>
        classTrials;
};

} // namespace

StratifiedPlan
buildStratifiedPlan(const CellCharacterization &cell,
                    const CampaignConfig &config)
{
    StratifiedPlan plan;
    plan.trials.assign(config.trials, PlannedTrialInfo{});
    const uint64_t golden_dyn = cell.proto.goldenDynInstrs;
    if (config.trials == 0 || golden_dyn == 0)
        return plan;
    scAssert(cell.faultSpace,
             "stratified plan needs the cell's fault-space analysis");

    // Every trial's injection point, from the same trial-indexed RNG
    // streams the batches use — the plan is batching/tier/thread
    // independent because the streams and the golden run are.
    std::vector<TrialDraw> draws;
    draws.reserve(config.trials);
    for (unsigned t = 0; t < config.trials; ++t) {
        Rng rng(trialSeed(config.seed, t));
        const uint64_t fault_at = rng.nextBelow(golden_dyn);
        draws.push_back(TrialDraw{fault_at, t, rng});
    }
    std::sort(draws.begin(), draws.end(),
              [](const TrialDraw &a, const TrialDraw &b) {
                  return a.faultAt != b.faultAt ? a.faultAt < b.faultAt
                                                : a.trial < b.trial;
              });

    // One observed golden replay resolves every draw. Always on the
    // interpreter (the only tier with observer hooks); Halt semantics
    // with the calibration-disabled set reproduce the golden stream
    // exactly — the surviving checks never fire fault-free.
    PlanResolver resolver(*cell.faultSpace, std::move(draws), plan);
    auto run = prepareRun(cell.testSpec());
    ExecOptions opts;
    opts.cost = config.cost;
    opts.checkMode = CheckMode::Halt;
    opts.disabledChecks = &cell.disabled;
    opts.siteObserver = &resolver;
    Interpreter interp(*cell.module().em, *run.mem);
    const RunResult r =
        interp.run(cell.module().entryIdx, run.args, opts);
    scAssert(r.ok() && r.dynInstrs == golden_dyn,
             "stratified planning replay diverged from the golden run");
    resolver.finishRun();
    resolver.formClasses();
    plan.staticMaskedWeight =
        resolver.weightSum() / static_cast<double>(golden_dyn);
    return plan;
}

} // namespace softcheck::campaign_detail
