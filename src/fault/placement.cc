#include "fault/placement.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hh"

namespace softcheck
{

const char *
placementName(CheckpointPlacement p)
{
    switch (p) {
      case CheckpointPlacement::Uniform: return "uniform";
      case CheckpointPlacement::Adaptive: return "adaptive";
    }
    return "?";
}

UniformInjection::UniformInjection(uint64_t run_length)
    : len(static_cast<double>(run_length))
{
    scAssert(run_length > 0, "uniform injection over an empty run");
}

double
UniformInjection::mass(uint64_t lo, uint64_t hi) const
{
    if (hi <= lo)
        return 0.0;
    return (static_cast<double>(hi) - static_cast<double>(lo)) / len;
}

double
UniformInjection::replayInstrs(uint64_t from, uint64_t lo,
                               uint64_t hi) const
{
    // Mean offset of a uniform draw in [lo, hi) from `from`, times the
    // segment mass: ((lo+hi)/2 - from) * (hi-lo)/L.
    if (hi <= lo)
        return 0.0;
    const double a = static_cast<double>(lo);
    const double b = static_cast<double>(hi);
    const double f = static_cast<double>(from);
    return ((a + b) * 0.5 - f) * (b - a) / len;
}

namespace
{

/**
 * Segment cost driver shared by the DP, the greedy pass, and
 * placementCost: cost of injections landing in [start, end) when they
 * resume from @p start, whose restore re-adopts @p restore_pages
 * pages (0 for the pristine image at dyn 0).
 */
double
segCost(const InjectionModel &model, double w, uint64_t start,
        uint64_t end, double restore_pages)
{
    return model.replayInstrs(start, start, end) +
           model.mass(start, end) * w * restore_pages;
}

double
pagesOf(const PlacementCandidate &c, const PlacementRequest &req)
{
    return static_cast<double>(c.newBytes) /
           static_cast<double>(req.pageBytes);
}

void
validate(const std::vector<PlacementCandidate> &candidates,
         const PlacementRequest &req)
{
    scAssert(req.runLength > 0, "placement over an empty run");
    scAssert(req.pageBytes > 0, "placement with zero page size");
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        scAssert(candidates[i].dynInstr < req.runLength,
                 "placement candidate past the end of the run");
        scAssert(i == 0 || candidates[i - 1].dynInstr <
                               candidates[i].dynInstr,
                 "placement candidates must strictly increase");
    }
}

PlacementResult
placeUniform(const std::vector<PlacementCandidate> &candidates,
             const PlacementRequest &req, const InjectionModel &model)
{
    PlacementResult res;
    const unsigned k = std::min<std::size_t>(req.maxCheckpoints,
                                             candidates.size());
    for (unsigned i = 1; i <= k; ++i) {
        // Nearest candidate to the i-th of K evenly spaced points.
        const double target = static_cast<double>(req.runLength) *
                              static_cast<double>(i) /
                              static_cast<double>(k + 1);
        std::size_t lo = 0, hi = candidates.size();
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (static_cast<double>(candidates[mid].dynInstr) < target)
                lo = mid + 1;
            else
                hi = mid;
        }
        std::size_t best = lo < candidates.size() ? lo : lo - 1;
        if (lo > 0 &&
            target - static_cast<double>(candidates[lo - 1].dynInstr) <=
                (lo < candidates.size()
                     ? static_cast<double>(candidates[lo].dynInstr) -
                           target
                     : std::numeric_limits<double>::infinity()))
            best = lo - 1;
        if (res.chosen.empty() ||
            res.chosen.back() != static_cast<uint32_t>(best))
            res.chosen.push_back(static_cast<uint32_t>(best));
    }
    res.expectedFFInstrs = placementCost(candidates, res.chosen, req);
    (void)model;
    return res;
}

PlacementResult
placeDp(const std::vector<PlacementCandidate> &candidates,
        const PlacementRequest &req, const InjectionModel &model)
{
    const std::size_t m = candidates.size();
    const unsigned kmax =
        std::min<std::size_t>(req.maxCheckpoints, m);
    const double w = req.restoreInstrsPerPage;
    const double inf = std::numeric_limits<double>::infinity();

    // dp[k][j]: min cost of [0, d_j) with exactly k checkpoints, the
    // k-th being candidate j (its own restore term is charged with its
    // segment, i.e. by whoever extends past j). Tail(j) closes the
    // schedule at run end. Fewer than kmax checkpoints are allowed —
    // a candidate whose restore term outweighs its replay savings is
    // simply not worth keeping.
    auto seg = [&](std::size_t i, std::size_t j_end) {
        // Segment starting at candidate i (or the pristine image when
        // i == m) and ending at candidate j_end's dynInstr (or the run
        // end when j_end == m).
        const uint64_t start = i == m ? 0 : candidates[i].dynInstr;
        const uint64_t end =
            j_end == m ? req.runLength : candidates[j_end].dynInstr;
        const double pages = i == m ? 0.0 : pagesOf(candidates[i], req);
        return segCost(model, w, start, end, pages);
    };

    std::vector<double> prev(m, inf), cur(m, inf);
    std::vector<std::vector<int32_t>> parent(
        kmax, std::vector<int32_t>(m, -1));

    PlacementResult res;
    res.expectedFFInstrs = seg(m, m); // K = 0: pristine only
    int best_k = 0;
    std::size_t best_j = 0;

    for (unsigned k = 1; k <= kmax; ++k) {
        for (std::size_t j = 0; j < m; ++j) {
            if (k == 1) {
                cur[j] = seg(m, j);
                parent[k - 1][j] = -1;
                continue;
            }
            double best = inf;
            int32_t arg = -1;
            for (std::size_t i = k - 2; i < j; ++i) {
                if (prev[i] == inf)
                    continue;
                const double c = prev[i] + seg(i, j);
                if (c < best) {
                    best = c;
                    arg = static_cast<int32_t>(i);
                }
            }
            cur[j] = best;
            parent[k - 1][j] = arg;
        }
        for (std::size_t j = 0; j < m; ++j) {
            if (cur[j] == inf)
                continue;
            const double total = cur[j] + seg(j, m);
            if (total < res.expectedFFInstrs) {
                res.expectedFFInstrs = total;
                best_k = static_cast<int>(k);
                best_j = j;
            }
        }
        std::swap(prev, cur);
    }

    if (best_k > 0) {
        std::size_t j = best_j;
        for (int k = best_k; k >= 1; --k) {
            res.chosen.push_back(static_cast<uint32_t>(j));
            const int32_t p = parent[static_cast<std::size_t>(k - 1)][j];
            if (p < 0)
                break;
            j = static_cast<std::size_t>(p);
        }
        std::reverse(res.chosen.begin(), res.chosen.end());
    }
    return res;
}

PlacementResult
placeGreedy(const std::vector<PlacementCandidate> &candidates,
            const PlacementRequest &req, const InjectionModel &model)
{
    const std::size_t m = candidates.size();
    const unsigned kmax =
        std::min<std::size_t>(req.maxCheckpoints, m);
    const double w = req.restoreInstrsPerPage;

    // Greedy insertion: starting from the pristine-only schedule, add
    // the candidate with the most negative cost delta until K are
    // placed or no addition helps. Each delta is O(1) model calls;
    // each round scans all unchosen candidates.
    std::vector<uint32_t> chosen; // ascending candidate indices
    std::vector<uint8_t> used(m, 0);
    double cost = segCost(model, w, 0, req.runLength, 0.0);

    for (unsigned round = 0; round < kmax; ++round) {
        double best_delta = 0.0;
        std::size_t best_c = m;
        for (std::size_t c = 0; c < m; ++c) {
            if (used[c])
                continue;
            // Enclosing gap [a, b): a = previous resume point, b =
            // next chosen dynInstr or the run end.
            const auto it = std::upper_bound(
                chosen.begin(), chosen.end(), static_cast<uint32_t>(c));
            const bool have_prev = it != chosen.begin();
            const std::size_t prev_idx =
                have_prev ? *(it - 1) : m; // m = pristine
            const uint64_t a =
                have_prev ? candidates[prev_idx].dynInstr : 0;
            const uint64_t b = it != chosen.end()
                                   ? candidates[*it].dynInstr
                                   : req.runLength;
            const double prev_pages =
                have_prev ? pagesOf(candidates[prev_idx], req) : 0.0;
            const uint64_t d = candidates[c].dynInstr;
            // Replace [a,b) from a with [a,d) from a + [d,b) from d.
            const double delta =
                segCost(model, w, a, d, prev_pages) +
                segCost(model, w, d, b, pagesOf(candidates[c], req)) -
                segCost(model, w, a, b, prev_pages);
            if (delta < best_delta) {
                best_delta = delta;
                best_c = c;
            }
        }
        if (best_c == m)
            break; // no remaining candidate reduces the cost
        used[best_c] = 1;
        chosen.insert(std::upper_bound(chosen.begin(), chosen.end(),
                                       static_cast<uint32_t>(best_c)),
                      static_cast<uint32_t>(best_c));
        cost += best_delta;
    }

    PlacementResult res;
    res.chosen = std::move(chosen);
    res.expectedFFInstrs = cost;
    return res;
}

} // namespace

double
placementCost(const std::vector<PlacementCandidate> &candidates,
              const std::vector<uint32_t> &chosen,
              const PlacementRequest &req)
{
    validate(candidates, req);
    UniformInjection uniform(req.runLength);
    const InjectionModel &model = req.model ? *req.model : uniform;
    const double w = req.restoreInstrsPerPage;

    double cost = 0.0;
    uint64_t start = 0;
    double pages = 0.0;
    for (std::size_t p = 0; p <= chosen.size(); ++p) {
        const uint64_t end = p < chosen.size()
                                 ? candidates[chosen[p]].dynInstr
                                 : req.runLength;
        cost += segCost(model, w, start, end, pages);
        if (p < chosen.size()) {
            start = candidates[chosen[p]].dynInstr;
            pages = pagesOf(candidates[chosen[p]], req);
        }
    }
    return cost;
}

std::size_t
cheapestRemoval(const std::vector<PlacementCandidate> &candidates,
                const std::vector<uint32_t> &chosen,
                const PlacementRequest &req)
{
    scAssert(!chosen.empty(), "cheapestRemoval on an empty schedule");
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_p = 0;
    std::vector<uint32_t> trimmed(chosen.size() - 1);
    for (std::size_t p = 0; p < chosen.size(); ++p) {
        std::copy(chosen.begin(),
                  chosen.begin() + static_cast<std::ptrdiff_t>(p),
                  trimmed.begin());
        std::copy(chosen.begin() + static_cast<std::ptrdiff_t>(p) + 1,
                  chosen.end(),
                  trimmed.begin() + static_cast<std::ptrdiff_t>(p));
        const double c = placementCost(candidates, trimmed, req);
        if (c < best) {
            best = c;
            best_p = p;
        }
    }
    return best_p;
}

PlacementResult
placeCheckpoints(const std::vector<PlacementCandidate> &candidates,
                 const PlacementRequest &req)
{
    validate(candidates, req);
    UniformInjection uniform(req.runLength);
    const InjectionModel &model = req.model ? *req.model : uniform;

    if (candidates.empty() || req.maxCheckpoints == 0) {
        PlacementResult res;
        res.expectedFFInstrs = segCost(model, req.restoreInstrsPerPage,
                                       0, req.runLength, 0.0);
        return res;
    }
    if (req.placement == CheckpointPlacement::Uniform)
        return placeUniform(candidates, req, model);

    // Exact DP is O(K * M^2); fall back to greedy insertion when the
    // instance would make that noticeable (the greedy schedule is
    // within a few percent on every profile we measured, and both are
    // deterministic).
    const double ops = static_cast<double>(req.maxCheckpoints) *
                       static_cast<double>(candidates.size()) *
                       static_cast<double>(candidates.size());
    if (ops <= 64e6)
        return placeDp(candidates, req, model);
    return placeGreedy(candidates, req, model);
}

} // namespace softcheck
