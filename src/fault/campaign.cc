#include "fault/campaign.hh"

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <unordered_set>

#include "frontend/compile.hh"
#include "support/error.hh"
#include "support/stats.hh"
#include "support/text.hh"

namespace softcheck
{

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Masked: return "Masked";
      case Outcome::ASDC: return "ASDC";
      case Outcome::USDC: return "USDC";
      case Outcome::SWDetect: return "SWDetect";
      case Outcome::HWDetect: return "HWDetect";
      case Outcome::Failure: return "Failure";
    }
    return "?";
}

double
CampaignResult::overhead() const
{
    if (baselineCycles == 0)
        return 0.0;
    return static_cast<double>(goldenCycles) /
               static_cast<double>(baselineCycles) -
           1.0;
}

double
CampaignResult::instrsPerFalsePositive() const
{
    if (calibrationCheckFails == 0)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(goldenDynInstrs) /
           static_cast<double>(calibrationCheckFails);
}

double
CampaignResult::pct(Outcome o) const
{
    uint64_t total = 0;
    for (uint64_t c : counts)
        total += c;
    if (total == 0)
        return 0.0;
    return 100.0 * static_cast<double>(
                       counts[static_cast<unsigned>(o)]) /
           static_cast<double>(total);
}

double
CampaignResult::coveragePct() const
{
    return pct(Outcome::Masked) + pct(Outcome::ASDC) +
           pct(Outcome::SWDetect) + pct(Outcome::HWDetect);
}

double
CampaignResult::marginOfError95() const
{
    uint64_t total = 0;
    for (uint64_t c : counts)
        total += c;
    if (total == 0)
        return 0.0;
    return 100.0 * marginOfError(total, 0.5, 0.95);
}

std::string
CampaignResult::str() const
{
    std::string s = strformat(
        "%-10s %-16s trials=%llu overhead=%5.1f%% | ",
        config.workload.c_str(), hardeningModeName(config.mode),
        static_cast<unsigned long long>(
            counts[0] + counts[1] + counts[2] + counts[3] + counts[4] +
            counts[5]),
        100.0 * overhead());
    for (unsigned o = 0; o < kNumOutcomes; ++o) {
        s += strformat("%s=%4.1f%% ",
                       outcomeName(static_cast<Outcome>(o)),
                       pct(static_cast<Outcome>(o)));
    }
    s += strformat("| cov=%5.1f%% moe=%.1f%%", coveragePct(),
                   marginOfError95());
    return s;
}

bool
isLargeValueChange(const FaultOutcome &f)
{
    double before, after;
    if (f.slotType == TypeKind::F64) {
        before = std::fabs(std::bit_cast<double>(f.before));
        after = std::fabs(std::bit_cast<double>(f.after));
        if (!std::isfinite(after))
            return true;
    } else if (f.slotType == TypeKind::F32) {
        before = std::fabs(static_cast<double>(std::bit_cast<float>(
            static_cast<uint32_t>(f.before))));
        after = std::fabs(static_cast<double>(std::bit_cast<float>(
            static_cast<uint32_t>(f.after))));
        if (!std::isfinite(after))
            return true;
    } else {
        const unsigned width = typeBits(f.slotType);
        before = std::fabs(static_cast<double>(
            signExtend(f.before, width)));
        after = std::fabs(static_cast<double>(
            signExtend(f.after, width)));
    }
    const double ref = std::max(before, 1.0);
    return after > 8.0 * ref || after * 8.0 < before;
}

namespace
{

struct PreparedModule
{
    std::unique_ptr<Module> mod;
    std::unique_ptr<ExecModule> em;
    std::size_t entryIdx = 0;
};

PreparedModule
buildModule(const Workload &w, HardeningMode mode,
            const CampaignConfig &cfg, const ProfileData *profile,
            HardeningReport *report_out)
{
    PreparedModule pm;
    pm.mod = compileMiniLang(w.source, w.name);
    // Re-assign profile ids so they line up with the profile collected
    // on the profiling module (same deterministic order).
    assignProfileSites(*pm.mod);
    HardeningOptions hopts;
    hopts.mode = mode;
    hopts.enableOpt1 = cfg.enableOpt1;
    hopts.enableOpt2 = cfg.enableOpt2;
    HardeningReport report = hardenModule(*pm.mod, hopts, profile);
    if (report_out)
        *report_out = report;
    pm.em = std::make_unique<ExecModule>(*pm.mod);
    pm.entryIdx = pm.em->functionIndex(w.entry);
    return pm;
}

} // namespace

uint64_t
trialSeed(uint64_t campaignSeed, unsigned trial)
{
    // Element 'trial' of the splitmix64 stream started at the campaign
    // seed: increment by the 64-bit golden ratio, then finalize.
    return splitmix64(campaignSeed +
                      (static_cast<uint64_t>(trial) + 1) *
                          0x9e3779b97f4a7c15ULL);
}

CampaignResult
runCampaign(const CampaignConfig &config)
{
    const Workload &w = getWorkload(config.workload);
    CampaignResult result;
    result.config = config;

    const bool train_role = !config.swapTrainTest;

    // ---- 1+2. compile + value-profile on the train input ------------
    ProfileData profile;
    if (config.mode == HardeningMode::DupValChks) {
        auto mod = compileMiniLang(w.source, w.name);
        const unsigned sites = assignProfileSites(*mod);
        ExecModule em(*mod);
        auto spec = w.makeInput(train_role);
        auto run = prepareRun(spec);
        ValueProfiler profiler(em.numProfileSites(),
                               config.policy.histogramBins);
        ExecOptions opts;
        opts.cost = config.cost;
        opts.profiler = &profiler;
        Interpreter interp(em, *run.mem);
        auto r = interp.run(em.functionIndex(w.entry), run.args, opts);
        scAssert(r.ok(), "profiling run failed for ", w.name);
        profile = ProfileData(profiler, floatSiteFlags(*mod, sites),
                              config.policy);
    }

    // ---- 3. harden ----------------------------------------------------
    PreparedModule hardened =
        buildModule(w, config.mode, config,
                    config.mode == HardeningMode::DupValChks ? &profile
                                                             : nullptr,
                    &result.report);

    // ---- baseline cycles (unhardened) on the test input ----------------
    PreparedModule baseline =
        buildModule(w, HardeningMode::Original, config, nullptr,
                    nullptr);
    const auto test_spec = w.makeInput(!train_role);
    {
        auto run = prepareRun(test_spec);
        ExecOptions opts;
        opts.cost = config.cost;
        Interpreter interp(*baseline.em, *run.mem);
        auto r = interp.run(baseline.entryIdx, run.args, opts);
        scAssert(r.ok(), "baseline run failed for ", w.name);
        result.baselineCycles = r.cycles;
    }

    // ---- 4. fault-free golden run + false-positive calibration ---------
    const unsigned num_checks = hardened.em->numCheckIds();
    result.totalCheckCount = num_checks;
    std::vector<uint8_t> disabled(num_checks, 0);
    std::vector<double> golden_signal;
    uint64_t golden_ret = 0;
    {
        auto run = prepareRun(test_spec);
        std::vector<uint64_t> fail_counts(num_checks, 0);
        ExecOptions opts;
        opts.cost = config.cost;
        opts.checkMode = CheckMode::Record;
        opts.checkFailCounts = &fail_counts;
        Interpreter interp(*hardened.em, *run.mem);
        auto r = interp.run(hardened.entryIdx, run.args, opts);
        scAssert(r.ok(), "golden run failed for ", w.name);
        result.goldenDynInstrs = r.dynInstrs;
        result.goldenCycles = r.cycles;
        golden_ret = r.retValue;
        golden_signal = extractSignal(w, test_spec, run);
        for (unsigned c = 0; c < num_checks; ++c) {
            result.calibrationCheckFails += fail_counts[c];
            if (fail_counts[c] > 0) {
                disabled[c] = 1;
                ++result.disabledCheckCount;
            }
        }
    }

    if (config.trials == 0)
        return result;

    // ---- 5. injection trials --------------------------------------------
    const uint64_t max_dyn = static_cast<uint64_t>(
        config.timeoutFactor * static_cast<double>(
                                   result.goldenDynInstrs));

    // Shared trial options; per-trial fields are filled per worker.
    ExecOptions trial_opts;
    trial_opts.cost = config.cost;
    trial_opts.checkMode = CheckMode::Halt;
    trial_opts.disabledChecks = &disabled;
    trial_opts.maxDynInstrs = max_dyn;

    // Checkpoint the fault-free run under trial semantics: the prefix
    // of every trial is deterministic and identical to this run, so a
    // trial can resume from the nearest snapshot at or before its
    // injection point instead of replaying from instruction 0. The
    // same snapshots drive golden-convergence pruning of the suffix.
    std::vector<Snapshot> snapshots;
    RunResult golden_run;
    uint64_t snapshot_stride = 0;
    if (config.checkpoints > 0) {
        snapshot_stride = result.goldenDynInstrs / config.checkpoints;
        if (snapshot_stride > 0) {
            auto run = prepareRun(test_spec);
            ExecOptions opts = trial_opts;
            opts.checkpointEvery = snapshot_stride;
            opts.checkpointSink = &snapshots;
            Interpreter interp(*hardened.em, *run.mem);
            golden_run =
                interp.run(hardened.entryIdx, run.args, opts);
            scAssert(golden_run.ok(),
                     "checkpoint recording run failed for ", w.name);
            trial_opts.goldenSnapshots = &snapshots;
            trial_opts.goldenEvery = snapshot_stride;
            trial_opts.goldenResult = &golden_run;

            // Footprint accounting: COW-resident bytes (distinct pages
            // across all snapshots) vs. what K deep copies would hold.
            result.snapshotCount =
                static_cast<unsigned>(snapshots.size());
            std::unordered_set<const void *> seen;
            for (const Snapshot &s : snapshots) {
                result.snapshotBytes += s.residentPageBytes(seen);
                result.snapshotBytesFullCopy += s.mem.bytesAllocated();
            }
        }
    }

    unsigned num_threads = config.threads;
    if (num_threads == 0)
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    num_threads = std::min(num_threads, config.trials);

    std::array<std::atomic<uint64_t>, kNumOutcomes> counts{};
    std::atomic<uint64_t> usdc_large{0}, usdc_small{0};
    std::atomic<unsigned> next_trial{0};

    auto worker = [&]() {
        // One PreparedRun per worker, reused across trials: the memory
        // is rewound from the pristine image (or a checkpoint) instead
        // of being reallocated, and the buffer addresses stay valid
        // because the allocation sequence is deterministic.
        auto run = prepareRun(test_spec);
        const Memory pristine = *run.mem;
        Interpreter interp(*hardened.em, *run.mem);
        ExecState st;
        for (;;) {
            const unsigned t = next_trial.fetch_add(1);
            if (t >= config.trials)
                return;
            // Trial-indexed RNG: deterministic regardless of thread
            // scheduling.
            Rng rng(trialSeed(config.seed, t));
            const uint64_t fault_at =
                rng.nextBelow(result.goldenDynInstrs);

            ExecOptions opts = trial_opts;
            opts.faultAtDynInstr = fault_at;
            opts.faultRng = &rng;

            if (snapshot_stride > 0 && fault_at >= snapshot_stride) {
                // Fast-forward: snapshots[i] sits at (i+1)*stride.
                std::size_t idx = static_cast<std::size_t>(
                                      fault_at / snapshot_stride) -
                                  1;
                idx = std::min(idx, snapshots.size() - 1);
                snapshots[idx].restore(st, *run.mem);
            } else {
                run.mem->restoreFrom(pristine);
                interp.begin(st, hardened.entryIdx, run.args,
                             config.cost);
            }
            auto r = interp.resume(st, opts);

            Outcome outcome;
            bool large = false;
            if (r.prunedToGolden) {
                // Full state re-converged with the fault-free run, so
                // the output is bit-exact by determinism.
                outcome = Outcome::Masked;
            } else {
                switch (r.term) {
                  case Termination::CheckFailed:
                    outcome = Outcome::SWDetect;
                    break;
                  case Termination::Trap:
                    outcome = (r.endCycle - r.fault.atCycle <=
                               config.hwDetectWindowCycles)
                                  ? Outcome::HWDetect
                                  : Outcome::Failure;
                    break;
                  case Termination::Timeout:
                    outcome = Outcome::Failure;
                    break;
                  case Termination::Ok: {
                    auto signal = extractSignal(w, test_spec, run);
                    const bool exact = signal == golden_signal &&
                                       r.retValue == golden_ret;
                    if (exact) {
                        outcome = Outcome::Masked;
                    } else {
                        const double score = fidelityScore(
                            w.fidelity, golden_signal, signal);
                        if (fidelityAcceptable(w.fidelity, score,
                                               w.threshold)) {
                            outcome = Outcome::ASDC;
                        } else {
                            outcome = Outcome::USDC;
                            large = r.fault.injected &&
                                    isLargeValueChange(r.fault);
                        }
                    }
                    break;
                  }
                  default:
                    scPanic("unhandled termination");
                }
            }
            counts[static_cast<unsigned>(outcome)].fetch_add(1);
            if (outcome == Outcome::USDC) {
                if (large)
                    usdc_large.fetch_add(1);
                else
                    usdc_small.fetch_add(1);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    for (unsigned o = 0; o < kNumOutcomes; ++o)
        result.counts[o] = counts[o].load();
    result.usdcLargeChange = usdc_large.load();
    result.usdcSmallChange = usdc_small.load();
    return result;
}

CampaignResult
characterizeOnly(const CampaignConfig &config)
{
    CampaignConfig cfg = config;
    cfg.trials = 0;
    return runCampaign(cfg);
}

} // namespace softcheck
