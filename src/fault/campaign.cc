#include "fault/campaign.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <unordered_set>

#include "fault/campaign_internal.hh"
#include "frontend/compile.hh"
#include "profile/value_profiler.hh"
#include "support/error.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/text.hh"

namespace softcheck
{

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Masked: return "Masked";
      case Outcome::ASDC: return "ASDC";
      case Outcome::USDC: return "USDC";
      case Outcome::SWDetect: return "SWDetect";
      case Outcome::HWDetect: return "HWDetect";
      case Outcome::Failure: return "Failure";
    }
    return "?";
}

const char *
samplingPlanName(SamplingPlan p)
{
    switch (p) {
      case SamplingPlan::Blind: return "blind";
      case SamplingPlan::Stratified: return "stratified";
    }
    return "?";
}

double
CampaignPhaseTimes::totalSeconds() const
{
    return compileSeconds + profileSeconds + baselineSeconds +
           goldenSeconds + trialsSeconds + cacheLoadSeconds;
}

CampaignPhaseTimes &
CampaignPhaseTimes::operator+=(const CampaignPhaseTimes &o)
{
    compileSeconds += o.compileSeconds;
    profileSeconds += o.profileSeconds;
    baselineSeconds += o.baselineSeconds;
    goldenSeconds += o.goldenSeconds;
    trialsSeconds += o.trialsSeconds;
    cacheLoadSeconds += o.cacheLoadSeconds;
    return *this;
}

double
CampaignResult::overhead() const
{
    if (baselineCycles == 0)
        return 0.0;
    return static_cast<double>(goldenCycles) /
               static_cast<double>(baselineCycles) -
           1.0;
}

double
CampaignResult::instrsPerFalsePositive() const
{
    if (calibrationCheckFails == 0)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(goldenDynInstrs) /
           static_cast<double>(calibrationCheckFails);
}

double
CampaignResult::measuredFFInstrsPerTrial() const
{
    const uint64_t total = totalTrials();
    if (total == 0)
        return 0.0;
    return (static_cast<double>(ffReplayInstrs) +
            config.restoreInstrsPerPage *
                static_cast<double>(ffRestorePages)) /
           static_cast<double>(total);
}

double
CampaignResult::trialsPerSec() const
{
    if (phase.trialsSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(totalTrials()) / phase.trialsSeconds;
}

uint64_t
CampaignResult::totalTrials() const
{
    uint64_t total = 0;
    for (uint64_t c : counts)
        total += c;
    return total;
}

double
CampaignResult::pct(Outcome o) const
{
    const uint64_t total = totalTrials();
    if (total == 0)
        return 0.0;
    return 100.0 * static_cast<double>(
                       counts[static_cast<unsigned>(o)]) /
           static_cast<double>(total);
}

double
CampaignResult::coveragePct() const
{
    return pct(Outcome::Masked) + pct(Outcome::ASDC) +
           pct(Outcome::SWDetect) + pct(Outcome::HWDetect);
}

double
CampaignResult::marginOfError95(Outcome o) const
{
    // Stratified estimator; blind campaigns have W = 0 and no
    // weight-resolved trials, which reduces it to the classic
    // z*sqrt(p(1-p)/n) at the observed proportion. The W stratum is
    // exact (Masked, zero variance), so only the n_a actively sampled
    // trials contribute, scaled by the active stratum's weight (1-W).
    const uint64_t total = totalTrials();
    if (total == 0)
        return 0.0;
    const uint64_t n_a = total - trialsWeightResolved;
    if (n_a == 0)
        return 0.0; // every trial resolved exactly
    uint64_t active = counts[static_cast<unsigned>(o)];
    if (o == Outcome::Masked)
        active -= trialsWeightResolved;
    const double q =
        static_cast<double>(active) / static_cast<double>(n_a);
    return 100.0 * (1.0 - staticMaskedWeight) *
           marginOfError(n_a, q, 0.95);
}

double
CampaignResult::marginOfError95WorstCase() const
{
    const uint64_t total = totalTrials();
    if (total == 0)
        return 0.0;
    const uint64_t n_a = total - trialsWeightResolved;
    if (n_a == 0)
        return 0.0;
    return 100.0 * (1.0 - staticMaskedWeight) *
           marginOfError(n_a, 0.5, 0.95);
}

double
CampaignResult::staticallyResolvedFraction() const
{
    const uint64_t total = totalTrials();
    if (total == 0)
        return 0.0;
    return static_cast<double>(trialsStaticallyResolved +
                               trialsClassMembers) /
           static_cast<double>(total);
}

double
CampaignResult::effectiveSampleSize() const
{
    const uint64_t total = totalTrials();
    if (total == 0)
        return 0.0;
    const uint64_t n_a = total - trialsWeightResolved;
    const double active_w = 1.0 - staticMaskedWeight;
    if (n_a == 0 || active_w <= 0.0)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(n_a) / (active_w * active_w);
}

std::string
CampaignResult::str() const
{
    std::string s = strformat(
        "%-10s %-16s trials=%llu overhead=%5.1f%% | ",
        config.workload.c_str(), hardeningModeName(config.mode),
        static_cast<unsigned long long>(totalTrials()),
        100.0 * overhead());
    for (unsigned o = 0; o < kNumOutcomes; ++o) {
        s += strformat("%s=%4.1f%% ",
                       outcomeName(static_cast<Outcome>(o)),
                       pct(static_cast<Outcome>(o)));
    }
    s += strformat("| cov=%5.1f%% moe=%.1f%%", coveragePct(),
                   marginOfError95WorstCase());
    return s;
}

bool
isLargeValueChange(const FaultOutcome &f)
{
    double before, after;
    if (f.slotType == TypeKind::F64) {
        before = std::fabs(std::bit_cast<double>(f.before));
        after = std::fabs(std::bit_cast<double>(f.after));
        if (!std::isfinite(after))
            return true;
    } else if (f.slotType == TypeKind::F32) {
        before = std::fabs(static_cast<double>(std::bit_cast<float>(
            static_cast<uint32_t>(f.before))));
        after = std::fabs(static_cast<double>(std::bit_cast<float>(
            static_cast<uint32_t>(f.after))));
        if (!std::isfinite(after))
            return true;
    } else {
        const unsigned width = typeBits(f.slotType);
        before = std::fabs(static_cast<double>(
            signExtend(f.before, width)));
        after = std::fabs(static_cast<double>(
            signExtend(f.after, width)));
    }
    const double ref = std::max(before, 1.0);
    return after > 8.0 * ref || after * 8.0 < before;
}

namespace campaign_detail
{

PreparedModule
buildModule(const Workload &w, HardeningMode mode,
            const CampaignConfig &cfg, const ProfileData *profile,
            HardeningReport *report_out)
{
    PreparedModule pm;
    pm.mod = compileMiniLang(w.source, w.name);
    // Re-assign profile ids so they line up with the profile collected
    // on the profiling module (same deterministic order).
    assignProfileSites(*pm.mod);
    HardeningOptions hopts;
    hopts.mode = mode;
    hopts.enableOpt1 = cfg.enableOpt1;
    hopts.enableOpt2 = cfg.enableOpt2;
    hopts.elideVacuousChecks = cfg.elideVacuousChecks;
    HardeningReport report = hardenModule(*pm.mod, hopts, profile);
    if (report_out)
        *report_out = report;
    pm.em = std::make_unique<ExecModule>(*pm.mod);
    if (cfg.tier != ExecTier::Interp)
        pm.tm = std::make_unique<ThreadedModule>(*pm.em);
    pm.entryIdx = pm.em->functionIndex(w.entry);
    return pm;
}

namespace
{

/** Run @p pm's entry on the tier @p opts requests (interpreter when no
 * translation was built, e.g. a profiling or interpreter-tier config).
 * Lockstep-tier campaigns run their fault-free characterization on the
 * threaded engine — lane groups only exist during the trial phase. */
RunResult
runOnTier(const PreparedModule &pm, Memory &mem,
          const std::vector<uint64_t> &args, const ExecOptions &opts)
{
    if (opts.tier != ExecTier::Interp && pm.tm) {
        ThreadedExec texec(*pm.tm, mem);
        return texec.run(pm.entryIdx, args, opts);
    }
    Interpreter interp(*pm.em, mem);
    return interp.run(pm.entryIdx, args, opts);
}

} // namespace

ProfileData
collectProfile(const Workload &w, const CampaignConfig &cfg,
               bool train_role)
{
    auto mod = compileMiniLang(w.source, w.name);
    const unsigned sites = assignProfileSites(*mod);
    ExecModule em(*mod);
    auto spec = w.makeInput(train_role);
    auto run = prepareRun(spec);
    ValueProfiler profiler(em.numProfileSites(),
                           cfg.policy.histogramBins);
    ExecOptions opts;
    opts.cost = cfg.cost;
    opts.profiler = &profiler;
    Interpreter interp(em, *run.mem);
    auto r = interp.run(em.functionIndex(w.entry), run.args, opts);
    scAssert(r.ok(), "profiling run failed for ", w.name);
    return ProfileData(profiler, floatSiteFlags(*mod, sites),
                       cfg.policy);
}

BaselineStats
runBaseline(const Workload &w, const PreparedModule &baseline,
            const WorkloadRunSpec &test_spec, const CampaignConfig &cfg)
{
    auto run = prepareRun(test_spec);
    ExecOptions opts;
    opts.cost = cfg.cost;
    opts.tier = cfg.tier;
    auto r = runOnTier(baseline, *run.mem, run.args, opts);
    scAssert(r.ok(), "baseline run failed for ", w.name);
    return BaselineStats{r.cycles, r.dynInstrs};
}

CellCharacterization
characterizeCell(const CampaignConfig &config,
                 const SharedArtifacts *shared,
                 SnapshotAccounting *suite_pages)
{
    const Workload &w = getWorkload(config.workload);
    CellCharacterization cell;
    CampaignResult &result = cell.proto;
    result.config = config;

    const bool train_role = !config.swapTrainTest;

    // ---- 1+2. compile + value-profile on the train input ------------
    ProfileData local_profile;
    const ProfileData *profile = nullptr;
    if (config.mode == HardeningMode::DupValChks) {
        if (shared && shared->profile) {
            profile = shared->profile;
        } else {
            const Stopwatch sw;
            local_profile = collectProfile(w, config, train_role);
            result.phase.profileSeconds = sw.seconds();
            profile = &local_profile;
        }
    }

    // ---- 3. harden ----------------------------------------------------
    if (shared && config.mode == HardeningMode::Original) {
        // The unhardened baseline module *is* the Original program.
        cell.sharedModule = shared->baselineModule;
        result.report = *shared->baselineReport;
    } else {
        const Stopwatch sw;
        cell.localModule =
            buildModule(w, config.mode, config, profile, &result.report);
        result.phase.compileSeconds = sw.seconds();
    }
    const PreparedModule &hardened = cell.module();

    // Static fault-space classification for the stratified planner
    // (liveness + masked-bit fixpoint over the hardened module). Pure
    // analysis of the module, so it is seed-independent and read-only
    // safe even when the module is suite-shared.
    if (config.sampling == SamplingPlan::Stratified &&
        config.trials > 0) {
        const Stopwatch sw;
        cell.faultSpace =
            std::make_unique<ModuleFaultSpace>(*hardened.mod);
        result.phase.compileSeconds += sw.seconds();
    }

    // ---- baseline characterization (unhardened) on the test input ----
    PreparedRun local_pristine;
    const PreparedRun *pristine = nullptr;
    BaselineStats bl;
    if (shared) {
        cell.sharedSpec = shared->testSpec;
        pristine = shared->pristine;
        bl = shared->baseline;
    } else {
        cell.localSpec = w.makeInput(!train_role);
        local_pristine = prepareRun(cell.localSpec);
        pristine = &local_pristine;
        const Stopwatch swc;
        PreparedModule baseline = buildModule(
            w, HardeningMode::Original, config, nullptr, nullptr);
        result.phase.compileSeconds += swc.seconds();
        const Stopwatch swb;
        bl = runBaseline(w, baseline, cell.testSpec(), config);
        result.phase.baselineSeconds = swb.seconds();
    }
    result.baselineCycles = bl.cycles;

    // ---- 4. merged fault-free golden run ------------------------------
    // One instrumented pass produces the false-positive calibration
    // counts, the golden signal/return value, AND the trial
    // fast-forward checkpoint candidates (it used to take two
    // bit-identical runs). The candidate stride derives from the
    // unhardened run's length (this run's own length is not known
    // yet), but recording is open-ended, so the grid covers the
    // hardened run's full — strictly longer — stream; placement then
    // keeps the K best candidates against the run's true length, so
    // neither the oversized un-checkpointed tail nor the zero-stride
    // degenerate of the old uniform math can occur. Check semantics do
    // not differ between recording (calibration) and halting with the
    // firing checks disabled (trials), so the recorded states are
    // valid trial-resume points.
    const unsigned num_checks = hardened.em->numCheckIds();
    result.totalCheckCount = num_checks;
    cell.disabled.assign(num_checks, 0);
    {
        const Stopwatch sw;
        PreparedRun run;
        if (shared) {
            // COW-forking rewrites the source image's dirty bitmaps at
            // the share point; cells of one workload characterize
            // concurrently on the suite pool, so forks of the shared
            // pristine image are serialized.
            std::lock_guard lock(shared->pristineMu);
            run = clonePreparedRun(*pristine);
        } else {
            run = clonePreparedRun(*pristine);
        }
        std::vector<uint64_t> fail_counts(num_checks, 0);
        ExecOptions opts;
        opts.cost = config.cost;
        opts.checkMode = CheckMode::Record;
        opts.checkFailCounts = &fail_counts;
        if (config.trials > 0 && config.checkpoints > 0) {
            // Candidate grid: oversample the requested K (bounded) so
            // placement has room to trade gap length against restore
            // cost; stride >= 1 keeps fast-forwarding alive even when
            // K exceeds the run length.
            constexpr uint64_t kMaxCandidates = 1024;
            constexpr uint64_t kOversample = 4;
            const uint64_t want =
                std::min(kMaxCandidates,
                         static_cast<uint64_t>(config.checkpoints) *
                             kOversample);
            opts.checkpointEvery =
                std::max<uint64_t>(1, bl.dynInstrs / want);
            opts.checkpointSink = &cell.snapshots;
        }
        opts.tier = config.tier;
        cell.goldenRun = runOnTier(hardened, *run.mem, run.args, opts);
        scAssert(cell.goldenRun.ok(), "golden run failed for ", w.name);
        result.goldenDynInstrs = cell.goldenRun.dynInstrs;
        result.goldenCycles = cell.goldenRun.cycles;
        result.goldenCheckEvals = cell.goldenRun.checkEvals;
        cell.goldenSignal = extractSignal(w, cell.testSpec(), run);
        for (unsigned c = 0; c < num_checks; ++c) {
            result.calibrationCheckFails += fail_counts[c];
            if (fail_counts[c] > 0) {
                cell.disabled[c] = 1;
                ++result.disabledCheckCount;
            }
        }
        // ---- checkpoint placement over the candidate grid ----------
        // Profile each candidate's incremental dirty-page footprint
        // (sequential seen-set accounting: the pages the region ending
        // at that candidate dirtied, ~ what a restore from it must
        // re-adopt), choose the schedule that minimizes the model's
        // expected fast-forward cost, and drop the rest — COW frees
        // every page only unchosen candidates held.
        PlacementRequest preq;
        preq.runLength = result.goldenDynInstrs;
        preq.maxCheckpoints = config.checkpoints;
        preq.restoreInstrsPerPage = config.restoreInstrsPerPage;
        preq.pageBytes = Memory::kPageSize;
        preq.placement = config.placement;
        std::vector<PlacementCandidate> cands;
        cands.reserve(cell.snapshots.size());
        {
            std::unordered_set<const void *> cand_seen;
            for (const Snapshot &s : cell.snapshots)
                cands.push_back(PlacementCandidate{
                    s.dynInstr(), s.residentPageBytes(cand_seen)});
        }
        PlacementResult placed = placeCheckpoints(cands, preq);
        {
            std::vector<Snapshot> kept;
            kept.reserve(placed.chosen.size());
            for (const uint32_t ci : placed.chosen)
                kept.push_back(std::move(cell.snapshots[ci]));
            cell.snapshots = std::move(kept);
        }

        // Snapshot-byte budget: trim the schedule — least expected
        // cost increase first — until the kept set's true resident
        // bytes fit. Resident bytes are recomputed per step because a
        // dropped snapshot's pages can survive in later snapshots that
        // still share them.
        auto kept_resident_bytes = [&cell]() {
            std::unordered_set<const void *> kept_seen;
            uint64_t bytes = 0;
            for (const Snapshot &s : cell.snapshots)
                bytes += s.residentPageBytes(kept_seen);
            return bytes;
        };
        if (config.snapshotBudgetBytes > 0) {
            while (!cell.snapshots.empty() &&
                   kept_resident_bytes() > config.snapshotBudgetBytes) {
                const std::size_t p =
                    cheapestRemoval(cands, placed.chosen, preq);
                placed.chosen.erase(
                    placed.chosen.begin() +
                    static_cast<std::ptrdiff_t>(p));
                cell.snapshots.erase(
                    cell.snapshots.begin() +
                    static_cast<std::ptrdiff_t>(p));
            }
            placed.expectedFFInstrs =
                placementCost(cands, placed.chosen, preq);
        }
        result.expectedFastForwardInstrs = placed.expectedFFInstrs;

        // Footprint accounting over the kept schedule: COW-resident
        // bytes (distinct pages across all kept snapshots) vs. what K
        // deep copies would hold. The measured metric's restore-cost
        // table takes the candidate-grid newBytes the placement model
        // priced, so measured and expected costs share one unit.
        result.snapshotCount =
            static_cast<unsigned>(cell.snapshots.size());
        std::unordered_set<const void *> seen;
        for (std::size_t i = 0; i < cell.snapshots.size(); ++i) {
            const Snapshot &s = cell.snapshots[i];
            cell.snapDyn.push_back(s.dynInstr());
            cell.snapNewBytes.push_back(
                cands[placed.chosen[i]].newBytes);
            result.snapshotBytes += s.residentPageBytes(seen);
            result.snapshotBytesFullCopy += s.mem.bytesAllocated();
        }
        result.snapshotDynInstrs = cell.snapDyn;
        // Suite-wide accounting: pages already contributed by another
        // cell of this workload (via the shared pristine image) are
        // counted once for the whole suite. Cells account concurrently;
        // the union total is order-independent.
        if (suite_pages) {
            std::lock_guard lock(suite_pages->mu);
            for (const Snapshot &s : cell.snapshots)
                suite_pages->bytes +=
                    s.residentPageBytes(suite_pages->seen);
        }
        result.phase.goldenSeconds = sw.seconds();
    }
    return cell;
}

unsigned
trialBatchSize(unsigned trials, unsigned pool_threads, ExecTier tier)
{
    // ~4 batches per worker: enough slack that whichever worker drains
    // first steals the stragglers, without dissolving a small campaign
    // into per-trial tasks (a trial is one interpreter run; a batch
    // should dominate its scheduling cost). The lockstep tier pays one
    // unamortized golden replay per batch (the stem chain breaks at
    // batch boundaries), so it trades some stealing slack for longer
    // chains.
    const unsigned per_worker = tier == ExecTier::Lockstep ? 2 : 4;
    const unsigned batches = std::max(1u, pool_threads * per_worker);
    return std::max(1u, (trials + batches - 1) / batches);
}

void
runTrialBatch(const CellCharacterization &cell,
              const CampaignConfig &config, unsigned first,
              unsigned last, TrialWorkerCache &cache, TrialAccum &accum,
              const StratifiedPlan *plan,
              std::vector<ClassOutcome> *class_out)
{
    const Stopwatch batch_sw;
    // Dynamic cross-validation hook for the static analysis: execute
    // the statically resolved trials anyway (outside all accounting)
    // and assert each classifies Masked. RingEmpty trials are skipped
    // — the engine injects nothing there, so there is nothing to
    // cross-check.
    const bool validate =
        plan && std::getenv("SOFTCHECK_VALIDATE_STATIC_MASKED");
    // Does trial @p t execute in this batch?
    auto runs = [&](unsigned t) {
        if (!plan)
            return true;
        const TrialKind k = plan->trials[t].kind;
        return k == TrialKind::Execute || k == TrialKind::ClassRep;
    };
    const Workload &w = getWorkload(config.workload);
    const PreparedModule &hardened = cell.module();
    const WorkloadRunSpec &test_spec = cell.testSpec();
    const std::vector<Snapshot> &snapshots = cell.snapshots;
    const std::vector<uint64_t> &snap_dyn = cell.snapDyn;
    const std::vector<double> &golden_signal = cell.goldenSignal;
    const RunResult &golden_run = cell.goldenRun;
    const uint64_t golden_ret = golden_run.retValue;
    const uint64_t golden_dyn = cell.proto.goldenDynInstrs;
    const uint64_t max_dyn = static_cast<uint64_t>(
        config.timeoutFactor * static_cast<double>(golden_dyn));

    // Shared trial options; per-trial fields are filled below.
    ExecOptions trial_opts;
    trial_opts.cost = config.cost;
    trial_opts.tier = config.tier;
    trial_opts.checkMode = CheckMode::Halt;
    trial_opts.disabledChecks = &cell.disabled;
    trial_opts.maxDynInstrs = max_dyn;
    if (!snapshots.empty()) {
        trial_opts.goldenSnapshots = &snapshots;
        trial_opts.goldenResult = &golden_run;
    }

    // A reusable worker state (prepared memory image + interpreter),
    // rewound from the pristine image or a checkpoint per trial instead
    // of reallocated — buffer addresses stay valid because the
    // allocation sequence is deterministic. Recycled through the cache
    // so concurrent batches each hold their own.
    std::unique_ptr<TrialWorkerState> ws;
    {
        std::lock_guard lock(cache.mu);
        if (!cache.idle.empty()) {
            ws = std::move(cache.idle.back());
            cache.idle.pop_back();
        }
    }
    if (!ws)
        ws = std::make_unique<TrialWorkerState>(cell);

    // Classify one finished trial. For Termination::Ok the worker's
    // run memory must already hold that trial's final image.
    struct Classified
    {
        Outcome outcome;
        bool large;
    };
    auto compute_outcome = [&](const RunResult &r) -> Classified {
        Outcome outcome;
        bool large = false;
        if (r.prunedToGolden) {
            // Full state re-converged with the fault-free run, so
            // the output is bit-exact by determinism.
            outcome = Outcome::Masked;
        } else {
            switch (r.term) {
              case Termination::CheckFailed:
                outcome = Outcome::SWDetect;
                break;
              case Termination::Trap:
                outcome = (r.endCycle - r.fault.atCycle <=
                           config.hwDetectWindowCycles)
                              ? Outcome::HWDetect
                              : Outcome::Failure;
                break;
              case Termination::Timeout:
                outcome = Outcome::Failure;
                break;
              case Termination::Ok: {
                auto signal = extractSignal(w, test_spec, ws->run);
                const bool exact = signal == golden_signal &&
                                   r.retValue == golden_ret;
                if (exact) {
                    outcome = Outcome::Masked;
                } else {
                    const double score = fidelityScore(
                        w.fidelity, golden_signal, signal);
                    if (fidelityAcceptable(w.fidelity, score,
                                           w.threshold)) {
                        outcome = Outcome::ASDC;
                    } else {
                        outcome = Outcome::USDC;
                        large = r.fault.injected &&
                                isLargeValueChange(r.fault);
                    }
                }
                break;
              }
              default:
                scPanic("unhandled termination");
            }
        }
        return Classified{outcome, large};
    };

    // Record trial @p t's result: accumulate, and publish to its
    // class slot when it is a representative (its batch is the only
    // writer; members read after the trial phase's pool join).
    auto record = [&](unsigned t, const RunResult &r) {
        const Classified c = compute_outcome(r);
        accum.counts[static_cast<unsigned>(c.outcome)].fetch_add(1);
        if (c.outcome == Outcome::USDC) {
            if (c.large)
                accum.usdcLarge.fetch_add(1);
            else
                accum.usdcSmall.fetch_add(1);
        }
        if (plan && plan->trials[t].kind == TrialKind::ClassRep) {
            ClassOutcome &co = (*class_out)[plan->trials[t].classId];
            co.outcome = c.outcome;
            co.large = c.large;
            co.term = r.term;
            co.pruned = r.prunedToGolden;
            co.endCycle = r.endCycle;
            co.ready = true;
        }
    };

    // Rewind the worker to trial start: the snapshot at @p key, or the
    // pristine image when key < 0.
    auto rewind = [&](std::ptrdiff_t key) {
        if (key >= 0) {
            snapshots[static_cast<std::size_t>(key)].restore(
                ws->st, *ws->run.mem);
        } else {
            ws->run.mem->restoreFrom(ws->pristine);
            ws->interp.begin(ws->st, hardened.entryIdx, ws->run.args,
                             config.cost);
        }
    };

    // One planned trial: its injection point, its RNG stream (already
    // past the fault-site draw), and the snapshot it resumes from.
    struct PlannedTrial
    {
        unsigned trial;
        uint64_t faultAt;
        Rng rng;
        std::ptrdiff_t key; //!< snapshot index, -1 = pristine
    };

    // Batch-local measured fast-forward sums, published to the shared
    // accumulator once at the end (commutative, so batching-blind).
    uint64_t ff_replay = 0;
    uint64_t ff_restore_pages = 0;

    // Plan trial @p t: draw its injection point from the trial-indexed
    // RNG (deterministic regardless of batching or thread scheduling)
    // and look up its resume snapshot — the last one at or before the
    // injection point, so a fault exactly on a snapshot boundary
    // resumes there with zero replay and injects immediately (the
    // engines order injection after the checkpoint capture point at
    // the same index). The measured fast-forward metric accumulates
    // here, exactly once per trial, whichever path later runs it —
    // but only for trials that run (@p account): statically resolved
    // trials pay no fast-forward, and validation reruns must not
    // perturb the sums.
    auto plan_one = [&](unsigned t, bool account) {
        Rng rng(trialSeed(config.seed, t));
        const uint64_t fault_at = rng.nextBelow(golden_dyn);
        const std::ptrdiff_t key =
            static_cast<std::ptrdiff_t>(
                firstSnapshotAfter(snapshots, fault_at)) -
            1;
        if (account) {
            ff_replay += fault_at - (key < 0 ? 0 : snap_dyn[static_cast<
                                          std::size_t>(key)]);
            if (key >= 0)
                ff_restore_pages +=
                    cell.snapNewBytes[static_cast<std::size_t>(key)] /
                    Memory::kPageSize;
        }
        return PlannedTrial{t, fault_at, rng, key};
    };

    // Run a planned trial alone on the scalar tier (the pre-lockstep
    // path).
    auto run_scalar_trial = [&](const PlannedTrial &p) {
        Rng rng = p.rng;
        ExecOptions opts = trial_opts;
        opts.faultAtDynInstr = p.faultAt;
        opts.faultRng = &rng;
        rewind(p.key);
        record(p.trial, ws->resume(opts));
    };

    // Execute a statically resolved trial for cross-validation only:
    // no accumulator contributions, just the Masked assertion.
    auto validate_resolved = [&](unsigned t) {
        const PlannedTrial p = plan_one(t, false);
        Rng rng = p.rng;
        ExecOptions opts = trial_opts;
        opts.faultAtDynInstr = p.faultAt;
        opts.faultRng = &rng;
        rewind(p.key);
        const RunResult r = ws->resume(opts);
        const Classified c = compute_outcome(r);
        scAssert(c.outcome == Outcome::Masked,
                 "statically resolved trial classified ",
                 outcomeName(c.outcome), ", not Masked (",
                 staticResolutionName(plan->trials[t].why), ")");
    };
    // Validate before any lockstep chain starts — the reruns share
    // the worker state.
    if (validate) {
        for (unsigned t = first; t < last; ++t)
            if (plan->trials[t].kind == TrialKind::Resolved &&
                plan->trials[t].why != StaticResolution::RingEmpty)
                validate_resolved(t);
    }

    if (config.tier == ExecTier::Lockstep && config.lanes >= 2 &&
        ws->lockstep) {
        // ---- lockstep lane groups ------------------------------------
        // Trials with adjacent injection points form lane groups of up
        // to config.lanes; the group engine replays the shared prefix
        // once on a stem lane and advances the faulted lanes in
        // lockstep, peeling divergent lanes back to the scalar threaded
        // tier. The group rewinds to the EARLIEST member's snapshot:
        // execution is deterministic, so the stem passing dynCount ==
        // faultAt carries exactly the state any later member's own
        // snapshot replay would have reached — grouping does not need a
        // shared snapshot key, only a shared stem. (dynCount, the
        // golden-compare cadence, and the timeout bound are all
        // absolute, so starting earlier changes no event.) Later
        // members trade their shorter private replay for a slice of one
        // shared stem — a win whenever the group is wider than the
        // span-over-stride ratio. Grouping only affects speed: every
        // per-trial result is bit-identical to the scalar path by the
        // lockstep tier's construction (enforced by
        // tests/interp/test_lockstep_equiv.cc), so outcome totals stay
        // independent of batching, like everything else here.
        std::vector<PlannedTrial> planned;
        planned.reserve(last - first);
        for (unsigned t = first; t < last; ++t)
            if (runs(t))
                planned.push_back(plan_one(t, true));
        // Order the whole batch by injection point (the engine's fork
        // order) and chunk it into full-width groups of neighbours.
        // Snapshot keys are monotone in faultAt, so the first member of
        // each chunk is also its earliest rewind point.
        std::sort(planned.begin(), planned.end(),
                  [](const PlannedTrial &a, const PlannedTrial &b) {
                      return a.faultAt != b.faultAt ? a.faultAt < b.faultAt
                                                    : a.trial < b.trial;
                  });
        const uint64_t fetches0 = ws->lockstep->fetches();
        const uint64_t served0 = ws->lockstep->laneInstrsServed();

        // Groups chain: runGroup exports the stem at the last fork, and
        // the next group (whose members inject later — the plan is
        // sorted) resumes it instead of rewinding, so one golden replay
        // covers the whole batch. The chain only survives while the
        // bound run memory stays the stem's, so everything that would
        // clobber it — peel resumes, signal extraction, trials that run
        // better scalar — is deferred until the chain ends.
        std::vector<LaneTrial> finished;
        finished.reserve(planned.size());
        /** finished[i] came from trial finished_ids[i] (the LaneTrial
         * itself does not carry the trial index, and class-outcome
         * publishing needs it back). */
        std::vector<unsigned> finished_ids;
        finished_ids.reserve(planned.size());
        std::vector<PlannedTrial> scalar_trials;
        std::vector<LaneTrial> group;
        bool chained = false; // ws->st + bound memory hold a stem export
        auto resume_dyn = [&](const PlannedTrial &p) {
            // The planned resume snapshot's own dynamic instruction.
            return p.key < 0
                       ? 0
                       : snap_dyn[static_cast<std::size_t>(p.key)];
        };
        std::size_t i = 0;
        while (i < planned.size()) {
            const std::size_t j =
                std::min(i + config.lanes, planned.size());
            const bool use_chain =
                chained && ws->st.dynCount <= planned[i].faultAt &&
                ws->st.dynCount >= resume_dyn(planned[i]);
            const uint64_t start_dyn =
                use_chain ? ws->st.dynCount : resume_dyn(planned[i]);
            // Profitability: the stem must replay [start_dyn, f_hi]
            // once to replace the members' private snapshot replays.
            // With dense checkpoints those replays are already short
            // and the group would trade them for a longer shared one
            // (plus per-lane SoA overhead on every post-fork suffix),
            // so only engage where the group clearly wins the replay
            // work — at least a 3x reduction; everywhere else the
            // scalar tier runs at parity, so the tier never trades a
            // loss for occupancy. (A suffix-aware cost model was
            // tried and mispredicts: a lane's marginal suffix cost
            // depends on how many lanes share the fetch, which is not
            // known until the group runs.)
            uint64_t scalar_replay = 0;
            for (std::size_t k = i; k < j; ++k)
                scalar_replay +=
                    planned[k].faultAt - resume_dyn(planned[k]);
            const uint64_t stem_replay =
                planned[j - 1].faultAt - start_dyn;
            if (j - i == 1 || scalar_replay < 3 * stem_replay) {
                for (std::size_t k = i; k < j; ++k)
                    scalar_trials.push_back(planned[k]);
                i = j;
                continue;
            }
            if (!use_chain)
                rewind(planned[i].key);
            group.clear();
            group.resize(j - i);
            for (std::size_t k = i; k < j; ++k) {
                group[k - i].faultAt = planned[k].faultAt;
                group[k - i].rng = planned[k].rng;
            }
            chained = ws->lockstep->runGroup(ws->st, group, trial_opts,
                                             &ws->st);
            for (std::size_t k = 0; k < group.size(); ++k) {
                finished.push_back(std::move(group[k]));
                finished_ids.push_back(planned[i + k].trial);
            }
            i = j;
        }

        // The chain is over; the bound memory is free to clobber.
        for (std::size_t fi = 0; fi < finished.size(); ++fi) {
            LaneTrial &tr = finished[fi];
            const unsigned t = finished_ids[fi];
            if (tr.status == LaneStatus::Peeled) {
                // Finish on the scalar threaded tier from the peel
                // point. Re-arming faultAtDynInstr (already past)
                // makes the engine disarm it immediately and start
                // the golden-compare cadence, without re-injecting
                // (no fault RNG) — the lane's flip already happened
                // inside the group.
                *ws->run.mem = tr.mem;
                ws->st = std::move(tr.state);
                ExecOptions opts = trial_opts;
                opts.faultAtDynInstr = tr.faultAt;
                RunResult r = ws->resume(opts);
                if (!r.prunedToGolden)
                    r.checkEvals += tr.checkEvalsAtPeel;
                r.fault = tr.fault;
                record(t, r);
            } else {
                scAssert(tr.status == LaneStatus::Done,
                         "unresolved lane trial");
                if (tr.result.term == Termination::Ok &&
                    !tr.result.prunedToGolden)
                    *ws->run.mem = tr.mem; // for extractSignal
                record(t, tr.result);
            }
        }
        for (const PlannedTrial &p : scalar_trials)
            run_scalar_trial(p);
        accum.laneSteps.fetch_add(ws->lockstep->laneInstrsServed() -
                                  served0);
        accum.laneSlots.fetch_add(
            (ws->lockstep->fetches() - fetches0) * config.lanes);
    } else {
        for (unsigned t = first; t < last; ++t)
            if (runs(t))
                run_scalar_trial(plan_one(t, true));
    }

    {
        std::lock_guard lock(cache.mu);
        cache.idle.push_back(std::move(ws));
    }
    accum.ffReplay.fetch_add(ff_replay);
    accum.ffRestorePages.fetch_add(ff_restore_pages);
    accum.batchNanos.fetch_add(
        static_cast<uint64_t>(batch_sw.seconds() * 1e9));
}

CampaignResult
finalizeTrialResult(const CellCharacterization &cell,
                    const CampaignConfig &config, const TrialAccum &accum,
                    const StratifiedPlan *plan,
                    const std::vector<ClassOutcome> *class_out)
{
    CampaignResult result = cell.proto;
    result.config = config;
    for (unsigned o = 0; o < kNumOutcomes; ++o)
        result.counts[o] = accum.counts[o].load();
    result.usdcLargeChange = accum.usdcLarge.load();
    result.usdcSmallChange = accum.usdcSmall.load();
    if (plan) {
        // Statically resolved trials are exact Masked outcomes —
        // every resolution rule is exactness-preserving (see
        // sampling_plan.hh), so the totals match a blind campaign
        // bit-for-bit.
        result.counts[static_cast<unsigned>(Outcome::Masked)] +=
            plan->staticResolvedTrials;
        // Class members copy their representative's outcome. The one
        // observable a class does NOT share is the injection cycle,
        // so a Trap representative's HWDetect/Failure window split is
        // re-decided against each member's own atCycle.
        for (std::size_t t = 0; t < plan->trials.size(); ++t) {
            const PlannedTrialInfo &pi = plan->trials[t];
            if (pi.kind != TrialKind::ClassMember)
                continue;
            const ClassOutcome &co = (*class_out)[pi.classId];
            scAssert(co.ready,
                     "class representative never published its outcome");
            Outcome o = co.outcome;
            if (co.term == Termination::Trap && !co.pruned)
                o = co.endCycle - pi.atCycle <=
                            config.hwDetectWindowCycles
                        ? Outcome::HWDetect
                        : Outcome::Failure;
            ++result.counts[static_cast<unsigned>(o)];
            if (o == Outcome::USDC) {
                if (co.large)
                    ++result.usdcLargeChange;
                else
                    ++result.usdcSmallChange;
            }
        }
        result.staticMaskedWeight = plan->staticMaskedWeight;
        result.trialsWeightResolved = plan->weightResolvedTrials;
        result.trialsStaticallyResolved = plan->staticResolvedTrials;
        result.trialsClassMembers = plan->memberTrials;
        result.faultClasses = plan->classes.size();
    }
    result.ffReplayInstrs = accum.ffReplay.load();
    result.ffRestorePages = accum.ffRestorePages.load();
    result.phase.trialsSeconds =
        static_cast<double>(accum.batchNanos.load()) * 1e-9;
    const uint64_t lane_slots = accum.laneSlots.load();
    if (lane_slots > 0)
        result.laneOccupancy =
            static_cast<double>(accum.laneSteps.load()) /
            static_cast<double>(lane_slots);
    return result;
}

CampaignResult
runTrialPhase(const CellCharacterization &cell,
              const CampaignConfig &config, TaskPool &pool)
{
    if (config.trials == 0) {
        CampaignResult result = cell.proto;
        result.config = config;
        return result;
    }

    // ---- 5. injection trials --------------------------------------------
    const Stopwatch trials_sw;
    // Stratified sampling: resolve the whole trial budget against one
    // observed golden replay before any batch runs. The pool join
    // below orders every representative's class-outcome write before
    // finalize's member reads.
    StratifiedPlan plan;
    std::vector<ClassOutcome> class_out;
    const bool stratified =
        config.sampling == SamplingPlan::Stratified;
    if (stratified) {
        plan = buildStratifiedPlan(cell, config);
        class_out.resize(plan.classes.size());
    }
    const StratifiedPlan *plan_p = stratified ? &plan : nullptr;
    std::vector<ClassOutcome> *co_p =
        stratified ? &class_out : nullptr;
    TrialWorkerCache cache;
    TrialAccum accum;
    const unsigned batch =
        trialBatchSize(config.trials, pool.threadCount(), config.tier);
    std::vector<TaskPool::TaskId> ids;
    for (unsigned first = 0; first < config.trials; first += batch) {
        const unsigned last = std::min(first + batch, config.trials);
        ids.push_back(pool.submit([&cell, &config, first, last, &cache,
                                   &accum, plan_p, co_p] {
            runTrialBatch(cell, config, first, last, cache, accum,
                          plan_p, co_p);
        }));
    }
    for (const TaskPool::TaskId id : ids)
        pool.wait(id);

    CampaignResult result =
        finalizeTrialResult(cell, config, accum, plan_p, co_p);
    // This entry point blocks until its own batches drain, so the
    // phase's wall clock (what trialsPerSec has always meant) is
    // well-defined; the suite engine, whose cells overlap, keeps the
    // summed per-batch CPU seconds instead.
    result.phase.trialsSeconds = trials_sw.seconds();
    return result;
}

} // namespace campaign_detail

uint64_t
trialSeed(uint64_t campaignSeed, unsigned trial)
{
    // Element 'trial' of the splitmix64 stream started at the campaign
    // seed: increment by the 64-bit golden ratio, then finalize.
    return splitmix64(campaignSeed +
                      (static_cast<uint64_t>(trial) + 1) *
                          0x9e3779b97f4a7c15ULL);
}

// runCampaign / characterizeOnly live in src/service/campaign_entry.cc:
// the public entry points own the artifact-cache and shard dispatch,
// which layer above this file's characterization/trial building blocks.

} // namespace softcheck
