/**
 * @file
 * Internals shared between the single-campaign runner (campaign.cc)
 * and the suite engine (suite.cc): the per-phase building blocks of a
 * campaign, the bundle of per-workload artifacts a suite precomputes
 * once and serves to every cell, and the suite-level snapshot-page
 * accounting.
 *
 * The contract that makes suite cells bit-identical to standalone
 * runCampaign calls: every SharedArtifacts member is a deterministic
 * function of (workload, CampaignConfig knobs) alone, so a cell served
 * shared artifacts computes exactly what it would have computed itself.
 */

#ifndef SOFTCHECK_FAULT_CAMPAIGN_INTERNAL_HH
#define SOFTCHECK_FAULT_CAMPAIGN_INTERNAL_HH

#include <chrono>
#include <memory>
#include <unordered_set>
#include <vector>

#include "fault/campaign.hh"
#include "interp/interpreter.hh"
#include "ir/module.hh"
#include "profile/profile_data.hh"
#include "workloads/workload.hh"

namespace softcheck::campaign_detail
{

class Stopwatch
{
  public:
    Stopwatch() : t0(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point t0;
};

struct PreparedModule
{
    std::unique_ptr<Module> mod;
    std::unique_ptr<ExecModule> em;
    std::size_t entryIdx = 0;
};

/** Compile @p w, apply @p mode, and build the ExecModule. */
PreparedModule buildModule(const Workload &w, HardeningMode mode,
                           const CampaignConfig &cfg,
                           const ProfileData *profile,
                           HardeningReport *report_out);

/** Value-profile @p w on its train (or swapped) input. */
ProfileData collectProfile(const Workload &w, const CampaignConfig &cfg,
                           bool train_role);

/** Fault-free characterization of the unhardened program. */
struct BaselineStats
{
    uint64_t cycles = 0;
    uint64_t dynInstrs = 0;
};

BaselineStats runBaseline(const Workload &w,
                          const PreparedModule &baseline,
                          const WorkloadRunSpec &test_spec,
                          const CampaignConfig &cfg);

/**
 * Per-workload artifacts a suite computes once and shares across the
 * workload's cells (one per hardening mode). All pointers are non-owning
 * and must outlive the cells. When null/absent the cell computes the
 * artifact itself (the standalone runCampaign path).
 */
struct SharedArtifacts
{
    /** Value profile (only DupValChks cells consume it). */
    const ProfileData *profile = nullptr;
    /** Unhardened module — doubles as the Original cell's program. */
    const PreparedModule *baselineModule = nullptr;
    const HardeningReport *baselineReport = nullptr;
    /** Test input spec + its prepared pristine image. Cells fork the
     * image copy-on-write, so pages no cell dirties (the input
     * buffers) are shared by every cell's golden page chain. */
    const WorkloadRunSpec *testSpec = nullptr;
    const PreparedRun *pristine = nullptr;
    BaselineStats baseline;
};

/**
 * Suite-wide snapshot accounting: pages are deduped across every cell
 * of one workload (by block address), and each cell's snapshots are
 * kept alive here so addresses in @p seen stay valid — freeing them
 * mid-suite would let the allocator reuse an address and corrupt the
 * dedup.
 */
struct SnapshotAccounting
{
    std::unordered_set<const void *> seen;
    uint64_t bytes = 0;
    std::vector<std::vector<Snapshot>> keepAlive;
};

/**
 * Everything the trial phase needs from the fault-free half of a
 * campaign: the hardened program, the false-positive calibration, the
 * golden signal/run, and the checkpoint snapshots — plus a result
 * prototype with all characterization fields (and their phase times)
 * filled in. Fault-free state is independent of the injection seed, so
 * one characterization can serve any number of trial-phase variants.
 */
struct CellCharacterization
{
    /** Characterization fields + phase times filled; counts empty. */
    CampaignResult proto;

    PreparedModule localModule; //!< empty when served by a suite
    const PreparedModule *sharedModule = nullptr;
    WorkloadRunSpec localSpec; //!< unused when served by a suite
    const WorkloadRunSpec *sharedSpec = nullptr;

    std::vector<uint8_t> disabled;    //!< calibration-disabled checks
    std::vector<double> goldenSignal;
    std::vector<Snapshot> snapshots;
    RunResult goldenRun;
    uint64_t snapshotStride = 0; //!< 0 = no fast-forwarding

    const PreparedModule &
    module() const
    {
        return sharedModule ? *sharedModule : localModule;
    }

    const WorkloadRunSpec &
    testSpec() const
    {
        return sharedSpec ? *sharedSpec : localSpec;
    }
};

/**
 * Fault-free half of a campaign: compile (unless shared), profile
 * (unless shared), baseline (unless shared), and the merged
 * calibration+checkpoint golden run. When @p suite_pages is given the
 * snapshots are additionally accounted against the suite-wide deduped
 * page set (the caller parks them in keepAlive when done).
 */
CellCharacterization characterizeCell(const CampaignConfig &config,
                                      const SharedArtifacts *shared,
                                      SnapshotAccounting *suite_pages);

/**
 * Injection half: run @p config's trials against a finished
 * characterization. The returned result carries the
 * characterization's fields and phase times plus this phase's
 * trialsSeconds; only config.seed/trials/threads influence it, so one
 * characterization may serve many variant calls.
 */
CampaignResult runTrialPhase(const CellCharacterization &cell,
                             const CampaignConfig &config);

} // namespace softcheck::campaign_detail

#endif // SOFTCHECK_FAULT_CAMPAIGN_INTERNAL_HH
