/**
 * @file
 * Internals shared between the single-campaign runner (campaign.cc)
 * and the suite engine (suite.cc): the per-phase building blocks of a
 * campaign, the bundle of per-workload artifacts a suite precomputes
 * once and serves to every cell, and the suite-level snapshot-page
 * accounting.
 *
 * The contract that makes suite cells bit-identical to standalone
 * runCampaign calls: every SharedArtifacts member is a deterministic
 * function of (workload, CampaignConfig knobs) alone, so a cell served
 * shared artifacts computes exactly what it would have computed itself.
 */

#ifndef SOFTCHECK_FAULT_CAMPAIGN_INTERNAL_HH
#define SOFTCHECK_FAULT_CAMPAIGN_INTERNAL_HH

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "analysis/fault_space.hh"
#include "fault/campaign.hh"
#include "fault/sampling_plan.hh"
#include "interp/interpreter.hh"
#include "interp/lockstep_exec.hh"
#include "interp/threaded_exec.hh"
#include "ir/module.hh"
#include "profile/profile_data.hh"
#include "support/task_pool.hh"
#include "workloads/workload.hh"

namespace softcheck::campaign_detail
{

class Stopwatch
{
  public:
    Stopwatch() : t0(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point t0;
};

struct PreparedModule
{
    std::unique_ptr<Module> mod;
    std::unique_ptr<ExecModule> em;
    /** Direct-threaded translation; built only when the campaign runs
     * on ExecTier::Threaded, and shared read-only by every engine
     * bound to this module (the translation is stateless). */
    std::unique_ptr<ThreadedModule> tm;
    std::size_t entryIdx = 0;
};

/** Compile @p w, apply @p mode, and build the ExecModule. */
PreparedModule buildModule(const Workload &w, HardeningMode mode,
                           const CampaignConfig &cfg,
                           const ProfileData *profile,
                           HardeningReport *report_out);

/** Value-profile @p w on its train (or swapped) input. */
ProfileData collectProfile(const Workload &w, const CampaignConfig &cfg,
                           bool train_role);

/** Fault-free characterization of the unhardened program. */
struct BaselineStats
{
    uint64_t cycles = 0;
    uint64_t dynInstrs = 0;
};

BaselineStats runBaseline(const Workload &w,
                          const PreparedModule &baseline,
                          const WorkloadRunSpec &test_spec,
                          const CampaignConfig &cfg);

/**
 * Per-workload artifacts a suite computes once and shares across the
 * workload's cells (one per hardening mode). All pointers are non-owning
 * and must outlive the cells. When null/absent the cell computes the
 * artifact itself (the standalone runCampaign path).
 */
struct SharedArtifacts
{
    /** Value profile (only DupValChks cells consume it). */
    const ProfileData *profile = nullptr;
    /** Unhardened module — doubles as the Original cell's program. */
    const PreparedModule *baselineModule = nullptr;
    const HardeningReport *baselineReport = nullptr;
    /** Test input spec + its prepared pristine image. Cells fork the
     * image copy-on-write, so pages no cell dirties (the input
     * buffers) are shared by every cell's golden page chain. */
    const WorkloadRunSpec *testSpec = nullptr;
    const PreparedRun *pristine = nullptr;
    BaselineStats baseline;
    /**
     * Serializes COW forks of @p pristine: cloning rewrites the
     * source's dirty bitmaps at the share point (see memory.hh), so
     * two cells of one workload characterizing concurrently on the
     * suite's task pool must not fork the shared image at once.
     */
    mutable std::mutex pristineMu;
};

/**
 * Suite-wide snapshot accounting: pages are deduped across every cell
 * of one workload (by block address). The caller must keep every
 * accounted cell's snapshots alive for the lifetime of @p seen —
 * freeing them mid-suite would let the allocator reuse an address and
 * corrupt the dedup (the suite owns its CellCharacterizations until
 * the whole grid has finished, which also keeps the snapshots trial
 * tasks resume from valid). The deduped byte total is a set-union
 * size, so it is independent of the order concurrent cells account in.
 */
struct SnapshotAccounting
{
    std::mutex mu; //!< guards seen + bytes across concurrent cells
    std::unordered_set<const void *> seen;
    uint64_t bytes = 0;
};

/**
 * Everything the trial phase needs from the fault-free half of a
 * campaign: the hardened program, the false-positive calibration, the
 * golden signal/run, and the checkpoint snapshots — plus a result
 * prototype with all characterization fields (and their phase times)
 * filled in. Fault-free state is independent of the injection seed, so
 * one characterization can serve any number of trial-phase variants.
 */
struct CellCharacterization
{
    /** Characterization fields + phase times filled; counts empty. */
    CampaignResult proto;

    PreparedModule localModule; //!< empty when served by a suite
    const PreparedModule *sharedModule = nullptr;
    WorkloadRunSpec localSpec; //!< unused when served by a suite
    const WorkloadRunSpec *sharedSpec = nullptr;

    std::vector<uint8_t> disabled;    //!< calibration-disabled checks
    std::vector<double> goldenSignal;
    /** Kept checkpoint snapshots, sorted by strictly increasing
     * dynInstr() — the placement-chosen schedule (empty = no
     * fast-forwarding). Trials resume from the last snapshot at or
     * before their injection point (firstSnapshotAfter - 1). */
    std::vector<Snapshot> snapshots;
    /** snapDyn[i] == snapshots[i].dynInstr(), cached so the trial
     * planner's binary searches and the lockstep grouping heuristic
     * don't touch the snapshots themselves. */
    std::vector<uint64_t> snapDyn;
    /** Per kept snapshot: the candidate-grid incremental dirty bytes
     * (PlacementCandidate::newBytes of the chosen candidate) — the
     * schedule-static restore-cost proxy behind the measured
     * fast-forward metric, and the exact quantity the placement model
     * priced, so measured and expected costs share one unit. Using
     * static costs — not the pages a given worker actually re-adopts,
     * which depend on batch order — keeps the metric bit-identical
     * across thread counts and tiers. */
    std::vector<uint64_t> snapNewBytes;
    RunResult goldenRun;
    /** Static fault-space classification of the hardened module;
     * built only when config.sampling == SamplingPlan::Stratified and
     * trials > 0 (the stratified planner needs it). Seed-independent,
     * so it serves every trial-phase variant like the rest of the
     * characterization. */
    std::unique_ptr<ModuleFaultSpace> faultSpace;

    const PreparedModule &
    module() const
    {
        return sharedModule ? *sharedModule : localModule;
    }

    const WorkloadRunSpec &
    testSpec() const
    {
        return sharedSpec ? *sharedSpec : localSpec;
    }
};

/**
 * Fault-free half of a campaign: compile (unless shared), profile
 * (unless shared), baseline (unless shared), and the merged
 * calibration+checkpoint golden run. When @p suite_pages is given the
 * snapshots are additionally accounted against the suite-wide deduped
 * page set (the caller parks them in keepAlive when done).
 */
CellCharacterization characterizeCell(const CampaignConfig &config,
                                      const SharedArtifacts *shared,
                                      SnapshotAccounting *suite_pages);

/**
 * Reusable per-executing-thread trial state: a prepared memory image,
 * its pristine copy to rewind from, and an interpreter bound to it.
 * Building one costs a prepareRun, so batches recycle them through a
 * TrialWorkerCache instead of paying it per batch.
 */
struct TrialWorkerState
{
    PreparedRun run;
    Memory pristine;
    Interpreter interp;
    std::unique_ptr<ThreadedExec> texec; //!< when the module carries a
                                         //!< threaded translation
    /** Lane-group engine over the same translation and memory image;
     * used by lockstep-tier batches, which peel divergent lanes back
     * onto texec via resume(). */
    std::unique_ptr<LockstepExec> lockstep;
    ExecState st;

    explicit TrialWorkerState(const CellCharacterization &cell)
        : run(prepareRun(cell.testSpec())), pristine(*run.mem),
          interp(*cell.module().em, *run.mem)
    {
        if (cell.module().tm) {
            texec = std::make_unique<ThreadedExec>(*cell.module().tm,
                                                   *run.mem);
            lockstep = std::make_unique<LockstepExec>(
                *cell.module().tm, *run.mem);
        }
    }

    /** Resume on the tier @p opts requests (falling back to the
     * interpreter when no translation was built). The lockstep tier
     * resumes scalar work — peeled lanes, singleton groups — on the
     * threaded engine, which is bit-identical. */
    RunResult
    resume(const ExecOptions &opts)
    {
        if (opts.tier != ExecTier::Interp && texec)
            return texec->resume(st, opts);
        return interp.resume(st, opts);
    }
};

/**
 * Stack of idle TrialWorkerStates for one cell's trial phase. A batch
 * task pops one (building it only when none is idle) and pushes it
 * back when done, so at most min(pool threads, batches) states ever
 * exist per cell — the same one-per-worker cost the dedicated-thread
 * engine paid, but shared with every other cell on the pool.
 */
struct TrialWorkerCache
{
    std::mutex mu;
    std::vector<std::unique_ptr<TrialWorkerState>> idle;
};

/**
 * Scheduling-independent accumulators for one cell's trial phase.
 * Trials contribute commutative sums only, so any batch partition on
 * any number of threads yields bit-identical totals.
 */
struct TrialAccum
{
    std::array<std::atomic<uint64_t>, kNumOutcomes> counts{};
    std::atomic<uint64_t> usdcLarge{0};
    std::atomic<uint64_t> usdcSmall{0};
    /** Summed per-batch wall nanoseconds — the CPU seconds actually
     * spent injecting, meaningful even when batches of many cells
     * overlap on the pool. */
    std::atomic<uint64_t> batchNanos{0};
    /** Lockstep occupancy inputs (see CampaignResult::laneOccupancy):
     * trial-lane instructions served by group fetches, and the lane
     * slots those fetches offered (fetches x configured width). */
    std::atomic<uint64_t> laneSteps{0};
    std::atomic<uint64_t> laneSlots{0};
    /** Measured fast-forward cost inputs, accumulated once per trial
     * when it is planned (see CampaignResult::ffReplayInstrs): replay
     * instructions from the schedule's resume point to the injection
     * point, and the resume snapshot's schedule-static restore pages.
     * Both are functions of (trial RNG, schedule) only, so the sums
     * are bit-identical across batching, tiers, and thread counts. */
    std::atomic<uint64_t> ffReplay{0};
    std::atomic<uint64_t> ffRestorePages{0};
};

/**
 * Run trials [@p first, @p last) of @p config against @p cell,
 * accumulating outcomes into @p accum. Stealable unit of the suite
 * DAG; trial-indexed RNG makes the result independent of how trials
 * are batched or which thread runs them.
 *
 * @p plan / @p class_out are null for blind campaigns. With a plan,
 * Resolved and ClassMember trials skip execution (their outcomes are
 * added at finalize), ClassRep trials publish their result into
 * @p class_out (sized plan->classes.size()), and the
 * SOFTCHECK_VALIDATE_STATIC_MASKED env hook additionally executes
 * each non-RingEmpty Resolved trial and asserts it classifies Masked
 * — without contributing to @p accum, so totals stay plan-exact.
 */
void runTrialBatch(const CellCharacterization &cell,
                   const CampaignConfig &config, unsigned first,
                   unsigned last, TrialWorkerCache &cache,
                   TrialAccum &accum,
                   const StratifiedPlan *plan = nullptr,
                   std::vector<ClassOutcome> *class_out = nullptr);

/**
 * Assemble the CampaignResult for a finished trial phase: the
 * characterization's fields plus @p accum's totals, with
 * phase.trialsSeconds = the summed per-batch CPU seconds. For a
 * stratified phase (@p plan non-null) the statically resolved trials
 * are added as exact Masked outcomes, class members resolve against
 * @p class_out (every batch must have drained — the pool join orders
 * the representatives' writes before these reads), and the stratified
 * accounting fields are filled.
 */
CampaignResult finalizeTrialResult(const CellCharacterization &cell,
                                   const CampaignConfig &config,
                                   const TrialAccum &accum,
                                   const StratifiedPlan *plan = nullptr,
                                   const std::vector<ClassOutcome>
                                       *class_out = nullptr);

/** Trials per stealable batch: ~4 batches per pool worker, floored so
 * tiny campaigns do not dissolve into per-trial tasks. Lockstep-tier
 * batches chain lane groups through one shared stem replay, so they
 * get ~2 larger batches per worker instead — halving the batch count
 * halves the number of golden replays the tier cannot amortize. */
unsigned trialBatchSize(unsigned trials, unsigned pool_threads,
                        ExecTier tier = ExecTier::Interp);

/**
 * Injection half: run @p config's trials against a finished
 * characterization, as stealable batches on @p pool. The returned
 * result carries the characterization's fields and phase times plus
 * this phase's trialsSeconds (wall clock of the phase, since this
 * entry point blocks until its batches drain); only
 * config.seed/trials influence the counts, so one characterization
 * may serve many variant calls. Must not be called from inside a pool
 * task — the suite engine submits batch tasks itself instead.
 */
CampaignResult runTrialPhase(const CellCharacterization &cell,
                             const CampaignConfig &config,
                             TaskPool &pool);

} // namespace softcheck::campaign_detail

#endif // SOFTCHECK_FAULT_CAMPAIGN_INTERNAL_HH
