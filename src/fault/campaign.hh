/**
 * @file
 * Statistical fault-injection (SFI) campaigns — the experimental
 * engine behind the paper's Figures 2, 11, 12 and 13.
 *
 * One campaign = one (benchmark, hardening configuration) pair:
 *   1. compile the MiniLang kernel to SSA IR,
 *   2. value-profile it on the *train* input (paper Sec. III-C1),
 *   3. apply the selected hardening mode,
 *   4. run fault-free on the *test* input — ONE instrumented pass
 *      that yields the golden output, golden dynamic-instruction/cycle
 *      counts, false-positive calibration (checks that fire without
 *      faults are disabled — the paper's recover-once-then-ignore
 *      rule), and the trial fast-forward checkpoints,
 *   5. inject one random single-bit register flip per trial at a
 *      uniformly random dynamic instruction, and classify the outcome.
 *
 * Outcome taxonomy (paper Sec. IV-C): Masked (bit-exact output),
 * ASDC (numerically wrong but fidelity-acceptable; the paper counts
 * these inside Masked for coverage), USDC, SWDetect (a check fired),
 * HWDetect (trap within the detection window after injection),
 * Failure (late trap or instruction-budget "infinite loop").
 */

#ifndef SOFTCHECK_FAULT_CAMPAIGN_HH
#define SOFTCHECK_FAULT_CAMPAIGN_HH

#include <array>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "fault/placement.hh"
#include "workloads/workload.hh"

namespace softcheck
{

enum class Outcome : uint8_t
{
    Masked,   //!< bit-exact output
    ASDC,     //!< acceptable silent data corruption
    USDC,     //!< unacceptable silent data corruption
    SWDetect, //!< inserted check fired
    HWDetect, //!< symptom within the detection window
    Failure,  //!< late symptom or infinite loop
};
constexpr unsigned kNumOutcomes = 6;

const char *outcomeName(Outcome o);

/**
 * How a campaign spends its trial budget (CampaignConfig::sampling).
 * Outcome counts are bit-identical between the two modes at the same
 * seed — every static resolution the stratified planner makes is
 * exactness-preserving (see fault/sampling_plan.hh) — but the
 * stratified mode skips executing the resolved trials and reports a
 * tighter margin of error for the same budget.
 */
enum class SamplingPlan : uint8_t
{
    Blind,      //!< execute every trial (the paper's protocol)
    Stratified, //!< statically resolve dead/masked sites + class reps
};

const char *samplingPlanName(SamplingPlan p);

struct CampaignConfig
{
    std::string workload;        //!< benchmark name
    HardeningMode mode = HardeningMode::Original;
    unsigned trials = 1000;
    uint64_t seed = 0x5eed;
    unsigned threads = 0;        //!< 0 = hardware concurrency
    bool swapTrainTest = false;  //!< 2-fold cross-validation
    bool enableOpt1 = true;
    bool enableOpt2 = true;
    /** Elide audit-proven vacuous checks (see HardeningOptions);
     * campaign outcomes are bit-identical, only goldenCheckEvals
     * drops. */
    bool elideVacuousChecks = false;
    CheckPolicy policy;          //!< profile summarization knobs
    CostConfig cost;             //!< Table II parameters
    double timeoutFactor = 20.0; //!< infinite-loop budget multiplier
    uint64_t hwDetectWindowCycles = 1000; //!< paper Sec. IV-C

    /**
     * Trial-budget strategy. Stratified campaigns build a static
     * fault-space analysis of the hardened module plus one observed
     * golden replay per seed, resolve every trial whose flip provably
     * cannot escape (dead slot, masked bit, empty ring, or
     * overwritten-before-read) without running it, and execute one
     * representative per equivalence class of the rest. Outcome
     * counts stay bit-identical to Blind at the same seed.
     */
    SamplingPlan sampling = SamplingPlan::Blind;

    /**
     * Execution tier for the fault-free characterization runs and the
     * injection trials. The threaded tier is bit-identical to the
     * interpreter (same outcomes, counts, and cost-model state — see
     * tests/fault/test_tier_campaign.cc), just faster; profiling always
     * runs on the interpreter, which has the value-profiling hooks.
     */
    ExecTier tier = ExecTier::Interp;

    /**
     * Lane-group width for tier == ExecTier::Lockstep: trials sharing a
     * fast-forward checkpoint are advanced together through the decoded
     * stream, up to this many per group. 1 degenerates to the scalar
     * threaded tier (and must match it bit-for-bit — see
     * tests/interp/test_lockstep_equiv.cc). Ignored by other tiers.
     */
    unsigned lanes = 8;

    /**
     * Trial fast-forwarding: keep up to this many snapshots of the
     * fault-free golden run, and start each trial from the nearest
     * snapshot at or before its injection point instead of replaying
     * the (deterministic) prefix from dynamic instruction 0. The
     * golden run records candidate snapshots on a fine periodic grid
     * (open-ended, so it covers the hardened run's full length, which
     * exceeds the unhardened estimate the old stride derived from) and
     * `placement` decides which to keep; K is clamped to the number of
     * candidates, so a tiny workload gets at least one resume point
     * instead of silently losing fast-forwarding to a zero stride.
     * The kept snapshots also let post-fault execution stop early once
     * it re-converges with the golden run. Results are bit-identical
     * to full replay and to every placement. 0 disables.
     */
    unsigned checkpoints = 32;

    /**
     * How the kept snapshots are placed on the candidate grid: evenly
     * spaced, or cost-aware (minimize expected replay instructions
     * plus a restore term under the injection distribution — see
     * placement.hh). Outcome counts are placement-independent.
     */
    CheckpointPlacement placement = CheckpointPlacement::Adaptive;

    /**
     * Snapshot-byte budget (0 = unlimited): after placement, trim the
     * schedule — cheapest expected-cost increase first — until the
     * kept snapshots' COW-resident bytes fit. Lets a suite give every
     * (workload, mode) the same budget while their effective K varies
     * with the 7-19x COW footprint spread.
     */
    uint64_t snapshotBudgetBytes = 0;

    /**
     * Restore-cost weight of the placement objective and of the
     * measured fast-forward metric: instruction-equivalents charged
     * per page a snapshot restore re-adopts (its schedule-static
     * incremental dirty pages). Copying one 256-byte page is ~32 word
     * moves plus adoption bookkeeping, so ~64 simple instructions is
     * the honest order of magnitude. 0 = optimize pure replay.
     */
    double restoreInstrsPerPage = 64.0;

    /**
     * Trial-phase worker processes (0 or 1 = run trials in-process).
     * The characterization is serialized to a bundle file; each worker
     * forks, deserializes it into a fresh address space, runs a
     * contiguous trial-index range, and pipes its commutative
     * accumulator deltas back to the parent. Trial-indexed RNG makes
     * the shard boundaries invisible, so outcome counts are
     * bit-identical to in-process runs at any shard count; a worker
     * that dies (crash, OOM kill) is detected at reap time and its
     * whole range is re-dispatched. Not combinable with
     * SamplingPlan::Stratified (the plan's class representatives are
     * cross-trial state). See src/service/shard.hh.
     */
    unsigned shards = 0;

    /**
     * Artifact-cache directory ("" = caching off). Characterizations
     * — hardened module, calibration, golden run, snapshot chain —
     * are stored under a content-hash key of everything they depend on
     * (workload source + hardening knobs + checkpoint knobs; see
     * src/service/artifact_cache.hh), so a repeated campaign or suite
     * request skips straight to the trial phase: compile / profile /
     * baseline / golden phase times are ~0 and only
     * CampaignPhaseTimes::cacheLoadSeconds is paid. Trial-phase knobs
     * (seed, trials count, tier, threads, sampling) are deliberately
     * not part of the key — characterizations are seed-independent and
     * tier-bit-identical, so variants share one entry.
     */
    std::string artifactCacheDir;
};

/**
 * Wall-clock seconds per campaign phase. The fault-free phases
 * (compile, profile, baseline, golden) are the fixed cost a campaign
 * pays before the first injection; the suite engine (see suite.hh)
 * exists to amortize them across configurations, so they are measured
 * separately to show where sweep time actually goes.
 *
 * Each component is the time spent inside the tasks of that phase. For
 * a standalone runCampaign the phases run back to back, so the values
 * are also wall clock; inside a suite, phases of different cells
 * overlap on the shared scheduler, so these are CPU seconds (a cell's
 * trialsSeconds is its batches' summed execution time) and only the
 * suite-level wallSeconds/cpuSeconds pair describes elapsed time.
 */
struct CampaignPhaseTimes
{
    double compileSeconds = 0;  //!< MiniLang compile + harden + ExecModule
    double profileSeconds = 0;  //!< value-profiling run (train input)
    double baselineSeconds = 0; //!< unhardened characterization run
    double goldenSeconds = 0;   //!< merged calibration+checkpoint golden run
    double trialsSeconds = 0;   //!< injection trials
    /** Artifact-cache bundle load (deserialize + module re-parse) when
     * the characterization was served from the cache; the four
     * fault-free phase times above are 0 in that case. */
    double cacheLoadSeconds = 0;

    double totalSeconds() const;
    CampaignPhaseTimes &operator+=(const CampaignPhaseTimes &o);
};

struct CampaignResult
{
    CampaignConfig config;
    HardeningReport report;

    /** Trial outcome counts, indexed by Outcome. */
    std::array<uint64_t, kNumOutcomes> counts{};
    /** USDC attribution for Fig. 2. */
    uint64_t usdcLargeChange = 0;
    uint64_t usdcSmallChange = 0;

    /**
     * Snapshot footprint of the checkpointed engine (0 when
     * checkpoints == 0 or the stride degenerates): how many snapshots
     * were recorded, the resident bytes of their COW-shared memory
     * pages (each distinct page counted once across all K), and what
     * K independent deep copies of the Memory would have held — the
     * pre-COW cost, kept for the shrink-factor trend in
     * BENCH_campaign.json.
     */
    unsigned snapshotCount = 0;
    uint64_t snapshotBytes = 0;
    uint64_t snapshotBytesFullCopy = 0;
    /** Dynamic-instruction indices of the kept snapshots — the
     * placement schedule, ascending. snapshotCount entries. */
    std::vector<uint64_t> snapshotDynInstrs;

    /**
     * Placement model's expected fast-forward cost per trial for the
     * kept schedule, in instruction-equivalents (replay + restore
     * term; goldenDynInstrs/2 when fast-forwarding is off). Filled by
     * characterization, before any trial runs.
     */
    double expectedFastForwardInstrs = 0;
    /**
     * Measured fast-forward cost inputs, summed over the trials that
     * ran: replay instructions from each trial's schedule resume point
     * to its injection point, and the schedule-static restore pages of
     * that resume point. Deterministic for a fixed (config, schedule)
     * — independent of batching, tier, and thread count.
     */
    uint64_t ffReplayInstrs = 0;
    uint64_t ffRestorePages = 0;
    /** Measured mean fast-forward cost per trial in the model's
     * instruction-equivalent unit: (ffReplayInstrs +
     * restoreInstrsPerPage * ffRestorePages) / trials. */
    double measuredFFInstrsPerTrial() const;

    // Fault-free characterization.
    uint64_t goldenDynInstrs = 0;
    uint64_t goldenCycles = 0;
    /** Check comparisons evaluated during the golden run; drops when
     * vacuous checks are elided, while goldenDynInstrs/goldenCycles
     * (and every trial outcome) stay identical. */
    uint64_t goldenCheckEvals = 0;
    uint64_t baselineCycles = 0; //!< unhardened program, same input
    double overhead() const;     //!< goldenCycles/baselineCycles - 1

    // False-positive calibration (paper Sec. V).
    uint64_t calibrationCheckFails = 0; //!< check failures, no fault
    unsigned disabledCheckCount = 0;
    unsigned totalCheckCount = 0;
    /** Fault-free instructions per false positive (inf if none). */
    double instrsPerFalsePositive() const;

    /**
     * Wall-clock spent per phase of this campaign. Phases served from
     * a suite's shared artifacts (see suite.hh) cost the cell nothing
     * and report 0 here; the suite result carries the shared times.
     */
    CampaignPhaseTimes phase;
    /** True when the characterization was loaded from the artifact
     * cache instead of computed (phase.cacheLoadSeconds carries the
     * load cost; every result field is bit-identical either way). */
    bool servedFromCache = false;
    /** Injection throughput: trials / phase.trialsSeconds (0 if the
     * trial phase did not run). */
    double trialsPerSec() const;

    /**
     * Lockstep tier only (0 elsewhere): mean fraction of the configured
     * lane width doing useful trial work per group instruction fetched.
     * A trial counts as served while its forked lane is active *or*
     * while it is still pending behind the stem lane replaying the
     * shared post-checkpoint prefix (the stem serves every pending
     * trial at once). Instructions a peeled lane executes on the scalar
     * tier are not counted here — peel-off rate bounds the win
     * separately (see EXPERIMENTS.md "Lockstep lanes").
     */
    double laneOccupancy = 0;

    // Stratified sampling accounting (all 0 under SamplingPlan::Blind,
    // which makes every stratified formula reduce to the blind one).
    /** W: exact probability a blind draw at this seed's injection
     * distribution lands in the zero-variance stratum (empty ring or
     * statically masked bit). */
    double staticMaskedWeight = 0;
    /** Trials resolved in the W stratum (RingEmpty/MaskedBit). */
    uint64_t trialsWeightResolved = 0;
    /** All statically resolved trials (W stratum + dead-register +
     * overwritten-before-read); each contributes an exact Masked. */
    uint64_t trialsStaticallyResolved = 0;
    /** Trials that copied a class representative's outcome. */
    uint64_t trialsClassMembers = 0;
    /** Equivalence classes formed (size >= 2). */
    uint64_t faultClasses = 0;
    /** Fraction of the trial budget that skipped execution:
     * (statically resolved + class members) / total. */
    double staticallyResolvedFraction() const;
    /**
     * Blind-equivalent sample size of the stratified estimate:
     * n_active / (1 - W)^2 — the number of blind trials whose
     * worst-case margin of error the stratified campaign matches
     * (infinity when every trial fell in the W stratum). Equals
     * totalTrials() for blind campaigns.
     */
    double effectiveSampleSize() const;

    /** Sum of all outcome counts (= trials actually classified). */
    uint64_t totalTrials() const;

    // Derived percentages (of all trials).
    double pct(Outcome o) const;
    double sdcPct() const { return pct(Outcome::ASDC) + pct(Outcome::USDC); }
    /** Coverage per the paper: Masked+ASDC+SWDetect+HWDetect. */
    double coveragePct() const;
    /**
     * 95% margin of error of the proportion of outcome @p o. For
     * blind campaigns this is the classic e = z*sqrt(p(1-p)/n) at the
     * observed p. For stratified campaigns the W stratum (weight
     * staticMaskedWeight) is exact — Masked with zero variance — so
     * only the active remainder samples: with q the outcome's
     * proportion among the n_a non-W-resolved trials,
     * e = z*(1-W)*sqrt(q(1-q)/n_a). W = 0 reduces to the blind
     * formula, so one expression serves both modes.
     */
    double marginOfError95(Outcome o) const;
    /** Worst-case (q = 0.5) 95% margin of error — the conservative
     * a-priori bound the bench headers quote; shrinks by (1-W) *
     * sqrt(n/n_a) under stratified sampling. */
    double marginOfError95WorstCase() const;

    std::string str() const;
};

/**
 * Fig. 2 attribution: true when the injected flip moved the corrupted
 * register outside [1/8x, 8x] of its original magnitude (a
 * high-order-bit upset), the class of USDCs the paper's expected-value
 * checks target.
 */
bool isLargeValueChange(const FaultOutcome &fault);

/**
 * Seed of trial @p trial's private RNG stream: a splitmix64-mixed
 * function of the campaign seed, so adjacent trials get decorrelated
 * streams (a linear seed schedule leaks correlated fault sites into
 * adjacent trials through the xoshiro initializer).
 */
uint64_t trialSeed(uint64_t campaignSeed, unsigned trial);

/** Run one campaign. Deterministic for a fixed config. */
CampaignResult runCampaign(const CampaignConfig &config);

/**
 * Fault-free run only (no injections): profile + harden + measure.
 * Used by the overhead (Fig. 12) and static-stats (Fig. 10) benches;
 * equivalent to runCampaign with trials = 0 but cheaper to read.
 */
CampaignResult characterizeOnly(const CampaignConfig &config);

} // namespace softcheck

#endif // SOFTCHECK_FAULT_CAMPAIGN_HH
