/**
 * @file
 * Stratified sampling plans: static resolution of campaign trials.
 *
 * A blind campaign executes every trial. The stratified planner
 * replays the golden run ONCE under the interpreter's
 * FaultSiteObserver hooks and resolves each trial's injection draw
 * against the static fault-space analysis (analysis/fault_space.hh)
 * before any trial executes:
 *
 *  - *RingEmpty*: the recent-write ring is empty at the injection
 *    point, so the engine would not inject — the run is the golden run.
 *  - *MaskedBit*: the drawn (slot, bit) is statically masked — the
 *    flip provably never alters control flow, memory traffic, output
 *    or cycle count, so the outcome is Masked bit-exactly.
 *  - *DeadReg*: the drawn slot is not live before the injection-point
 *    instruction (liveness.hh) — overwritten or frame-dead before any
 *    read.
 *  - *DynDead*: the replay observed the flipped slot being overwritten
 *    (or its frame exiting, or the run ending) before any read.
 *
 * Unresolved trials whose dormant flips are first read by the same
 * dynamic instruction, from the same slot, at the same bit, form an
 * equivalence class: until that read the trial state differs from
 * golden only in the dormant bit, and from the read on all members
 * evolve identically. One representative executes; members copy its
 * outcome (re-deciding only the Trap-window HWDetect/Failure split,
 * which depends on the member's own injection cycle).
 *
 * Every resolution is exactness-preserving, not merely sound: a
 * stratified campaign's outcome counts are bit-identical to the blind
 * campaign's at the same seed (asserted by
 * tests/fault/test_sampling_plan.cc and bench --sampling). The
 * statically-resolved weight additionally shrinks the reported margin
 * of error: the RingEmpty/MaskedBit stratum has zero sampling
 * variance, so only the active remainder contributes (see
 * CampaignResult::marginOfError95).
 */

#ifndef SOFTCHECK_FAULT_SAMPLING_PLAN_HH
#define SOFTCHECK_FAULT_SAMPLING_PLAN_HH

#include <cstdint>
#include <vector>

#include "fault/campaign.hh"
#include "interp/interpreter.hh"

namespace softcheck::campaign_detail
{

struct CellCharacterization;

/** How a planned trial is carried out. */
enum class TrialKind : uint8_t
{
    Execute,     //!< run normally (unresolved, singleton class)
    Resolved,    //!< statically resolved: outcome is Masked, no run
    ClassRep,    //!< runs and publishes its class's outcome
    ClassMember, //!< copies its class representative's outcome
};

/** Why a Resolved trial needs no execution. */
enum class StaticResolution : uint8_t
{
    None,
    RingEmpty, //!< empty recent-write ring: nothing to inject
    MaskedBit, //!< statically masked (slot, bit) — fault_space.hh
    DeadReg,   //!< slot not live at the injection point — liveness.hh
    DynDead,   //!< replay saw overwrite/frame-exit/run-end before read
};

const char *staticResolutionName(StaticResolution r);

struct PlannedTrialInfo
{
    TrialKind kind = TrialKind::Execute;
    StaticResolution why = StaticResolution::None;
    uint32_t classId = ~0u; //!< valid for ClassRep/ClassMember
    /** Cycle count at the trial's injection point (the golden replay's
     * cost-model state at loop top, = FaultOutcome::atCycle). Lets a
     * ClassMember re-decide the Trap detection window with its own
     * injection time. */
    uint64_t atCycle = 0;
};

/** One equivalence class of unresolved trials (size >= 2). */
struct FaultClass
{
    uint32_t repTrial = 0; //!< lowest member trial index; executes
    uint32_t size = 0;     //!< members including the representative
};

/**
 * Outcome slot a ClassRep publishes for its ClassMembers. Plain fields,
 * no atomics: each class's representative runs in exactly one batch,
 * and members only read after the trial phase's pool join, which
 * orders the write before every read.
 */
struct ClassOutcome
{
    Outcome outcome = Outcome::Masked;
    bool large = false; //!< isLargeValueChange (USDC attribution)
    Termination term = Termination::Ok;
    bool pruned = false;
    uint64_t endCycle = 0;
    bool ready = false; //!< set by the representative's batch
};

/**
 * Per-(cell, seed) trial plan. config.trials entries; classes indexes
 * PlannedTrialInfo::classId.
 */
struct StratifiedPlan
{
    std::vector<PlannedTrialInfo> trials;
    std::vector<FaultClass> classes;

    /**
     * Exact probability that a fresh blind trial at this seed's
     * injection distribution resolves in the zero-variance stratum
     * (RingEmpty or MaskedBit): averaged over all injection points d,
     * P(empty ring at d) + P(masked (slot, bit) draw at d). This is
     * W in the stratified estimator — see
     * CampaignResult::marginOfError95.
     */
    double staticMaskedWeight = 0;

    /** Trials resolved RingEmpty/MaskedBit (the W stratum). */
    uint64_t weightResolvedTrials = 0;
    /** All Resolved trials (W stratum + DeadReg + DynDead). */
    uint64_t staticResolvedTrials = 0;
    /** ClassMember trials (covered by a representative's run). */
    uint64_t memberTrials = 0;

    /** Trials that skip execution entirely. */
    uint64_t
    skippedTrials() const
    {
        return staticResolvedTrials + memberTrials;
    }
};

/**
 * Build the stratified plan for @p cell at @p config's (seed, trials):
 * draw every trial's injection point from its trial-indexed RNG, then
 * resolve all draws in one observed interpreter replay of the golden
 * run. Deterministic for a fixed (characterization, seed, trials) —
 * independent of config.tier and thread count, because the trial RNG
 * streams and the golden run are. Requires cell.faultSpace (built by
 * characterizeCell when config.sampling == SamplingPlan::Stratified).
 */
StratifiedPlan buildStratifiedPlan(const CellCharacterization &cell,
                                   const CampaignConfig &config);

} // namespace softcheck::campaign_detail

#endif // SOFTCHECK_FAULT_SAMPLING_PLAN_HH
