/**
 * @file
 * Campaign suites: run a workload × hardening-mode grid as one unit,
 * deduping the fault-free work the cells share.
 *
 * A figure bench sweeps many (workload, mode) cells with identical
 * knobs, and standalone runCampaign calls repeat per-workload work in
 * every cell: the MiniLang compile of the unhardened program, the value
 * profile of the train input, and the baseline characterization run are
 * functions of the workload alone. The suite computes each once per
 * workload and serves it to the cells, which stay bit-identical to
 * standalone runCampaign (see tests/fault/test_campaign_suite.cc).
 *
 * Cells of one workload also fork their golden runs copy-on-write from
 * one shared pristine memory image, so the snapshot chains of all the
 * workload's cells share the pages none of them dirties (input
 * buffers, untouched globals) — suite-wide snapshot resident bytes
 * stop scaling with the number of modes.
 *
 * The third grid axis is the injection seed: the fault-free half of a
 * campaign (compile, profile, baseline, merged golden run, snapshots)
 * does not depend on the seed, so a suite characterizes each
 * (workload, mode) cell once and fans every requested seed variant out
 * of that single characterization — only the trial phase repeats.
 *
 * The whole grid executes as a dependency DAG on one persistent
 * work-stealing scheduler (support/task_pool.hh): per-workload
 * compile / profile / input-prep / baseline tasks feed per-(workload,
 * mode) characterizations, which fan out to per-seed trial phases
 * whose trials are split into stealable batches. A slow cell's golden
 * run therefore overlaps other cells' trials instead of idling every
 * other core, and the machine stays saturated end to end. Trial-indexed
 * RNG plus commutative outcome accumulation keep every cell
 * bit-identical to the sequential engine at any thread count (asserted
 * by tests/fault/test_campaign_suite.cc).
 */

#ifndef SOFTCHECK_FAULT_SUITE_HH
#define SOFTCHECK_FAULT_SUITE_HH

#include <string>
#include <vector>

#include "fault/campaign.hh"

namespace softcheck
{

/** A workload × hardening-mode × seed grid sharing one knob set. */
struct SuiteConfig
{
    std::vector<std::string> workloads;
    std::vector<HardeningMode> modes;
    /**
     * Injection-seed variants per (workload, mode) cell. All variants
     * share that cell's characterization — compile, profile, baseline,
     * golden run, and snapshots run once no matter how many seeds.
     * Empty means the single seed base.seed.
     */
    std::vector<uint64_t> seeds;
    /**
     * Knobs applied to every cell (trials, threads, policy, cost,
     * checkpoints, ...). The workload, mode, and seed fields are
     * overwritten per cell. base.threads sizes the suite-wide
     * scheduler (0 = hardware concurrency) that every phase of every
     * cell runs on; results are bit-identical at any thread count.
     */
    CampaignConfig base;
};

/** Per-workload suite-level snapshot footprint. */
struct SuiteWorkloadStats
{
    std::string workload;
    /**
     * Resident bytes of all the workload's snapshot pages with dedup
     * across *every* cell: a page shared between two modes' golden
     * chains (via the common pristine image) counts once.
     */
    uint64_t suiteSnapshotBytes = 0;
    /** Sum of the cells' independently-deduped snapshotBytes — what
     * the same sweep holds without cross-cell sharing. */
    uint64_t cellSnapshotBytesSum = 0;
};

struct SuiteResult
{
    SuiteConfig config;
    /** The resolved seed list: config.seeds, or {base.seed} if empty. */
    std::vector<uint64_t> seeds;
    /** Cell results, workload-major then mode then seed:
     * cells[(wi * modes.size() + mi) * seeds.size() + si].
     * Each is bit-identical to runCampaign on the same config. */
    std::vector<CampaignResult> cells;
    std::vector<SuiteWorkloadStats> workloadStats;

    /**
     * Aggregate CPU seconds per phase: the per-workload shared phases
     * (compile, profile, baseline) counted once each, plus every
     * cell's own phases, each measured inside its task. Phases of
     * different cells overlap on the scheduler, so these no longer sum
     * to elapsed time — compare cpuSeconds against wallSeconds for
     * that.
     */
    CampaignPhaseTimes phase;
    /** End-to-end wall-clock of runCampaignSuite. */
    double wallSeconds = 0;
    /**
     * Total CPU seconds spent in suite tasks (= phase.totalSeconds()).
     * The wallSeconds/cpuSeconds pair is the honest account of
     * overlap: cpuSeconds/wallSeconds ≈ how many cores the DAG kept
     * busy end to end.
     */
    double cpuSeconds = 0;

    const CampaignResult &
    cell(std::size_t wi, std::size_t mi, std::size_t si = 0) const
    {
        return cells[(wi * config.modes.size() + mi) * seeds.size() +
                     si];
    }
};

/**
 * Run the grid. Deterministic for a fixed config; each cell's counts,
 * characterization, and calibration fields are bit-identical to a
 * standalone runCampaign with the same per-cell config.
 */
SuiteResult runCampaignSuite(const SuiteConfig &config);

class TaskPool;

/**
 * Run the grid on a caller-owned scheduler. The suite submits its DAG
 * to @p pool and waits on exactly its own tasks, so several suites can
 * share one pool concurrently — the campaign daemon's job queue runs
 * every client request through one warm scheduler this way. Results
 * are bit-identical to the owning-pool overload.
 */
SuiteResult runCampaignSuite(const SuiteConfig &config, TaskPool &pool);

} // namespace softcheck

#endif // SOFTCHECK_FAULT_SUITE_HH
