#include "fault/suite.hh"

#include <algorithm>

#include "fault/campaign_internal.hh"
#include "support/error.hh"

namespace softcheck
{

using namespace campaign_detail;

SuiteResult
runCampaignSuite(const SuiteConfig &config)
{
    scAssert(!config.workloads.empty(), "suite needs workloads");
    scAssert(!config.modes.empty(), "suite needs modes");
    const Stopwatch wall;

    SuiteResult result;
    result.config = config;
    result.seeds = config.seeds;
    if (result.seeds.empty())
        result.seeds = {config.base.seed};
    result.cells.reserve(config.workloads.size() *
                         config.modes.size() * result.seeds.size());

    const bool wants_profile =
        std::find(config.modes.begin(), config.modes.end(),
                  HardeningMode::DupValChks) != config.modes.end();
    const bool train_role = !config.base.swapTrainTest;

    for (const std::string &name : config.workloads) {
        const Workload &w = getWorkload(name);
        CampaignConfig proto = config.base;
        proto.workload = name;

        // Per-workload shared artifacts, computed once and served to
        // every mode's cell. Each is a deterministic function of
        // (workload, knobs), so the cells match standalone runs bit
        // for bit.
        SharedArtifacts sa;

        const Stopwatch sw_compile;
        HardeningReport baseline_report;
        const PreparedModule baseline_module =
            buildModule(w, HardeningMode::Original, proto, nullptr,
                        &baseline_report);
        result.phase.compileSeconds += sw_compile.seconds();
        sa.baselineModule = &baseline_module;
        sa.baselineReport = &baseline_report;

        ProfileData profile;
        if (wants_profile) {
            const Stopwatch sw;
            profile = collectProfile(w, proto, train_role);
            result.phase.profileSeconds += sw.seconds();
            sa.profile = &profile;
        }

        const WorkloadRunSpec test_spec = w.makeInput(!train_role);
        const PreparedRun pristine = prepareRun(test_spec);
        sa.testSpec = &test_spec;
        sa.pristine = &pristine;

        const Stopwatch sw_baseline;
        sa.baseline = runBaseline(w, baseline_module, test_spec, proto);
        result.phase.baselineSeconds += sw_baseline.seconds();

        SnapshotAccounting pages;
        SuiteWorkloadStats stats;
        stats.workload = name;
        for (HardeningMode mode : config.modes) {
            CampaignConfig cfg = proto;
            cfg.mode = mode;
            // One characterization per (workload, mode); the seed only
            // steers injections, so every seed variant fans out of it.
            CellCharacterization cell =
                characterizeCell(cfg, &sa, &pages);
            result.phase += cell.proto.phase; // trialsSeconds is 0 here
            stats.cellSnapshotBytesSum += cell.proto.snapshotBytes;
            for (uint64_t seed : result.seeds) {
                cfg.seed = seed;
                CampaignResult r = runTrialPhase(cell, cfg);
                result.phase.trialsSeconds += r.phase.trialsSeconds;
                result.cells.push_back(std::move(r));
            }
            // Park the snapshots so the block addresses in the dedup
            // set can't be recycled by a later cell's allocations.
            pages.keepAlive.push_back(std::move(cell.snapshots));
        }
        stats.suiteSnapshotBytes = pages.bytes;
        result.workloadStats.push_back(std::move(stats));
    }

    result.wallSeconds = wall.seconds();
    return result;
}

} // namespace softcheck
