#include "fault/suite.hh"

#include <algorithm>
#include <deque>
#include <thread>

#include "fault/campaign_internal.hh"
#include "support/error.hh"
#include "support/task_pool.hh"

namespace softcheck
{

using namespace campaign_detail;

namespace
{

/**
 * Per-(workload, mode) node state of the suite DAG. Lives in a deque
 * built completely before the first task is submitted, so tasks share
 * it by stable reference.
 */
struct CellCtx
{
    CampaignConfig cfg; //!< workload + mode set, seed = base seed
    std::vector<CampaignConfig> seedCfgs; //!< one per seed variant
    CellCharacterization cell;
    TrialWorkerCache cache;
    /** One accumulator per seed (deque: atomics are immovable). */
    std::deque<TrialAccum> accums;
    /** Per-seed stratified plans + class-outcome tables (filled by a
     * dedicated plan task between characterization and the batches;
     * unused under blind sampling). */
    std::deque<StratifiedPlan> plans;
    std::deque<std::vector<ClassOutcome>> classOuts;
};

/** Per-workload node state: the shared-artifact storage plus the
 * timers of the phases every cell of the workload shares. */
struct WorkloadCtx
{
    const Workload *w = nullptr;
    CampaignConfig proto;
    SharedArtifacts sa;
    PreparedModule baselineModule;
    HardeningReport baselineReport;
    ProfileData profile;
    WorkloadRunSpec testSpec;
    PreparedRun pristine;
    SnapshotAccounting pages;
    double compileSeconds = 0;
    double profileSeconds = 0;
    double baselineSeconds = 0;
    std::deque<CellCtx> cells; //!< one per mode
};

} // namespace

SuiteResult
runCampaignSuite(const SuiteConfig &config)
{
    scAssert(!config.workloads.empty(), "suite needs workloads");
    scAssert(!config.modes.empty(), "suite needs modes");
    const Stopwatch wall;

    SuiteResult result;
    result.config = config;
    result.seeds = config.seeds;
    if (result.seeds.empty())
        result.seeds = {config.base.seed};
    const std::size_t n_workloads = config.workloads.size();
    const std::size_t n_modes = config.modes.size();
    const std::size_t n_seeds = result.seeds.size();
    // Cells are written into their grid slot by per-cell finalize
    // tasks, so the workload-major order is deterministic no matter
    // how the scheduler interleaves them.
    result.cells.resize(n_workloads * n_modes * n_seeds);

    const bool wants_profile =
        std::find(config.modes.begin(), config.modes.end(),
                  HardeningMode::DupValChks) != config.modes.end();
    const bool train_role = !config.base.swapTrainTest;

    unsigned pool_threads = config.base.threads;
    if (pool_threads == 0)
        pool_threads =
            std::max(1u, std::thread::hardware_concurrency());
    TaskPool pool(pool_threads);

    // ---- build all node state up front --------------------------------
    // Also the keep-alive root: characterizations (and their snapshot
    // chains, which the per-workload page-dedup set indexes by block
    // address) stay owned here until the whole grid has drained.
    std::deque<WorkloadCtx> work;
    for (std::size_t wi = 0; wi < n_workloads; ++wi) {
        work.emplace_back();
        WorkloadCtx &wc = work.back();
        wc.w = &getWorkload(config.workloads[wi]);
        wc.proto = config.base;
        wc.proto.workload = config.workloads[wi];
        for (std::size_t mi = 0; mi < n_modes; ++mi) {
            wc.cells.emplace_back();
            CellCtx &cc = wc.cells.back();
            cc.cfg = wc.proto;
            cc.cfg.mode = config.modes[mi];
            for (const uint64_t seed : result.seeds) {
                cc.seedCfgs.push_back(cc.cfg);
                cc.seedCfgs.back().seed = seed;
                cc.accums.emplace_back();
                cc.plans.emplace_back();
                cc.classOuts.emplace_back();
            }
        }
    }

    // ---- submit the DAG -----------------------------------------------
    // Per workload: compile / profile / input-prep have no deps and run
    // concurrently (also across workloads); baseline needs the module
    // and the input; each mode's characterization needs the baseline
    // (and the profile for value-check cells); each seed's trial
    // batches need only their own cell's characterization. Shared
    // phases publish into wc.sa before their task completes, and the
    // pool's completion edge orders those writes before every
    // dependent's reads.
    for (std::size_t wi = 0; wi < n_workloads; ++wi) {
        WorkloadCtx &wc = work[wi];

        const auto t_compile = pool.submit([&wc] {
            const Stopwatch sw;
            wc.baselineModule =
                buildModule(*wc.w, HardeningMode::Original, wc.proto,
                            nullptr, &wc.baselineReport);
            wc.sa.baselineModule = &wc.baselineModule;
            wc.sa.baselineReport = &wc.baselineReport;
            wc.compileSeconds = sw.seconds();
        });

        TaskPool::TaskId t_profile = 0;
        if (wants_profile) {
            t_profile = pool.submit([&wc, train_role] {
                const Stopwatch sw;
                wc.profile = collectProfile(*wc.w, wc.proto, train_role);
                wc.sa.profile = &wc.profile;
                wc.profileSeconds = sw.seconds();
            });
        }

        const auto t_prepare = pool.submit([&wc, train_role] {
            wc.testSpec = wc.w->makeInput(!train_role);
            wc.pristine = prepareRun(wc.testSpec);
            wc.sa.testSpec = &wc.testSpec;
            wc.sa.pristine = &wc.pristine;
        });

        const auto t_baseline = pool.submit(
            [&wc] {
                const Stopwatch sw;
                wc.sa.baseline = runBaseline(*wc.w, wc.baselineModule,
                                             wc.testSpec, wc.proto);
                wc.baselineSeconds = sw.seconds();
            },
            {t_compile, t_prepare});

        for (std::size_t mi = 0; mi < n_modes; ++mi) {
            CellCtx &cc = wc.cells[mi];
            std::vector<TaskPool::TaskId> char_deps = {t_baseline};
            if (cc.cfg.mode == HardeningMode::DupValChks)
                char_deps.push_back(t_profile);
            const auto t_char = pool.submit(
                [&wc, &cc] {
                    // One characterization per (workload, mode); the
                    // seed only steers injections, so every seed
                    // variant fans out of it.
                    cc.cell = characterizeCell(cc.cfg, &wc.sa, &wc.pages);
                },
                char_deps);

            for (std::size_t si = 0; si < n_seeds; ++si) {
                CampaignResult *slot =
                    &result.cells[(wi * n_modes + mi) * n_seeds + si];
                const CampaignConfig &scfg = cc.seedCfgs[si];

                if (config.base.trials == 0) {
                    pool.submit(
                        [&cc, &scfg, slot] {
                            *slot = cc.cell.proto;
                            slot->config = scfg;
                        },
                        {t_char});
                    continue;
                }

                TrialAccum &accum = cc.accums[si];
                // Stratified sampling inserts a per-(cell, seed) plan
                // task between characterization and the batches: one
                // observed golden replay resolves the seed's whole
                // trial budget. The batch tasks' dependency edge (and
                // the finalize task's, via the batches) orders the
                // plan and every representative's class-outcome write
                // before their readers.
                const bool stratified =
                    scfg.sampling == SamplingPlan::Stratified;
                StratifiedPlan *plan =
                    stratified ? &cc.plans[si] : nullptr;
                std::vector<ClassOutcome> *co =
                    stratified ? &cc.classOuts[si] : nullptr;
                std::vector<TaskPool::TaskId> batch_deps = {t_char};
                if (stratified) {
                    batch_deps = {pool.submit(
                        [&cc, &scfg, plan, co] {
                            *plan = buildStratifiedPlan(cc.cell, scfg);
                            co->resize(plan->classes.size());
                        },
                        {t_char})};
                }
                const unsigned batch = trialBatchSize(
                    config.base.trials, pool.threadCount(),
                    scfg.tier);
                std::vector<TaskPool::TaskId> batch_ids;
                for (unsigned first = 0; first < config.base.trials;
                     first += batch) {
                    const unsigned last =
                        std::min(first + batch, config.base.trials);
                    batch_ids.push_back(pool.submit(
                        [&cc, &scfg, first, last, &accum, plan, co] {
                            runTrialBatch(cc.cell, scfg, first, last,
                                          cc.cache, accum, plan, co);
                        },
                        batch_deps));
                }
                pool.submit(
                    [&cc, &scfg, &accum, slot, plan, co] {
                        *slot = finalizeTrialResult(cc.cell, scfg,
                                                    accum, plan, co);
                    },
                    batch_ids);
            }
        }
    }

    pool.waitAll();

    // ---- deterministic aggregation ------------------------------------
    // Sequential, in grid order, from per-task slots no two tasks
    // shared: the floating-point sums come out identical at any thread
    // count.
    for (std::size_t wi = 0; wi < n_workloads; ++wi) {
        WorkloadCtx &wc = work[wi];
        result.phase.compileSeconds += wc.compileSeconds;
        result.phase.profileSeconds += wc.profileSeconds;
        result.phase.baselineSeconds += wc.baselineSeconds;
        SuiteWorkloadStats stats;
        stats.workload = config.workloads[wi];
        for (std::size_t mi = 0; mi < n_modes; ++mi) {
            CellCtx &cc = wc.cells[mi];
            result.phase += cc.cell.proto.phase; // trialsSeconds is 0
            stats.cellSnapshotBytesSum += cc.cell.proto.snapshotBytes;
            for (std::size_t si = 0; si < n_seeds; ++si)
                result.phase.trialsSeconds +=
                    result.cells[(wi * n_modes + mi) * n_seeds + si]
                        .phase.trialsSeconds;
        }
        stats.suiteSnapshotBytes = wc.pages.bytes;
        result.workloadStats.push_back(std::move(stats));
    }

    result.cpuSeconds = result.phase.totalSeconds();
    result.wallSeconds = wall.seconds();
    return result;
}

} // namespace softcheck
