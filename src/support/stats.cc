#include "support/stats.hh"

#include <cmath>

#include "support/error.hh"

namespace softcheck
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
sampleStddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        scAssert(x > 0.0, "geomean requires positive samples");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
marginOfError(std::size_t n, double p, double confidence)
{
    scAssert(n > 0, "marginOfError requires at least one trial");
    double z;
    if (confidence >= 0.989)
        z = 2.576;
    else if (confidence >= 0.949)
        z = 1.960;
    else
        z = 1.645;
    return z * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
}

} // namespace softcheck
