/**
 * @file
 * Shared concurrency helpers.
 */

#ifndef SOFTCHECK_SUPPORT_CONCURRENCY_HH
#define SOFTCHECK_SUPPORT_CONCURRENCY_HH

#include <algorithm>
#include <thread>

namespace softcheck
{

/**
 * Usable hardware thread count, never 0:
 * std::thread::hardware_concurrency() is allowed to return 0 when the
 * platform cannot tell, and every "0 = auto" knob in the codebase wants
 * a floor of one worker. The single definition of that fallback.
 */
inline unsigned
hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

} // namespace softcheck

#endif // SOFTCHECK_SUPPORT_CONCURRENCY_HH
