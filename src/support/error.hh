/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * scFatal()  — the condition is the caller's fault (bad input, bad
 *              configuration); throws FatalError so library users can
 *              catch and report it.
 * scPanic()  — the condition is a SoftCheck bug; aborts after printing.
 * scAssert() — internal invariant check that survives NDEBUG builds.
 */

#ifndef SOFTCHECK_SUPPORT_ERROR_HH
#define SOFTCHECK_SUPPORT_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace softcheck
{

/** Exception thrown for user-caused, recoverable errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);

namespace detail
{

/** Stream-concatenate a variadic argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace softcheck

/** Report a user-caused error; throws softcheck::FatalError. */
#define scFatal(...) \
    ::softcheck::fatalImpl(::softcheck::detail::concat(__VA_ARGS__), \
                           __FILE__, __LINE__)

/** Report an internal bug; prints and aborts. */
#define scPanic(...) \
    ::softcheck::panicImpl(::softcheck::detail::concat(__VA_ARGS__), \
                           __FILE__, __LINE__)

/** Invariant check active in all build types. */
#define scAssert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::softcheck::panicImpl( \
                ::softcheck::detail::concat("assertion '", #cond, \
                                            "' failed: ", ##__VA_ARGS__), \
                __FILE__, __LINE__); \
        } \
    } while (0)

#endif // SOFTCHECK_SUPPORT_ERROR_HH
