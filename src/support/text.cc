#include "support/text.hh"

#include <cstdarg>
#include <cstdio>

namespace softcheck
{

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
splitChar(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &text)
{
    std::size_t b = 0, e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return text.substr(b, e - b);
}

std::string
strformat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
padLeft(const std::string &text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return std::string(width - text.size(), ' ') + text;
}

std::string
padRight(const std::string &text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return text + std::string(width - text.size(), ' ');
}

} // namespace softcheck
