/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * experiments. Implements xoshiro256** 1.0 (Blackman & Vigna), seeded
 * through splitmix64 so that any 64-bit seed gives a well-mixed state.
 *
 * All randomness in SoftCheck (fault injection, synthetic inputs) flows
 * through this class so campaigns are bit-reproducible across runs and
 * platforms.
 */

#ifndef SOFTCHECK_SUPPORT_RNG_HH
#define SOFTCHECK_SUPPORT_RNG_HH

#include <cstdint>

namespace softcheck
{

/**
 * splitmix64 finalizer (Steele/Lea/Flood): a bijective avalanche mix of
 * a 64-bit value. Use it to derive decorrelated per-index seeds from a
 * base seed — structured inputs (seed + small index) come out looking
 * uniform, unlike linear-congruential mixing.
 */
uint64_t splitmix64(uint64_t x);

/** xoshiro256** deterministic PRNG. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x5eedcafef00dULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound). @pre bound > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. @pre lo <= hi. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Gaussian (mean 0, stddev 1) via Box-Muller. */
    double nextGaussian();

    /** Fork an independent stream (for per-thread reproducibility). */
    Rng split();

  private:
    uint64_t s[4];
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace softcheck

#endif // SOFTCHECK_SUPPORT_RNG_HH
