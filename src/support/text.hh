/**
 * @file
 * Minimal text utilities used by the IR printer, the MiniLang lexer, and
 * report formatting.
 */

#ifndef SOFTCHECK_SUPPORT_TEXT_HH
#define SOFTCHECK_SUPPORT_TEXT_HH

#include <string>
#include <vector>

namespace softcheck
{

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Split @p text on character @p sep (no empty-tail suppression). */
std::vector<std::string> splitChar(const std::string &text, char sep);

/** Trim ASCII whitespace from both ends. */
std::string trim(const std::string &text);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Left-pad or right-pad @p text to @p width with spaces. */
std::string padLeft(const std::string &text, std::size_t width);
std::string padRight(const std::string &text, std::size_t width);

} // namespace softcheck

#endif // SOFTCHECK_SUPPORT_TEXT_HH
