/**
 * @file
 * Little-endian byte-stream serialization, the wire/disk format layer
 * under the campaign service (src/service): artifact-cache bundles,
 * shard-worker result blobs, and the Snapshot/Memory/CostModel
 * serializers all build on these two classes.
 *
 * The format is explicitly little-endian and fixed-width, so a bundle
 * written by one process is readable by any other build on the same
 * platform family; it makes no attempt at cross-architecture
 * portability (the cache directory is per-machine state, like a
 * compiler's object cache).
 *
 * ByteReader is bounds-checked: reading past the end or a length
 * prefix that exceeds the remaining bytes throws FatalError rather
 * than returning garbage, so a truncated or corrupt cache file is a
 * recoverable "miss", never undefined behavior.
 */

#ifndef SOFTCHECK_SUPPORT_BYTE_IO_HH
#define SOFTCHECK_SUPPORT_BYTE_IO_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hh"

namespace softcheck
{

/** Append-only little-endian encoder over a growable byte buffer. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf.push_back(static_cast<char>(v));
    }

    void
    u32(uint32_t v)
    {
        for (unsigned i = 0; i < 4; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i)
            buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }

    /** Doubles travel as their IEEE-754 bit pattern — exact, no
     * text round-trip loss. */
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    bytes(const void *p, std::size_t n)
    {
        buf.append(static_cast<const char *>(p), n);
    }

    /** Length-prefixed string. */
    void
    str(std::string_view s)
    {
        u64(s.size());
        buf.append(s.data(), s.size());
    }

    void
    vecU8(const std::vector<uint8_t> &v)
    {
        u64(v.size());
        if (!v.empty())
            bytes(v.data(), v.size());
    }

    void
    vecU64(const std::vector<uint64_t> &v)
    {
        u64(v.size());
        for (const uint64_t x : v)
            u64(x);
    }

    void
    vecF64(const std::vector<double> &v)
    {
        u64(v.size());
        for (const double x : v)
            f64(x);
    }

    const std::string &data() const { return buf; }
    std::size_t size() const { return buf.size(); }
    /** Move the buffer out (the writer is spent afterwards). */
    std::string take() && { return std::move(buf); }

  private:
    std::string buf;
};

/** Bounds-checked decoder over a byte range (not owned). */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view data)
        : p(reinterpret_cast<const uint8_t *>(data.data())),
          end(p + data.size())
    {}

    uint8_t
    u8()
    {
        need(1);
        return *p++;
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p[i]) << (8 * i);
        p += 4;
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p[i]) << (8 * i);
        p += 8;
        return v;
    }

    int32_t i32() { return static_cast<int32_t>(u32()); }

    double
    f64()
    {
        const uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    void
    bytes(void *out, std::size_t n)
    {
        need(n);
        std::memcpy(out, p, n);
        p += n;
    }

    std::string
    str()
    {
        const uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(p),
                      static_cast<std::size_t>(n));
        p += n;
        return s;
    }

    std::vector<uint8_t>
    vecU8()
    {
        const uint64_t n = u64();
        need(n);
        std::vector<uint8_t> v(p, p + n);
        p += n;
        return v;
    }

    std::vector<uint64_t>
    vecU64()
    {
        const uint64_t n = u64();
        need(n * 8);
        std::vector<uint64_t> v;
        v.reserve(static_cast<std::size_t>(n));
        for (uint64_t i = 0; i < n; ++i)
            v.push_back(u64());
        return v;
    }

    std::vector<double>
    vecF64()
    {
        const uint64_t n = u64();
        need(n * 8);
        std::vector<double> v;
        v.reserve(static_cast<std::size_t>(n));
        for (uint64_t i = 0; i < n; ++i)
            v.push_back(f64());
        return v;
    }

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - p);
    }
    bool atEnd() const { return p == end; }

  private:
    void
    need(uint64_t n) const
    {
        if (n > static_cast<uint64_t>(end - p))
            scFatal("byte stream truncated: need ", n, " bytes, have ",
                    end - p);
    }

    const uint8_t *p;
    const uint8_t *end;
};

/** FNV-1a 64-bit hash, the content-hash primitive of the artifact
 * cache's keys (two independent bases give a 128-bit key). */
inline uint64_t
fnv1a64(std::string_view s, uint64_t basis = 0xcbf29ce484222325ULL)
{
    uint64_t h = basis;
    for (const char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace softcheck

#endif // SOFTCHECK_SUPPORT_BYTE_IO_HH
