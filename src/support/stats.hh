/**
 * @file
 * Small statistics helpers used when summarizing fault-injection
 * campaigns and overhead measurements.
 */

#ifndef SOFTCHECK_SUPPORT_STATS_HH
#define SOFTCHECK_SUPPORT_STATS_HH

#include <cstddef>
#include <vector>

namespace softcheck
{

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (n-1 denominator); 0 if n < 2. */
double sampleStddev(const std::vector<double> &xs);

/** Geometric mean; 0 for an empty sample. @pre all xs positive. */
double geomean(const std::vector<double> &xs);

/**
 * Margin of error (half-width of the confidence interval) for an
 * estimated proportion from a fault-injection campaign, following the
 * formulation of Leveugle et al., "Statistical fault injection"
 * (DATE 2009), without finite-population correction:
 *
 *     e = z * sqrt(p * (1 - p) / n)
 *
 * @param n          number of injection trials
 * @param p          estimated (or worst-case 0.5) proportion
 * @param confidence one of 0.90, 0.95, 0.99
 * @return margin of error as a fraction (multiply by 100 for percent)
 */
double marginOfError(std::size_t n, double p = 0.5,
                     double confidence = 0.95);

} // namespace softcheck

#endif // SOFTCHECK_SUPPORT_STATS_HH
