#include "support/error.hh"

#include <cstdio>
#include <cstdlib>

namespace softcheck
{

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    std::ostringstream os;
    os << "fatal: " << msg << " (" << file << ":" << line << ")";
    throw FatalError(os.str());
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

} // namespace softcheck
