#include "support/task_pool.hh"

#include "support/concurrency.hh"
#include "support/error.hh"

namespace softcheck
{

namespace
{

/** Identity of the executing pool worker, for placement and for the
 * no-wait-from-worker assertion. */
thread_local const TaskPool *tlPool = nullptr;
thread_local unsigned tlWorker = 0;

} // namespace

TaskPool::TaskPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    workers.resize(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers[i].thread = std::thread([this, i] { workerLoop(i); });
}

TaskPool::~TaskPool()
{
    {
        std::unique_lock lock(mu);
        doneCv.wait(lock, [this] { return pendingCount == 0; });
        stopping = true;
    }
    workCv.notify_all();
    for (Worker &w : workers)
        w.thread.join();
}

TaskPool::TaskId
TaskPool::submit(std::function<void()> fn,
                 const std::vector<TaskId> &deps)
{
    std::unique_lock lock(mu);
    const TaskId id = tasks.size();
    tasks.emplace_back();
    Task &t = tasks.back();
    t.fn = std::move(fn);
    ++pendingCount;

    std::exception_ptr dep_error;
    for (const TaskId dep : deps) {
        scAssert(dep < id, "task dependency on unknown/self task id");
        Task &d = tasks[dep];
        if (!d.done) {
            d.dependents.push_back(id);
            ++t.pendingDeps;
        } else if (d.error && !dep_error) {
            dep_error = d.error;
        }
    }
    if (t.pendingDeps == 0) {
        if (dep_error) {
            // Every dependency already ran and one failed: the task is
            // skipped, completing immediately with that error.
            finish(id, dep_error, lock);
        } else {
            unsigned target;
            if (tlPool == this) {
                target = tlWorker;
            } else {
                target = nextWorker;
                nextWorker = (nextWorker + 1) % threadCount();
            }
            workers[target].ready.push_back(id);
            workCv.notify_one();
        }
    }
    return id;
}

bool
TaskPool::popReady(unsigned self, TaskId &out)
{
    // Own deque first, oldest task first — a single worker therefore
    // executes ready tasks in submission order, which keeps the
    // one-thread suite schedule equal to the old sequential one.
    if (!workers[self].ready.empty()) {
        out = workers[self].ready.front();
        workers[self].ready.pop_front();
        return true;
    }
    // Steal from the back of a sibling's deque.
    for (unsigned k = 1; k < threadCount(); ++k) {
        Worker &victim = workers[(self + k) % threadCount()];
        if (!victim.ready.empty()) {
            out = victim.ready.back();
            victim.ready.pop_back();
            return true;
        }
    }
    return false;
}

void
TaskPool::runTask(TaskId id, std::unique_lock<std::mutex> &lock)
{
    std::function<void()> fn = std::move(tasks[id].fn);
    tasks[id].fn = nullptr;
    lock.unlock();
    std::exception_ptr error;
    try {
        fn();
    } catch (...) {
        error = std::current_exception();
    }
    lock.lock();
    finish(id, error, lock);
}

void
TaskPool::finish(TaskId id, std::exception_ptr error,
                 std::unique_lock<std::mutex> &lock)
{
    Task &t = tasks[id];
    t.done = true;
    t.error = error;
    --pendingCount;
    for (const TaskId dep_id : t.dependents) {
        Task &d = tasks[dep_id];
        if (error && !d.skipError)
            d.skipError = error;
        if (--d.pendingDeps == 0) {
            if (d.skipError) {
                // A dependency failed: skip the task, cascading the
                // error through its own dependents.
                finish(dep_id, d.skipError, lock);
            } else {
                unsigned target = tlPool == this ? tlWorker
                                                 : (id % threadCount());
                workers[target].ready.push_back(dep_id);
                workCv.notify_one();
            }
        }
    }
    doneCv.notify_all();
}

void
TaskPool::workerLoop(unsigned self)
{
    tlPool = this;
    tlWorker = self;
    std::unique_lock lock(mu);
    for (;;) {
        TaskId id;
        if (popReady(self, id)) {
            runTask(id, lock);
            continue;
        }
        if (stopping)
            return;
        workCv.wait(lock);
    }
}

void
TaskPool::assertNotWorker() const
{
    scAssert(tlPool != this,
             "TaskPool::wait called from inside a pool task; express "
             "the ordering as a dependency instead");
}

void
TaskPool::wait(TaskId id)
{
    assertNotWorker();
    std::unique_lock lock(mu);
    scAssert(id < tasks.size(), "wait on unknown task id");
    doneCv.wait(lock, [&] { return tasks[id].done; });
    if (tasks[id].error)
        std::rethrow_exception(tasks[id].error);
}

void
TaskPool::waitAll()
{
    assertNotWorker();
    std::unique_lock lock(mu);
    doneCv.wait(lock, [this] { return pendingCount == 0; });
    // Rethrow the lowest-id failure so the surfaced error does not
    // depend on which worker lost the race.
    for (const Task &t : tasks)
        if (t.error)
            std::rethrow_exception(t.error);
}

} // namespace softcheck
