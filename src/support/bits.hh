/**
 * @file
 * Bit-manipulation helpers shared by the interpreter and the fault
 * injector. Kept header-only; every function is a pure constexpr-able
 * operation on unsigned 64-bit words.
 */

#ifndef SOFTCHECK_SUPPORT_BITS_HH
#define SOFTCHECK_SUPPORT_BITS_HH

#include <cstdint>

namespace softcheck
{

/** Mask covering the low @p width bits (width in [0, 64]). */
constexpr uint64_t
lowBitMask(unsigned width)
{
    return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

/** Truncate @p value to @p width bits (zero-extended representation). */
constexpr uint64_t
truncBits(uint64_t value, unsigned width)
{
    return value & lowBitMask(width);
}

/** Sign-extend the low @p width bits of @p value to a signed 64-bit. */
constexpr int64_t
signExtend(uint64_t value, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<int64_t>(value);
    const uint64_t sign_bit = 1ULL << (width - 1);
    const uint64_t v = value & lowBitMask(width);
    return static_cast<int64_t>((v ^ sign_bit) - sign_bit);
}

/** Flip bit @p bit (0 = LSB) of @p value. */
constexpr uint64_t
flipBit(uint64_t value, unsigned bit)
{
    return value ^ (1ULL << (bit & 63));
}

/** Test bit @p bit of @p value. */
constexpr bool
testBit(uint64_t value, unsigned bit)
{
    return (value >> (bit & 63)) & 1;
}

} // namespace softcheck

#endif // SOFTCHECK_SUPPORT_BITS_HH
