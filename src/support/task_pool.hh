/**
 * @file
 * Persistent work-stealing task pool with dependency-DAG scheduling.
 *
 * The campaign suite engine (fault/suite.cc) runs a workload × mode ×
 * seed grid whose phases form a DAG: per-workload compile / profile /
 * baseline feed per-(workload, mode) characterizations, which fan out
 * to per-seed trial phases split into stealable batches. Before this
 * pool existed, every cell's trial phase spun up and tore down its own
 * std::vector<std::thread>, and the fault-free phases of one cell left
 * every other core idle. A single pool owning the whole grid lets a
 * slow cell's golden run overlap another cell's trials.
 *
 * Design: each worker owns a deque of ready tasks; it pops from the
 * front of its own deque (FIFO, so a single worker executes tasks in
 * submission order) and steals from the back of its siblings' when its
 * own runs dry. All scheduler state — the task table, dependency
 * counts, and the ready deques — is guarded by one mutex: the tasks
 * this pool exists for are coarse (a MiniLang compile, a golden run, a
 * batch of dozens of interpreter trials, each ≥ milliseconds), so
 * scheduling cost is noise and a lock-free deque would buy nothing but
 * audit burden. Completion publishes under the same mutex, which gives
 * submit-side writes → dependent-task reads the happens-before edge the
 * suite's shared artifacts rely on.
 *
 * Failure model: a task that throws records the exception; wait() on it
 * (or on any transitive dependent, which is skipped rather than run)
 * rethrows it, and waitAll() rethrows the failed task with the lowest
 * id so the surfaced error is deterministic under any scheduling.
 */

#ifndef SOFTCHECK_SUPPORT_TASK_POOL_HH
#define SOFTCHECK_SUPPORT_TASK_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace softcheck
{

class TaskPool
{
  public:
    using TaskId = std::uint64_t;

    /** Spawn @p threads workers (0 = hardware concurrency, min 1). */
    explicit TaskPool(unsigned threads = 0);

    /** Waits for every submitted task, then joins the workers.
     * Exceptions still pending at destruction are dropped — call
     * waitAll() first if you care (you do). */
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /**
     * Submit @p fn, runnable once every task in @p deps has completed.
     * Unknown dep ids are a fatal error. Tasks submitted from a worker
     * thread land on that worker's own deque (depth-first locality);
     * external submissions round-robin across workers and rebalance by
     * stealing.
     */
    TaskId submit(std::function<void()> fn,
                  const std::vector<TaskId> &deps = {});

    /**
     * Block until @p id has completed; rethrows its exception (or the
     * exception of the failed dependency it was skipped for). Must not
     * be called from inside a pool task — a worker blocking on another
     * task could deadlock the scheduler; express ordering as a
     * dependency instead.
     */
    void wait(TaskId id);

    /**
     * Block until every task submitted so far has completed; rethrows
     * the exception of the lowest-id failed task, if any. Same
     * no-worker-thread restriction as wait().
     */
    void waitAll();

  private:
    struct Task
    {
        std::function<void()> fn;
        unsigned pendingDeps = 0;
        std::vector<TaskId> dependents;
        std::exception_ptr error;
        /** Error of a failed dependency; set before this task is
         * released, making it complete as skipped with that error. */
        std::exception_ptr skipError;
        bool done = false;
    };

    struct Worker
    {
        std::deque<TaskId> ready;
        std::thread thread;
    };

    void workerLoop(unsigned self);
    void runTask(TaskId id, std::unique_lock<std::mutex> &lock);
    /** Mark @p id done under the lock, release dependents, wake
     * waiters. */
    void finish(TaskId id, std::exception_ptr error,
                std::unique_lock<std::mutex> &lock);
    bool popReady(unsigned self, TaskId &out);
    void assertNotWorker() const;

    mutable std::mutex mu;
    std::condition_variable workCv; //!< workers: a deque gained a task
    std::condition_variable doneCv; //!< waiters: a task completed
    std::deque<Task> tasks;         //!< indexed by TaskId
    std::uint64_t pendingCount = 0; //!< submitted and not yet done
    unsigned nextWorker = 0;        //!< round-robin external placement
    bool stopping = false;
    std::vector<Worker> workers;
};

} // namespace softcheck

#endif // SOFTCHECK_SUPPORT_TASK_POOL_HH
