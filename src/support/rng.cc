#include "support/rng.hh"

#include <cmath>

#include "support/error.hh"

namespace softcheck
{

uint64_t
splitmix64(uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

namespace
{

/** One step of the splitmix64 stream (advance + finalize). */
uint64_t
splitmix64Next(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    return splitmix64(x);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64Next(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    scAssert(bound > 0, "nextBelow requires positive bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    scAssert(lo <= hi, "nextRange requires lo <= hi");
    uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
    if (span == ~0ULL)
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(nextBelow(span + 1));
}

double
Rng::nextDouble()
{
    // 53 high-quality bits -> [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (haveSpare) {
        haveSpare = false;
        return spare;
    }
    double u, v, sq;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        sq = u * u + v * v;
    } while (sq >= 1.0 || sq == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(sq) / sq);
    spare = v * mul;
    haveSpare = true;
    return u * mul;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
}

} // namespace softcheck
