#include "analysis/producer_chain.hh"

#include <algorithm>

namespace softcheck
{

ChainDisposition
chainDisposition(const Instruction &inst)
{
    const Opcode op = inst.opcode();
    if (isIntBinary(op) || isFloatBinary(op) || isCast(op) ||
        isMathIntrinsic(op) || op == Opcode::ICmp || op == Opcode::FCmp ||
        op == Opcode::Select || op == Opcode::Gep)
        return ChainDisposition::Include;
    // Loads terminate the chain per the paper (memory traffic); phis
    // merge control flow and are handled separately (shadow phis);
    // calls, allocas and side-effecting ops are never duplicated here.
    return ChainDisposition::Terminate;
}

namespace
{

struct ChainWalk
{
    const ProducerChainOptions &opts;
    std::set<const Instruction *> visited;
    std::vector<Instruction *> chain;      // post-order = topological
    std::vector<Instruction *> stops;

    void
    visit(Instruction *inst)
    {
        if (!visited.insert(inst).second)
            return;
        if (opts.stopAt && opts.stopAt(*inst)) {
            stops.push_back(inst);
            return;
        }
        if (chainDisposition(*inst) == ChainDisposition::Terminate)
            return;
        for (Value *op : inst->operands()) {
            if (auto *def = dynamic_cast<Instruction *>(op))
                visit(def);
        }
        chain.push_back(inst);
    }
};

} // namespace

std::vector<Instruction *>
producerChain(Instruction *root, const ProducerChainOptions &opts)
{
    ChainWalk walk{opts, {}, {}, {}};
    walk.visit(root);
    return std::move(walk.chain);
}

std::vector<Instruction *>
chainStopPoints(Instruction *root, const ProducerChainOptions &opts)
{
    ChainWalk walk{opts, {}, {}, {}};
    walk.visit(root);
    return std::move(walk.stops);
}

} // namespace softcheck
