/**
 * @file
 * Constant folding and algebraic simplification. Runs to a fixed point:
 *
 *  - binary/cast/compare/select/math instructions with constant
 *    operands are replaced by their constant result (using the same
 *    semantics as the interpreter: wraparound, shift masking,
 *    truncation toward zero);
 *  - identities: x+0, x-0, x*1, x*0, x&0, x|0, x^0, x<<0, x/1,
 *    select(true/false, ...);
 *  - instructions whose divisor constant is zero are left alone (the
 *    trap is program behaviour).
 *
 * Hardening runs *after* folding in compileMiniLang's pipeline, so
 * cheaper kernels also mean fewer duplicated instructions.
 */

#ifndef SOFTCHECK_ANALYSIS_CONST_FOLD_HH
#define SOFTCHECK_ANALYSIS_CONST_FOLD_HH

#include "ir/function.hh"

namespace softcheck
{

/** Fold constants in @p fn; returns the number of instructions
 * replaced or simplified. */
unsigned foldConstants(Function &fn);

} // namespace softcheck

#endif // SOFTCHECK_ANALYSIS_CONST_FOLD_HH
