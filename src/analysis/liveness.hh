/**
 * @file
 * Flow-sensitive liveness analysis over the SSA IR, at register-slot
 * granularity and per-instruction resolution.
 *
 * Backward dataflow to a fixpoint over the CFG, then one sweep that
 * materialises the live-before set of every instruction as a bitset
 * over the function's register slots (Function::renumber() slot
 * numbering — the same slots the interpreter's ExecFrame::regs holds
 * and the fault injector flips).
 *
 * Conventions match the interpreter's event order exactly:
 *  - Phi moves are applied on the edge (take_edge), before the first
 *    non-phi instruction of the successor executes. Phi sources are
 *    therefore live at the predecessor's terminator, and phi
 *    destinations are defined before the successor's first non-phi
 *    instruction. Injection always happens at a non-phi instruction
 *    boundary, so only non-phi live-before sets are meaningful.
 *  - A Call defines its destination slot at the call site from the
 *    caller's timeline: no caller instruction executes between the
 *    call and the return-value write, and the callee cannot read
 *    caller slots. Call argument reads are caller-side uses.
 *  - Elided checks still count their operands as uses (the static
 *    claim stays conservative: fewer dead slots, never a wrong one).
 */

#ifndef SOFTCHECK_ANALYSIS_LIVENESS_HH
#define SOFTCHECK_ANALYSIS_LIVENESS_HH

#include <cstdint>
#include <vector>

#include "ir/function.hh"

namespace softcheck
{

class LivenessAnalysis
{
  public:
    /**
     * Build and run to fixpoint. @p fn must already be renumbered
     * (Function::renumber() — ExecModule construction does this);
     * instruction ids and slot numbers are read, never reassigned.
     */
    explicit LivenessAnalysis(const Function &fn);

    /**
     * Is @p slot live immediately before @p inst executes — i.e. can
     * its current value still be read before being overwritten or the
     * frame exiting? False means a fault injected into the slot at
     * this program point is Masked by construction.
     */
    bool liveBefore(const Instruction *inst, unsigned slot) const
    {
        return liveBeforeId(inst->id(), slot);
    }

    bool liveBeforeId(unsigned instId, unsigned slot) const
    {
        return (rows[static_cast<std::size_t>(instId) * words +
                     slot / 64] >>
                (slot % 64)) &
               1;
    }

    unsigned numSlots() const { return slots; }

    /** Fixpoint iterations over the CFG (testing/diagnostics). */
    unsigned iterations() const { return iters; }

  private:
    unsigned slots = 0;
    unsigned words = 0;
    unsigned iters = 0;
    /** numInstructions x words live-before bitsets, indexed by id. */
    std::vector<uint64_t> rows;
};

} // namespace softcheck

#endif // SOFTCHECK_ANALYSIS_LIVENESS_HH
