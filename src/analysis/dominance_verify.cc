#include "analysis/dominance_verify.hh"

#include "analysis/dominators.hh"
#include "ir/printer.hh"

namespace softcheck
{

std::vector<std::string>
verifyDominance(Function &fn)
{
    std::vector<std::string> problems;
    if (!fn.entry())
        return problems;

    fn.renumber();
    DominatorTree dt(fn);

    for (auto &bb : fn) {
        if (!dt.reachable(bb.get()))
            continue;
        for (auto &inst : *bb) {
            for (std::size_t i = 0; i < inst->numOperands(); ++i) {
                auto *def = dynamic_cast<Instruction *>(inst->operand(i));
                if (!def)
                    continue;
                bool ok;
                if (inst->opcode() == Opcode::Phi) {
                    BasicBlock *incoming = inst->incomingBlock(i);
                    ok = dt.dominates(def->parent(), incoming);
                } else {
                    ok = dt.dominates(def, inst.get());
                }
                if (!ok) {
                    problems.push_back(
                        "[" + fn.name() + "] def does not dominate use: " +
                        instructionToString(*inst) + " (operand " +
                        std::to_string(i) + ")");
                }
            }
        }
    }
    return problems;
}

} // namespace softcheck
