#include "analysis/protection_audit.hh"

#include <algorithm>
#include <map>
#include <optional>

#include "analysis/dominators.hh"
#include "analysis/fault_space.hh"
#include "analysis/loop_info.hh"
#include "analysis/producer_chain.hh"
#include "support/text.hh"

namespace softcheck
{

double
ProtectionCounts::dupFraction() const
{
    return originalInstructions
               ? static_cast<double>(duplicated) / originalInstructions
               : 0.0;
}

double
ProtectionCounts::checkFraction() const
{
    return originalInstructions ? static_cast<double>(checkProtected) /
                                      originalInstructions
                                : 0.0;
}

double
ProtectionCounts::unprotectedFraction() const
{
    return originalInstructions ? static_cast<double>(unprotected) /
                                      originalInstructions
                                : 0.0;
}

void
ProtectionCounts::merge(const ProtectionCounts &o)
{
    originalInstructions += o.originalInstructions;
    duplicated += o.duplicated;
    checkProtected += o.checkProtected;
    bothProtected += o.bothProtected;
    unprotected += o.unprotected;
    duplicateInstructions += o.duplicateInstructions;
    checkInstructions += o.checkInstructions;
}

std::string
ProtectionCounts::str() const
{
    return strformat("orig=%u dup=%.1f%% chk=%.1f%% unprot=%.1f%%",
                     originalInstructions, 100.0 * dupFraction(),
                     100.0 * checkFraction(),
                     100.0 * unprotectedFraction());
}

const char *
auditViolationKindName(AuditViolationKind k)
{
    switch (k) {
      case AuditViolationKind::OrphanDuplicate:
        return "orphan-duplicate";
      case AuditViolationKind::NonIsomorphicDuplicate:
        return "non-isomorphic-duplicate";
      case AuditViolationKind::MisWiredShadowPhi:
        return "mis-wired-shadow-phi";
      case AuditViolationKind::MissingCutSiteCheck:
        return "missing-cut-site-check";
      case AuditViolationKind::NonDominatingCheckOperand:
        return "non-dominating-check-operand";
      case AuditViolationKind::NonConstantBound:
        return "non-constant-bound";
      case AuditViolationKind::MalformedCheckEq:
        return "malformed-checkeq";
      case AuditViolationKind::DuplicateCheckId:
        return "duplicate-check-id";
    }
    return "?";
}

unsigned
AuditResult::vacuousChecks() const
{
    return static_cast<unsigned>(
        std::count_if(checks.begin(), checks.end(),
                      [](const CheckReport &c) { return c.vacuous; }));
}

unsigned
AuditResult::fpRiskChecks() const
{
    return static_cast<unsigned>(
        std::count_if(checks.begin(), checks.end(),
                      [](const CheckReport &c) { return c.fpRisk; }));
}

unsigned
AuditResult::operandMaskedChecks() const
{
    return static_cast<unsigned>(std::count_if(
        checks.begin(), checks.end(), [](const CheckReport &c) {
            return c.operandFaultSpaceMasked;
        }));
}

unsigned
AuditResult::vacuousAndOperandMasked() const
{
    return static_cast<unsigned>(std::count_if(
        checks.begin(), checks.end(), [](const CheckReport &c) {
            return c.vacuous && c.operandFaultSpaceMasked;
        }));
}

namespace
{

bool
isValueCheck(Opcode op)
{
    return op == Opcode::CheckOne || op == Opcode::CheckTwo ||
           op == Opcode::CheckRange;
}

class Auditor
{
  public:
    Auditor(Function &fn, const RangeAnalysis &ranges,
            const AuditOptions &opts,
            std::map<int, const Instruction *> &check_ids,
            AuditResult &out)
        : fn(fn), ranges(ranges), opts(opts), checkIds(check_ids),
          out(out)
    {}

    void
    run()
    {
        fn.renumber();
        dt.emplace(fn);
        li.emplace(fn, *dt);
        pairDuplicates();
        verifyIsomorphism();
        verifyChecks();
        verifyCutSites();
        classifyInstructions();
        classifyChecks();
    }

  private:
    void
    report(AuditViolationKind kind, const Instruction *inst,
           std::string msg)
    {
        out.violations.push_back({kind, inst, std::move(msg)});
    }

    /**
     * Re-derive the original -> duplicate pairing. Both duplication
     * passes insert a clone immediately after its original; later
     * check insertion can interleave check instructions only, so the
     * original of a duplicate is the nearest preceding non-check
     * instruction of the same block.
     */
    void
    pairDuplicates()
    {
        for (auto &bb : fn) {
            Instruction *prev = nullptr;
            for (auto &inst : *bb) {
                if (isCheck(inst->opcode()))
                    continue;
                if (inst->isDuplicate())
                    pairOne(prev, inst.get());
                prev = inst.get();
            }
        }
    }

    void
    pairOne(Instruction *orig, Instruction *dup)
    {
        if (!orig || orig->isDuplicate()) {
            report(AuditViolationKind::OrphanDuplicate, dup,
                   strformat("duplicate %s has no original before it",
                             opcodeName(dup->opcode())));
            return;
        }
        const bool matches =
            orig->opcode() == dup->opcode() &&
            orig->type() == dup->type() &&
            orig->predicate() == dup->predicate() &&
            orig->elementType() == dup->elementType() &&
            orig->callee() == dup->callee() &&
            orig->numOperands() == dup->numOperands() &&
            orig->numBlockOperands() == dup->numBlockOperands();
        if (!matches) {
            report(AuditViolationKind::NonIsomorphicDuplicate, dup,
                   strformat("duplicate %s does not mirror the "
                             "preceding %s",
                             opcodeName(dup->opcode()),
                             opcodeName(orig->opcode())));
            return;
        }
        if (!dupOf.emplace(orig, dup).second)
            report(AuditViolationKind::NonIsomorphicDuplicate, dup,
                   strformat("second duplicate for one %s original",
                             opcodeName(orig->opcode())));
    }

    /** The update edges of a header phi are those arriving from inside
     * its loop; init edges legitimately reuse the original values. */
    bool
    isInitEdge(const Instruction *phi, std::size_t i) const
    {
        if (!li->isHeader(phi->parent()))
            return false;
        const Loop *loop = li->loopFor(phi->parent());
        return loop && !loop->contains(phi->incomingBlock(i));
    }

    void
    verifyIsomorphism()
    {
        for (auto &[orig, dup] : dupOf) {
            if (orig->opcode() == Opcode::Phi)
                verifyShadowPhi(orig, dup);
            else
                verifyDupOperands(orig, dup);
        }
    }

    /** Expected duplicate-side value for @p ov, or null when any of
     * {ov, its duplicate} is acceptable (init edges, cut sites). */
    const Value *
    mappedOperand(const Value *ov) const
    {
        auto *inst = dynamic_cast<const Instruction *>(ov);
        if (!inst)
            return nullptr;
        auto it = dupOf.find(const_cast<Instruction *>(inst));
        return it == dupOf.end() ? nullptr : it->second;
    }

    void
    verifyShadowPhi(Instruction *orig, Instruction *dup)
    {
        for (std::size_t i = 0; i < orig->numOperands(); ++i) {
            if (orig->incomingBlock(i) != dup->incomingBlock(i)) {
                report(AuditViolationKind::MisWiredShadowPhi, dup,
                       strformat("shadow phi edge %zu comes from a "
                                 "different block than the original",
                                 i));
                continue;
            }
            const Value *ov = orig->incomingValue(i);
            const Value *dv = dup->incomingValue(i);
            const Value *mapped = mappedOperand(ov);
            if (isInitEdge(orig, i)) {
                // Selective duplication reuses the original init
                // value; full duplication maps it. Both are fine.
                if (dv != ov && dv != mapped)
                    report(AuditViolationKind::MisWiredShadowPhi, dup,
                           strformat("shadow phi init edge %zu is "
                                     "neither the original value nor "
                                     "its duplicate",
                                     i));
                continue;
            }
            if (mapped) {
                if (dv != mapped)
                    report(AuditViolationKind::MisWiredShadowPhi, dup,
                           strformat("shadow phi update edge %zu does "
                                     "not use the duplicate of the "
                                     "original incoming value",
                                     i));
                continue;
            }
            if (dv != ov) {
                report(AuditViolationKind::MisWiredShadowPhi, dup,
                       strformat("shadow phi update edge %zu does not "
                                 "mirror the original incoming value",
                                 i));
                continue;
            }
            noteChainCut(ov, dup);
        }
    }

    void
    verifyDupOperands(Instruction *orig, Instruction *dup)
    {
        for (std::size_t i = 0; i < orig->numOperands(); ++i) {
            const Value *ov = orig->operand(i);
            const Value *dv = dup->operand(i);
            const Value *mapped = mappedOperand(ov);
            if (mapped) {
                if (dv != mapped)
                    report(
                        AuditViolationKind::NonIsomorphicDuplicate, dup,
                        strformat("duplicate operand %zu bypasses the "
                                  "duplicate of its original operand",
                                  i));
                continue;
            }
            if (dv != ov) {
                report(AuditViolationKind::NonIsomorphicDuplicate, dup,
                       strformat("duplicate operand %zu matches "
                                 "neither the original operand nor a "
                                 "duplicate",
                                 i));
                continue;
            }
            noteChainCut(ov, dup);
        }
    }

    /**
     * A duplicate consumed an *original* chainable value: the chain was
     * cut there (Optimization 2, or a pre-existing memoized cut), so a
     * value check must cover the cut site.
     */
    void
    noteChainCut(const Value *ov, const Instruction *)
    {
        auto *inst = dynamic_cast<const Instruction *>(ov);
        if (!inst || inst->isDuplicate())
            return;
        if (chainDisposition(*inst) != ChainDisposition::Include)
            return; // loads/phis/calls legitimately terminate chains
        cutSites.insert(inst);
    }

    void
    verifyChecks()
    {
        for (auto &bb : fn) {
            if (!dt->reachable(bb.get()))
                continue;
            for (auto &inst : *bb) {
                if (!isCheck(inst->opcode()))
                    continue;
                Instruction *chk = inst.get();
                auto [it, fresh] =
                    checkIds.emplace(chk->checkId(), chk);
                if (!fresh)
                    report(AuditViolationKind::DuplicateCheckId, chk,
                           strformat("check id %d already used",
                                     chk->checkId()));
                for (std::size_t i = 0; i < chk->numOperands(); ++i) {
                    auto *def = dynamic_cast<Instruction *>(
                        chk->operand(i));
                    if (def && !dt->dominates(def, chk))
                        report(
                            AuditViolationKind::
                                NonDominatingCheckOperand,
                            chk,
                            strformat("check operand %zu does not "
                                      "dominate the check",
                                      i));
                }
                if (chk->opcode() == Opcode::CheckEq)
                    verifyCheckEq(chk);
                else
                    verifyValueCheck(chk);
            }
        }
    }

    void
    verifyCheckEq(Instruction *chk)
    {
        auto *dup = dynamic_cast<Instruction *>(chk->operand(1));
        if (!dup || !dup->isDuplicate()) {
            report(AuditViolationKind::MalformedCheckEq, chk,
                   "CheckEq second operand is not a duplicate");
            return;
        }
        const Value *mapped = mappedOperand(chk->operand(0));
        if (mapped && mapped != dup)
            report(AuditViolationKind::MalformedCheckEq, chk,
                   "CheckEq does not compare an original against its "
                   "own duplicate");
        checkedValues.insert(chk->operand(0));
    }

    void
    verifyValueCheck(Instruction *chk)
    {
        checkedValues.insert(chk->operand(0));
        if (auto *target =
                dynamic_cast<const Instruction *>(chk->operand(0)))
            valueCheckTargets.insert(target);
        for (std::size_t i = 1; i < chk->numOperands(); ++i) {
            const Value *b = chk->operand(i);
            if (!dynamic_cast<const ConstantInt *>(b) &&
                !dynamic_cast<const ConstantFloat *>(b))
                report(AuditViolationKind::NonConstantBound, chk,
                       strformat("check bound operand %zu is not a "
                                 "constant",
                                 i));
        }
    }

    void
    verifyCutSites()
    {
        for (const Instruction *site : cutSites) {
            if (valueCheckTargets.count(site) ||
                opts.allowUncheckedCuts.count(site))
                continue;
            report(AuditViolationKind::MissingCutSiteCheck, site,
                   strformat("chain cut at %s has no replacement "
                             "value check",
                             opcodeName(site->opcode())));
        }
    }

    void
    classifyInstructions()
    {
        ProtectionCounts &c = out.counts;
        for (auto &bb : fn) {
            for (auto &inst : *bb) {
                if (isCheck(inst->opcode())) {
                    ++c.checkInstructions;
                    continue;
                }
                if (inst->isDuplicate()) {
                    ++c.duplicateInstructions;
                    continue;
                }
                ++c.originalInstructions;
                const bool dup = dupOf.count(inst.get()) != 0;
                const bool chk = checkedValues.count(inst.get()) != 0;
                if (dup)
                    ++c.duplicated;
                if (chk)
                    ++c.checkProtected;
                if (dup && chk)
                    ++c.bothProtected;
                if (!dup && !chk)
                    ++c.unprotected;
            }
        }
    }

    static int64_t
    constInt(const Value *v, bool &ok)
    {
        if (auto *c = dynamic_cast<const ConstantInt *>(v))
            return c->signedValue();
        ok = false;
        return 0;
    }

    static double
    constFloat(const Value *v, bool &ok)
    {
        if (auto *c = dynamic_cast<const ConstantFloat *>(v))
            return c->value();
        ok = false;
        return 0;
    }

    /** Does the check's pass set contain all of @p r? */
    static bool
    passSetCovers(const Instruction *chk, const IntRange &r)
    {
        bool ok = true;
        switch (chk->opcode()) {
          case Opcode::CheckOne: {
            const int64_t c = constInt(chk->operand(1), ok);
            return ok && r.isPoint() && r.lo == c;
          }
          case Opcode::CheckTwo: {
            const int64_t c0 = constInt(chk->operand(1), ok);
            const int64_t c1 = constInt(chk->operand(2), ok);
            if (!ok)
                return false;
            if (r.isPoint())
                return r.lo == c0 || r.lo == c1;
            const int64_t lo = std::min(c0, c1);
            const int64_t hi = std::max(c0, c1);
            return hi - lo == 1 && r.lo >= lo && r.hi <= hi;
          }
          case Opcode::CheckRange: {
            const int64_t c0 = constInt(chk->operand(1), ok);
            const int64_t c1 = constInt(chk->operand(2), ok);
            return ok && r.lo >= std::min(c0, c1) &&
                   r.hi <= std::max(c0, c1);
          }
          default:
            return false;
        }
    }

    /** Float pass set vs. the coarse float range (NaN always fires a
     * range check, so maybe-NaN is never covered). */
    static bool
    floatPassSetCovers(const Instruction *chk, const FloatRange &r)
    {
        if (r.bottom || r.maybeNaN)
            return false;
        bool ok = true;
        switch (chk->opcode()) {
          case Opcode::CheckOne: {
            const double c = constFloat(chk->operand(1), ok);
            return ok && r.lo == r.hi && r.lo == c;
          }
          case Opcode::CheckTwo: {
            const double c0 = constFloat(chk->operand(1), ok);
            const double c1 = constFloat(chk->operand(2), ok);
            return ok && r.lo == r.hi && (r.lo == c0 || r.lo == c1);
          }
          case Opcode::CheckRange: {
            const double c0 = constFloat(chk->operand(1), ok);
            const double c1 = constFloat(chk->operand(2), ok);
            return ok && r.lo >= std::min(c0, c1) &&
                   r.hi <= std::max(c0, c1);
          }
          default:
            return false;
        }
    }

    void
    classifyChecks()
    {
        for (auto &bb : fn) {
            for (auto &inst : *bb) {
                if (!isValueCheck(inst->opcode()))
                    continue;
                const Instruction *chk = inst.get();
                CheckReport rep;
                rep.check = chk;
                rep.checkId = chk->checkId();
                rep.operandFaultSpaceMasked =
                    checkOperandFaultSpaceMasked(*chk, ranges);
                const Value *v = chk->operand(0);
                const auto *target =
                    dynamic_cast<const Instruction *>(v);
                if (v->type().isInteger() && target) {
                    rep.isInt = true;
                    rep.arbitraryRange =
                        intTransferArbitraryOperands(*target);
                    rep.flowRange = ranges.intRange(v);
                    rep.vacuous =
                        passSetCovers(chk, rep.arbitraryRange);
                    rep.fpRisk = !rep.flowRange.isBottom() &&
                                 !passSetCovers(chk, rep.flowRange);
                } else {
                    // Float (or malformed) site: arithmetic can always
                    // produce a NaN under corruption, so never vacuous.
                    rep.vacuous = false;
                    rep.fpRisk =
                        !floatPassSetCovers(chk, ranges.floatRange(v));
                }
                out.checks.push_back(rep);
            }
        }
    }

    Function &fn;
    const RangeAnalysis &ranges;
    const AuditOptions &opts;
    std::map<int, const Instruction *> &checkIds;
    AuditResult &out;
    std::optional<DominatorTree> dt;
    std::optional<LoopInfo> li;
    std::map<Instruction *, Instruction *> dupOf;
    std::set<const Value *> checkedValues;
    std::set<const Instruction *> valueCheckTargets;
    std::set<const Instruction *> cutSites;
};

} // namespace

AuditResult
auditProtection(Function &fn, const RangeAnalysis &ranges,
                const AuditOptions &opts)
{
    AuditResult out;
    std::map<int, const Instruction *> ids;
    Auditor(fn, ranges, opts, ids, out).run();
    return out;
}

AuditResult
auditModule(Module &m, const AuditOptions &opts)
{
    AuditResult out;
    std::map<int, const Instruction *> ids;
    for (Function *fn : m.functions()) {
        RangeAnalysis ranges(*fn);
        Auditor(*fn, ranges, opts, ids, out).run();
    }
    return out;
}

} // namespace softcheck
