#include "analysis/range_analysis.hh"

#include "support/bits.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "analysis/loop_info.hh"
#include "support/bits.hh"

namespace softcheck
{

// ---------------------------------------------------------------------
// IntRange
// ---------------------------------------------------------------------

int64_t
IntRange::domainMin(unsigned width)
{
    if (width == 0 || width >= 64)
        return std::numeric_limits<int64_t>::min();
    return -(int64_t{1} << (width - 1));
}

int64_t
IntRange::domainMax(unsigned width)
{
    if (width == 0 || width >= 64)
        return std::numeric_limits<int64_t>::max();
    return (int64_t{1} << (width - 1)) - 1;
}

IntRange
IntRange::full(unsigned width)
{
    return {domainMin(width), domainMax(width)};
}

bool
IntRange::isFull(unsigned width) const
{
    return lo <= domainMin(width) && hi >= domainMax(width) &&
           !isBottom();
}

IntRange
IntRange::join(const IntRange &o) const
{
    if (isBottom())
        return o;
    if (o.isBottom())
        return *this;
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

IntRange
IntRange::meet(const IntRange &o) const
{
    if (isBottom() || o.isBottom())
        return bottom();
    const IntRange r{std::max(lo, o.lo), std::min(hi, o.hi)};
    return r.lo > r.hi ? bottom() : r;
}

std::string
IntRange::str() const
{
    if (isBottom())
        return "bottom";
    std::ostringstream os;
    os << "[" << lo << ", " << hi << "]";
    return os.str();
}

// ---------------------------------------------------------------------
// FloatRange
// ---------------------------------------------------------------------

FloatRange
FloatRange::top()
{
    return {-std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity(), true, false};
}

FloatRange
FloatRange::point(double v)
{
    if (std::isnan(v))
        return top();
    return {v, v, false, false};
}

FloatRange
FloatRange::join(const FloatRange &o) const
{
    if (bottom)
        return o;
    if (o.bottom)
        return *this;
    return {std::min(lo, o.lo), std::max(hi, o.hi),
            maybeNaN || o.maybeNaN, false};
}

std::string
FloatRange::str() const
{
    if (bottom)
        return "bottom";
    std::ostringstream os;
    os << "[" << lo << ", " << hi << "]" << (maybeNaN ? " nan?" : "");
    return os.str();
}

// ---------------------------------------------------------------------
// Bit-level queries
// ---------------------------------------------------------------------

namespace
{

/**
 * Known bits of a same-sign interval. The unsigned w-bit patterns of a
 * same-sign signed interval form one contiguous unsigned interval
 * [ulo, uhi], so every bit above the highest differing endpoint bit is
 * fixed at its common value.
 */
void
knownBitsSameSign(int64_t lo, int64_t hi, unsigned w, uint64_t &kz,
                  uint64_t &ko)
{
    const uint64_t ulo = truncBits(static_cast<uint64_t>(lo), w);
    const uint64_t uhi = truncBits(static_cast<uint64_t>(hi), w);
    const unsigned varying = std::bit_width(ulo ^ uhi);
    const uint64_t fixed = lowBitMask(w) & ~lowBitMask(varying);
    ko = fixed & ulo;
    kz = fixed & ~ulo;
}

void
knownBitsOf(const IntRange &r, unsigned width, uint64_t &kz, uint64_t &ko)
{
    const unsigned w = (width == 0 || width > 64) ? 64 : width;
    if (r.isBottom()) {
        kz = ko = lowBitMask(w); // vacuous: no value contradicts either
        return;
    }
    if (r.lo < 0 && r.hi >= 0) {
        // Mixed sign: intersect the knowledge of the two sign halves.
        uint64_t kz_n, ko_n, kz_p, ko_p;
        knownBitsSameSign(r.lo, -1, w, kz_n, ko_n);
        knownBitsSameSign(0, r.hi, w, kz_p, ko_p);
        kz = kz_n & kz_p;
        ko = ko_n & ko_p;
        return;
    }
    knownBitsSameSign(r.lo, r.hi, w, kz, ko);
}

} // namespace

uint64_t
knownZeroBits(const IntRange &r, unsigned width)
{
    uint64_t kz, ko;
    knownBitsOf(r, width, kz, ko);
    return kz;
}

uint64_t
knownOneBits(const IntRange &r, unsigned width)
{
    uint64_t kz, ko;
    knownBitsOf(r, width, kz, ko);
    return ko;
}

IntRange
flippedRange(const IntRange &r, unsigned width, unsigned bit)
{
    if (r.isBottom())
        return r;
    const unsigned w = (width == 0 || width > 64) ? 64 : width;
    using I128 = __int128;
    const I128 step = I128{1} << bit;
    const I128 dmin = IntRange::domainMin(w);
    const I128 dmax = IntRange::domainMax(w);

    if (bit + 1 < w) {
        // Non-sign bit: each flipped value is v +/- 2^bit with the sign
        // bit (and domain membership) preserved.
        const uint64_t kz = knownZeroBits(r, w);
        const uint64_t ko = knownOneBits(r, w);
        if (testBit(kz, bit))
            return {static_cast<int64_t>(r.lo + (int64_t{1} << bit)),
                    static_cast<int64_t>(r.hi + (int64_t{1} << bit))};
        if (testBit(ko, bit))
            return {r.lo - (int64_t{1} << bit),
                    r.hi - (int64_t{1} << bit)};
        const I128 lo = std::max<I128>(I128{r.lo} - step, dmin);
        const I128 hi = std::min<I128>(I128{r.hi} + step, dmax);
        return {static_cast<int64_t>(lo), static_cast<int64_t>(hi)};
    }

    // Sign bit: flipping it maps v >= 0 to v - 2^(w-1) and v < 0 to
    // v + 2^(w-1); join the two shifted sign subsets.
    const I128 half = I128{1} << (w - 1);
    IntRange out = IntRange::bottom();
    const IntRange neg =
        r.meet({IntRange::domainMin(w), -1});
    const IntRange pos = r.meet({0, IntRange::domainMax(w)});
    if (!neg.isBottom())
        out = out.join({static_cast<int64_t>(neg.lo + half),
                        static_cast<int64_t>(neg.hi + half)});
    if (!pos.isBottom())
        out = out.join({static_cast<int64_t>(pos.lo - half),
                        static_cast<int64_t>(pos.hi - half)});
    return out;
}

namespace
{

using I128 = __int128;

/** Smallest all-ones mask covering @p v (v >= 0). */
int64_t
onesCover(int64_t v)
{
    const uint64_t u = static_cast<uint64_t>(v);
    if (u == 0)
        return 0;
    return static_cast<int64_t>(std::bit_ceil(u + 1) - 1);
}

IntRange
makeOrFull(I128 lo, I128 hi, unsigned w)
{
    if (lo < IntRange::domainMin(w) || hi > IntRange::domainMax(w))
        return IntRange::full(w);
    return {static_cast<int64_t>(lo), static_cast<int64_t>(hi)};
}

IntRange
fromCandidates(std::initializer_list<I128> cands, unsigned w)
{
    I128 lo = *cands.begin(), hi = *cands.begin();
    for (I128 c : cands) {
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    return makeOrFull(lo, hi, w);
}

using IntLookup = std::function<IntRange(const Value *)>;
using FloatLookup = std::function<FloatRange(const Value *)>;

std::optional<bool>
decideICmp(Predicate p, const IntRange &a, const IntRange &b)
{
    switch (p) {
      case Predicate::Eq:
        if (a.isPoint() && b.isPoint() && a.lo == b.lo)
            return true;
        if (a.meet(b).isBottom())
            return false;
        return std::nullopt;
      case Predicate::Ne: {
        auto eq = decideICmp(Predicate::Eq, a, b);
        if (eq)
            return !*eq;
        return std::nullopt;
      }
      case Predicate::Slt:
        if (a.hi < b.lo)
            return true;
        if (a.lo >= b.hi)
            return false;
        return std::nullopt;
      case Predicate::Sle:
        if (a.hi <= b.lo)
            return true;
        if (a.lo > b.hi)
            return false;
        return std::nullopt;
      case Predicate::Sgt:
        return decideICmp(Predicate::Slt, b, a);
      case Predicate::Sge:
        return decideICmp(Predicate::Sle, b, a);
      // Unsigned orderings agree with signed ones when both sides are
      // known non-negative; otherwise stay undecided.
      case Predicate::Ult:
      case Predicate::Ule:
      case Predicate::Ugt:
      case Predicate::Uge:
        if (a.lo >= 0 && b.lo >= 0) {
            Predicate s = p == Predicate::Ult   ? Predicate::Slt
                          : p == Predicate::Ule ? Predicate::Sle
                          : p == Predicate::Ugt ? Predicate::Sgt
                                                : Predicate::Sge;
            return decideICmp(s, a, b);
        }
        return std::nullopt;
      default:
        return std::nullopt;
    }
}

/** i1 ranges in the interpreter's sign-extended view: true = -1. */
IntRange
boolRange(std::optional<bool> d)
{
    if (!d)
        return {-1, 0};
    return IntRange::point(*d ? -1 : 0);
}

/**
 * Transfer for non-phi integer-valued instructions. @p get_int is
 * consulted for integer operands; a bottom operand makes the result
 * bottom (the operand has produced no value yet / is unreachable).
 */
IntRange
evalIntTransfer(const Instruction &inst, const IntLookup &get_int)
{
    const Opcode op = inst.opcode();
    const Type ty = inst.type();
    const unsigned w = ty.bitWidth();

    if (isIntBinary(op)) {
        const IntRange a = get_int(inst.operand(0));
        const IntRange b = get_int(inst.operand(1));
        if (a.isBottom() || b.isBottom())
            return IntRange::bottom();
        switch (op) {
          case Opcode::Add:
            return makeOrFull(I128(a.lo) + b.lo, I128(a.hi) + b.hi, w);
          case Opcode::Sub:
            return makeOrFull(I128(a.lo) - b.hi, I128(a.hi) - b.lo, w);
          case Opcode::Mul:
            return fromCandidates({I128(a.lo) * b.lo, I128(a.lo) * b.hi,
                                   I128(a.hi) * b.lo, I128(a.hi) * b.hi},
                                  w);
          case Opcode::SDiv:
            if (b.contains(0))
                return IntRange::full(w); // trap or anything
            if (a.contains(IntRange::domainMin(w)) && b.contains(-1))
                return IntRange::full(w); // wraps
            return fromCandidates({I128(a.lo) / b.lo, I128(a.lo) / b.hi,
                                   I128(a.hi) / b.lo, I128(a.hi) / b.hi},
                                  w);
          case Opcode::SRem: {
            if (b.contains(0))
                return IntRange::full(w);
            const I128 m =
                std::max(b.lo < 0 ? -I128(b.lo) : I128(b.lo),
                         b.hi < 0 ? -I128(b.hi) : I128(b.hi));
            I128 lo = a.lo >= 0 ? 0 : -(m - 1);
            I128 hi = a.hi <= 0 ? 0 : m - 1;
            if (a.lo >= 0)
                hi = std::min(hi, I128(a.hi));
            if (a.hi <= 0)
                lo = std::max(lo, I128(a.lo));
            return makeOrFull(lo, hi, w);
          }
          case Opcode::UDiv:
            if (a.lo >= 0 && b.lo > 0)
                return {a.lo / b.hi, a.hi / b.lo};
            return IntRange::full(w);
          case Opcode::URem: {
            // With a positive divisor the result is in [0, b.hi - 1]
            // whatever the (raw, unsigned) dividend is.
            if (b.lo <= 0)
                return IntRange::full(w);
            int64_t hi = b.hi - 1;
            if (a.lo >= 0)
                hi = std::min(hi, a.hi);
            return {0, hi};
          }
          case Opcode::And:
            if (a.lo >= 0 && b.lo >= 0)
                return {0, std::min(a.hi, b.hi)};
            if (a.lo >= 0)
                return {0, a.hi};
            if (b.lo >= 0)
                return {0, b.hi};
            return IntRange::full(w);
          case Opcode::Or:
            if (a.lo >= 0 && b.lo >= 0)
                return {std::max(a.lo, b.lo),
                        onesCover(std::max(a.hi, b.hi))};
            return IntRange::full(w);
          case Opcode::Xor:
            if (a.lo >= 0 && b.lo >= 0)
                return {0, onesCover(std::max(a.hi, b.hi))};
            return IntRange::full(w);
          case Opcode::Shl:
          case Opcode::LShr:
          case Opcode::AShr: {
            // Shift amounts are masked by width-1 at runtime.
            int64_t smin = b.lo, smax = b.hi;
            if (smin < 0 || smax > static_cast<int64_t>(w) - 1) {
                smin = 0;
                smax = static_cast<int64_t>(w) - 1;
            }
            if (op == Opcode::Shl)
                return fromCandidates({I128(a.lo) << smin,
                                       I128(a.lo) << smax,
                                       I128(a.hi) << smin,
                                       I128(a.hi) << smax},
                                      w);
            if (op == Opcode::AShr)
                return fromCandidates(
                    {I128(a.lo >> smin), I128(a.lo >> smax),
                     I128(a.hi >> smin), I128(a.hi >> smax)},
                    w);
            // LShr on a known-non-negative value behaves like AShr;
            // otherwise the raw value is huge but one shifted bit of
            // headroom bounds the result.
            if (a.lo >= 0)
                return {a.lo >> smax, a.hi >> smin};
            if (smin >= 1)
                return {0, static_cast<int64_t>(lowBitMask(w) >> smin)};
            return IntRange::full(w);
          }
          default:
            return IntRange::full(w);
        }
    }

    switch (op) {
      case Opcode::ICmp: {
        const Type opty = inst.operand(0)->type();
        if (!opty.isInteger())
            return {-1, 0};
        const IntRange a = get_int(inst.operand(0));
        const IntRange b = get_int(inst.operand(1));
        if (a.isBottom() || b.isBottom())
            return IntRange::bottom();
        return boolRange(decideICmp(inst.predicate(), a, b));
      }
      case Opcode::FCmp:
        return {-1, 0};
      case Opcode::Trunc: {
        const IntRange a = get_int(inst.operand(0));
        if (a.isBottom())
            return IntRange::bottom();
        if (IntRange::full(w).containsRange(a))
            return a; // low bits preserve the signed value
        if (a.isPoint())
            return IntRange::point(
                signExtend(static_cast<uint64_t>(a.lo), w));
        return IntRange::full(w);
      }
      case Opcode::SExt: {
        const IntRange a = get_int(inst.operand(0));
        return a; // same signed value, wider domain
      }
      case Opcode::ZExt: {
        const unsigned sw = inst.operand(0)->type().bitWidth();
        const IntRange a = get_int(inst.operand(0));
        if (a.isBottom())
            return IntRange::bottom();
        if (sw >= 64)
            return IntRange::full(w);
        if (a.lo >= 0)
            return a;
        const int64_t bias = int64_t{1} << sw;
        if (a.hi < 0)
            return {a.lo + bias, a.hi + bias};
        return {0, bias - 1};
      }
      case Opcode::Select: {
        const IntRange c = get_int(inst.operand(0));
        if (c.isBottom())
            return IntRange::bottom();
        const IntRange t = get_int(inst.operand(1));
        const IntRange f = get_int(inst.operand(2));
        if (c.isPoint())
            return (c.lo & 1) ? t : f;
        return t.join(f);
      }
      default:
        // Loads, calls, float-to-int casts, ptr casts, phis (handled
        // by the solver), ...: no integer transfer.
        return IntRange::full(w);
    }
}

/** Transfer for non-phi float-valued instructions. */
FloatRange
evalFloatTransfer(const Instruction &inst, const FloatLookup &get_float,
                  const IntLookup &get_int)
{
    const Opcode op = inst.opcode();
    const double inf = std::numeric_limits<double>::infinity();

    auto finite = [](const FloatRange &r) {
        return std::isfinite(r.lo) && std::isfinite(r.hi);
    };

    if (isFloatBinary(op)) {
        const FloatRange a = get_float(inst.operand(0));
        const FloatRange b = get_float(inst.operand(1));
        if (a.bottom || b.bottom)
            return {};
        if (!finite(a) || !finite(b))
            return FloatRange::top();
        double c0, c1, c2, c3;
        switch (op) {
          case Opcode::FAdd:
            c0 = a.lo + b.lo; c1 = a.lo + b.hi;
            c2 = a.hi + b.lo; c3 = a.hi + b.hi;
            break;
          case Opcode::FSub:
            c0 = a.lo - b.lo; c1 = a.lo - b.hi;
            c2 = a.hi - b.lo; c3 = a.hi - b.hi;
            break;
          case Opcode::FMul:
            c0 = a.lo * b.lo; c1 = a.lo * b.hi;
            c2 = a.hi * b.lo; c3 = a.hi * b.hi;
            break;
          case Opcode::FDiv:
            if (b.lo <= 0 && b.hi >= 0)
                return FloatRange::top(); // divisor may be zero
            c0 = a.lo / b.lo; c1 = a.lo / b.hi;
            c2 = a.hi / b.lo; c3 = a.hi / b.hi;
            break;
          default:
            return FloatRange::top();
        }
        if (std::isnan(c0) || std::isnan(c1) || std::isnan(c2) ||
            std::isnan(c3))
            return FloatRange::top();
        return {std::min({c0, c1, c2, c3}), std::max({c0, c1, c2, c3}),
                a.maybeNaN || b.maybeNaN, false};
    }

    switch (op) {
      case Opcode::SIToFP: {
        const IntRange a = get_int(inst.operand(0));
        if (a.isBottom())
            return {};
        return {static_cast<double>(a.lo), static_cast<double>(a.hi),
                false, false};
      }
      case Opcode::FPExt: {
        return get_float(inst.operand(0));
      }
      case Opcode::FPTrunc: {
        const FloatRange a = get_float(inst.operand(0));
        if (a.bottom)
            return {};
        // Rounding to f32 is monotone, so rounded endpoints bound
        // every rounded interior point.
        return {static_cast<double>(static_cast<float>(a.lo)),
                static_cast<double>(static_cast<float>(a.hi)),
                a.maybeNaN, false};
      }
      case Opcode::FAbs: {
        const FloatRange a = get_float(inst.operand(0));
        if (a.bottom)
            return {};
        const double alo = std::fabs(a.lo), ahi = std::fabs(a.hi);
        const bool spans = a.lo <= 0 && a.hi >= 0;
        return {spans ? 0 : std::min(alo, ahi), std::max(alo, ahi),
                a.maybeNaN, false};
      }
      case Opcode::Sqrt: {
        const FloatRange a = get_float(inst.operand(0));
        if (a.bottom)
            return {};
        if (a.lo < 0 || a.maybeNaN)
            return FloatRange::top();
        return {std::sqrt(a.lo), std::sqrt(a.hi), false, false};
      }
      case Opcode::Exp: {
        const FloatRange a = get_float(inst.operand(0));
        if (a.bottom)
            return {};
        return {std::exp(a.lo), std::exp(a.hi), a.maybeNaN, false};
      }
      case Opcode::Log: {
        const FloatRange a = get_float(inst.operand(0));
        if (a.bottom)
            return {};
        if (a.lo <= 0 || a.maybeNaN)
            return FloatRange::top();
        return {std::log(a.lo), std::log(a.hi), false, false};
      }
      case Opcode::Sin:
      case Opcode::Cos: {
        const FloatRange a = get_float(inst.operand(0));
        if (a.bottom)
            return {};
        return {-1.0, 1.0,
                a.maybeNaN || a.lo == -inf || a.hi == inf, false};
      }
      case Opcode::FMin:
      case Opcode::FMax: {
        const FloatRange a = get_float(inst.operand(0));
        const FloatRange b = get_float(inst.operand(1));
        if (a.bottom || b.bottom)
            return {};
        if (op == Opcode::FMin)
            return {std::min(a.lo, b.lo), std::min(a.hi, b.hi),
                    a.maybeNaN || b.maybeNaN, false};
        return {std::max(a.lo, b.lo), std::max(a.hi, b.hi),
                a.maybeNaN || b.maybeNaN, false};
      }
      case Opcode::Select: {
        const FloatRange t = get_float(inst.operand(1));
        const FloatRange f = get_float(inst.operand(2));
        return t.join(f);
      }
      default:
        // Loads, calls, FPToSI sources, phis: no float transfer.
        return FloatRange::top();
    }
}

} // namespace

IntRange
intTransferArbitraryOperands(const Instruction &inst)
{
    if (!inst.type().isInteger())
        return IntRange::full(64);
    IntLookup arbitrary = [](const Value *v) -> IntRange {
        if (auto *c = dynamic_cast<const ConstantInt *>(v))
            return IntRange::point(c->signedValue());
        return IntRange::full(v->type().bitWidth());
    };
    return evalIntTransfer(inst, arbitrary);
}

// ---------------------------------------------------------------------
// Fixpoint solver
// ---------------------------------------------------------------------

class RangeSolver
{
  public:
    RangeSolver(const Function &fn, RangeAnalysis &ra)
        : fn(fn), ra(ra), dt(fn), li(fn, dt)
    {}

    void
    run()
    {
        buildOrder();
        buildRefinements();
        fixpoint();
        narrow();
        narrow();
    }

  private:
    static constexpr unsigned kPhiWidenThreshold = 4;
    static constexpr unsigned kAnyWidenThreshold = 64;

    void
    buildOrder()
    {
        for (BasicBlock *bb : dt.rpo()) {
            for (auto &inst : *bb) {
                if (!inst->hasResult())
                    continue;
                instIndex[inst.get()] = order.size();
                order.push_back(inst.get());
                if (inst->type().isInteger())
                    ra.intRanges[inst.get()] = IntRange::bottom();
                else if (inst->type().isFloat())
                    ra.floatRanges[inst.get()] = FloatRange{};
            }
        }
    }

    /** Negation of an integer predicate. */
    static Predicate
    negate(Predicate p)
    {
        switch (p) {
          case Predicate::Eq: return Predicate::Ne;
          case Predicate::Ne: return Predicate::Eq;
          case Predicate::Slt: return Predicate::Sge;
          case Predicate::Sle: return Predicate::Sgt;
          case Predicate::Sgt: return Predicate::Sle;
          case Predicate::Sge: return Predicate::Slt;
          case Predicate::Ult: return Predicate::Uge;
          case Predicate::Ule: return Predicate::Ugt;
          case Predicate::Ugt: return Predicate::Ule;
          case Predicate::Uge: return Predicate::Ult;
          default: return Predicate::None;
        }
    }

    /** Mirror of a predicate under operand swap (c <op> v form). */
    static Predicate
    swapped(Predicate p)
    {
        switch (p) {
          case Predicate::Slt: return Predicate::Sgt;
          case Predicate::Sle: return Predicate::Sge;
          case Predicate::Sgt: return Predicate::Slt;
          case Predicate::Sge: return Predicate::Sle;
          case Predicate::Ult: return Predicate::Ugt;
          case Predicate::Ule: return Predicate::Uge;
          case Predicate::Ugt: return Predicate::Ult;
          case Predicate::Uge: return Predicate::Ule;
          default: return p; // Eq/Ne symmetric
        }
    }

    /** Interval implied by `v <pred> c` on a width-w value, if any. */
    static std::optional<IntRange>
    refineAgainst(Predicate p, int64_t c, unsigned w)
    {
        const int64_t dmin = IntRange::domainMin(w);
        const int64_t dmax = IntRange::domainMax(w);
        switch (p) {
          case Predicate::Eq:
            return IntRange::point(c);
          case Predicate::Slt:
            return c == dmin ? std::nullopt
                             : std::optional(IntRange{dmin, c - 1});
          case Predicate::Sle:
            return IntRange{dmin, c};
          case Predicate::Sgt:
            return c == dmax ? std::nullopt
                             : std::optional(IntRange{c + 1, dmax});
          case Predicate::Sge:
            return IntRange{c, dmax};
          // Unsigned orderings against a constant describe a wrapped
          // interval in the signed view; keep the cases that stay
          // contiguous.
          case Predicate::Ult:
            return c > 0 ? std::optional(IntRange{0, c - 1})
                         : std::nullopt;
          case Predicate::Ule:
            return c >= 0 ? std::optional(IntRange{0, c})
                          : std::nullopt;
          case Predicate::Ugt:
            return c < -1 ? std::optional(IntRange{c + 1, -1})
                          : std::nullopt;
          case Predicate::Uge:
            return c < 0 ? std::optional(IntRange{c, -1})
                         : std::nullopt;
          default:
            return std::nullopt; // Ne: not an interval
        }
    }

    void
    buildRefinements()
    {
        // Per-block own constraints from the incoming guarded edge.
        std::map<const BasicBlock *,
                 std::map<const Value *, IntRange>>
            own;
        auto preds = fn.predecessors();
        for (BasicBlock *bb : dt.rpo()) {
            Instruction *term = bb->terminator();
            if (!term || term->opcode() != Opcode::CondBr)
                continue;
            auto *cmp = dynamic_cast<Instruction *>(term->operand(0));
            if (!cmp || cmp->opcode() != Opcode::ICmp)
                continue;
            if (!cmp->operand(0)->type().isInteger())
                continue;
            const Value *var = nullptr;
            Predicate p = cmp->predicate();
            int64_t c = 0;
            if (auto *rc =
                    dynamic_cast<ConstantInt *>(cmp->operand(1))) {
                var = cmp->operand(0);
                c = rc->signedValue();
            } else if (auto *lc = dynamic_cast<ConstantInt *>(
                           cmp->operand(0))) {
                var = cmp->operand(1);
                c = lc->signedValue();
                p = swapped(p);
            } else {
                continue;
            }
            if (dynamic_cast<const ConstantInt *>(var))
                continue;
            const unsigned w = var->type().bitWidth();
            BasicBlock *tsucc = term->blockOperand(0);
            BasicBlock *fsucc = term->blockOperand(1);
            if (tsucc == fsucc)
                continue;
            for (int edge = 0; edge < 2; ++edge) {
                BasicBlock *succ = edge == 0 ? tsucc : fsucc;
                auto pit = preds.find(succ);
                if (pit == preds.end() || pit->second.size() != 1)
                    continue;
                const Predicate ep = edge == 0 ? p : negate(p);
                auto r = refineAgainst(ep, c, w);
                if (!r)
                    continue;
                auto [it, fresh] = own[succ].emplace(var, *r);
                if (!fresh)
                    it->second = it->second.meet(*r);
            }
        }
        // Accumulate down the dominator tree: a constraint guarding
        // block D holds in every block D dominates.
        std::vector<BasicBlock *> stack{fn.entry()};
        while (!stack.empty()) {
            BasicBlock *bb = stack.back();
            stack.pop_back();
            auto merged = bb == fn.entry()
                              ? std::map<const Value *, IntRange>{}
                              : ra.refinedAt[dt.idom(bb)];
            auto oit = own.find(bb);
            if (oit != own.end()) {
                for (auto &[v, r] : oit->second) {
                    auto [it, fresh] = merged.emplace(v, r);
                    if (!fresh)
                        it->second = it->second.meet(r);
                }
            }
            ra.refinedAt[bb] = std::move(merged);
            for (BasicBlock *kid : dt.children(bb))
                stack.push_back(kid);
        }
    }

    IntRange
    lookupInt(const Value *v, const BasicBlock *ctx) const
    {
        if (auto *c = dynamic_cast<const ConstantInt *>(v))
            return IntRange::point(c->signedValue());
        const unsigned w = v->type().bitWidth();
        IntRange r = IntRange::full(w);
        if (auto *inst = dynamic_cast<const Instruction *>(v)) {
            auto it = ra.intRanges.find(inst);
            r = it != ra.intRanges.end() ? it->second
                                         : IntRange::full(w);
        }
        auto bit = ra.refinedAt.find(ctx);
        if (bit != ra.refinedAt.end()) {
            auto vit = bit->second.find(v);
            if (vit != bit->second.end())
                r = r.meet(vit->second);
        }
        return r;
    }

    FloatRange
    lookupFloat(const Value *v) const
    {
        if (auto *c = dynamic_cast<const ConstantFloat *>(v))
            return FloatRange::point(c->value());
        if (auto *inst = dynamic_cast<const Instruction *>(v)) {
            auto it = ra.floatRanges.find(inst);
            if (it != ra.floatRanges.end())
                return it->second;
        }
        return FloatRange::top();
    }

    IntRange
    evalInt(const Instruction *inst) const
    {
        const BasicBlock *ctx = inst->parent();
        if (inst->opcode() == Opcode::Phi) {
            IntRange r = IntRange::bottom();
            for (std::size_t i = 0; i < inst->numOperands(); ++i) {
                const BasicBlock *in = inst->incomingBlock(i);
                if (!dt.reachable(in))
                    continue;
                r = r.join(lookupInt(inst->incomingValue(i), in));
            }
            return r;
        }
        IntLookup get = [&](const Value *v) {
            return lookupInt(v, ctx);
        };
        return evalIntTransfer(*inst, get);
    }

    FloatRange
    evalFloat(const Instruction *inst) const
    {
        const BasicBlock *ctx = inst->parent();
        if (inst->opcode() == Opcode::Phi) {
            FloatRange r;
            for (std::size_t i = 0; i < inst->numOperands(); ++i) {
                if (!dt.reachable(inst->incomingBlock(i)))
                    continue;
                r = r.join(lookupFloat(inst->incomingValue(i)));
            }
            return r;
        }
        FloatLookup getf = [&](const Value *v) {
            return lookupFloat(v);
        };
        IntLookup geti = [&](const Value *v) {
            return lookupInt(v, ctx);
        };
        return evalFloatTransfer(*inst, getf, geti);
    }

    bool
    isLoopHeaderPhi(const Instruction *inst) const
    {
        return inst->opcode() == Opcode::Phi &&
               li.isHeader(inst->parent());
    }

    void
    pushUsers(const Instruction *inst, std::set<std::size_t> &wl)
    {
        for (Instruction *user : inst->users()) {
            auto it = instIndex.find(user);
            if (it != instIndex.end())
                wl.insert(it->second);
        }
    }

    void
    fixpoint()
    {
        std::set<std::size_t> wl;
        for (std::size_t i = 0; i < order.size(); ++i)
            wl.insert(i);
        std::map<const Instruction *, unsigned> updates;
        while (!wl.empty()) {
            const std::size_t idx = *wl.begin();
            wl.erase(wl.begin());
            const Instruction *inst = order[idx];
            ++ra.iters;
            if (inst->type().isInteger()) {
                IntRange &cur = ra.intRanges[inst];
                IntRange next = cur.join(evalInt(inst));
                if (next == cur)
                    continue;
                const unsigned n = ++updates[inst];
                if ((isLoopHeaderPhi(inst) &&
                     n >= kPhiWidenThreshold) ||
                    n >= kAnyWidenThreshold) {
                    const unsigned w = inst->type().bitWidth();
                    if (next.lo < cur.lo)
                        next.lo = IntRange::domainMin(w);
                    if (next.hi > cur.hi)
                        next.hi = IntRange::domainMax(w);
                }
                cur = next;
                pushUsers(inst, wl);
            } else {
                FloatRange &cur = ra.floatRanges[inst];
                FloatRange next = cur.join(evalFloat(inst));
                if (!cur.bottom && next.lo == cur.lo &&
                    next.hi == cur.hi && next.maybeNaN == cur.maybeNaN)
                    continue;
                const unsigned n = ++updates[inst];
                if ((isLoopHeaderPhi(inst) &&
                     n >= kPhiWidenThreshold) ||
                    n >= kAnyWidenThreshold)
                    next = FloatRange::top();
                cur = next;
                pushUsers(inst, wl);
            }
        }
    }

    /** One exact descending sweep, recovering precision post-widening. */
    void
    narrow()
    {
        for (const Instruction *inst : order) {
            if (inst->type().isInteger()) {
                IntRange &cur = ra.intRanges[inst];
                const IntRange next = evalInt(inst);
                if (cur.containsRange(next))
                    cur = next;
            } else {
                FloatRange &cur = ra.floatRanges[inst];
                const FloatRange next = evalFloat(inst);
                if (!next.bottom && !cur.bottom &&
                    next.lo >= cur.lo && next.hi <= cur.hi &&
                    (!next.maybeNaN || cur.maybeNaN))
                    cur = next;
            }
        }
    }

    const Function &fn;
    RangeAnalysis &ra;
    DominatorTree dt;
    LoopInfo li;
    std::vector<const Instruction *> order;
    std::map<const Instruction *, std::size_t> instIndex;
};

// ---------------------------------------------------------------------
// RangeAnalysis
// ---------------------------------------------------------------------

RangeAnalysis::RangeAnalysis(const Function &fn) : fn(fn)
{
    if (!fn.entry())
        return;
    RangeSolver(fn, *this).run();
}

IntRange
RangeAnalysis::intRange(const Value *v) const
{
    if (auto *c = dynamic_cast<const ConstantInt *>(v))
        return IntRange::point(c->signedValue());
    auto it = intRanges.find(v);
    if (it != intRanges.end())
        return it->second;
    return IntRange::full(v->type().bitWidth());
}

IntRange
RangeAnalysis::intRangeAt(const Value *v, const BasicBlock *at) const
{
    IntRange r = intRange(v);
    auto bit = refinedAt.find(at);
    if (bit != refinedAt.end()) {
        auto vit = bit->second.find(v);
        if (vit != bit->second.end())
            r = r.meet(vit->second);
    }
    return r;
}

FloatRange
RangeAnalysis::floatRange(const Value *v) const
{
    if (auto *c = dynamic_cast<const ConstantFloat *>(v))
        return FloatRange::point(c->value());
    auto it = floatRanges.find(v);
    if (it != floatRanges.end())
        return it->second;
    return FloatRange::top();
}

} // namespace softcheck
