#include "analysis/cfg_utils.hh"

#include <set>
#include <vector>

#include "support/error.hh"

namespace softcheck
{

unsigned
removeUnreachableBlocks(Function &fn)
{
    if (!fn.entry())
        return 0;

    std::set<BasicBlock *> reachable;
    std::vector<BasicBlock *> work{fn.entry()};
    while (!work.empty()) {
        BasicBlock *bb = work.back();
        work.pop_back();
        if (!reachable.insert(bb).second)
            continue;
        for (BasicBlock *succ : bb->successors())
            work.push_back(succ);
    }

    std::vector<BasicBlock *> dead;
    for (auto &bb : fn) {
        if (!reachable.count(bb.get()))
            dead.push_back(bb.get());
    }
    if (dead.empty())
        return 0;

    // Prune phi incomings that refer to dead predecessors.
    std::set<BasicBlock *> dead_set(dead.begin(), dead.end());
    for (auto &bb : fn) {
        if (dead_set.count(bb.get()))
            continue;
        for (Instruction *phi : bb->phis()) {
            for (std::size_t i = phi->numBlockOperands(); i-- > 0;) {
                if (dead_set.count(phi->blockOperand(i)))
                    phi->removeIncoming(i);
            }
        }
    }

    // Break operand webs inside dead blocks, then delete the blocks.
    for (BasicBlock *bb : dead) {
        for (auto &inst : *bb)
            inst->dropAllOperands();
    }
    for (BasicBlock *bb : dead)
        fn.removeBlock(bb);
    return static_cast<unsigned>(dead.size());
}

bool
hasSideEffects(const Instruction &inst)
{
    switch (inst.opcode()) {
      case Opcode::Store:
      case Opcode::Call:
      case Opcode::Ret:
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::CheckEq:
      case Opcode::CheckOne:
      case Opcode::CheckTwo:
      case Opcode::CheckRange:
        return true;
      default:
        return false;
    }
}

unsigned
eliminateDeadCode(Function &fn)
{
    // Mark-and-sweep liveness so that dead phi cycles (which keep each
    // other as users) are also collected.
    std::set<Instruction *> live;
    std::vector<Instruction *> work;
    for (auto &bb : fn) {
        for (auto &inst : *bb) {
            if (hasSideEffects(*inst)) {
                live.insert(inst.get());
                work.push_back(inst.get());
            }
        }
    }
    while (!work.empty()) {
        Instruction *inst = work.back();
        work.pop_back();
        for (Value *op : inst->operands()) {
            if (auto *def = dynamic_cast<Instruction *>(op)) {
                if (live.insert(def).second)
                    work.push_back(def);
            }
        }
    }

    std::vector<Instruction *> dead;
    for (auto &bb : fn) {
        for (auto &inst : *bb) {
            if (!live.count(inst.get()))
                dead.push_back(inst.get());
        }
    }
    for (Instruction *inst : dead)
        inst->dropAllOperands();
    for (Instruction *inst : dead)
        inst->parent()->erase(inst);
    return static_cast<unsigned>(dead.size());
}

} // namespace softcheck
