/**
 * @file
 * Dominator tree and dominance frontiers, built with the iterative
 * algorithm of Cooper, Harvey and Kennedy ("A Simple, Fast Dominance
 * Algorithm"). Unreachable blocks are excluded; reachable() reports
 * membership.
 */

#ifndef SOFTCHECK_ANALYSIS_DOMINATORS_HH
#define SOFTCHECK_ANALYSIS_DOMINATORS_HH

#include <map>
#include <set>
#include <vector>

#include "ir/function.hh"

namespace softcheck
{

class DominatorTree
{
  public:
    /** Build for @p fn; snapshots the current CFG. */
    explicit DominatorTree(const Function &fn);

    /** True if @p bb is reachable from the entry. */
    bool reachable(const BasicBlock *bb) const
    {
        return rpoIndex.count(bb) != 0;
    }

    /** Immediate dominator; null for the entry and unreachable blocks. */
    BasicBlock *idom(const BasicBlock *bb) const;

    /** True if @p a dominates @p b (reflexive). */
    bool dominates(const BasicBlock *a, const BasicBlock *b) const;

    /**
     * True if the definition point of @p def dominates instruction
     * @p use. Within one block, instruction order decides; the ids
     * assigned by Function::renumber() must be current.
     */
    bool dominates(const Instruction *def, const Instruction *use) const;

    /** Dominance frontier of @p bb. */
    const std::set<BasicBlock *> &frontier(const BasicBlock *bb) const;

    /** Children of @p bb in the dominator tree. */
    const std::vector<BasicBlock *> &children(const BasicBlock *bb) const;

    /** Blocks in reverse post-order (reachable only). */
    const std::vector<BasicBlock *> &rpo() const { return order; }

  private:
    std::vector<BasicBlock *> order;
    std::map<const BasicBlock *, std::size_t> rpoIndex;
    std::map<const BasicBlock *, BasicBlock *> idoms;
    std::map<const BasicBlock *, std::set<BasicBlock *>> frontiers;
    std::map<const BasicBlock *, std::vector<BasicBlock *>> kids;
    std::set<BasicBlock *> emptySet;
    std::vector<BasicBlock *> emptyVec;
};

} // namespace softcheck

#endif // SOFTCHECK_ANALYSIS_DOMINATORS_HH
