#include "analysis/liveness.hh"

#include <algorithm>
#include <map>

#include "ir/basic_block.hh"

namespace softcheck
{

namespace
{

struct BitSet
{
    std::vector<uint64_t> w;

    explicit BitSet(unsigned words) : w(words, 0) {}

    void set(unsigned i) { w[i / 64] |= 1ULL << (i % 64); }
    void reset(unsigned i) { w[i / 64] &= ~(1ULL << (i % 64)); }

    BitSet &operator|=(const BitSet &o)
    {
        for (std::size_t i = 0; i < w.size(); ++i)
            w[i] |= o.w[i];
        return *this;
    }

    bool operator==(const BitSet &o) const { return w == o.w; }
};

/** Register-slot uses of @p inst: operands with a slot number. */
template <typename Fn>
void
forEachUse(const Instruction *inst, Fn &&fn)
{
    for (const Value *op : inst->operands())
        if (op && op->slot() >= 0)
            fn(static_cast<unsigned>(op->slot()));
}

} // namespace

LivenessAnalysis::LivenessAnalysis(const Function &fn)
{
    slots = fn.numSlots();
    words = (slots + 63) / 64;
    rows.assign(static_cast<std::size_t>(fn.numInstructions()) * words,
                0);

    const std::vector<BasicBlock *> rpo = fn.reversePostOrder();
    std::map<const BasicBlock *, unsigned> index;
    for (unsigned i = 0; i < rpo.size(); ++i)
        index[rpo[i]] = i;

    // liveIn[B] = live set at B's first non-phi instruction (phi moves
    // already applied); liveOut[B] = live set at B's terminator exit.
    std::vector<BitSet> liveIn(rpo.size(), BitSet(words));

    // Live set flowing across edge B -> S: S's phi defs are dead-on-
    // arrival replaced by the sources S selects from B.
    auto edge_live = [&](const BasicBlock *sb, const BasicBlock *from) {
        BitSet live = liveIn[index.at(sb)];
        for (const Instruction *phi : sb->phis()) {
            if (phi->slot() >= 0)
                live.reset(static_cast<unsigned>(phi->slot()));
        }
        for (const Instruction *phi : sb->phis()) {
            const Value *src = phi->incomingValueFor(from);
            if (src && src->slot() >= 0)
                live.set(static_cast<unsigned>(src->slot()));
        }
        return live;
    };

    auto live_out = [&](const BasicBlock *bb) {
        BitSet out(words);
        for (const BasicBlock *sb : bb->successors())
            out |= edge_live(sb, bb);
        return out;
    };

    // Backward transfer from liveOut to liveIn over the block's
    // non-phi instructions (phis are handled on edges above).
    auto block_transfer = [&](const BasicBlock *bb, BitSet live,
                              bool record) {
        for (auto it = bb->end(); it != bb->begin();) {
            const Instruction *inst = (--it)->get();
            if (inst->opcode() == Opcode::Phi)
                break;
            if (inst->slot() >= 0)
                live.reset(static_cast<unsigned>(inst->slot()));
            forEachUse(inst, [&](unsigned s) { live.set(s); });
            if (record)
                std::copy(live.w.begin(), live.w.end(),
                          rows.begin() +
                              static_cast<std::size_t>(inst->id()) *
                                  words);
        }
        return live;
    };

    // Fixpoint: process blocks in post-order (reverse RPO) so most
    // successors are up to date before their predecessors.
    bool changed = true;
    while (changed) {
        changed = false;
        ++iters;
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            const BasicBlock *bb = *it;
            BitSet in =
                block_transfer(bb, live_out(bb), /*record=*/false);
            if (!(in == liveIn[index.at(bb)])) {
                liveIn[index.at(bb)] = std::move(in);
                changed = true;
            }
        }
    }

    // Materialise per-instruction live-before rows. Phi rows stay
    // all-zero; injection points are always non-phi boundaries.
    for (const BasicBlock *bb : rpo)
        block_transfer(bb, live_out(bb), /*record=*/true);
}

} // namespace softcheck
