/**
 * @file
 * Protection audit: a verifier-style pass over a *hardened* function.
 *
 * The hardening passes leave a structural contract in the IR — every
 * duplicate sits right behind its original (modulo interleaved checks),
 * mirrors its opcode/type and maps operands through the duplicate web,
 * shadow phis mirror the original phi edge-for-edge, Optimization-2 cut
 * sites carry the value check that replaced the severed chain, and
 * check ids are unique. The audit re-derives the original↔duplicate
 * pairing from the IR alone, verifies that contract, classifies every
 * original instruction as duplicated / check-protected / unprotected
 * (the paper's static coverage picture), and — given value ranges —
 * classifies each value check as vacuous (its pass set contains every
 * value the checked instruction can produce from arbitrarily corrupted
 * register operands, so it can never fire) or at false-positive risk
 * (the static value range escapes the profiled bound, so an unseen
 * input could fire it fault-free).
 */

#ifndef SOFTCHECK_ANALYSIS_PROTECTION_AUDIT_HH
#define SOFTCHECK_ANALYSIS_PROTECTION_AUDIT_HH

#include <set>
#include <string>
#include <vector>

#include "analysis/range_analysis.hh"
#include "ir/module.hh"

namespace softcheck
{

/** Per-category static protection coverage over original (non-check,
 * non-duplicate) instructions. */
struct ProtectionCounts
{
    unsigned originalInstructions = 0;
    unsigned duplicated = 0;     //!< recomputed by a paired duplicate
    unsigned checkProtected = 0; //!< CheckEq-compared or value-checked
    unsigned bothProtected = 0;
    unsigned unprotected = 0;
    unsigned duplicateInstructions = 0;
    unsigned checkInstructions = 0;

    double dupFraction() const;
    double checkFraction() const;
    double unprotectedFraction() const;

    void merge(const ProtectionCounts &o);
    std::string str() const;
};

enum class AuditViolationKind
{
    /** Duplicate with no matching original right before it. */
    OrphanDuplicate,
    /** Duplicate whose operands don't mirror the original's through
     * the duplicate map. */
    NonIsomorphicDuplicate,
    /** Shadow phi whose incoming edges don't mirror the original. */
    MisWiredShadowPhi,
    /** Chain cut site feeding a duplicate without its value check. */
    MissingCutSiteCheck,
    /** Check operand defined by an instruction that does not dominate
     * the check. */
    NonDominatingCheckOperand,
    /** CheckOne/Two/Range bound operand that is not a constant. */
    NonConstantBound,
    /** CheckEq not comparing an original against its duplicate. */
    MalformedCheckEq,
    DuplicateCheckId,
};

const char *auditViolationKindName(AuditViolationKind k);

struct AuditViolation
{
    AuditViolationKind kind;
    const Instruction *inst = nullptr;
    std::string message;
};

/** Static classification of one expected-value check. */
struct CheckReport
{
    const Instruction *check = nullptr;
    int checkId = -1;
    bool isInt = false;
    /** Pass set contains every value producible from corrupted
     * register operands: the check can never fire. */
    bool vacuous = false;
    /** Static range of the checked value escapes the pass set: an
     * input outside the profile could fire the check fault-free. */
    bool fpRisk = false;
    /** Every bit of every register operand is flip-invariant for this
     * check (checkOperandFaultSpaceMasked): no single-bit fault in its
     * operands can ever change its verdict, so the check burns cycles
     * without adding single-event-upset coverage. Strictly stronger
     * than @ref vacuous, which reasons about arbitrary corruption. */
    bool operandFaultSpaceMasked = false;
    IntRange flowRange;      //!< flow-sensitive range (int sites)
    IntRange arbitraryRange; //!< one-step arbitrary-operand range
};

struct AuditOptions
{
    /**
     * Cut sites whose replacement check was deliberately suppressed
     * (a full-domain range check can never fire); excluded from
     * MissingCutSiteCheck reporting.
     */
    std::set<const Instruction *> allowUncheckedCuts;
};

struct AuditResult
{
    ProtectionCounts counts;
    std::vector<AuditViolation> violations;
    std::vector<CheckReport> checks; //!< CheckOne/Two/Range only

    unsigned vacuousChecks() const;
    unsigned fpRiskChecks() const;
    unsigned operandMaskedChecks() const;
    /** Checks that are both vacuous and operand-fault-space masked —
     * the overlap of the two "this check is useless" analyses. */
    unsigned vacuousAndOperandMasked() const;
};

/**
 * Audit one function. Renumbers @p fn (for the dominance queries) and
 * reads @p ranges for check classification; @p ranges must have been
 * built over the same, already-hardened body.
 */
AuditResult auditProtection(Function &fn, const RangeAnalysis &ranges,
                            const AuditOptions &opts = {});

/**
 * Audit every function, merging counts/violations/checks and checking
 * check-id uniqueness module-wide. Builds a RangeAnalysis per function.
 */
AuditResult auditModule(Module &m, const AuditOptions &opts = {});

} // namespace softcheck

#endif // SOFTCHECK_ANALYSIS_PROTECTION_AUDIT_HH
