/**
 * @file
 * SSA promotion of scalar stack slots (allocas), in the style of LLVM's
 * mem2reg. The front end emits every local variable as an alloca plus
 * loads/stores; this pass rewrites the promotable ones into SSA values
 * with phi nodes placed on the iterated dominance frontier.
 *
 * Promotion of loop-carried locals is what creates the phi nodes in
 * loop headers that the paper's state-variable identification keys on
 * (Sec. IV-A of Khudia & Mahlke).
 */

#ifndef SOFTCHECK_ANALYSIS_MEM2REG_HH
#define SOFTCHECK_ANALYSIS_MEM2REG_HH

#include "ir/function.hh"

namespace softcheck
{

/**
 * Promote all promotable allocas in @p fn.
 *
 * An alloca is promotable when its element count is the constant 1 and
 * every use is either a load from it or a store *to* it (its address
 * never escapes). Loads that execute before any store yield a zero
 * constant of the element type.
 *
 * Runs removeUnreachableBlocks() first and a dead-code sweep after.
 *
 * @return number of allocas promoted
 */
unsigned promoteAllocas(Function &fn);

} // namespace softcheck

#endif // SOFTCHECK_ANALYSIS_MEM2REG_HH
