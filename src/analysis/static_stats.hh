/**
 * @file
 * Static instruction statistics used to reproduce the paper's Figure 10
 * (state variables, duplicated instructions, and value checks as a
 * fraction of total static IR instructions).
 */

#ifndef SOFTCHECK_ANALYSIS_STATIC_STATS_HH
#define SOFTCHECK_ANALYSIS_STATIC_STATS_HH

#include <string>

#include "analysis/protection_audit.hh"
#include "ir/module.hh"

namespace softcheck
{

struct StaticStats
{
    unsigned totalInstructions = 0;
    unsigned phiNodes = 0;
    unsigned duplicatedInstructions = 0; //!< marked via setDuplicate()
    unsigned checkEq = 0;
    unsigned checkOne = 0;
    unsigned checkTwo = 0;
    unsigned checkRange = 0;
    unsigned loads = 0;
    unsigned stores = 0;
    unsigned elidedChecks = 0; //!< vacuous checks marked elided

    /** Per-category protection coverage from the audit; zero counts
     * when no audit ran (hasProtection false). */
    ProtectionCounts protection;
    bool hasProtection = false;

    unsigned valueChecks() const { return checkOne + checkTwo + checkRange; }
    unsigned allChecks() const { return valueChecks() + checkEq; }

    /** Fractions relative to total static instructions. */
    double dupFraction() const;
    double valueCheckFraction() const;

    std::string str() const;
};

/**
 * Gather statistics over every function of @p m. When @p protection is
 * non-null its per-category coverage is embedded in the stats (and
 * printed by str()).
 */
StaticStats collectStaticStats(const Module &m,
                               const ProtectionCounts *protection = nullptr);

} // namespace softcheck

#endif // SOFTCHECK_ANALYSIS_STATIC_STATS_HH
