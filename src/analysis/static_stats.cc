#include "analysis/static_stats.hh"

#include "support/text.hh"

namespace softcheck
{

double
StaticStats::dupFraction() const
{
    return totalInstructions
               ? static_cast<double>(duplicatedInstructions) /
                     totalInstructions
               : 0.0;
}

double
StaticStats::valueCheckFraction() const
{
    return totalInstructions
               ? static_cast<double>(valueChecks()) / totalInstructions
               : 0.0;
}

std::string
StaticStats::str() const
{
    std::string s = strformat(
        "instrs=%u phis=%u dup=%u (%.1f%%) vchks=%u (%.1f%%) "
        "[one=%u two=%u range=%u] eqchks=%u loads=%u stores=%u",
        totalInstructions, phiNodes, duplicatedInstructions,
        100.0 * dupFraction(), valueChecks(),
        100.0 * valueCheckFraction(), checkOne, checkTwo, checkRange,
        checkEq, loads, stores);
    if (elidedChecks)
        s += strformat(" elided=%u", elidedChecks);
    if (hasProtection)
        s += strformat(" | coverage: %s", protection.str().c_str());
    return s;
}

StaticStats
collectStaticStats(const Module &m, const ProtectionCounts *protection)
{
    StaticStats st;
    if (protection) {
        st.protection = *protection;
        st.hasProtection = true;
    }
    for (const Function *fn : m.functions()) {
        for (const auto &bb : *fn) {
            for (const auto &inst : *bb) {
                ++st.totalInstructions;
                if (inst->isDuplicate())
                    ++st.duplicatedInstructions;
                if (inst->isElided())
                    ++st.elidedChecks;
                switch (inst->opcode()) {
                  case Opcode::Phi: ++st.phiNodes; break;
                  case Opcode::CheckEq: ++st.checkEq; break;
                  case Opcode::CheckOne: ++st.checkOne; break;
                  case Opcode::CheckTwo: ++st.checkTwo; break;
                  case Opcode::CheckRange: ++st.checkRange; break;
                  case Opcode::Load: ++st.loads; break;
                  case Opcode::Store: ++st.stores; break;
                  default: break;
                }
            }
        }
    }
    return st;
}

} // namespace softcheck
