#include "analysis/const_fold.hh"

#include <bit>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "analysis/cfg_utils.hh"
#include "ir/module.hh"
#include "support/bits.hh"
#include "support/error.hh"

namespace softcheck
{

namespace
{

std::optional<int64_t>
intConst(const Value *v)
{
    if (auto *c = dynamic_cast<const ConstantInt *>(v))
        return c->signedValue();
    return std::nullopt;
}

std::optional<double>
floatConst(const Value *v)
{
    if (auto *c = dynamic_cast<const ConstantFloat *>(v))
        return c->value();
    return std::nullopt;
}

/** Fold an instruction to a constant, or simplify to an operand.
 * Returns the replacement value, or null if nothing applies. */
Value *
simplify(Module &m, Instruction &inst)
{
    const Opcode op = inst.opcode();
    const Type ty = inst.type();

    if (isIntBinary(op)) {
        const auto a = intConst(inst.operand(0));
        const auto b = intConst(inst.operand(1));
        const unsigned w = ty.bitWidth();

        // Identities first (work even with one non-constant side).
        if (b) {
            switch (op) {
              case Opcode::Add:
              case Opcode::Sub:
              case Opcode::Or:
              case Opcode::Xor:
              case Opcode::Shl:
              case Opcode::LShr:
              case Opcode::AShr:
                if (*b == 0)
                    return inst.operand(0);
                break;
              case Opcode::Mul:
                if (*b == 1)
                    return inst.operand(0);
                if (*b == 0)
                    return m.getConstInt(ty, uint64_t{0});
                break;
              case Opcode::SDiv:
                if (*b == 1)
                    return inst.operand(0);
                break;
              case Opcode::And:
                if (*b == 0)
                    return m.getConstInt(ty, uint64_t{0});
                if (truncBits(static_cast<uint64_t>(*b), w) ==
                    lowBitMask(w))
                    return inst.operand(0);
                break;
              default:
                break;
            }
        }
        if (!a || !b)
            return nullptr;

        const uint64_t ua = truncBits(static_cast<uint64_t>(*a), w);
        const uint64_t ub = truncBits(static_cast<uint64_t>(*b), w);
        const int64_t sa = signExtend(ua, w);
        const int64_t sb = signExtend(ub, w);
        uint64_t res;
        switch (op) {
          case Opcode::Add: res = ua + ub; break;
          case Opcode::Sub: res = ua - ub; break;
          case Opcode::Mul: res = ua * ub; break;
          case Opcode::SDiv:
            if (sb == 0)
                return nullptr; // preserve the trap
            if (sa == std::numeric_limits<int64_t>::min() && sb == -1)
                res = static_cast<uint64_t>(sa);
            else
                res = static_cast<uint64_t>(sa / sb);
            break;
          case Opcode::SRem:
            if (sb == 0)
                return nullptr;
            if (sa == std::numeric_limits<int64_t>::min() && sb == -1)
                res = 0;
            else
                res = static_cast<uint64_t>(sa % sb);
            break;
          case Opcode::UDiv:
            if (ub == 0)
                return nullptr;
            res = ua / ub;
            break;
          case Opcode::URem:
            if (ub == 0)
                return nullptr;
            res = ua % ub;
            break;
          case Opcode::And: res = ua & ub; break;
          case Opcode::Or: res = ua | ub; break;
          case Opcode::Xor: res = ua ^ ub; break;
          case Opcode::Shl:
            res = ua << (static_cast<unsigned>(ub) & (w - 1));
            break;
          case Opcode::LShr:
            res = ua >> (static_cast<unsigned>(ub) & (w - 1));
            break;
          case Opcode::AShr:
            res = static_cast<uint64_t>(
                sa >> (static_cast<unsigned>(ub) & (w - 1)));
            break;
          default:
            return nullptr;
        }
        return m.getConstInt(ty, truncBits(res, w));
    }

    if (isFloatBinary(op)) {
        const auto a = floatConst(inst.operand(0));
        const auto b = floatConst(inst.operand(1));
        if (!a || !b)
            return nullptr;
        double res;
        switch (op) {
          case Opcode::FAdd: res = *a + *b; break;
          case Opcode::FSub: res = *a - *b; break;
          case Opcode::FMul: res = *a * *b; break;
          case Opcode::FDiv: res = *a / *b; break;
          default: return nullptr;
        }
        return m.getConstFloat(ty, res);
    }

    switch (op) {
      case Opcode::ICmp: {
        const auto a = intConst(inst.operand(0));
        const auto b = intConst(inst.operand(1));
        if (!a || !b)
            return nullptr;
        const unsigned w = inst.operand(0)->type().bitWidth();
        const uint64_t ua = truncBits(static_cast<uint64_t>(*a), w);
        const uint64_t ub = truncBits(static_cast<uint64_t>(*b), w);
        const int64_t sa = signExtend(ua, w);
        const int64_t sb = signExtend(ub, w);
        bool r;
        switch (inst.predicate()) {
          case Predicate::Eq: r = ua == ub; break;
          case Predicate::Ne: r = ua != ub; break;
          case Predicate::Slt: r = sa < sb; break;
          case Predicate::Sle: r = sa <= sb; break;
          case Predicate::Sgt: r = sa > sb; break;
          case Predicate::Sge: r = sa >= sb; break;
          case Predicate::Ult: r = ua < ub; break;
          case Predicate::Ule: r = ua <= ub; break;
          case Predicate::Ugt: r = ua > ub; break;
          case Predicate::Uge: r = ua >= ub; break;
          default: return nullptr;
        }
        return m.getConstInt(Type::i1(), uint64_t{r});
      }
      case Opcode::Select: {
        const auto c = intConst(inst.operand(0));
        if (!c)
            return nullptr;
        return (*c & 1) ? inst.operand(1) : inst.operand(2);
      }
      case Opcode::Trunc:
      case Opcode::SExt:
      case Opcode::ZExt: {
        const auto a = intConst(inst.operand(0));
        if (!a)
            return nullptr;
        // signExtend of the operand already happened in intConst;
        // trunc/zext semantics fall out of canonicalization.
        if (op == Opcode::ZExt) {
            const unsigned sw = inst.operand(0)->type().bitWidth();
            return m.getConstInt(
                ty, truncBits(static_cast<uint64_t>(*a), sw));
        }
        return m.getConstInt(ty, static_cast<uint64_t>(*a));
      }
      case Opcode::SIToFP: {
        const auto a = intConst(inst.operand(0));
        if (!a)
            return nullptr;
        return m.getConstFloat(ty, static_cast<double>(*a));
      }
      case Opcode::FPExt:
      case Opcode::FPTrunc: {
        const auto a = floatConst(inst.operand(0));
        if (!a)
            return nullptr;
        return m.getConstFloat(ty, *a);
      }
      case Opcode::Sqrt:
      case Opcode::FAbs: {
        const auto a = floatConst(inst.operand(0));
        if (!a)
            return nullptr;
        return m.getConstFloat(
            ty, op == Opcode::Sqrt ? std::sqrt(*a) : std::fabs(*a));
      }
      default:
        return nullptr;
    }
}

} // namespace

unsigned
foldConstants(Function &fn)
{
    Module &m = *fn.parent();
    unsigned folded = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &bb : fn) {
            std::vector<Instruction *> dead;
            for (auto &inst : *bb) {
                if (!inst->hasResult() || inst->users().empty())
                    continue;
                Value *repl = simplify(m, *inst);
                if (repl && repl != inst.get()) {
                    inst->replaceAllUsesWith(repl);
                    dead.push_back(inst.get());
                    ++folded;
                    changed = true;
                }
            }
            for (Instruction *inst : dead) {
                inst->dropAllOperands();
                bb->erase(inst);
            }
        }
    }
    if (folded)
        eliminateDeadCode(fn);
    return folded;
}

} // namespace softcheck
